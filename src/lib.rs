//! Workspace-level helpers shared by the examples and integration tests of the PaRMIS
//! reproduction.
//!
//! The heavy lifting lives in the workspace crates (`parmis`, `soc-sim`, `policy`,
//! `baselines`, `gp`, `moo`, `linalg`); this tiny crate only bundles the configuration presets
//! the runnable examples and the cross-crate integration tests use, so they stay short and
//! consistent with each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use parmis::acquisition::AcquisitionOptimizerConfig;
use parmis::framework::ParmisConfig;
use parmis::pareto_sampling::ParetoSamplingConfig;

/// `true` when `PARMIS_QUICK` is set to anything but `0`.
///
/// The examples-smoke test suite (`tests/examples_smoke.rs`) sets the variable so every
/// example binary finishes in seconds; interactive runs keep the full budgets.
pub fn quick_mode() -> bool {
    std::env::var("PARMIS_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Picks `full` normally and `quick` under [`quick_mode`] — the one-liner the examples use
/// to shrink their iteration budgets for smoke testing.
pub fn sized(full: usize, quick: usize) -> usize {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// A PaRMIS configuration sized for interactive examples and integration tests: it finishes
/// in seconds while still showing model-guided improvement over the initial random design.
pub fn example_parmis_config(max_iterations: usize, seed: u64) -> ParmisConfig {
    ParmisConfig {
        max_iterations: max_iterations.max(5),
        initial_samples: (max_iterations / 4).clamp(3, 8),
        num_pareto_samples: 1,
        sampling: ParetoSamplingConfig {
            rff_features: 60,
            nsga_population: 16,
            nsga_generations: 8,
        },
        acquisition: AcquisitionOptimizerConfig {
            random_candidates: 32,
            local_candidates: 12,
            local_perturbation: 0.2,
        },
        refit_hyperparameters_every: 10,
        convergence_window: 0,
        seed,
        // One candidate per iteration (the paper's loop), but let Parmis::run_parallel use
        // every CPU when an example opts into batched evaluation.
        num_workers: 0,
        ..ParmisConfig::default()
    }
}

/// A baseline sweep configuration sized for examples: three scalarizations, short training
/// (two scalarizations and minimal training under [`quick_mode`]).
pub fn example_sweep_config(seed: u64) -> baselines::sweep::SweepConfig {
    let quick = quick_mode();
    baselines::sweep::SweepConfig {
        weight_count: if quick { 2 } else { 3 },
        rl: baselines::RlConfig {
            episodes: if quick { 2 } else { 6 },
            seed,
            ..Default::default()
        },
        il: baselines::IlConfig {
            oracle_stride: if quick { 247 } else { 61 },
            training: policy::training::TrainingConfig {
                epochs: if quick { 5 } else { 20 },
                learning_rate: 0.06,
                seed,
            },
            ..Default::default()
        },
        eval_seed: seed,
        // Sweep arms merge deterministically, so the examples can use every CPU for free.
        num_workers: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_config_is_small_but_valid() {
        let cfg = example_parmis_config(20, 1);
        assert_eq!(cfg.max_iterations, 20);
        assert!(cfg.initial_samples >= 3 && cfg.initial_samples <= 8);
        assert!(cfg.sampling.rff_features <= 100);
        let cfg = example_parmis_config(2, 1);
        assert_eq!(cfg.max_iterations, 5);
    }

    #[test]
    fn example_sweep_config_is_small() {
        let cfg = example_sweep_config(3);
        assert_eq!(cfg.weight_count, 3);
        assert!(cfg.rl.episodes <= 10);
        assert!(cfg.il.oracle_stride >= 50);
    }
}
