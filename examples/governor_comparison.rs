//! Governor comparison: run the four stock Linux governors plus a pinned userspace
//! configuration on every benchmark and print the resulting time/energy/PPW table — a tour of
//! the simulator substrate without any learning involved.
//!
//! ```text
//! cargo run --release --example governor_comparison
//! ```

use parmis_repro::quick_mode;
use soc_sim::apps::Benchmark;
use soc_sim::config::DrmDecision;
use soc_sim::governor::{default_governors, UserspaceGovernor};
use soc_sim::platform::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::odroid_xu3();
    println!(
        "{:<14} {:<12} {:>10} {:>10} {:>9} {:>8}",
        "benchmark", "governor", "time [s]", "energy [J]", "power [W]", "PPW"
    );

    let benchmarks: &[Benchmark] = if quick_mode() {
        &Benchmark::ALL[..3]
    } else {
        &Benchmark::ALL[..]
    };
    for &benchmark in benchmarks {
        let app = benchmark.application();
        // The four kernel governors...
        for mut governor in default_governors(platform.spec()) {
            let run = platform.run_application(&app, &mut governor, 0)?;
            println!(
                "{:<14} {:<12} {:>10.2} {:>10.2} {:>9.2} {:>8.3}",
                benchmark.name(),
                run.controller,
                run.execution_time_s,
                run.energy_j,
                run.average_power_w,
                run.ppw
            );
        }
        // ...plus a hand-picked balanced userspace configuration: two Big cores at 1.4 GHz
        // and two Little cores at 1.0 GHz.
        let mut userspace = UserspaceGovernor::new(DrmDecision {
            big_cores: 2,
            little_cores: 2,
            big_freq_mhz: 1400,
            little_freq_mhz: 1000,
        });
        let run = platform.run_application(&app, &mut userspace, 0)?;
        println!(
            "{:<14} {:<12} {:>10.2} {:>10.2} {:>9.2} {:>8.3}",
            benchmark.name(),
            "userspace",
            run.execution_time_s,
            run.energy_j,
            run.average_power_w,
            run.ppw
        );
        println!();
    }
    Ok(())
}
