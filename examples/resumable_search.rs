//! Resumable search: run PaRMIS under a fuel budget, suspend mid-search, serialize the
//! checkpoint to JSON, restore it and resume — then prove via the trace-hash chain that
//! the stitched-together run followed the uninterrupted trajectory bit for bit.
//!
//! ```text
//! cargo run --release --example resumable_search
//! ```

use parmis::prelude::*;
use parmis_repro::{example_parmis_config, sized};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let evaluator = SocEvaluator::builder()
        .benchmark(Benchmark::Qsort)
        .objectives(vec![Objective::ExecutionTime, Objective::Energy])
        .build()?;

    let budget = sized(24, 8);
    let config = example_parmis_config(budget, 11);
    println!(
        "resumable search: {} evaluations, suspending every {} (fuel budget)",
        config.max_iterations,
        config.max_iterations / 2
    );

    // Reference: the same search, uninterrupted.
    let uninterrupted = Parmis::new(config.clone()).run(&evaluator)?;

    // Fuel-bounded: the search suspends at an iteration boundary once the per-segment
    // evaluation budget is spent, handing back a serializable state.
    let fueled = ParmisConfig {
        max_fuel: config.max_iterations / 2,
        ..config
    };
    let search = Parmis::new(fueled);
    let mut segments = 1;
    let mut step = search.run_resumable(&evaluator)?;
    let resumed = loop {
        match step {
            SearchStep::Completed(outcome) => break *outcome,
            SearchStep::Suspended { state, .. } => {
                // Simulated kill: everything is dropped except the checkpoint JSON. A
                // real deployment writes this to disk (see the `resume_smoke` bench bin
                // for the two-process version).
                let json = state.to_json()?;
                println!(
                    "segment {segments}: suspended after {} evaluations ({} checkpoint bytes)",
                    state.evaluations(),
                    json.len()
                );
                let restored = SearchState::from_json(&json)?;
                step = search.resume(restored, &evaluator)?;
                segments += 1;
            }
        }
    };
    println!("completed in {segments} segments");

    // The audit trail: per-iteration trace hashes fold every candidate, objective vector
    // and the RNG cursor. Identical chains mean identical trajectories — not just
    // similar-looking fronts.
    assert_eq!(
        uninterrupted.trace_hashes, resumed.trace_hashes,
        "resumed run diverged from the uninterrupted trajectory"
    );
    assert_eq!(uninterrupted.phv_history, resumed.phv_history);
    println!(
        "trace-hash audit passed: {} links, final hash {:#018x}",
        resumed.trace_hashes.len(),
        resumed.trace_hashes.last().copied().unwrap_or(0)
    );
    println!(
        "front: {} Pareto-frontier policies, PHV {:.3}",
        resumed.front.len(),
        resumed.final_phv()
    );
    Ok(())
}
