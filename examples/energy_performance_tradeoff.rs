//! Energy/performance trade-off study: compare the Pareto front PaRMIS finds for one
//! application against the RL and IL baselines and the four stock governors — a miniature
//! version of the paper's Figure 3.
//!
//! ```text
//! cargo run --release --example energy_performance_tradeoff
//! ```

use baselines::sweep::{governor_results, il_front, rl_front};
use moo::dominance::dominates;
use moo::hypervolume::{common_reference_point, hypervolume};
use parmis::prelude::*;
use parmis_repro::{example_parmis_config, example_sweep_config, sized};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::Fft;
    let objectives = Objective::TIME_ENERGY.to_vec();
    println!("energy/performance trade-off on {}", benchmark);

    // PaRMIS front.
    let evaluator = SocEvaluator::builder()
        .benchmark(benchmark)
        .objectives(objectives.clone())
        .build()?;
    let outcome = Parmis::new(example_parmis_config(sized(30, 8), 11)).run(&evaluator)?;
    let parmis_points = outcome.front.objective_values();
    println!("PaRMIS found {} Pareto policies", parmis_points.len());

    // Baseline fronts from scalarization sweeps.
    let sweep = example_sweep_config(5);
    let rl = rl_front(benchmark, &objectives, &sweep);
    let il = il_front(benchmark, &objectives, &sweep);
    println!(
        "RL sweep kept {} policies, IL sweep kept {}",
        rl.len(),
        il.len()
    );

    // Governors give one point each.
    let governors = governor_results(benchmark, &objectives);
    for (name, point) in &governors {
        let dominated = parmis_points.iter().any(|p| dominates(p, point));
        println!(
            "governor {name:<12} time {:.2} s energy {:.2} J{}",
            point[0],
            point[1],
            if dominated {
                "  (dominated by PaRMIS)"
            } else {
                ""
            }
        );
    }

    // Compare front quality with a common reference point, as the paper does.
    let rl_points = rl.objective_values();
    let il_points = il.objective_values();
    let governor_points: Vec<Vec<f64>> = governors.iter().map(|(_, p)| p.clone()).collect();
    let reference = common_reference_point(
        &[&parmis_points, &rl_points, &il_points, &governor_points],
        0.05,
    );
    println!("\nPareto hypervolume (higher is better, common reference point):");
    println!("  parmis {:.3}", hypervolume(parmis_points, &reference));
    println!("  rl     {:.3}", hypervolume(rl_points, &reference));
    println!("  il     {:.3}", hypervolume(il_points, &reference));
    Ok(())
}
