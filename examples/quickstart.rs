//! Quickstart: find Pareto-frontier DRM policies for one application with PaRMIS and pick a
//! policy for a desired trade-off at "runtime".
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parmis::prelude::*;
use parmis_repro::{example_parmis_config, sized};
use soc_sim::platform::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Choose the target application and the objectives to trade off.
    let benchmark = Benchmark::Qsort;
    let objectives = vec![Objective::ExecutionTime, Objective::Energy];
    println!(
        "PaRMIS quickstart: {} / (execution time, energy)",
        benchmark
    );

    // 2. Offline phase: run the information-theoretic search for Pareto-frontier policies.
    let evaluator = SocEvaluator::builder()
        .benchmark(benchmark)
        .objectives(objectives)
        .build()?;
    let outcome = Parmis::new(example_parmis_config(sized(30, 8), 7)).run(&evaluator)?;
    println!(
        "evaluated {} candidate policies, found {} Pareto-frontier policies (PHV {:.3})",
        outcome.history.len(),
        outcome.front.len(),
        outcome.final_phv()
    );
    for entry in outcome.front.iter() {
        println!(
            "  policy: execution time {:.2} s, energy {:.2} J",
            entry.objectives[0], entry.objectives[1]
        );
    }

    // 3. Online phase: the user prefers energy savings (e.g. the battery is low), so select
    //    the Pareto policy with an energy-leaning scalarization and run it.
    let preferred = outcome
        .front
        .select_by(|o| 0.2 * o[0] + 0.8 * o[1])
        .expect("front is never empty after a successful run");
    let mut policy = evaluator.policy_for(&preferred.tag).with_name("selected");
    let platform = Platform::odroid_xu3();
    let run = platform.run_application(&benchmark.application(), &mut policy, 123)?;
    println!(
        "selected policy re-run: {:.2} s, {:.2} J, {:.2} W average ({} decision epochs)",
        run.execution_time_s,
        run.energy_j,
        run.average_power_w,
        run.epochs.len()
    );
    Ok(())
}
