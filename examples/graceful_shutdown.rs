//! Graceful shutdown: cooperative cancellation for a single search, then a fleet-wide
//! drain under the [`JobSupervisor`] — and the proof that stopping early never costs
//! correctness, because a suspended search resumes **bit-identically**.
//!
//! ```text
//! cargo run --release --example graceful_shutdown
//! ```
//!
//! Two acts:
//!
//! 1. A [`CancelSource`] trips mid-search (here from the evaluator itself, so the demo is
//!    deterministic; in production the trigger is a Ctrl-C handler, a deadline, or a stall
//!    monitor). The search suspends at the next iteration boundary with
//!    [`StopReason::Cancelled`], hands back a serializable [`SearchState`], and resuming
//!    it reproduces the uninterrupted trace-hash chain link for link.
//! 2. A supervised fleet drains mid-run: [`JobSupervisor::drain_source`] is cancelled
//!    while segments are in flight, every job parks as `Suspended`/`Pending` with the
//!    journal flushed, and a later supervisor finishes the fleet with digests identical
//!    to uninterrupted runs. (Set [`SupervisorConfig::drain_on_signals`] to get the same
//!    behaviour from a real `SIGTERM`/`SIGINT` — that path is drilled by the two-process
//!    `job_soak` bench bin.)

use parmis::jobs::outcome_digest;
use parmis::prelude::*;
use parmis_repro::{example_parmis_config, sized};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps an evaluator and trips `source` after `cancel_after` evaluations — a stand-in
/// for an operator pressing Ctrl-C at an unpredictable moment, made deterministic so the
/// example can assert exact outcomes.
struct CancelAfter<E> {
    inner: E,
    served: AtomicUsize,
    cancel_after: usize,
    source: CancelSource,
}

impl<E: PolicyEvaluator> PolicyEvaluator for CancelAfter<E> {
    fn parameter_dim(&self) -> usize {
        self.inner.parameter_dim()
    }

    fn parameter_bound(&self) -> f64 {
        self.inner.parameter_bound()
    }

    fn objectives(&self) -> &[Objective] {
        self.inner.objectives()
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>, ParmisError> {
        if self.served.fetch_add(1, Ordering::SeqCst) + 1 >= self.cancel_after {
            self.source.cancel(CancelReason::User);
        }
        self.inner.evaluate(theta)
    }
}

fn evaluator() -> Result<SocEvaluator, ParmisError> {
    SocEvaluator::builder()
        .benchmark(Benchmark::Qsort)
        .objectives(vec![Objective::ExecutionTime, Objective::Energy])
        .build()
}

/// Act 1: cancel one search mid-flight, resume it, audit the trace-hash chain.
fn single_search_cancellation() -> Result<(), Box<dyn std::error::Error>> {
    let config = example_parmis_config(sized(16, 8), 71);
    let uninterrupted = Parmis::new(config.clone()).run(&evaluator()?)?;

    let source = CancelSource::new();
    let cancelling = CancelAfter {
        inner: evaluator()?,
        served: AtomicUsize::new(0),
        cancel_after: config.max_iterations / 2,
        source: source.clone(),
    };
    let step = Parmis::new(config.clone())
        .with_cancel_token(source.token())
        .run_resumable(&cancelling)?;
    let (state, reason) = match step {
        SearchStep::Suspended { state, reason } => (state, reason),
        SearchStep::Completed(_) => unreachable!("the token trips before the budget"),
    };
    assert_eq!(reason, StopReason::Cancelled(CancelReason::User));
    println!(
        "act 1: suspended with `{reason}` after {} evaluations (requested at ~{})",
        state.evaluations(),
        config.max_iterations / 2
    );

    // The suspended state round-trips through JSON — exactly what a deployment persists
    // before exiting — and resumes under a fresh, untripped driver.
    let resumed = Parmis::new(config)
        .resume(SearchState::from_json(&state.to_json()?)?, &evaluator()?)?
        .into_completed()
        .expect("no token, no fuel budget: the resumed segment completes");
    assert_eq!(
        uninterrupted.trace_hashes, resumed.trace_hashes,
        "cancellation must only decide when to stop, never what is computed"
    );
    println!(
        "act 1: resume audit passed — {} trace-hash links identical to the uninterrupted run",
        resumed.trace_hashes.len()
    );
    Ok(())
}

/// Act 2: drain a supervised fleet mid-run, then finish it in a second run.
fn fleet_drain() -> Result<(), Box<dyn std::error::Error>> {
    let fleet: Vec<JobSpec> = (0..3)
        .map(|i| {
            let config = example_parmis_config(sized(16, 8), 83 + 5 * i as u64);
            JobSpec::new(format!("search-{i}"), config)
        })
        .collect();
    let references: Vec<u64> = fleet
        .iter()
        .map(|spec| {
            let outcome = Parmis::new(spec.config.clone()).run(&evaluator()?)?;
            Ok::<u64, Box<dyn std::error::Error>>(outcome_digest(&outcome))
        })
        .collect::<Result<_, _>>()?;

    let dir = std::env::temp_dir().join("parmis_graceful_shutdown_example");
    let _ = std::fs::remove_dir_all(&dir);
    let supervisor_config = SupervisorConfig {
        workers: 1,
        segment_fuel: sized(6, 4),
        checkpoint_every: 2,
        ..SupervisorConfig::default()
    };

    // First run: the fourth segment finds the fleet draining — as if SIGTERM arrived —
    // and every job parks at a checkpoint boundary with the journal flushed.
    let mut supervisor = JobSupervisor::open(&dir, supervisor_config.clone())?;
    let drain = supervisor.drain_source();
    let segments_started = AtomicUsize::new(0);
    let report = supervisor.run(&fleet, |_spec| {
        if segments_started.fetch_add(1, Ordering::SeqCst) + 1 == 4 {
            drain.cancel(CancelReason::User);
        }
        Ok(Box::new(evaluator()?))
    })?;
    assert!(report.any_resumable() && !report.all_done());
    for job in &report.jobs {
        assert!(
            matches!(job.phase, JobPhase::Suspended | JobPhase::Pending),
            "a drain leaves only resumable phases"
        );
        println!(
            "act 2: {} parked as {:?} at {} evaluations{}",
            job.id,
            job.phase,
            job.evaluations,
            job.note
                .as_deref()
                .map(|n| format!(" ({n})"))
                .unwrap_or_default()
        );
    }

    // Second run (a later process): the journal is the source of truth; the fleet
    // finishes with fronts bit-identical to never having been interrupted.
    let mut resumed = JobSupervisor::open(&dir, supervisor_config)?;
    let report = resumed.run(&fleet, |_spec| Ok(Box::new(evaluator()?)))?;
    assert!(report.all_done());
    for (job, reference) in report.jobs.iter().zip(&references) {
        assert_eq!(
            job.outcome_digest,
            Some(*reference),
            "drain + resume diverged from the uninterrupted run"
        );
    }
    println!(
        "act 2: drain audit passed — all {} digests identical after resume",
        fleet.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    single_search_cancellation()?;
    fleet_drain()?;
    Ok(())
}
