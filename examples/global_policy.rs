//! Global Pareto-frontier policies: train one PaRMIS policy set over several applications and
//! check how well it transfers to each of them (a miniature of the paper's Figure 5 study).
//!
//! ```text
//! cargo run --release --example global_policy
//! ```

use moo::hypervolume::{common_reference_point, hypervolume, normalized};
use moo::ParetoFront;
use parmis::prelude::*;
use parmis_repro::{example_parmis_config, quick_mode, sized};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let all = [Benchmark::Sha, Benchmark::Kmeans, Benchmark::StringSearch];
    let benchmarks = if quick_mode() { &all[..2] } else { &all[..] };
    let objectives = Objective::TIME_ENERGY.to_vec();
    println!(
        "training one global policy set over: {}",
        benchmarks
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // One search over the whole application set.
    let global = GlobalEvaluator::for_benchmarks(benchmarks, objectives.clone());
    let global_outcome = Parmis::new(example_parmis_config(sized(26, 6), 31)).run(&global)?;
    println!(
        "global search: {} evaluations, {} Pareto policies (dimension d = {})",
        global_outcome.history.len(),
        global_outcome.front.len(),
        global.parameter_dim()
    );

    for &benchmark in benchmarks {
        // Score every global Pareto policy on this application.
        let mut per_app_front = ParetoFront::new(2);
        for theta in global_outcome.front.tags() {
            let value = global.evaluate_on(theta, benchmark)?;
            per_app_front.insert(value, ());
        }
        let global_points = per_app_front.objective_values();

        // Application-specific search with the same budget, for reference.
        let app_eval = SocEvaluator::builder()
            .benchmark(benchmark)
            .objectives(objectives.clone())
            .build()?;
        let app_outcome = Parmis::new(example_parmis_config(sized(26, 6), 37)).run(&app_eval)?;
        let app_points = app_outcome.front.objective_values();

        let reference = common_reference_point(&[&global_points, &app_points], 0.05);
        let phv_global = hypervolume(global_points, &reference);
        let phv_app = hypervolume(app_points, &reference);
        println!(
            "{:<14} app-specific PHV {:.3}, global PHV {:.3}, normalized {:.3}",
            benchmark.name(),
            phv_app,
            phv_global,
            normalized(phv_global, phv_app)
        );
    }
    println!(
        "\nthe paper finds global policies within ~2% of application-specific ones on average"
    );
    Ok(())
}
