//! Thermal-aware optimization: run PaRMIS on a registered thermal scenario, trading
//! execution time against peak junction temperature under the scenario's constraint
//! penalty — the scenario-engine workflow end to end (registry lookup, JSON round-trip,
//! constraint-scoped objectives).
//!
//! ```text
//! cargo run --release --example thermal_aware_optimization
//! ```

use parmis::prelude::*;
use parmis_repro::{example_parmis_config, sized};
use soc_sim::scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick the thermally limited scenario from the registry; a real deployment could
    //    load the same definition from a JSON file instead (the two are interchangeable).
    let scenario = scenario::by_name("odroid-pca-thermal").expect("registered scenario");
    let reloaded = Scenario::from_json(&scenario.to_json())?;
    assert_eq!(reloaded, scenario, "scenario JSON round-trip is lossless");
    println!(
        "scenario {}: {} (thermal limit {:?} C)",
        scenario.name, scenario.description, scenario.constraints.thermal_limit_c
    );

    // 2. Offline phase: optimize (execution time, peak temperature) with the scenario's
    //    thermal-violation penalty steering the search towards compliant policies.
    let objectives = Objective::TIME_PEAK_TEMP.to_vec();
    let evaluator = SocEvaluator::builder()
        .scenario(&scenario)
        .objectives(objectives)
        .build()?;
    let outcome = Parmis::new(example_parmis_config(sized(30, 8), 41)).run(&evaluator)?;
    println!(
        "evaluated {} policies, kept {} on the Pareto front (PHV {:.3})",
        outcome.history.len(),
        outcome.front.len(),
        outcome.final_phv()
    );

    // 3. Re-run every front policy and report which ones actually satisfy the limit.
    let platform = scenario.platform();
    let app = scenario.application()?;
    let limit = scenario
        .constraints
        .thermal_limit_c
        .unwrap_or(f64::INFINITY);
    let mut compliant = 0usize;
    println!("{:>10} {:>12} {:>10}", "time [s]", "peak T [C]", "ok?");
    for theta in outcome.front.tags() {
        let mut policy = evaluator.policy_for(theta).with_name("thermal-aware");
        let run = platform.run_application(&app, &mut policy, 123)?;
        let ok = scenario.constraints.is_satisfied(&run);
        compliant += usize::from(ok);
        println!(
            "{:>10.2} {:>12.1} {:>10}",
            run.execution_time_s,
            run.peak_temperature_c,
            if ok { "yes" } else { "VIOLATES" }
        );
    }
    println!(
        "\n{compliant}/{} front policies respect the {limit:.0} C limit",
        outcome.front.len()
    );
    Ok(())
}
