//! Complex-objective optimization: trade off performance-per-watt (PPW) against execution
//! time — the objective pair RL and IL cannot be trained for directly (paper §V-E).
//!
//! ```text
//! cargo run --release --example ppw_optimization
//! ```

use parmis::objective::reporting_vector;
use parmis::prelude::*;
use parmis_repro::{example_parmis_config, sized};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = Benchmark::Dijkstra;
    // PPW is maximized; the framework handles the sign internally, the user just lists it.
    let objectives = vec![Objective::ExecutionTime, Objective::PerformancePerWatt];
    println!("optimizing (execution time, PPW) for {}", benchmark);

    let evaluator = SocEvaluator::builder()
        .benchmark(benchmark)
        .objectives(objectives.clone())
        .build()?;
    let outcome = Parmis::new(example_parmis_config(sized(30, 8), 21)).run(&evaluator)?;

    println!(
        "\n{} Pareto-frontier policies (from {} evaluations):",
        outcome.front.len(),
        outcome.history.len()
    );
    println!("{:>18} {:>10}", "execution time [s]", "PPW");
    let mut rows: Vec<Vec<f64>> = outcome
        .front
        .objective_values()
        .iter()
        .map(|v| reporting_vector(&objectives, v))
        .collect();
    rows.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
    for row in &rows {
        println!("{:>18.3} {:>10.3}", row[0], row[1]);
    }

    // The front should expose a genuine trade-off: the fastest policy is not the most
    // efficient one.
    if rows.len() >= 2 {
        let fastest = &rows[0];
        let most_efficient = rows
            .iter()
            .max_by(|a, b| a[1].partial_cmp(&b[1]).unwrap())
            .expect("non-empty");
        println!(
            "\nfastest policy: {:.2} s at {:.3} PPW; most efficient policy: {:.3} PPW at {:.2} s",
            fastest[0], fastest[1], most_efficient[1], most_efficient[0]
        );
    }
    Ok(())
}
