//! Crash-safe job supervision: drive a fleet of PaRMIS searches as fuel-bounded segments
//! under a [`JobSupervisor`] that owns a durable checkpoint directory, then prove two
//! things — the supervised fronts are bit-identical to uninterrupted runs, and the job
//! table survives a process restart (reopening the directory finds every job `Done` and
//! re-running is a no-op with the same digests).
//!
//! ```text
//! cargo run --release --example job_supervisor
//! ```
//!
//! The real crash drills — `SIGKILL` mid-segment, aborts mid-checkpoint-write, bit-flip
//! corruption with quarantine fallback — live in the two-process soak
//! (`cargo run --release -p bench --bin job_soak`), which this example's directory layout
//! and digests mirror.

use parmis::jobs::outcome_digest;
use parmis::prelude::*;
use parmis_repro::{example_parmis_config, sized};

fn specs() -> Vec<JobSpec> {
    (0..3)
        .map(|i| {
            let config = example_parmis_config(sized(16, 8), 41 + 3 * i as u64);
            JobSpec::new(format!("search-{i}"), config)
        })
        .collect()
}

fn evaluator() -> Result<Box<dyn PolicyEvaluator>, ParmisError> {
    let evaluator = SocEvaluator::builder()
        .benchmark(Benchmark::Qsort)
        .objectives(vec![Objective::ExecutionTime, Objective::Energy])
        .build()?;
    Ok(Box::new(evaluator) as Box<dyn PolicyEvaluator>)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = specs();
    let dir = std::env::temp_dir().join("parmis_job_supervisor_example");
    let _ = std::fs::remove_dir_all(&dir); // fresh directory per run
    println!(
        "supervising {} searches in {} (journal.json + <job>.g<seq>.ckpt.json + quarantine/)",
        fleet.len(),
        dir.display()
    );

    // References: each search uninterrupted, no supervisor involved.
    let references: Vec<u64> = fleet
        .iter()
        .map(|spec| {
            let outcome = Parmis::new(spec.config.clone()).run(&*evaluator()?)?;
            Ok::<u64, Box<dyn std::error::Error>>(outcome_digest(&outcome))
        })
        .collect::<Result<_, _>>()?;

    // Supervised: the same searches, chopped into fuel-bounded segments scheduled
    // round-robin over a small worker pool, each segment checkpointed durably.
    let supervisor_config = SupervisorConfig {
        workers: 2,
        segment_fuel: sized(6, 4),
        checkpoint_every: 2,
        ..SupervisorConfig::default()
    };
    let mut supervisor = JobSupervisor::open(&dir, supervisor_config.clone())?;
    let report = supervisor.run(&fleet, |_spec| evaluator())?;
    assert!(report.all_done(), "every job must reach Done");
    for (job, reference) in report.jobs.iter().zip(&references) {
        println!(
            "{}: {:?} after {} segments, {} evaluations, digest {:#018x}",
            job.id,
            job.phase,
            job.segments,
            job.evaluations,
            job.outcome_digest.unwrap_or(0)
        );
        assert!(
            job.segments > 1,
            "fuel budget should force multiple segments"
        );
        assert_eq!(
            job.outcome_digest,
            Some(*reference),
            "supervised outcome diverged from the uninterrupted run"
        );
    }
    println!("bitwise audit passed: supervised fronts identical to uninterrupted runs");

    // Restart: a fresh supervisor over the same directory recovers the journal, finds
    // nothing interrupted, and re-running the fleet is an idempotent no-op — the durable
    // job table, not process memory, is the source of truth.
    let mut reopened = JobSupervisor::open(&dir, supervisor_config)?;
    let recovery = reopened.recovery().clone();
    println!(
        "reopen: {} interrupted, {} quarantined, journal rebuilt: {}",
        recovery.interrupted.len(),
        recovery.quarantined.len(),
        recovery.journal_rebuilt
    );
    let rerun = reopened.run(&fleet, |_spec| evaluator())?;
    for (job, reference) in rerun.jobs.iter().zip(&references) {
        assert_eq!(job.phase, JobPhase::Done);
        assert_eq!(job.outcome_digest, Some(*reference));
        assert!(
            job.outcome.is_none(),
            "no re-execution for an already-Done job"
        );
    }
    println!("restart audit passed: reopened journal reports every job Done, same digests");
    Ok(())
}
