//! Cross-scenario golden regression suite.
//!
//! Every registered scenario runs under all four stock governors for its (short) horizon,
//! and the resulting (execution time, energy, peak temperature) tuples are compared against
//! the committed goldens in `tests/goldens/scenario_matrix.json`. Any change to the
//! simulator's physics, the governors, the workload generators or the platform presets that
//! shifts an observable shows up here as a concrete per-cell diff.
//!
//! Regenerating after an *intentional* model change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test scenario_matrix
//! ```
//!
//! then commit the refreshed JSON together with the change. On mismatch the suite writes
//! the full diff to `target/scenario-matrix-diff.json` (uploaded as a CI artifact) before
//! failing, so triage never requires rerunning locally.

use bench::harness::{run_scenario_matrix, ScenarioCell};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::PathBuf;

/// The snapshot of one (scenario, governor) cell committed to the goldens.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GoldenCell {
    scenario: String,
    governor: String,
    execution_time_s: f64,
    energy_j: f64,
    peak_temperature_c: f64,
}

impl From<&ScenarioCell> for GoldenCell {
    fn from(cell: &ScenarioCell) -> Self {
        GoldenCell {
            scenario: cell.scenario.clone(),
            governor: cell.governor.clone(),
            execution_time_s: cell.execution_time_s,
            energy_j: cell.energy_j,
            peak_temperature_c: cell.peak_temperature_c,
        }
    }
}

/// One observed divergence, written to the diff artifact.
#[derive(Debug, Serialize)]
struct GoldenDiff {
    scenario: String,
    governor: String,
    field: String,
    golden: f64,
    actual: f64,
    relative_error: f64,
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("scenario_matrix.json")
}

fn diff_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("scenario-matrix-diff.json")
}

/// Relative tolerance: results are deterministic, but `exp`/`sin` may differ by an ulp or
/// two across libm builds, so demand agreement to one part in a million rather than bits.
const REL_TOL: f64 = 1e-6;

fn rel_err(golden: f64, actual: f64) -> f64 {
    (actual - golden).abs() / golden.abs().max(1e-12)
}

#[test]
fn scenario_matrix_matches_committed_goldens() {
    let cells = run_scenario_matrix(&soc_sim::scenario::registry())
        .expect("every registered scenario must run under every stock governor");
    let actual: Vec<GoldenCell> = cells.iter().map(GoldenCell::from).collect();
    assert!(
        actual.len() >= 12 * 4,
        "expected >=12 scenarios x 4 governors, got {} cells",
        actual.len()
    );

    if std::env::var("UPDATE_GOLDENS")
        .map(|v| v != "0")
        .unwrap_or(false)
    {
        let json = serde_json::to_string_pretty(&actual).expect("golden cells serialize");
        fs::create_dir_all(golden_path().parent().unwrap()).expect("create goldens dir");
        fs::write(golden_path(), json + "\n").expect("write goldens");
        println!(
            "regenerated {} with {} cells",
            golden_path().display(),
            actual.len()
        );
        return;
    }

    let text = fs::read_to_string(golden_path()).unwrap_or_else(|e| {
        panic!(
            "missing goldens ({e}); run `UPDATE_GOLDENS=1 cargo test --test scenario_matrix` \
             and commit {}",
            golden_path().display()
        )
    });
    let golden: Vec<GoldenCell> = serde_json::from_str(&text).expect("goldens parse");

    let mut diffs: Vec<GoldenDiff> = Vec::new();
    if golden.len() != actual.len() {
        diffs.push(GoldenDiff {
            scenario: "<matrix>".into(),
            governor: "<shape>".into(),
            field: "cell_count".into(),
            golden: golden.len() as f64,
            actual: actual.len() as f64,
            relative_error: f64::INFINITY,
        });
    }
    for (g, a) in golden.iter().zip(&actual) {
        if g.scenario != a.scenario || g.governor != a.governor {
            diffs.push(GoldenDiff {
                scenario: a.scenario.clone(),
                governor: a.governor.clone(),
                field: format!("cell order (golden has {}/{})", g.scenario, g.governor),
                golden: f64::NAN,
                actual: f64::NAN,
                relative_error: f64::INFINITY,
            });
            continue;
        }
        for (field, gv, av) in [
            ("execution_time_s", g.execution_time_s, a.execution_time_s),
            ("energy_j", g.energy_j, a.energy_j),
            (
                "peak_temperature_c",
                g.peak_temperature_c,
                a.peak_temperature_c,
            ),
        ] {
            let relative_error = rel_err(gv, av);
            if relative_error > REL_TOL {
                diffs.push(GoldenDiff {
                    scenario: g.scenario.clone(),
                    governor: g.governor.clone(),
                    field: field.to_string(),
                    golden: gv,
                    actual: av,
                    relative_error,
                });
            }
        }
    }

    if !diffs.is_empty() {
        // NaN placeholders cannot be serialized by the vendored serde_json; strip them to 0.
        for d in diffs.iter_mut() {
            if d.golden.is_nan() {
                d.golden = 0.0;
                d.actual = 0.0;
            }
            if d.relative_error.is_infinite() {
                d.relative_error = f64::MAX;
            }
        }
        if let Ok(json) = serde_json::to_string_pretty(&diffs) {
            let _ = fs::create_dir_all(diff_path().parent().unwrap());
            let _ = fs::write(diff_path(), json);
        }
        panic!(
            "{} scenario-matrix cell(s) diverged from the goldens (full diff at {}); first: \
             {} under {} field {} golden {} actual {}. If the change is intentional, \
             regenerate with UPDATE_GOLDENS=1.",
            diffs.len(),
            diff_path().display(),
            diffs[0].scenario,
            diffs[0].governor,
            diffs[0].field,
            diffs[0].golden,
            diffs[0].actual,
        );
    }
}

#[test]
fn goldens_cover_every_registered_scenario() {
    if !golden_path().exists() {
        // First generation happens via UPDATE_GOLDENS in the test above.
        return;
    }
    let text = fs::read_to_string(golden_path()).expect("read goldens");
    let golden: Vec<GoldenCell> = serde_json::from_str(&text).expect("goldens parse");
    for scenario in soc_sim::scenario::names() {
        let rows = golden.iter().filter(|c| c.scenario == scenario).count();
        assert_eq!(
            rows, 4,
            "scenario {scenario} must have one golden cell per stock governor \
             (regenerate with UPDATE_GOLDENS=1)"
        );
    }
}
