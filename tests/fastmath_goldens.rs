//! Fast-tier golden regression suite.
//!
//! [`Precision::Fast`] promises *bounded* error against the seed-exact tier, not
//! bit-identity — but it is still fully deterministic, so its outputs are pinned by their
//! own committed goldens, exactly like the seed-exact scenario matrix:
//!
//! * `tests/goldens/fastmath_sim.json` — every registry scenario run under every stock
//!   governor with the scenario pinned to `Precision::Fast` (the batched Box–Muller
//!   noise path).
//! * `tests/goldens/fastmath_acq.json` — fast-tier RFF posterior-sample evaluations
//!   (the fused-cosine acquisition path) on a fixed fitted GP over a fixed query grid.
//!
//! Regenerating after an *intentional* kernel change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test fastmath_goldens
//! ```
//!
//! then commit the refreshed JSON together with the change. On mismatch the suite writes
//! the full diff to `target/fastmath-goldens-diff.json` (uploaded as a CI artifact)
//! before failing, so triage never requires rerunning locally.

use bench::harness::run_scenario_matrix;
use fastmath::Precision;
use gp::kernel::Kernel;
use gp::{GaussianProcess, RffSampler};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::PathBuf;

/// Relative tolerance for golden comparison. Fast-tier kernels are our own polynomial
/// code (bit-stable across hosts), but the surrounding pipeline (GP factorization,
/// lognormal parameters) still goes through libm, which may differ by an ulp or two
/// across builds — so demand one part in a million, same as the scenario matrix.
const REL_TOL: f64 = 1e-6;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
}

fn diff_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("fastmath-goldens-diff.json")
}

fn update_goldens() -> bool {
    std::env::var("UPDATE_GOLDENS")
        .map(|v| v != "0")
        .unwrap_or(false)
}

fn rel_err(golden: f64, actual: f64) -> f64 {
    (actual - golden).abs() / golden.abs().max(1e-12)
}

/// One named scalar pinned by a golden file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GoldenValue {
    key: String,
    value: f64,
}

/// One observed divergence, written to the diff artifact.
#[derive(Debug, Serialize)]
struct GoldenDiff {
    suite: String,
    key: String,
    golden: f64,
    actual: f64,
    relative_error: f64,
}

/// Compares `actual` against the committed goldens at `tests/goldens/<file>` (or rewrites
/// them under `UPDATE_GOLDENS=1`), writing the diff artifact and panicking on mismatch.
fn check_against_goldens(suite: &str, file: &str, actual: &[GoldenValue]) {
    let path = goldens_dir().join(file);
    if update_goldens() {
        let json = serde_json::to_string_pretty(&actual.to_vec()).expect("goldens serialize");
        fs::create_dir_all(path.parent().unwrap()).expect("create goldens dir");
        fs::write(&path, json + "\n").expect("write goldens");
        println!(
            "regenerated {} with {} values",
            path.display(),
            actual.len()
        );
        return;
    }

    let text = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing goldens ({e}); run `UPDATE_GOLDENS=1 cargo test --test fastmath_goldens` \
             and commit {}",
            path.display()
        )
    });
    let golden: Vec<GoldenValue> = serde_json::from_str(&text).expect("goldens parse");

    let mut diffs: Vec<GoldenDiff> = Vec::new();
    if golden.len() != actual.len() {
        diffs.push(GoldenDiff {
            suite: suite.to_string(),
            key: "<value count>".into(),
            golden: golden.len() as f64,
            actual: actual.len() as f64,
            relative_error: f64::MAX,
        });
    }
    for (g, a) in golden.iter().zip(actual) {
        if g.key != a.key {
            diffs.push(GoldenDiff {
                suite: suite.to_string(),
                key: format!("key order: golden {} vs actual {}", g.key, a.key),
                golden: 0.0,
                actual: 0.0,
                relative_error: f64::MAX,
            });
            continue;
        }
        let relative_error = rel_err(g.value, a.value);
        if relative_error > REL_TOL {
            diffs.push(GoldenDiff {
                suite: suite.to_string(),
                key: g.key.clone(),
                golden: g.value,
                actual: a.value,
                relative_error,
            });
        }
    }

    if !diffs.is_empty() {
        if let Ok(json) = serde_json::to_string_pretty(&diffs) {
            let _ = fs::create_dir_all(diff_path().parent().unwrap());
            let _ = fs::write(diff_path(), json);
        }
        panic!(
            "{} fast-tier golden value(s) diverged in suite {suite} (full diff at {}); \
             first: {} golden {} actual {}. If the kernel change is intentional, \
             regenerate with UPDATE_GOLDENS=1.",
            diffs.len(),
            diff_path().display(),
            diffs[0].key,
            diffs[0].golden,
            diffs[0].actual,
        );
    }
}

/// The registry with every scenario pinned to the fast precision tier.
fn fast_registry() -> Vec<soc_sim::scenario::Scenario> {
    soc_sim::scenario::registry()
        .into_iter()
        .map(|mut s| {
            s.precision = Some(Precision::Fast);
            s
        })
        .collect()
}

#[test]
fn fast_tier_sim_matrix_matches_committed_goldens() {
    let cells = run_scenario_matrix(&fast_registry())
        .expect("every registered scenario must run under every stock governor");
    assert!(cells.len() >= 12 * 4, "expected >=12x4 cells");
    let mut values = Vec::new();
    for c in &cells {
        let base = format!("{}/{}", c.scenario, c.governor);
        values.push(GoldenValue {
            key: format!("{base}/execution_time_s"),
            value: c.execution_time_s,
        });
        values.push(GoldenValue {
            key: format!("{base}/energy_j"),
            value: c.energy_j,
        });
        values.push(GoldenValue {
            key: format!("{base}/peak_temperature_c"),
            value: c.peak_temperature_c,
        });
    }
    check_against_goldens("sim", "fastmath_sim.json", &values);
}

/// A small deterministic GP the acquisition goldens are pinned against.
fn golden_gp() -> GaussianProcess {
    let xs: Vec<Vec<f64>> = (0..12)
        .map(|i| vec![i as f64 * 0.4 - 2.0, (i as f64 * 0.7).sin()])
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0].sin() + 0.5 * x[1]).collect();
    GaussianProcess::fit(xs, ys, Kernel::matern52(1.0, 1.2), 1e-5).expect("golden GP fits")
}

#[test]
fn fast_tier_acq_samples_match_committed_goldens() {
    let gp = golden_gp();
    let sampler = RffSampler::new(&gp, 96, 7)
        .expect("sampler builds")
        .with_precision(Precision::Fast);
    let mut values = Vec::new();
    for seed in [0u64, 3, 11] {
        let f = sampler.sample(seed).expect("posterior sample draws");
        // Exercise both the per-point and the fused batched fast paths; they are
        // bit-identical by contract, so pin the batched one and assert the invariant.
        let queries: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![-2.0 + 0.5 * i as f64, 1.0 - 0.25 * i as f64])
            .collect();
        let flat: Vec<f64> = queries.iter().flatten().copied().collect();
        let mut batched = vec![0.0; queries.len()];
        f.eval_batch_into(&flat, &mut batched);
        for (i, (q, v)) in queries.iter().zip(&batched).enumerate() {
            assert_eq!(f.eval(q), *v, "fast eval/eval_batch_into diverged");
            values.push(GoldenValue {
                key: format!("seed{seed}/q{i}"),
                value: *v,
            });
        }
    }
    check_against_goldens("acq", "fastmath_acq.json", &values);
}
