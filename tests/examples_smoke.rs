//! Smoke test for every `examples/` binary: each one is built and run with `PARMIS_QUICK=1`
//! (which every example honours by shrinking its iteration budgets), so examples can no
//! longer silently rot while the library moves on. The list below is cross-checked against
//! the `examples/` directory, so adding an example without wiring it in here fails too.

use std::path::Path;
use std::process::Command;

const EXAMPLES: [&str; 9] = [
    "quickstart",
    "governor_comparison",
    "energy_performance_tradeoff",
    "ppw_optimization",
    "global_policy",
    "thermal_aware_optimization",
    "resumable_search",
    "job_supervisor",
    "graceful_shutdown",
];

#[test]
fn example_list_is_complete() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples directory exists")
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = EXAMPLES.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        on_disk,
        listed,
        "examples/ and the smoke-test list diverged; update EXAMPLES in {}",
        file!()
    );
}

#[test]
fn every_example_runs_under_quick_budgets() {
    // `cargo test` sets CARGO to the toolchain binary driving this build; running the
    // examples through it reuses the already-built debug artifacts.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    for name in EXAMPLES {
        let output = Command::new(&cargo)
            .args(["run", "--quiet", "--example", name])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .env("PARMIS_QUICK", "1")
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status.code(),
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example {name} produced no output"
        );
    }
}
