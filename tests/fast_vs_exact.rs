//! End-to-end fast-vs-exact agreement suite.
//!
//! The fast precision tier ([`Precision::Fast`]) replaces the RFF cosines and the
//! lognormal measurement-noise pipeline with the `fastmath` kernels. Those kernels carry
//! per-call error contracts (see `crates/fastmath`), and this suite pins the *end-to-end*
//! consequence on every registered scenario:
//!
//! * fixed policies produce the same objective vectors under both tiers to within
//!   [`OBJECTIVE_REL_TOL`] (the per-draw noise factors track the exact stream to a few
//!   ULPs, so whole-run aggregates agree to ~1e-12), and
//! * full (small-budget) PaRMIS searches produce Pareto fronts whose hypervolume under a
//!   shared reference point agrees to within [`PHV_REL_TOL`].
//!
//! Both runs are deterministic, so a failure here is a kernel or threading regression,
//! never flake.

use fastmath::Precision;
use moo::hypervolume::hypervolume;
use parmis::evaluation::{PolicyEvaluator, SocEvaluator};
use parmis::framework::{Parmis, ParmisConfig};
use parmis::objective::Objective;
use parmis_repro::example_parmis_config;
use soc_sim::scenario::Scenario;

/// Relative tolerance on fixed-θ objective vectors between the tiers. Observed
/// divergence is ~1e-16 (the fast noise factors track the exact stream to 1–2 ULPs and
/// mostly cancel in the run aggregates); 1e-9 leaves six orders of margin while still
/// catching any real kernel regression.
const OBJECTIVE_REL_TOL: f64 = 1e-9;

/// Relative tolerance on the Pareto-front hypervolume between the tiers. The search
/// trajectory is *not* guaranteed identical — a near-tie in an acquisition argmax may
/// resolve differently under ~1e-12 score perturbations — so this is a front-level
/// agreement bound, not a trajectory bound.
const PHV_REL_TOL: f64 = 1e-3;

fn evaluator_for(scenario: &Scenario, precision: Precision) -> SocEvaluator {
    SocEvaluator::builder()
        .scenario(scenario)
        .objectives(Objective::TIME_ENERGY.to_vec())
        .precision(precision)
        .build()
        .expect("scenario evaluator builds")
}

/// A deterministic fan of policy vectors spanning the search box.
fn probe_thetas(dim: usize, bound: f64) -> Vec<Vec<f64>> {
    (0..5)
        .map(|k| {
            (0..dim)
                .map(|j| {
                    let t = ((k * dim + j) as f64 * 0.73).sin();
                    t * bound * 0.9
                })
                .collect()
        })
        .collect()
}

#[test]
fn fixed_policy_objectives_agree_between_tiers_on_every_scenario() {
    for scenario in soc_sim::scenario::registry() {
        let exact = evaluator_for(&scenario, Precision::SeedExact);
        let fast = evaluator_for(&scenario, Precision::Fast);
        let mut stats = tolerance::ErrorStats::new("fast-vs-exact objectives");
        for theta in probe_thetas(exact.parameter_dim(), exact.parameter_bound()) {
            let oe = exact.evaluate(&theta).expect("exact tier evaluates");
            let of = fast.evaluate(&theta).expect("fast tier evaluates");
            assert_eq!(oe.len(), of.len());
            for (i, (e, f)) in oe.iter().zip(&of).enumerate() {
                let rel = tolerance::rel_diff(*e, *f);
                assert!(
                    rel <= OBJECTIVE_REL_TOL,
                    "{}: objective {i} diverged between tiers: exact {e} fast {f} (rel {rel:e})",
                    scenario.name,
                );
                stats.record(i as f64, *f, *e);
            }
        }
        assert!(stats.count() > 0);
    }
}

fn tiny_search_config(precision: Precision) -> ParmisConfig {
    let mut cfg = ParmisConfig {
        precision,
        // Hyperparameters are fitted once for the whole (short) run: the grid search is
        // the dominant cost here and is tier-independent anyway.
        refit_hyperparameters_every: 50,
        ..example_parmis_config(10, 41)
    };
    cfg.sampling.rff_features = 40;
    cfg.sampling.nsga_population = 12;
    cfg.sampling.nsga_generations = 6;
    cfg.acquisition.random_candidates = 24;
    cfg.acquisition.local_candidates = 8;
    cfg
}

#[test]
fn pareto_fronts_agree_between_tiers_on_every_scenario() {
    for scenario in soc_sim::scenario::registry() {
        let run = |precision: Precision| {
            let evaluator = evaluator_for(&scenario, precision);
            Parmis::new(tiny_search_config(precision))
                .run(&evaluator)
                .expect("search succeeds")
        };
        let exact = run(Precision::SeedExact);
        let fast = run(Precision::Fast);

        // Hypervolume under a shared reference point dominating both fronts.
        let exact_points = exact.front.objective_values();
        let fast_points = fast.front.objective_values();
        let mut reference = exact.reference_point.clone();
        for p in exact_points.iter().chain(fast_points.iter()) {
            for (r, v) in reference.iter_mut().zip(p.iter()) {
                *r = r.max(v * 1.1 + 1.0);
            }
        }
        let hv_exact = hypervolume(exact_points, &reference);
        let hv_fast = hypervolume(fast_points, &reference);
        let rel = tolerance::rel_diff(hv_exact, hv_fast);
        assert!(
            rel <= PHV_REL_TOL,
            "{}: front hypervolume diverged between tiers: exact {hv_exact} fast {hv_fast} \
             (rel {rel:e}, exact front {} points, fast front {} points)",
            scenario.name,
            exact.front.len(),
            fast.front.len(),
        );
    }
}
