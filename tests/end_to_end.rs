//! Cross-crate integration tests: the full PaRMIS pipeline (simulator → policies → GP models →
//! information-gain search → Pareto front) plus the baselines, exercised end to end on small
//! budgets.

use baselines::sweep::{governor_results, il_front, rl_front};
use moo::dominance::dominates;
use moo::hypervolume::{common_reference_point, hypervolume};
use parmis::evaluation::{GlobalEvaluator, PolicyEvaluator, SocEvaluator};
use parmis::framework::Parmis;
use parmis::objective::Objective;
use parmis_repro::{example_parmis_config, example_sweep_config};
use soc_sim::apps::Benchmark;
use soc_sim::platform::Platform;

#[test]
fn parmis_end_to_end_improves_over_random_and_respects_invariants() {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Fft, Objective::TIME_ENERGY.to_vec());
    let outcome = Parmis::new(example_parmis_config(16, 3))
        .run(&evaluator)
        .expect("PaRMIS run succeeds");

    assert_eq!(outcome.history.len(), 16);
    assert!(!outcome.front.is_empty());
    // PHV trajectory is monotone non-decreasing.
    for pair in outcome.phv_history.windows(2) {
        assert!(pair[1] + 1e-12 >= pair[0]);
    }
    // The front entries are mutually non-dominated and correspond to real evaluations.
    let values = outcome.front.objective_values();
    for (i, a) in values.iter().enumerate() {
        for (j, b) in values.iter().enumerate() {
            if i != j {
                assert!(!dominates(a, b));
            }
        }
    }
    // Every front tag decodes into a policy of the right dimensionality.
    for theta in outcome.front.tags() {
        assert_eq!(theta.len(), evaluator.parameter_dim());
    }
}

#[test]
fn parmis_front_policies_beat_fixed_governor_extremes_somewhere() {
    // The learned front should contain at least one policy that is strictly better than the
    // powersave governor in time and at least one that is strictly better than the
    // performance governor in energy — i.e. it genuinely spans the trade-off space.
    let benchmark = Benchmark::Qsort;
    let evaluator = SocEvaluator::for_benchmark(benchmark, Objective::TIME_ENERGY.to_vec());
    let outcome = Parmis::new(example_parmis_config(20, 5))
        .run(&evaluator)
        .expect("PaRMIS run succeeds");

    let governors = governor_results(benchmark, &Objective::TIME_ENERGY);
    let powersave = &governors.iter().find(|(n, _)| n == "powersave").unwrap().1;
    let performance = &governors
        .iter()
        .find(|(n, _)| n == "performance")
        .unwrap()
        .1;

    let front = outcome.front.objective_values();
    assert!(
        front.iter().any(|p| p[0] < powersave[0]),
        "some learned policy should be faster than powersave"
    );
    assert!(
        front.iter().any(|p| p[1] < performance[1]),
        "some learned policy should use less energy than the performance governor"
    );
}

#[test]
fn baselines_and_parmis_are_comparable_under_a_common_reference() {
    let benchmark = Benchmark::Blowfish;
    let objectives = Objective::TIME_ENERGY.to_vec();

    let evaluator = SocEvaluator::for_benchmark(benchmark, objectives.clone());
    let parmis_outcome = Parmis::new(example_parmis_config(18, 9))
        .run(&evaluator)
        .expect("PaRMIS run succeeds");
    let sweep = example_sweep_config(7);
    let rl = rl_front(benchmark, &objectives, &sweep);
    let il = il_front(benchmark, &objectives, &sweep);

    let parmis_points = parmis_outcome.front.objective_values();
    let rl_points = rl.objective_values();
    let il_points = il.objective_values();
    let reference = common_reference_point(&[&parmis_points, &rl_points, &il_points], 0.05);

    let phv_parmis = hypervolume(parmis_points, &reference);
    let phv_rl = hypervolume(rl_points, &reference);
    let phv_il = hypervolume(il_points, &reference);
    // All methods produce valid, positive hypervolumes against the shared reference.
    assert!(phv_parmis > 0.0);
    assert!(phv_rl > 0.0);
    assert!(phv_il > 0.0);
    // With even this tiny budget PaRMIS should not be drastically worse than the baselines.
    assert!(
        phv_parmis > 0.5 * phv_rl.max(phv_il),
        "parmis {phv_parmis} vs rl {phv_rl} / il {phv_il}"
    );
}

#[test]
fn global_policies_transfer_to_individual_applications() {
    let benchmarks = [Benchmark::Sha, Benchmark::Dijkstra];
    let objectives = Objective::TIME_ENERGY.to_vec();
    let global = GlobalEvaluator::for_benchmarks(&benchmarks, objectives);
    let outcome = Parmis::new(example_parmis_config(14, 13))
        .run(&global)
        .expect("global PaRMIS run succeeds");

    for benchmark in benchmarks {
        for theta in outcome.front.tags() {
            let value = global
                .evaluate_on(theta, benchmark)
                .expect("per-application evaluation succeeds");
            assert_eq!(value.len(), 2);
            assert!(value.iter().all(|v| v.is_finite() && *v > 0.0));
        }
    }
}

#[test]
fn ppw_objective_pipeline_produces_positive_reported_ppw() {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Basicmath, Objective::TIME_PPW.to_vec());
    let outcome = Parmis::new(example_parmis_config(12, 17))
        .run(&evaluator)
        .expect("PaRMIS run succeeds");
    for reported in outcome.reporting_front() {
        assert!(reported[0] > 0.0, "execution time is positive");
        assert!(reported[1] > 0.0, "reported PPW is positive");
    }
}

#[test]
fn selected_pareto_policy_is_reproducible_on_the_platform() {
    // Selecting a policy from the front and re-running it on the platform should reproduce
    // its archived objective values up to measurement noise.
    let benchmark = Benchmark::Kmeans;
    let evaluator = SocEvaluator::for_benchmark(benchmark, Objective::TIME_ENERGY.to_vec());
    let outcome = Parmis::new(example_parmis_config(14, 19))
        .run(&evaluator)
        .expect("PaRMIS run succeeds");
    let entry = outcome
        .front
        .select_by(|o| 0.5 * o[0] + 0.5 * o[1])
        .expect("front is non-empty");

    let mut policy = evaluator.policy_for(&entry.tag);
    let platform = Platform::odroid_xu3();
    let run = platform
        .run_application(&benchmark.application(), &mut policy, 17)
        .expect("selected policy runs");
    let rel_err = (run.execution_time_s - entry.objectives[0]).abs() / entry.objectives[0];
    assert!(
        rel_err < 0.1,
        "re-run execution time {} should match archived {} within noise",
        run.execution_time_s,
        entry.objectives[0]
    );
}
