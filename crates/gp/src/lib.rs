//! Gaussian-process regression substrate for the PaRMIS reproduction.
//!
//! PaRMIS models each design objective (execution time, energy, PPW, …) with an independent
//! Gaussian process over the DRM-policy parameter space θ (paper §IV-A). This crate provides
//! everything those statistical models need:
//!
//! * [`kernel`] — stationary covariance functions (squared-exponential / RBF and Matérn-5/2)
//!   with automatic-relevance-determination lengthscales.
//! * [`GaussianProcess`] — exact GP regression with Cholesky-based posterior mean/variance,
//!   log marginal likelihood, and incremental refitting as new policy evaluations arrive.
//! * [`hyperopt`] — marginal-likelihood hyperparameter selection via multi-start
//!   coordinate search (no gradients needed at the scale PaRMIS operates at).
//! * [`rff`] — random Fourier feature approximation used to draw *functions* from the GP
//!   posterior (Rahimi & Recht, 2008), the first step of the paper's Pareto-front sampling.
//!
//! # Examples
//!
//! ```
//! use gp::{GaussianProcess, kernel::Kernel};
//!
//! # fn main() -> Result<(), gp::GpError> {
//! let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
//! let ys = vec![0.0, 1.0, 0.0, -1.0];
//! let kernel = Kernel::rbf(1.0, 1.0);
//! let gp = GaussianProcess::fit(xs, ys, kernel, 1e-6)?;
//! let (mean, var) = gp.predict(&[1.5])?;
//! assert!(var >= 0.0);
//! assert!(mean.abs() < 2.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gaussian_process;
pub mod hyperopt;
pub mod kernel;
pub mod rff;
pub mod stats;

pub use error::GpError;
pub use gaussian_process::GaussianProcess;
pub use rff::{PosteriorSample, RffSampler, WeightScratch};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, GpError>;
