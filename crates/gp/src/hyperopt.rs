//! Marginal-likelihood hyperparameter selection.
//!
//! PaRMIS refits its GP models every iteration from at most a few hundred points, so a simple
//! but robust multi-start grid/coordinate search over (lengthscale, signal variance, noise) is
//! entirely adequate — and considerably harder to get wrong than a hand-rolled gradient
//! optimizer. The search maximizes the exact log marginal likelihood.

use crate::kernel::{Kernel, KernelFamily};
use crate::{GaussianProcess, GpError, Result};
use linalg::{vector, Cholesky, Matrix};

/// Configuration of the hyperparameter search.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperoptConfig {
    /// Kernel family to fit.
    pub family: KernelFamily,
    /// Candidate isotropic lengthscales (geometric grid recommended).
    pub lengthscales: Vec<f64>,
    /// Candidate signal variances.
    pub signal_variances: Vec<f64>,
    /// Candidate observation-noise variances.
    pub noise_variances: Vec<f64>,
    /// Number of coordinate-descent refinement passes after the grid search.
    pub refinement_passes: usize,
}

impl Default for HyperoptConfig {
    fn default() -> Self {
        HyperoptConfig {
            family: KernelFamily::Matern52,
            lengthscales: vec![0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0],
            signal_variances: vec![0.25, 1.0, 4.0],
            noise_variances: vec![1e-6, 1e-4, 1e-2],
            refinement_passes: 1,
        }
    }
}

/// Result of a hyperparameter search: the selected model and its score.
#[derive(Debug, Clone)]
pub struct FittedModel {
    /// GP refitted with the best hyperparameters found.
    pub model: GaussianProcess,
    /// Log marginal likelihood of the selected model.
    pub log_marginal_likelihood: f64,
}

/// Fits a GP with hyperparameters chosen by maximizing the log marginal likelihood over the
/// grid in `config`, followed by local coordinate refinement (multiplicative 0.5×/2× probes).
///
/// # Errors
///
/// Returns [`GpError::InvalidData`] if the training data is invalid or the configuration grid
/// is empty, and propagates fitting failures for the *best* configuration (individual grid
/// candidates that fail to factorize are skipped).
///
/// # Examples
///
/// ```
/// use gp::hyperopt::{fit_with_hyperopt, HyperoptConfig};
///
/// # fn main() -> Result<(), gp::GpError> {
/// let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 * 0.3]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (1.5 * x[0]).sin()).collect();
/// let fitted = fit_with_hyperopt(xs, ys, &HyperoptConfig::default())?;
/// assert!(fitted.log_marginal_likelihood.is_finite());
/// # Ok(())
/// # }
/// ```
pub fn fit_with_hyperopt(
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    config: &HyperoptConfig,
) -> Result<FittedModel> {
    if config.lengthscales.is_empty()
        || config.signal_variances.is_empty()
        || config.noise_variances.is_empty()
    {
        return Err(GpError::InvalidData {
            reason: "hyperparameter grid must not be empty".into(),
        });
    }
    validate_training_data(&xs, &ys)?;

    let mut ctx = ScoreContext::new(&xs, &ys, config.family);
    let mut best: Option<(f64, f64, f64, f64)> = None; // (lml, ls, sv, nv)
    for &ls in &config.lengthscales {
        for &sv in &config.signal_variances {
            for &nv in &config.noise_variances {
                if let Some(lml) = ctx.score(ls, sv, nv) {
                    if best.map_or(true, |(b, ..)| lml > b) {
                        best = Some((lml, ls, sv, nv));
                    }
                }
            }
        }
    }
    let (mut best_lml, mut ls, mut sv, mut nv) = best.ok_or_else(|| GpError::InvalidData {
        reason: "no hyperparameter configuration produced a valid model".into(),
    })?;

    // Local multiplicative coordinate refinement around the grid optimum.
    for _ in 0..config.refinement_passes {
        for factor in [0.5, 2.0] {
            if let Some(lml) = ctx.score(ls * factor, sv, nv) {
                if lml > best_lml {
                    best_lml = lml;
                    ls *= factor;
                }
            }
            if let Some(lml) = ctx.score(ls, sv * factor, nv) {
                if lml > best_lml {
                    best_lml = lml;
                    sv *= factor;
                }
            }
            if let Some(lml) = ctx.score(ls, sv, nv * factor) {
                if lml > best_lml {
                    best_lml = lml;
                    nv *= factor;
                }
            }
        }
    }

    let kernel = Kernel::isotropic(config.family, sv, ls)?;
    let model = GaussianProcess::fit(xs, ys, kernel, nv)?;
    let log_marginal_likelihood = model.log_marginal_likelihood();
    Ok(FittedModel {
        model,
        log_marginal_likelihood,
    })
}

/// Mirrors the input validation of [`GaussianProcess::fit`] so invalid data is rejected
/// before any Gram matrix is built (the scoring path below bypasses `fit`).
fn validate_training_data(xs: &[Vec<f64>], ys: &[f64]) -> Result<()> {
    if xs.is_empty() {
        return Err(GpError::InvalidData {
            reason: "no training points".into(),
        });
    }
    if xs.len() != ys.len() {
        return Err(GpError::InvalidData {
            reason: format!("{} inputs but {} targets", xs.len(), ys.len()),
        });
    }
    let dim = xs[0].len();
    if dim == 0 || xs.iter().any(|x| x.len() != dim) {
        return Err(GpError::InvalidData {
            reason: "inputs must share one positive dimension".into(),
        });
    }
    if ys.iter().any(|y| !y.is_finite()) {
        return Err(GpError::InvalidData {
            reason: "targets must be finite".into(),
        });
    }
    Ok(())
}

/// Shared state of the grid/refinement scoring loop.
///
/// The expensive part of scoring one grid cell is the `O(n² d)` Gram matrix build — but the
/// Gram matrix of a stationary kernel factors as `σ² G(ℓ)` where `G` depends only on the
/// lengthscale. The context therefore caches the unit-signal-variance Gram per lengthscale
/// and rescales it across the whole (signal variance, noise variance) grid, reducing the
/// grid's Gram builds from `|ℓ|·|σ²|·|σ_n²|` to `|ℓ|`. It also centres the targets once and
/// reuses one solve buffer, where the seed cloned `xs`/`ys` and re-centred per cell.
struct ScoreContext<'a> {
    xs: &'a [Vec<f64>],
    centred: Vec<f64>,
    norm_term: f64,
    family: KernelFamily,
    /// Up to two `(lengthscale, unit-signal-variance Gram)` entries, most recent first. Two
    /// slots (not one) so the coordinate-refinement probes, which alternate between ℓ and
    /// ℓ·factor within a pass, never thrash the cache.
    unit_grams: Vec<(f64, Matrix)>,
    alpha: Vec<f64>,
}

impl<'a> ScoreContext<'a> {
    fn new(xs: &'a [Vec<f64>], ys: &[f64], family: KernelFamily) -> Self {
        let y_mean = vector::mean(ys);
        let centred: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
        let norm_term = -0.5 * ys.len() as f64 * (2.0 * std::f64::consts::PI).ln();
        ScoreContext {
            xs,
            centred,
            norm_term,
            family,
            unit_grams: Vec::with_capacity(2),
            alpha: Vec::new(),
        }
    }

    /// Scores one hyperparameter configuration by exact log marginal likelihood, returning
    /// `None` if the configuration is invalid or fails to factorize.
    fn score(
        &mut self,
        lengthscale: f64,
        signal_variance: f64,
        noise_variance: f64,
    ) -> Option<f64> {
        if !(signal_variance.is_finite() && signal_variance > 0.0) {
            return None;
        }
        if !(noise_variance.is_finite() && noise_variance >= 0.0) {
            return None;
        }
        if let Some(pos) = self
            .unit_grams
            .iter()
            .position(|(ls, _)| *ls == lengthscale)
        {
            self.unit_grams.swap(0, pos);
        } else {
            let kernel = Kernel::isotropic(self.family, 1.0, lengthscale).ok()?;
            self.unit_grams
                .insert(0, (lengthscale, kernel.gram(self.xs)));
            self.unit_grams.truncate(2);
        }
        let (_, unit) = &self.unit_grams[0];
        let mut k = unit.scale(signal_variance);
        k.add_diagonal(noise_variance.max(1e-10));
        let chol = Cholesky::new_with_jitter(&k, 1e-8, 8).ok()?;
        chol.solve_vec_into(&self.centred, &mut self.alpha).ok()?;
        let lml = -0.5 * vector::dot(&self.centred, &self.alpha) - 0.5 * chol.log_determinant()
            + self.norm_term;
        lml.is_finite().then_some(lml)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * 0.25]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() * 2.0 + 1.0).collect();
        (xs, ys)
    }

    #[test]
    fn finds_model_that_beats_a_bad_default() {
        let (xs, ys) = smooth_data(16);
        let fitted = fit_with_hyperopt(xs.clone(), ys.clone(), &HyperoptConfig::default()).unwrap();
        let bad = GaussianProcess::fit(xs, ys, Kernel::rbf(0.01, 0.01), 1e-2).unwrap();
        assert!(fitted.log_marginal_likelihood > bad.log_marginal_likelihood());
    }

    #[test]
    fn selected_model_predicts_well() {
        let (xs, ys) = smooth_data(20);
        let fitted = fit_with_hyperopt(xs, ys, &HyperoptConfig::default()).unwrap();
        let (mean, _) = fitted.model.predict(&[1.1]).unwrap();
        let truth = (1.1f64).sin() * 2.0 + 1.0;
        assert!((mean - truth).abs() < 0.2, "mean {mean} vs truth {truth}");
    }

    #[test]
    fn empty_grid_is_rejected() {
        let (xs, ys) = smooth_data(5);
        let config = HyperoptConfig {
            lengthscales: vec![],
            ..Default::default()
        };
        assert!(fit_with_hyperopt(xs, ys, &config).is_err());
    }

    #[test]
    fn invalid_data_is_rejected() {
        let config = HyperoptConfig::default();
        assert!(fit_with_hyperopt(vec![], vec![], &config).is_err());
    }

    #[test]
    fn refinement_never_hurts() {
        let (xs, ys) = smooth_data(14);
        let no_refine = HyperoptConfig {
            refinement_passes: 0,
            ..Default::default()
        };
        let refine = HyperoptConfig {
            refinement_passes: 3,
            ..Default::default()
        };
        let base = fit_with_hyperopt(xs.clone(), ys.clone(), &no_refine).unwrap();
        let refined = fit_with_hyperopt(xs, ys, &refine).unwrap();
        // Refinement may only improve the LML, up to accumulated round-off.
        if refined.log_marginal_likelihood < base.log_marginal_likelihood {
            tolerance::assert_close_abs(
                refined.log_marginal_likelihood,
                base.log_marginal_likelihood,
                1e-9,
                "refinement regressed the log marginal likelihood",
            );
        }
    }

    #[test]
    fn cached_gram_scoring_matches_a_direct_fit() {
        // The rescaled-Gram fast path must agree with building the model outright, including
        // when consecutive cells share a lengthscale and hit the cache.
        let (xs, ys) = smooth_data(12);
        let mut ctx = ScoreContext::new(&xs, &ys, KernelFamily::Matern52);
        for (ls, sv, nv) in [
            (0.5, 1.0, 1e-4),
            (0.5, 2.0, 1e-2), // cache hit on the unit Gram
            (1.5, 0.25, 1e-6),
        ] {
            let scored = ctx.score(ls, sv, nv).unwrap();
            let kernel = Kernel::isotropic(KernelFamily::Matern52, sv, ls).unwrap();
            let direct = GaussianProcess::fit(xs.clone(), ys.clone(), kernel, nv)
                .unwrap()
                .log_marginal_likelihood();
            tolerance::assert_close_abs(
                scored,
                direct,
                1e-9,
                &format!("cached-Gram score vs direct fit at ({ls}, {sv}, {nv})"),
            );
        }
        // Invalid cells are skipped, not fatal.
        assert!(ctx.score(1.0, -1.0, 1e-4).is_none());
        assert!(ctx.score(1.0, 1.0, f64::NAN).is_none());
        assert!(ctx.score(-1.0, 1.0, 1e-4).is_none());
    }

    #[test]
    fn rbf_family_is_supported() {
        let (xs, ys) = smooth_data(10);
        let config = HyperoptConfig {
            family: KernelFamily::SquaredExponential,
            ..Default::default()
        };
        let fitted = fit_with_hyperopt(xs, ys, &config).unwrap();
        assert_eq!(
            fitted.model.kernel().family(),
            KernelFamily::SquaredExponential
        );
    }
}
