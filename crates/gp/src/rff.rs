//! Random Fourier feature (RFF) approximation and posterior function sampling.
//!
//! PaRMIS needs to draw *entire functions* from each objective's GP posterior so that a cheap
//! multi-objective solver (NSGA-II) can optimize the sampled functions and produce a sampled
//! Pareto front O*_s (paper §IV-B, step 1, citing Rahimi & Recht 2008). The standard recipe:
//!
//! 1. Approximate the stationary kernel with `M` random features
//!    `φ(x) = √(2σ²/M) · cos(Wx + b)` where the rows of `W` are drawn from the kernel's
//!    spectral density and `b ~ U[0, 2π)`.
//! 2. The GP becomes Bayesian linear regression over `φ`; its weight posterior is Gaussian
//!    with mean `A⁻¹Φᵀy` and covariance `σ_n²A⁻¹` where `A = ΦᵀΦ + σ_n²I`.
//! 3. A single weight draw `w` yields a deterministic, cheap-to-evaluate sample function
//!    `f̃(x) = φ(x)ᵀw`.
//!
//! # Batched evaluation
//!
//! NSGA-II asks a sampled function for a whole population at a time, so
//! [`PosteriorSample::eval_batch_into`] answers a row-major block of query points in one
//! pass: conceptually one `frequencies × Xᵀ` matrix product followed by a `cos`/dot sweep,
//! implemented *fused* (feature-major loop, population-minor) so the frequency row stays in
//! L1 across the population and no `M × count` intermediate is materialized. Per point the
//! floating-point operation order is exactly that of [`PosteriorSample::eval`], so batched
//! answers are **bit-identical** to the per-point path; the only costs removed are the
//! per-point re-streaming of the frequency matrix and the per-call bookkeeping. Sampler and
//! sample share the frequency matrix and phases through `Arc`, and
//! [`RffSampler::sample_with`] reuses a caller-provided [`WeightScratch`] across draws, so
//! a warm acquisition loop draws and evaluates sample functions without reallocating its
//! feature machinery. Regenerate the measured per-point-vs-batched ratios with
//! `PARMIS_RESULTS_DIR=results cargo bench -p bench --bench bench_acq` (writes
//! `BENCH_acq.json`).

use crate::kernel::KernelFamily;
use crate::{GaussianProcess, GpError, Result};
use fastmath::Precision;
use linalg::{vector, Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{ChiSquared, Distribution, StandardNormal};
use std::sync::Arc;

/// Factory for posterior function samples of a fitted [`GaussianProcess`].
///
/// # Examples
///
/// ```
/// use gp::{GaussianProcess, RffSampler, kernel::Kernel};
///
/// # fn main() -> Result<(), gp::GpError> {
/// let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.4]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x[0].cos()).collect();
/// let gp = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 1e-4)?;
/// let sampler = RffSampler::new(&gp, 200, 42)?;
/// let f = sampler.sample(7)?;
/// // The sampled function should roughly agree with the posterior mean near the data.
/// let (mean, _) = gp.predict(&[2.0])?;
/// assert!((f.eval(&[2.0]) - mean).abs() < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RffSampler {
    /// Random feature frequencies, one row per feature (shared with every drawn sample).
    frequencies: Arc<Matrix>,
    /// Random phase offsets, one per feature (shared with every drawn sample).
    phases: Arc<Vec<f64>>,
    /// Feature scaling √(2σ²/M).
    feature_scale: f64,
    /// Posterior mean of the feature weights.
    weight_mean: Vec<f64>,
    /// Cholesky factor of the weight posterior covariance.
    weight_cov_chol: Cholesky,
    /// Constant added back to every prediction (training-target mean).
    offset: f64,
    /// Input dimensionality.
    dim: usize,
    /// Which math tier drawn samples evaluate on (construction and weight draws are
    /// tier-independent; only the cosine in `eval`/`eval_batch_into` differs).
    precision: Precision,
}

/// A single deterministic function drawn from the GP posterior.
///
/// The frequency matrix and phases are shared with the originating [`RffSampler`] (and
/// its sibling samples) through `Arc`; only the weight vector is owned per sample.
#[derive(Debug, Clone)]
pub struct PosteriorSample {
    frequencies: Arc<Matrix>,
    phases: Arc<Vec<f64>>,
    feature_scale: f64,
    weights: Vec<f64>,
    offset: f64,
    dim: usize,
    precision: Precision,
}

/// Reusable buffers for the weight draw inside [`RffSampler::sample_with`].
///
/// Holds the iid standard-normal vector and its correlated image under the posterior
/// covariance factor; both retain capacity across draws, so a warm scratch makes each
/// sample's only allocation the weight vector the returned [`PosteriorSample`] owns.
#[derive(Debug, Clone, Default)]
pub struct WeightScratch {
    /// iid standard-normal draws, one per feature.
    z: Vec<f64>,
    /// `L z` where `L` is the weight-covariance Cholesky factor.
    correlated: Vec<f64>,
}

impl RffSampler {
    /// Builds a sampler for `gp` using `num_features` random Fourier features.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidData`] if `num_features == 0` and propagates linear-algebra
    /// failures while forming the weight posterior.
    pub fn new(gp: &GaussianProcess, num_features: usize, seed: u64) -> Result<Self> {
        if num_features == 0 {
            return Err(GpError::InvalidData {
                reason: "num_features must be positive".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = gp.dim();
        let kernel = gp.kernel();
        let m = num_features;

        // Draw spectral frequencies for the kernel family, scaled by the ARD lengthscales.
        let mut frequencies = Matrix::zeros(m, dim);
        for i in 0..m {
            // Matérn-5/2 spectral density is a multivariate Student-t with ν = 5 degrees of
            // freedom: w = z / sqrt(u / ν) with z ~ N(0, 1/ℓ²), u ~ χ²(ν).
            let t_scale = match kernel.family() {
                KernelFamily::SquaredExponential => 1.0,
                KernelFamily::Matern52 => {
                    let chi: ChiSquared = ChiSquared::new(5.0).expect("valid degrees of freedom");
                    let u = chi.sample(&mut rng);
                    (5.0 / u).sqrt()
                }
            };
            for d in 0..dim {
                let z: f64 = StandardNormal.sample(&mut rng);
                frequencies[(i, d)] = t_scale * z / kernel.lengthscale(d);
            }
        }
        let phases: Vec<f64> = (0..m)
            .map(|_| rng.gen_range(0.0..(2.0 * std::f64::consts::PI)))
            .collect();
        let feature_scale = (2.0 * kernel.signal_variance() / m as f64).sqrt();

        // Feature matrix over the training inputs.
        let xs = gp.training_inputs();
        let n = xs.len();
        let phi = Matrix::from_fn(n, m, |i, j| {
            feature(&frequencies, &phases, feature_scale, j, &xs[i])
        });

        // Weight posterior: A = ΦᵀΦ + σ_n² I, mean = A⁻¹ Φᵀ y_c, cov = σ_n² A⁻¹.
        let noise = gp.noise_variance().max(1e-8);
        let phi_t = phi.transpose();
        let mut a = phi_t.mat_mul(&phi)?;
        a.add_diagonal(noise);
        let chol_a = Cholesky::new_with_jitter(&a, 1e-10, 10)?;

        let y_centred: Vec<f64> = gp
            .training_targets()
            .iter()
            .map(|y| y - gp.target_mean())
            .collect();
        let phi_t_y = phi_t.mat_vec(&y_centred)?;
        let weight_mean = chol_a.solve_vec(&phi_t_y)?;

        // Covariance σ_n² A⁻¹; factor it for sampling.
        let a_inv = chol_a.inverse()?;
        let cov = a_inv.scale(noise);
        let weight_cov_chol = Cholesky::new_with_jitter(&cov, 1e-12, 12)?;

        Ok(RffSampler {
            frequencies: Arc::new(frequencies),
            phases: Arc::new(phases),
            feature_scale,
            weight_mean,
            weight_cov_chol,
            offset: gp.target_mean(),
            dim,
            precision: Precision::SeedExact,
        })
    }

    /// Returns this sampler drawing samples that evaluate on the given math tier.
    ///
    /// Frequencies, phases and the weight posterior are identical across tiers (the
    /// spectral draw happens at construction, before the knob applies); only the cosine
    /// inside [`PosteriorSample::eval`] / [`PosteriorSample::eval_batch_into`] switches,
    /// to [`fastmath::fast_cos`] under [`Precision::Fast`] (absolute error `<= 1e-12`).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The math tier drawn samples evaluate on.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of random features in use.
    pub fn num_features(&self) -> usize {
        self.phases.len()
    }

    /// Input dimensionality of sampled functions.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Draws one posterior function sample. Different seeds give independent samples;
    /// the same seed reproduces the same function.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures (which cannot occur for a well-formed sampler).
    pub fn sample(&self, seed: u64) -> Result<PosteriorSample> {
        self.sample_with(seed, &mut WeightScratch::default())
    }

    /// [`sample`](Self::sample) with a caller-provided weight-draw scratch.
    ///
    /// Bit-identical to `sample` for the same seed; reusing `scratch` across draws (the
    /// acquisition loop draws one function per objective per iteration) removes the
    /// per-draw normal and correlated-vector allocations.
    ///
    /// # Errors
    ///
    /// Propagates linear-algebra failures (which cannot occur for a well-formed sampler).
    pub fn sample_with(&self, seed: u64, scratch: &mut WeightScratch) -> Result<PosteriorSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = self.num_features();
        scratch.z.clear();
        scratch.z.extend((0..m).map(|_| {
            let z: f64 = StandardNormal.sample(&mut rng);
            z
        }));
        self.weight_cov_chol
            .factor_mul_vec_into(&scratch.z, &mut scratch.correlated)?;
        let weights = vector::add(&self.weight_mean, &scratch.correlated);
        Ok(PosteriorSample {
            frequencies: Arc::clone(&self.frequencies),
            phases: Arc::clone(&self.phases),
            feature_scale: self.feature_scale,
            weights,
            offset: self.offset,
            dim: self.dim,
            precision: self.precision,
        })
    }

    /// Evaluates the posterior *mean* of the RFF approximation at `x` (useful for testing the
    /// fidelity of the approximation against the exact GP).
    pub fn approximate_mean(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "query dimension mismatch");
        let m = self.num_features();
        let mut acc = 0.0;
        for j in 0..m {
            acc += feature(&self.frequencies, &self.phases, self.feature_scale, j, x)
                * self.weight_mean[j];
        }
        acc + self.offset
    }
}

impl PosteriorSample {
    /// Evaluates the sampled function at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimensionality.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "query dimension mismatch");
        crate::stats::record_rff_point_eval();
        let m = self.weights.len();
        let mut acc = 0.0;
        match self.precision {
            Precision::SeedExact => {
                for j in 0..m {
                    acc += feature(&self.frequencies, &self.phases, self.feature_scale, j, x)
                        * self.weights[j];
                }
            }
            Precision::Fast => {
                // Same feature order as the exact path; the cosine and the coefficient
                // association ((scale·w)·cos instead of (scale·cos)·w) match the fast
                // batch path exactly, so eval ≡ eval_batch_into stays bit-true per tier.
                for j in 0..m {
                    let arg = vector::dot(self.frequencies.row(j), x) + self.phases[j];
                    acc += (self.feature_scale * self.weights[j]) * fastmath::fast_cos(arg);
                }
            }
        }
        acc + self.offset
    }

    /// The math tier this sample evaluates on.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Evaluates the sampled function at a whole row-major block of query points at once,
    /// writing one value per point into `out` (`points.len() == out.len() * dim`).
    ///
    /// One fused `frequencies × Xᵀ` product + `cos`/dot sweep: the feature-major loop keeps
    /// each frequency row hot across the population instead of re-streaming the whole
    /// matrix per point. Per point the operation order matches [`eval`](Self::eval)
    /// exactly, so results are bit-identical; the pass allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() != out.len() * dim`.
    pub fn eval_batch_into(&self, points: &[f64], out: &mut [f64]) {
        let count = out.len();
        assert_eq!(
            points.len(),
            count * self.dim,
            "query block dimension mismatch"
        );
        crate::stats::record_rff_feature_matrix_product();
        out.fill(0.0);
        let m = self.weights.len();
        match self.precision {
            Precision::SeedExact => {
                for j in 0..m {
                    let row = self.frequencies.row(j);
                    let phase = self.phases[j];
                    let weight = self.weights[j];
                    for (p, out_p) in out.iter_mut().enumerate() {
                        let x = &points[p * self.dim..(p + 1) * self.dim];
                        *out_p +=
                            (self.feature_scale * (vector::dot(row, x) + phase).cos()) * weight;
                    }
                }
            }
            Precision::Fast => {
                // The fast tier batches the cosine: per feature, fill a fixed stack
                // chunk with `w·x + b` over a stretch of points and fold the weighted
                // fast_cos straight into the accumulator (fastmath::fused_cos_axpy).
                // No heap use — the acquisition engine's zero-allocations-per-generation
                // contract holds on this tier too.
                const CHUNK: usize = 16;
                let mut args = [0.0f64; CHUNK];
                for j in 0..m {
                    let row = self.frequencies.row(j);
                    let phase = self.phases[j];
                    let coeff = self.feature_scale * self.weights[j];
                    let mut base = 0;
                    while base < count {
                        let n = CHUNK.min(count - base);
                        for (i, arg) in args[..n].iter_mut().enumerate() {
                            let p = base + i;
                            let x = &points[p * self.dim..(p + 1) * self.dim];
                            *arg = vector::dot(row, x) + phase;
                        }
                        fastmath::fused_cos_axpy(&mut args[..n], coeff, &mut out[base..base + n]);
                        base += n;
                    }
                }
            }
        }
        for v in out.iter_mut() {
            *v += self.offset;
        }
    }

    /// Input dimensionality of the sample.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// Evaluates the `j`-th random feature at `x`.
fn feature(frequencies: &Matrix, phases: &[f64], scale: f64, j: usize, x: &[f64]) -> f64 {
    let row = frequencies.row(j);
    scale * (vector::dot(row, x) + phases[j]).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;

    fn fitted_gp() -> GaussianProcess {
        let xs: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 * 0.3]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() + 2.0).collect();
        GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 1e-4).unwrap()
    }

    #[test]
    fn rejects_zero_features() {
        let gp = fitted_gp();
        assert!(RffSampler::new(&gp, 0, 1).is_err());
    }

    #[test]
    fn approximate_mean_tracks_exact_posterior_mean() {
        let gp = fitted_gp();
        let sampler = RffSampler::new(&gp, 400, 3).unwrap();
        for q in [0.5, 1.7, 3.3] {
            let (exact, _) = gp.predict(&[q]).unwrap();
            let approx = sampler.approximate_mean(&[q]);
            assert!(
                (exact - approx).abs() < 0.25,
                "at {q}: exact {exact} vs rff {approx}"
            );
        }
    }

    #[test]
    fn samples_stay_near_data_and_spread_far_away() {
        let gp = fitted_gp();
        let sampler = RffSampler::new(&gp, 300, 11).unwrap();
        let samples: Vec<_> = (0..12).map(|s| sampler.sample(s).unwrap()).collect();

        // Near training data all samples should agree closely with the posterior mean.
        let (mean_near, _) = gp.predict(&[1.5]).unwrap();
        let spread_near = spread(&samples, &[1.5]);
        let centre_near = centre(&samples, &[1.5]);
        assert!((centre_near - mean_near).abs() < 0.3);
        assert!(spread_near < 0.5);

        // Far outside the data the sample spread should be noticeably larger.
        let spread_far = spread(&samples, &[30.0]);
        assert!(
            spread_far > spread_near,
            "far spread {spread_far} should exceed near spread {spread_near}"
        );
    }

    fn spread(samples: &[PosteriorSample], x: &[f64]) -> f64 {
        let vals: Vec<f64> = samples.iter().map(|s| s.eval(x)).collect();
        vector::max(&vals) - vector::min(&vals)
    }

    fn centre(samples: &[PosteriorSample], x: &[f64]) -> f64 {
        let vals: Vec<f64> = samples.iter().map(|s| s.eval(x)).collect();
        vector::mean(&vals)
    }

    #[test]
    fn same_seed_reproduces_sample() {
        let gp = fitted_gp();
        let sampler = RffSampler::new(&gp, 100, 5).unwrap();
        let a = sampler.sample(99).unwrap();
        let b = sampler.sample(99).unwrap();
        for q in [0.0, 1.0, 2.0] {
            assert_eq!(a.eval(&[q]), b.eval(&[q]));
        }
        let c = sampler.sample(100).unwrap();
        assert_ne!(a.eval(&[1.0]), c.eval(&[1.0]));
    }

    #[test]
    fn matern_kernel_sampling_works() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.5 * x[0]).collect();
        let gp = GaussianProcess::fit(xs, ys, Kernel::matern52(1.0, 1.5), 1e-4).unwrap();
        let sampler = RffSampler::new(&gp, 300, 17).unwrap();
        let f = sampler.sample(0).unwrap();
        let (mean, _) = gp.predict(&[2.0]).unwrap();
        assert!((f.eval(&[2.0]) - mean).abs() < 0.6);
        assert_eq!(f.dim(), 1);
        assert_eq!(sampler.dim(), 1);
        assert_eq!(sampler.num_features(), 300);
    }

    #[test]
    fn multi_dimensional_sampling() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
        ];
        let ys = vec![0.0, 1.0, 1.0, 2.0, 1.0];
        let gp = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 1e-4).unwrap();
        let sampler = RffSampler::new(&gp, 200, 23).unwrap();
        let f = sampler.sample(1).unwrap();
        let v = f.eval(&[0.5, 0.5]);
        assert!(v.is_finite());
        assert!((v - 1.0).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn eval_rejects_wrong_dimension() {
        let gp = fitted_gp();
        let sampler = RffSampler::new(&gp, 50, 1).unwrap();
        let f = sampler.sample(0).unwrap();
        f.eval(&[1.0, 2.0]);
    }

    #[test]
    fn eval_batch_into_is_bit_identical_to_per_point_eval() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.3],
            vec![0.2, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
            vec![-0.4, 0.9],
        ];
        let ys = vec![0.0, 1.3, 1.2, 2.0, 1.0, 0.5];
        for kernel in [Kernel::rbf(1.0, 0.8), Kernel::matern52(1.2, 0.9)] {
            let gp = GaussianProcess::fit(xs.clone(), ys.clone(), kernel, 1e-4).unwrap();
            let sampler = RffSampler::new(&gp, 120, 31).unwrap();
            let f = sampler.sample(4).unwrap();
            let queries: Vec<Vec<f64>> = (0..17)
                .map(|i| vec![-1.0 + 0.17 * i as f64, 2.0 - 0.21 * i as f64])
                .collect();
            let flat: Vec<f64> = queries.iter().flatten().copied().collect();
            let mut batched = vec![0.0; queries.len()];
            f.eval_batch_into(&flat, &mut batched);
            for (q, b) in queries.iter().zip(&batched) {
                assert_eq!(f.eval(q), *b, "batched eval diverged at {q:?}");
            }
        }
    }

    #[test]
    fn eval_batch_into_handles_empty_block() {
        let gp = fitted_gp();
        let sampler = RffSampler::new(&gp, 30, 2).unwrap();
        let f = sampler.sample(0).unwrap();
        let mut out: Vec<f64> = Vec::new();
        f.eval_batch_into(&[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic]
    fn eval_batch_into_rejects_ragged_block() {
        let gp = fitted_gp();
        let sampler = RffSampler::new(&gp, 30, 2).unwrap();
        let f = sampler.sample(0).unwrap();
        let mut out = vec![0.0; 2];
        // 3 values cannot form two 1-D points.
        f.eval_batch_into(&[1.0, 2.0, 3.0], &mut out);
    }

    #[test]
    fn sample_with_reused_scratch_matches_fresh_sample() {
        let gp = fitted_gp();
        let sampler = RffSampler::new(&gp, 90, 8).unwrap();
        let mut scratch = WeightScratch::default();
        // Warm the scratch with a different draw first: reuse must not leak state.
        let _ = sampler.sample_with(1, &mut scratch).unwrap();
        let reused = sampler.sample_with(42, &mut scratch).unwrap();
        let fresh = sampler.sample(42).unwrap();
        for q in [0.0, 0.7, 2.9] {
            assert_eq!(reused.eval(&[q]), fresh.eval(&[q]));
        }
    }

    #[test]
    fn fast_tier_eval_batch_into_is_bit_identical_to_per_point_eval() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.3],
            vec![0.2, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
            vec![-0.4, 0.9],
        ];
        let ys = vec![0.0, 1.3, 1.2, 2.0, 1.0, 0.5];
        for kernel in [Kernel::rbf(1.0, 0.8), Kernel::matern52(1.2, 0.9)] {
            let gp = GaussianProcess::fit(xs.clone(), ys.clone(), kernel, 1e-4).unwrap();
            let sampler = RffSampler::new(&gp, 120, 31)
                .unwrap()
                .with_precision(Precision::Fast);
            let f = sampler.sample(4).unwrap();
            assert_eq!(f.precision(), Precision::Fast);
            let queries: Vec<Vec<f64>> = (0..17)
                .map(|i| vec![-1.0 + 0.17 * i as f64, 2.0 - 0.21 * i as f64])
                .collect();
            let flat: Vec<f64> = queries.iter().flatten().copied().collect();
            let mut batched = vec![0.0; queries.len()];
            f.eval_batch_into(&flat, &mut batched);
            for (q, b) in queries.iter().zip(&batched) {
                assert_eq!(f.eval(q), *b, "fast batched eval diverged at {q:?}");
            }
        }
    }

    #[test]
    fn fast_tier_sample_tracks_exact_tier_within_tolerance() {
        let gp = fitted_gp();
        let exact = RffSampler::new(&gp, 200, 13).unwrap();
        let fast = RffSampler::new(&gp, 200, 13)
            .unwrap()
            .with_precision(Precision::Fast);
        // Frequencies, phases and weight posterior are tier-independent, so the same
        // seed draws the same posterior function; only the cosine evaluation differs.
        let fe = exact.sample(7).unwrap();
        let ff = fast.sample(7).unwrap();
        let mut stats = tolerance::ErrorStats::new("fast-vs-exact rff sample");
        for i in 0..200 {
            let q = -2.0 + 0.04 * i as f64;
            stats.record(q, ff.eval(&[q]), fe.eval(&[q]));
        }
        // 200 features, each cosine within 1e-12 abs, scaled by feature weights: the
        // accumulated divergence stays far below any modelling tolerance.
        stats.assert_max_abs(1e-9);
    }

    #[test]
    fn fast_tier_sampling_is_deterministic() {
        let gp = fitted_gp();
        let sampler = RffSampler::new(&gp, 100, 5)
            .unwrap()
            .with_precision(Precision::Fast);
        let a = sampler.sample(99).unwrap();
        let b = sampler.sample(99).unwrap();
        for q in [0.0, 1.0, 2.0, 17.5] {
            assert_eq!(a.eval(&[q]), b.eval(&[q]));
        }
    }
}
