//! Stationary covariance functions.
//!
//! PaRMIS places independent GP priors over the policy-parameter space. Two standard
//! stationary kernels are provided; both support either an isotropic lengthscale or full
//! automatic-relevance-determination (ARD, one lengthscale per input dimension).

use crate::{GpError, Result};
use linalg::vector;

/// Family of the stationary kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFamily {
    /// Squared-exponential (RBF / Gaussian) kernel: infinitely smooth samples.
    SquaredExponential,
    /// Matérn-5/2 kernel: twice-differentiable samples, the usual BO default.
    Matern52,
}

/// A stationary covariance function `k(x, x') = σ² g(r)` where `r` is the scaled distance.
///
/// # Examples
///
/// ```
/// use gp::kernel::Kernel;
///
/// let k = Kernel::rbf(1.0, 0.5);
/// // A kernel evaluated at identical inputs returns the signal variance.
/// assert!((k.eval(&[0.3, 0.7], &[0.3, 0.7]) - 1.0).abs() < 1e-12);
/// // Covariance decays with distance.
/// assert!(k.eval(&[0.0, 0.0], &[1.0, 1.0]) < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    family: KernelFamily,
    signal_variance: f64,
    lengthscales: Lengthscales,
}

/// Either one shared lengthscale or one per dimension.
#[derive(Debug, Clone, PartialEq)]
enum Lengthscales {
    Isotropic(f64),
    Ard(Vec<f64>),
}

impl Kernel {
    /// Creates a squared-exponential kernel with an isotropic lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if `signal_variance` or `lengthscale` is not strictly positive and finite.
    pub fn rbf(signal_variance: f64, lengthscale: f64) -> Self {
        Self::validated(
            KernelFamily::SquaredExponential,
            signal_variance,
            Lengthscales::Isotropic(lengthscale),
        )
        .expect("rbf constructor arguments must be positive and finite")
    }

    /// Creates a Matérn-5/2 kernel with an isotropic lengthscale.
    ///
    /// # Panics
    ///
    /// Panics if `signal_variance` or `lengthscale` is not strictly positive and finite.
    pub fn matern52(signal_variance: f64, lengthscale: f64) -> Self {
        Self::validated(
            KernelFamily::Matern52,
            signal_variance,
            Lengthscales::Isotropic(lengthscale),
        )
        .expect("matern52 constructor arguments must be positive and finite")
    }

    /// Creates a kernel with per-dimension (ARD) lengthscales.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidHyperparameter`] if any hyperparameter is non-positive or
    /// non-finite, or [`GpError::InvalidData`] if `lengthscales` is empty.
    pub fn ard(family: KernelFamily, signal_variance: f64, lengthscales: Vec<f64>) -> Result<Self> {
        if lengthscales.is_empty() {
            return Err(GpError::InvalidData {
                reason: "ARD kernel requires at least one lengthscale".into(),
            });
        }
        Self::validated(family, signal_variance, Lengthscales::Ard(lengthscales))
    }

    /// Creates an isotropic kernel of the given family, validating the hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidHyperparameter`] if a hyperparameter is non-positive or
    /// non-finite.
    pub fn isotropic(family: KernelFamily, signal_variance: f64, lengthscale: f64) -> Result<Self> {
        Self::validated(
            family,
            signal_variance,
            Lengthscales::Isotropic(lengthscale),
        )
    }

    fn validated(
        family: KernelFamily,
        signal_variance: f64,
        lengthscales: Lengthscales,
    ) -> Result<Self> {
        if !(signal_variance.is_finite() && signal_variance > 0.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "signal_variance",
                value: signal_variance,
            });
        }
        let check = |l: f64| l.is_finite() && l > 0.0;
        match &lengthscales {
            Lengthscales::Isotropic(l) => {
                if !check(*l) {
                    return Err(GpError::InvalidHyperparameter {
                        name: "lengthscale",
                        value: *l,
                    });
                }
            }
            Lengthscales::Ard(ls) => {
                for &l in ls {
                    if !check(l) {
                        return Err(GpError::InvalidHyperparameter {
                            name: "lengthscale",
                            value: l,
                        });
                    }
                }
            }
        }
        Ok(Kernel {
            family,
            signal_variance,
            lengthscales,
        })
    }

    /// Kernel family.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Signal variance σ².
    pub fn signal_variance(&self) -> f64 {
        self.signal_variance
    }

    /// Lengthscale for dimension `d`.
    pub fn lengthscale(&self, d: usize) -> f64 {
        match &self.lengthscales {
            Lengthscales::Isotropic(l) => *l,
            Lengthscales::Ard(ls) => ls[d.min(ls.len() - 1)],
        }
    }

    /// Returns a copy of this kernel with a different isotropic lengthscale, preserving the
    /// family and signal variance. Used by the hyperparameter search.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidHyperparameter`] if the new value is invalid.
    pub fn with_lengthscale(&self, lengthscale: f64) -> Result<Self> {
        Self::validated(
            self.family,
            self.signal_variance,
            Lengthscales::Isotropic(lengthscale),
        )
    }

    /// Returns a copy of this kernel with a different signal variance.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidHyperparameter`] if the new value is invalid.
    pub fn with_signal_variance(&self, signal_variance: f64) -> Result<Self> {
        Self::validated(self.family, signal_variance, self.lengthscales.clone())
    }

    /// Scaled squared distance `Σ ((x_d - y_d) / ℓ_d)²`.
    fn scaled_sq_dist(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "kernel inputs must share dimension");
        match &self.lengthscales {
            Lengthscales::Isotropic(l) => vector::squared_distance(x, y) / (l * l),
            Lengthscales::Ard(ls) => x
                .iter()
                .zip(y)
                .zip(ls)
                .map(|((a, b), l)| {
                    let d = (a - b) / l;
                    d * d
                })
                .sum(),
        }
    }

    /// Evaluates the covariance between two points.
    ///
    /// # Panics
    ///
    /// Panics if the points have different dimensions.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        let r2 = self.scaled_sq_dist(x, y);
        match self.family {
            KernelFamily::SquaredExponential => self.signal_variance * (-0.5 * r2).exp(),
            KernelFamily::Matern52 => {
                let r = r2.sqrt();
                let sqrt5_r = 5.0f64.sqrt() * r;
                self.signal_variance * (1.0 + sqrt5_r + 5.0 * r2 / 3.0) * (-sqrt5_r).exp()
            }
        }
    }

    /// Builds the Gram matrix `K[i][j] = k(xs[i], xs[j])`.
    pub fn gram(&self, xs: &[Vec<f64>]) -> linalg::Matrix {
        linalg::Matrix::from_fn(xs.len(), xs.len(), |i, j| self.eval(&xs[i], &xs[j]))
    }

    /// Builds the cross-covariance vector between a query point and the training inputs.
    pub fn cross(&self, x: &[f64], xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|xi| self.eval(x, xi)).collect()
    }

    /// Builds the cross-covariance matrix `K[i][j] = k(xs[i], queries[j])` between the
    /// training inputs (rows) and a block of query points (columns) as one row-major
    /// allocation.
    ///
    /// This is the batched counterpart of [`cross`](Self::cross): the whole block is filled
    /// with allocation-free inner loops (both the isotropic and the ARD distance paths work
    /// on borrowed slices), ready to be handed to a blocked triangular solve.
    pub fn cross_matrix(&self, xs: &[Vec<f64>], queries: &[Vec<f64>]) -> linalg::Matrix {
        let mut data = Vec::with_capacity(xs.len() * queries.len());
        for xi in xs {
            for q in queries {
                data.push(self.eval(xi, q));
            }
        }
        linalg::Matrix::from_vec(xs.len(), queries.len(), data)
            .expect("cross_matrix dimensions are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_properties() {
        let k = Kernel::rbf(2.0, 1.0);
        assert_eq!(k.family(), KernelFamily::SquaredExponential);
        assert!((k.eval(&[0.0], &[0.0]) - 2.0).abs() < 1e-12);
        // Symmetry.
        assert_eq!(k.eval(&[0.0], &[1.0]), k.eval(&[1.0], &[0.0]));
        // Monotone decay with distance.
        assert!(k.eval(&[0.0], &[0.5]) > k.eval(&[0.0], &[1.5]));
        // Known value: exp(-0.5) at unit distance with unit lengthscale.
        assert!((k.eval(&[0.0], &[1.0]) / 2.0 - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn matern_properties() {
        let k = Kernel::matern52(1.0, 2.0);
        assert_eq!(k.family(), KernelFamily::Matern52);
        assert!((k.eval(&[1.0, 1.0], &[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(k.eval(&[0.0], &[1.0]) > k.eval(&[0.0], &[3.0]));
        assert!(k.eval(&[0.0], &[10.0]) < 0.05);
    }

    #[test]
    fn matern_is_rougher_than_rbf_at_long_range() {
        // At several lengthscales of separation the Matérn kernel retains more covariance
        // than the RBF (heavier tail).
        let rbf = Kernel::rbf(1.0, 1.0);
        let mat = Kernel::matern52(1.0, 1.0);
        assert!(mat.eval(&[0.0], &[3.0]) > rbf.eval(&[0.0], &[3.0]));
    }

    #[test]
    fn ard_lengthscales_weight_dimensions() {
        let k = Kernel::ard(KernelFamily::SquaredExponential, 1.0, vec![0.1, 10.0]).unwrap();
        // Distance along the short-lengthscale dimension kills covariance...
        assert!(k.eval(&[0.0, 0.0], &[0.5, 0.0]) < 0.01);
        // ...while the same distance along the long-lengthscale dimension barely matters.
        assert!(k.eval(&[0.0, 0.0], &[0.0, 0.5]) > 0.99);
        assert_eq!(k.lengthscale(0), 0.1);
        assert_eq!(k.lengthscale(1), 10.0);
    }

    #[test]
    fn constructor_validation() {
        assert!(Kernel::isotropic(KernelFamily::SquaredExponential, -1.0, 1.0).is_err());
        assert!(Kernel::isotropic(KernelFamily::SquaredExponential, 1.0, 0.0).is_err());
        assert!(Kernel::isotropic(KernelFamily::Matern52, 1.0, f64::NAN).is_err());
        assert!(Kernel::ard(KernelFamily::Matern52, 1.0, vec![]).is_err());
        assert!(Kernel::ard(KernelFamily::Matern52, 1.0, vec![1.0, -2.0]).is_err());
    }

    #[test]
    fn with_methods_replace_hyperparameters() {
        let k = Kernel::rbf(1.0, 1.0);
        let k2 = k.with_lengthscale(2.0).unwrap();
        assert_eq!(k2.lengthscale(0), 2.0);
        let k3 = k.with_signal_variance(4.0).unwrap();
        assert_eq!(k3.signal_variance(), 4.0);
        assert!(k.with_lengthscale(-1.0).is_err());
        assert!(k.with_signal_variance(0.0).is_err());
    }

    #[test]
    fn gram_matrix_is_symmetric_with_signal_diagonal() {
        let k = Kernel::rbf(1.5, 0.7);
        let xs = vec![vec![0.0, 0.0], vec![1.0, 0.5], vec![-0.5, 2.0]];
        let g = k.gram(&xs);
        assert!(g.is_symmetric(1e-12));
        for i in 0..3 {
            assert!((g[(i, i)] - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn cross_covariance_matches_elementwise_eval() {
        let k = Kernel::matern52(1.0, 1.0);
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let c = k.cross(&[0.5], &xs);
        for (i, xi) in xs.iter().enumerate() {
            assert_eq!(c[i], k.eval(&[0.5], xi));
        }
    }

    #[test]
    fn cross_matrix_matches_per_point_cross() {
        for kernel in [
            Kernel::rbf(1.3, 0.8),
            Kernel::ard(KernelFamily::Matern52, 1.0, vec![0.5, 2.0]).unwrap(),
        ] {
            let xs = vec![vec![0.0, 0.0], vec![1.0, 0.5], vec![-0.5, 2.0]];
            let queries = vec![vec![0.2, 0.1], vec![1.5, -0.3]];
            let m = kernel.cross_matrix(&xs, &queries);
            assert_eq!(m.shape(), (3, 2));
            for (j, q) in queries.iter().enumerate() {
                let c = kernel.cross(q, &xs);
                for (i, ci) in c.iter().enumerate() {
                    assert_eq!(m[(i, j)], *ci, "mismatch at ({i},{j})");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn eval_rejects_dimension_mismatch() {
        Kernel::rbf(1.0, 1.0).eval(&[0.0], &[0.0, 1.0]);
    }
}
