//! Error type for Gaussian-process operations.

use std::error::Error;
use std::fmt;

/// Error returned by Gaussian-process operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpError {
    /// Training or query data was empty or inconsistent.
    InvalidData {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A kernel or noise hyperparameter was outside its valid range.
    InvalidHyperparameter {
        /// Name of the offending hyperparameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The underlying linear-algebra kernel failed (e.g. the kernel matrix was not positive
    /// definite even after jitter).
    Linalg(linalg::LinalgError),
}

impl fmt::Display for GpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpError::InvalidData { reason } => write!(f, "invalid training data: {reason}"),
            GpError::InvalidHyperparameter { name, value } => {
                write!(f, "invalid hyperparameter {name} = {value}")
            }
            GpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for GpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::LinalgError> for GpError {
    fn from(e: linalg::LinalgError) -> Self {
        GpError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GpError::InvalidData {
            reason: "empty inputs".into(),
        };
        assert!(e.to_string().contains("empty inputs"));

        let e = GpError::InvalidHyperparameter {
            name: "lengthscale",
            value: -1.0,
        };
        assert!(e.to_string().contains("lengthscale"));

        let inner = linalg::LinalgError::Empty;
        let e = GpError::from(inner.clone());
        assert!(e.to_string().contains("linear algebra"));
        assert!(Error::source(&e).is_some());
        assert_eq!(e, GpError::Linalg(inner));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpError>();
    }
}
