//! Process-wide operation counters for the GP substrate.
//!
//! The incremental-refit and batched-prediction engine is only worth its complexity if the
//! search loop actually goes through the cheap paths. These counters let integration tests
//! assert that (e.g.) a `Parmis::run` performed rank-one Cholesky extensions instead of
//! from-scratch refits, without timing anything — wall-clock assertions flake on shared
//! machines, operation counts do not.
//!
//! Counters are global atomics (`Relaxed` ordering — they are statistics, not
//! synchronization), so tests that assert on them should either run in their own process or
//! use `>=` comparisons against a [`snapshot`] taken after [`reset`].

use std::sync::atomic::{AtomicU64, Ordering};

static FULL_FITS: AtomicU64 = AtomicU64::new(0);
static INCREMENTAL_UPDATES: AtomicU64 = AtomicU64::new(0);
static PREDICT_POINTS: AtomicU64 = AtomicU64::new(0);
static PREDICT_BATCHES: AtomicU64 = AtomicU64::new(0);
static RFF_FEATURE_MATRIX_PRODUCTS: AtomicU64 = AtomicU64::new(0);
static RFF_POINT_EVALS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// From-scratch `O(n³)` fits ([`crate::GaussianProcess::fit`]).
    pub full_fits: u64,
    /// Rank-one `O(n²)` Cholesky extensions performed by incremental updates
    /// ([`crate::GaussianProcess::with_observation`] / `with_observations`).
    pub incremental_updates: u64,
    /// Per-point posterior predictions ([`crate::GaussianProcess::predict`]).
    pub predict_points: u64,
    /// Batched posterior predictions ([`crate::GaussianProcess::predict_batch`]), each
    /// answering any number of queries with one blocked solve.
    pub predict_batches: u64,
    /// Batched posterior-sample evaluations ([`crate::PosteriorSample::eval_batch_into`]),
    /// each answering a whole population with one fused `frequencies × Xᵀ` feature-matrix
    /// product.
    pub rff_feature_matrix_products: u64,
    /// Per-point posterior-sample evaluations ([`crate::PosteriorSample::eval`]), which
    /// recompute every random feature for a single point.
    pub rff_point_evals: u64,
}

/// Resets every counter to zero.
pub fn reset() {
    FULL_FITS.store(0, Ordering::Relaxed);
    INCREMENTAL_UPDATES.store(0, Ordering::Relaxed);
    PREDICT_POINTS.store(0, Ordering::Relaxed);
    PREDICT_BATCHES.store(0, Ordering::Relaxed);
    RFF_FEATURE_MATRIX_PRODUCTS.store(0, Ordering::Relaxed);
    RFF_POINT_EVALS.store(0, Ordering::Relaxed);
}

/// Returns the current value of every counter.
pub fn snapshot() -> OpCounts {
    OpCounts {
        full_fits: FULL_FITS.load(Ordering::Relaxed),
        incremental_updates: INCREMENTAL_UPDATES.load(Ordering::Relaxed),
        predict_points: PREDICT_POINTS.load(Ordering::Relaxed),
        predict_batches: PREDICT_BATCHES.load(Ordering::Relaxed),
        rff_feature_matrix_products: RFF_FEATURE_MATRIX_PRODUCTS.load(Ordering::Relaxed),
        rff_point_evals: RFF_POINT_EVALS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_full_fit() {
    FULL_FITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_incremental_update() {
    INCREMENTAL_UPDATES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_predict_point() {
    PREDICT_POINTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_predict_batch() {
    PREDICT_BATCHES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_rff_feature_matrix_product() {
    RFF_FEATURE_MATRIX_PRODUCTS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_rff_point_eval() {
    RFF_POINT_EVALS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_full_fit();
        record_incremental_update();
        record_incremental_update();
        let s = snapshot();
        assert!(s.full_fits >= 1);
        assert!(s.incremental_updates >= 2);
        reset();
        // Another test in this process may race a fresh increment in, so only assert the
        // reset did not fail outright.
        assert!(snapshot().full_fits < s.full_fits + 1);
    }
}
