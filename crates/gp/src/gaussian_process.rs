//! Exact Gaussian-process regression.

use crate::kernel::Kernel;
use crate::{GpError, Result};
use linalg::{vector, Cholesky};

/// An exact Gaussian-process regressor with zero prior mean and i.i.d. observation noise,
/// matching the statistical model of the paper (§IV-A).
///
/// Internally the model stores the Cholesky factor of `K + σ_n² I` and the weight vector
/// `α = (K + σ_n² I)⁻¹ y`, so posterior predictions cost one kernel-vector product plus a
/// triangular solve.
///
/// # Examples
///
/// ```
/// use gp::{GaussianProcess, kernel::Kernel};
///
/// # fn main() -> Result<(), gp::GpError> {
/// let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 0.5]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
/// let gp = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 1e-6)?;
/// let (mean, var) = gp.predict(&[1.0])?;
/// assert!((mean - 1.0f64.sin()).abs() < 0.1);
/// assert!(var < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    y_mean: f64,
    kernel: Kernel,
    noise_variance: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
    /// Centred targets `y - ȳ`, cached at fit/update time so the marginal likelihood (and
    /// target swaps) never re-centre on the fly.
    centred: Vec<f64>,
}

impl GaussianProcess {
    /// Fits a GP to the training pairs `(xs[i], ys[i])`.
    ///
    /// The targets are internally centred (their mean is subtracted and added back at
    /// prediction time) so the zero-mean prior is a reasonable default for objectives with a
    /// large offset such as execution times.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidData`] if the inputs are empty, of inconsistent dimension or
    /// mismatched lengths, [`GpError::InvalidHyperparameter`] for a negative noise variance,
    /// and [`GpError::Linalg`] if the kernel matrix cannot be factorized.
    pub fn fit(
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        kernel: Kernel,
        noise_variance: f64,
    ) -> Result<Self> {
        if xs.is_empty() {
            return Err(GpError::InvalidData {
                reason: "no training points".into(),
            });
        }
        if xs.len() != ys.len() {
            return Err(GpError::InvalidData {
                reason: format!("{} inputs but {} targets", xs.len(), ys.len()),
            });
        }
        let dim = xs[0].len();
        if dim == 0 {
            return Err(GpError::InvalidData {
                reason: "inputs must have at least one dimension".into(),
            });
        }
        if xs.iter().any(|x| x.len() != dim) {
            return Err(GpError::InvalidData {
                reason: "inputs have inconsistent dimensions".into(),
            });
        }
        if ys.iter().any(|y| !y.is_finite()) {
            return Err(GpError::InvalidData {
                reason: "targets must be finite".into(),
            });
        }
        if !(noise_variance.is_finite() && noise_variance >= 0.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "noise_variance",
                value: noise_variance,
            });
        }

        let y_mean = vector::mean(&ys);
        let centred: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();

        let chol = Self::factorize(&xs, &kernel, noise_variance)?;
        let alpha = chol.solve_vec(&centred)?;

        Ok(GaussianProcess {
            xs,
            ys,
            y_mean,
            kernel,
            noise_variance,
            chol,
            alpha,
            centred,
        })
    }

    /// Factorizes `K + σ_n² I` with the crate's standard nugget floor and jitter retry
    /// policy. Shared by [`fit`](Self::fit) and the degenerate-extension fallback of the
    /// incremental update, so both paths produce the same factor for the same system — and
    /// both count as a from-scratch fit in [`crate::stats`], so the operation counters
    /// cannot miss a run that silently degrades into per-iteration refactorizations.
    fn factorize(xs: &[Vec<f64>], kernel: &Kernel, noise_variance: f64) -> Result<Cholesky> {
        let mut gram = kernel.gram(xs);
        gram.add_diagonal(noise_variance.max(1e-10));
        let chol = Cholesky::new_with_jitter(&gram, 1e-8, 8)?;
        crate::stats::record_full_fit();
        Ok(chol)
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the model has no training data (never true for a fitted model).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.xs[0].len()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Observation-noise variance σ_n².
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// Training inputs.
    pub fn training_inputs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// Training targets (uncentred, as supplied).
    pub fn training_targets(&self) -> &[f64] {
        &self.ys
    }

    /// Mean of the training targets (the constant added back to predictions).
    pub fn target_mean(&self) -> f64 {
        self.y_mean
    }

    /// Posterior predictive mean and variance at a query point.
    ///
    /// The variance is the *latent* function variance (without observation noise), clamped at
    /// a tiny positive floor to protect downstream `ln σ` computations.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidData`] if the query dimension does not match the training
    /// dimension.
    pub fn predict(&self, x: &[f64]) -> Result<(f64, f64)> {
        if x.len() != self.dim() {
            return Err(GpError::InvalidData {
                reason: format!(
                    "query has dimension {} but the model expects {}",
                    x.len(),
                    self.dim()
                ),
            });
        }
        crate::stats::record_predict_point();
        let k_star = self.kernel.cross(x, &self.xs);
        let mean = self.y_mean + vector::dot(&k_star, &self.alpha);
        let v = self.chol.solve_lower(&k_star)?;
        let variance = (self.kernel.eval(x, x) - vector::dot(&v, &v)).max(1e-12);
        Ok((mean, variance))
    }

    /// Posterior predictive mean and variance for a whole block of query points.
    ///
    /// Builds the full cross-covariance matrix once ([`Kernel::cross_matrix`]) and answers
    /// every query with a single blocked forward substitution
    /// ([`linalg::Cholesky::solve_lower_matrix_in_place`]) instead of one `O(n²)` triangular
    /// solve per point: scoring `m` candidates costs one cache-contiguous `O(n² m)` pass and
    /// two allocations total. Each returned `(mean, variance)` pair is **bit-identical** to
    /// what [`predict`](Self::predict) returns for that query — the accumulation order of
    /// every dot product is preserved — so callers can batch opportunistically without
    /// changing results.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidData`] if any query dimension does not match the training
    /// dimension.
    pub fn predict_batch(&self, queries: &[Vec<f64>]) -> Result<Vec<(f64, f64)>> {
        for q in queries {
            if q.len() != self.dim() {
                return Err(GpError::InvalidData {
                    reason: format!(
                        "query has dimension {} but the model expects {}",
                        q.len(),
                        self.dim()
                    ),
                });
            }
        }
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        crate::stats::record_predict_batch();
        let m = queries.len();
        // K* as an n x m block: row i holds k(xs[i], ·) against every query, contiguously.
        let mut k_star = self.kernel.cross_matrix(&self.xs, queries);

        // Posterior means: accumulate K*ᵀ α by streaming over the rows of K*, which adds the
        // i-th term of every query's dot product in the same ascending order as the scalar
        // `predict` path.
        let mut means = vec![0.0; m];
        for (i, &a) in self.alpha.iter().enumerate() {
            for (mean, k) in means.iter_mut().zip(k_star.row(i)) {
                *mean += k * a;
            }
        }

        // V = L⁻¹ K*: one blocked solve for the whole query block, then the posterior
        // variances are the per-column squared norms of V, again accumulated row by row.
        self.chol.solve_lower_matrix_in_place(&mut k_star)?;
        let mut squared = vec![0.0; m];
        for i in 0..self.len() {
            for (sq, v) in squared.iter_mut().zip(k_star.row(i)) {
                *sq += v * v;
            }
        }

        Ok(queries
            .iter()
            .zip(means.iter().zip(&squared))
            .map(|(q, (&mean, &sq))| {
                let variance = (self.kernel.eval(q, q) - sq).max(1e-12);
                (self.y_mean + mean, variance)
            })
            .collect())
    }

    /// Posterior predictive standard deviation at a query point.
    ///
    /// # Errors
    ///
    /// Same as [`predict`](Self::predict).
    pub fn predict_std(&self, x: &[f64]) -> Result<(f64, f64)> {
        let (m, v) = self.predict(x)?;
        Ok((m, v.sqrt()))
    }

    /// Log marginal likelihood of the training data under the current hyperparameters
    /// (Rasmussen & Williams, Eq. 2.30). Used by [`crate::hyperopt`] for model selection.
    ///
    /// Uses the centred-target vector cached at fit/update time, so repeated calls do no
    /// per-call re-centring work beyond one `O(n)` dot product.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.len() as f64;
        let data_fit = -0.5 * vector::dot(&self.centred, &self.alpha);
        let complexity = -0.5 * self.chol.log_determinant();
        let norm = -0.5 * n * (2.0 * std::f64::consts::PI).ln();
        data_fit + complexity + norm
    }

    /// Returns the model extended with one additional observation, reusing the cached
    /// Cholesky factor.
    ///
    /// PaRMIS adds exactly one evaluation per iteration (Algorithm 1, line 6). Instead of the
    /// seed's from-scratch `O(n³)` refit, the kernel matrix grows by one row/column via
    /// [`linalg::Cholesky::extend`] in `O(n²)`, and the recentred weight vector `α` is
    /// recovered with two triangular solves — no call to [`fit`](Self::fit). If the extension
    /// is numerically degenerate (e.g. a near-duplicate input makes the new pivot
    /// non-positive), the kernel matrix is refactorized from scratch with the standard jitter
    /// policy, so the method never fails where `fit` would have succeeded.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidData`] for a dimension mismatch or a non-finite target, and
    /// [`GpError::Linalg`] if even the jittered fallback cannot factorize.
    pub fn with_observation(&self, x: Vec<f64>, y: f64) -> Result<Self> {
        self.with_observations(std::slice::from_ref(&x), &[y])
    }

    /// Returns the model extended with a batch of observations — the multi-point counterpart
    /// of [`with_observation`](Self::with_observation), performing one `O(n²)` rank-one
    /// extension per point and a single pair of triangular solves at the end.
    ///
    /// # Errors
    ///
    /// Same as [`with_observation`](Self::with_observation).
    pub fn with_observations(&self, new_xs: &[Vec<f64>], new_ys: &[f64]) -> Result<Self> {
        if new_xs.len() != new_ys.len() {
            return Err(GpError::InvalidData {
                reason: format!("{} inputs but {} targets", new_xs.len(), new_ys.len()),
            });
        }
        let mut ys = self.ys.clone();
        ys.extend_from_slice(new_ys);
        self.with_observations_and_targets(new_xs, ys)
    }

    /// Extends the inputs with `new_xs` and installs `ys` as the full replacement target
    /// vector (old and new points alike) in one step.
    ///
    /// This is the search loop's per-iteration update: new evaluations arrive *and* every
    /// target is re-standardized against the grown history. Folding both into one call does
    /// the rank-one extensions plus a **single** pair of triangular solves, where
    /// `with_observations(...)` followed by [`with_targets`](Self::with_targets) would solve
    /// for an `α` that is immediately thrown away.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidData`] for dimension mismatches, a target vector whose
    /// length is not `self.len() + new_xs.len()`, or non-finite targets, and
    /// [`GpError::Linalg`] if even the jittered fallback cannot factorize.
    pub fn with_observations_and_targets(&self, new_xs: &[Vec<f64>], ys: Vec<f64>) -> Result<Self> {
        if ys.len() != self.len() + new_xs.len() {
            return Err(GpError::InvalidData {
                reason: format!(
                    "{} inputs but {} targets",
                    self.len() + new_xs.len(),
                    ys.len()
                ),
            });
        }
        if new_xs.iter().any(|x| x.len() != self.dim()) {
            return Err(GpError::InvalidData {
                reason: "inputs have inconsistent dimensions".into(),
            });
        }
        if ys.iter().any(|y| !y.is_finite()) {
            return Err(GpError::InvalidData {
                reason: "targets must be finite".into(),
            });
        }

        let mut xs = self.xs.clone();
        xs.reserve(new_xs.len());
        let mut chol = self.chol.clone();
        let mut degenerate = false;
        for x in new_xs {
            if !degenerate {
                let cross = self.kernel.cross(x, &xs);
                let diag = self.kernel.eval(x, x) + self.noise_variance.max(1e-10);
                match chol.extend(&cross, diag) {
                    Ok(()) => crate::stats::record_incremental_update(),
                    Err(linalg::LinalgError::NotPositiveDefinite { .. }) => degenerate = true,
                    Err(e) => return Err(e.into()),
                }
            }
            xs.push(x.clone());
        }
        if degenerate {
            chol = Self::factorize(&xs, &self.kernel, self.noise_variance)?;
        }

        let y_mean = vector::mean(&ys);
        let centred: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();
        let alpha = chol.solve_vec(&centred)?;
        Ok(GaussianProcess {
            xs,
            ys,
            y_mean,
            kernel: self.kernel.clone(),
            noise_variance: self.noise_variance,
            chol,
            alpha,
            centred,
        })
    }

    /// Returns a model over the same inputs with a replacement target vector, reusing the
    /// cached Cholesky factor (the kernel matrix does not depend on the targets, so swapping
    /// them costs two triangular solves instead of a refit). This is what lets the search
    /// loop re-standardize its objective values every iteration without ever refactorizing.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidData`] if `ys` has the wrong length or non-finite entries.
    pub fn with_targets(&self, ys: Vec<f64>) -> Result<Self> {
        self.with_observations_and_targets(&[], ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_gp() -> GaussianProcess {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let ys = vec![0.0, 0.8, 0.9, 0.1, -0.8];
        GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 1e-6).unwrap()
    }

    #[test]
    fn interpolates_training_points_with_small_noise() {
        let gp = toy_gp();
        for (x, y) in gp.training_inputs().iter().zip(gp.training_targets()) {
            let (mean, var) = gp.predict(x).unwrap();
            assert!((mean - y).abs() < 1e-3, "mean {mean} vs target {y}");
            assert!(var < 1e-3);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = toy_gp();
        let (_, var_near) = gp.predict(&[2.0]).unwrap();
        let (_, var_far) = gp.predict(&[10.0]).unwrap();
        assert!(var_far > var_near);
        // Far from all data the variance approaches the prior signal variance.
        assert!((var_far - 1.0).abs() < 0.05);
    }

    #[test]
    fn far_field_mean_reverts_to_target_mean() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![10.0, 12.0];
        let gp = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 0.5), 1e-6).unwrap();
        let (mean, _) = gp.predict(&[100.0]).unwrap();
        assert!(
            (mean - 11.0).abs() < 1e-6,
            "far-field mean should revert to 11, got {mean}"
        );
    }

    #[test]
    fn validates_inputs() {
        let k = Kernel::rbf(1.0, 1.0);
        assert!(GaussianProcess::fit(vec![], vec![], k.clone(), 1e-6).is_err());
        assert!(GaussianProcess::fit(vec![vec![0.0]], vec![1.0, 2.0], k.clone(), 1e-6).is_err());
        assert!(GaussianProcess::fit(
            vec![vec![0.0], vec![1.0, 2.0]],
            vec![1.0, 2.0],
            k.clone(),
            1e-6
        )
        .is_err());
        assert!(GaussianProcess::fit(vec![vec![0.0]], vec![f64::NAN], k.clone(), 1e-6).is_err());
        assert!(GaussianProcess::fit(vec![vec![0.0]], vec![1.0], k.clone(), -1.0).is_err());
        assert!(GaussianProcess::fit(vec![vec![]], vec![1.0], k, 1e-6).is_err());
    }

    #[test]
    fn predict_rejects_wrong_dimension() {
        let gp = toy_gp();
        assert!(gp.predict(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn log_marginal_likelihood_prefers_sensible_lengthscale() {
        // Data drawn from a smooth function: a ridiculous tiny lengthscale should have a
        // lower marginal likelihood than a moderate one.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.4]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.8).sin()).collect();
        let good = GaussianProcess::fit(xs.clone(), ys.clone(), Kernel::rbf(1.0, 1.0), 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        let bad = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 0.01), 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        assert!(good > bad, "good {good} should exceed bad {bad}");
    }

    #[test]
    fn with_observation_extends_model() {
        let gp = toy_gp();
        let updated = gp.with_observation(vec![5.0], -1.5).unwrap();
        assert_eq!(updated.len(), gp.len() + 1);
        let (mean, var) = updated.predict(&[5.0]).unwrap();
        assert!((mean + 1.5).abs() < 1e-2);
        assert!(var < 1e-2);
        // Original model is untouched.
        assert_eq!(gp.len(), 5);
    }

    #[test]
    fn incremental_update_matches_full_refit() {
        let gp = toy_gp();
        let incremental = gp.with_observation(vec![5.0], -1.5).unwrap();
        let mut xs: Vec<Vec<f64>> = gp.training_inputs().to_vec();
        let mut ys: Vec<f64> = gp.training_targets().to_vec();
        xs.push(vec![5.0]);
        ys.push(-1.5);
        let full = GaussianProcess::fit(xs, ys, gp.kernel().clone(), gp.noise_variance()).unwrap();
        for q in [-1.0, 0.7, 2.2, 5.0, 8.0] {
            let (mi, vi) = incremental.predict(&[q]).unwrap();
            let (mf, vf) = full.predict(&[q]).unwrap();
            assert!((mi - mf).abs() < 1e-8, "mean diverged at {q}: {mi} vs {mf}");
            assert!(
                (vi - vf).abs() < 1e-8,
                "variance diverged at {q}: {vi} vs {vf}"
            );
        }
        assert!(
            (incremental.log_marginal_likelihood() - full.log_marginal_likelihood()).abs() < 1e-8
        );
    }

    #[test]
    fn with_observations_appends_a_batch() {
        let gp = toy_gp();
        let updated = gp
            .with_observations(&[vec![5.0], vec![6.0]], &[-1.5, -0.9])
            .unwrap();
        assert_eq!(updated.len(), 7);
        let (mean, _) = updated.predict(&[6.0]).unwrap();
        assert!((mean + 0.9).abs() < 1e-2);
        // Empty batch is the identity.
        let same = gp.with_observations(&[], &[]).unwrap();
        assert_eq!(same.len(), gp.len());
        assert_eq!(same.predict(&[1.3]).unwrap(), gp.predict(&[1.3]).unwrap());
    }

    #[test]
    fn with_observations_and_targets_matches_the_two_step_update() {
        let gp = toy_gp();
        let new_xs = vec![vec![5.0], vec![6.0]];
        // Re-scaled targets for all seven points, as the search loop produces.
        let full_ys: Vec<f64> = vec![0.0, 0.4, 0.45, 0.05, -0.4, -0.75, -0.45];
        let one_step = gp
            .with_observations_and_targets(&new_xs, full_ys.clone())
            .unwrap();
        let two_step = gp
            .with_observations(&new_xs, &full_ys[5..])
            .unwrap()
            .with_targets(full_ys.clone())
            .unwrap();
        assert_eq!(one_step.training_targets(), full_ys.as_slice());
        for q in [0.3, 2.1, 5.5, 7.0] {
            assert_eq!(
                one_step.predict(&[q]).unwrap(),
                two_step.predict(&[q]).unwrap()
            );
        }
        // Length mismatch between targets and total inputs is rejected.
        assert!(gp
            .with_observations_and_targets(&new_xs, vec![0.0; 5])
            .is_err());
    }

    #[test]
    fn with_observations_validates_input() {
        let gp = toy_gp();
        assert!(gp.with_observations(&[vec![1.0]], &[]).is_err());
        assert!(gp.with_observations(&[vec![1.0, 2.0]], &[0.5]).is_err());
        assert!(gp.with_observations(&[vec![1.0]], &[f64::NAN]).is_err());
    }

    #[test]
    fn duplicate_observation_falls_back_to_jittered_refactorization() {
        // Appending an exact duplicate of a training point with ~zero noise makes the
        // extended kernel matrix numerically singular: the rank-one extension must detect
        // the non-positive pivot and recover via the jittered from-scratch path.
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0.3, 0.9];
        let gp = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 0.0).unwrap();
        let updated = gp.with_observation(vec![1.0], 0.9).unwrap();
        assert_eq!(updated.len(), 3);
        let (mean, _) = updated.predict(&[1.0]).unwrap();
        assert!((mean - 0.9).abs() < 1e-2);
    }

    #[test]
    fn with_targets_swaps_targets_without_refactorizing() {
        let gp = toy_gp();
        let flipped: Vec<f64> = gp.training_targets().iter().map(|y| -y).collect();
        let swapped = gp.with_targets(flipped.clone()).unwrap();
        let refit = GaussianProcess::fit(
            gp.training_inputs().to_vec(),
            flipped,
            gp.kernel().clone(),
            gp.noise_variance(),
        )
        .unwrap();
        for q in [0.5, 2.5, 6.0] {
            let (ms, vs) = swapped.predict(&[q]).unwrap();
            let (mr, vr) = refit.predict(&[q]).unwrap();
            assert!((ms - mr).abs() < 1e-10);
            assert!((vs - vr).abs() < 1e-10);
        }
        assert!(gp.with_targets(vec![1.0]).is_err());
        assert!(gp.with_targets(vec![f64::INFINITY; 5]).is_err());
    }

    #[test]
    fn predict_batch_is_bit_identical_to_per_point_predict() {
        let gp = toy_gp();
        let queries: Vec<Vec<f64>> = (-3..8).map(|i| vec![i as f64 * 0.77]).collect();
        let batch = gp.predict_batch(&queries).unwrap();
        assert_eq!(batch.len(), queries.len());
        for (q, pair) in queries.iter().zip(&batch) {
            assert_eq!(*pair, gp.predict(q).unwrap(), "diverged at query {q:?}");
        }
        assert!(gp.predict_batch(&[]).unwrap().is_empty());
        assert!(gp.predict_batch(&[vec![0.0, 1.0]]).is_err());
    }

    #[test]
    fn noisy_observations_smooth_the_fit() {
        let xs = vec![vec![0.0], vec![0.0]];
        let ys = vec![1.0, -1.0];
        // Two conflicting observations at the same point: with noise the posterior mean is
        // their average.
        let gp = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 0.5).unwrap();
        let (mean, _) = gp.predict(&[0.0]).unwrap();
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn accessors_report_configuration() {
        let gp = toy_gp();
        assert_eq!(gp.len(), 5);
        assert!(!gp.is_empty());
        assert_eq!(gp.dim(), 1);
        assert_eq!(gp.noise_variance(), 1e-6);
        assert_eq!(gp.training_targets().len(), 5);
        assert!((gp.target_mean() - 0.2).abs() < 1e-12);
        assert_eq!(gp.kernel().signal_variance(), 1.0);
    }

    #[test]
    fn multi_dimensional_inputs_work() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0.0, 1.0, 1.0, 2.0];
        let gp = GaussianProcess::fit(xs, ys, Kernel::matern52(1.0, 1.0), 1e-6).unwrap();
        let (mean, _) = gp.predict(&[0.5, 0.5]).unwrap();
        assert!((mean - 1.0).abs() < 0.2);
    }
}
