//! Exact Gaussian-process regression.

use crate::kernel::Kernel;
use crate::{GpError, Result};
use linalg::{vector, Cholesky};

/// An exact Gaussian-process regressor with zero prior mean and i.i.d. observation noise,
/// matching the statistical model of the paper (§IV-A).
///
/// Internally the model stores the Cholesky factor of `K + σ_n² I` and the weight vector
/// `α = (K + σ_n² I)⁻¹ y`, so posterior predictions cost one kernel-vector product plus a
/// triangular solve.
///
/// # Examples
///
/// ```
/// use gp::{GaussianProcess, kernel::Kernel};
///
/// # fn main() -> Result<(), gp::GpError> {
/// let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 * 0.5]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin()).collect();
/// let gp = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 1e-6)?;
/// let (mean, var) = gp.predict(&[1.0])?;
/// assert!((mean - 1.0f64.sin()).abs() < 0.1);
/// assert!(var < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    y_mean: f64,
    kernel: Kernel,
    noise_variance: f64,
    chol: Cholesky,
    alpha: Vec<f64>,
}

impl GaussianProcess {
    /// Fits a GP to the training pairs `(xs[i], ys[i])`.
    ///
    /// The targets are internally centred (their mean is subtracted and added back at
    /// prediction time) so the zero-mean prior is a reasonable default for objectives with a
    /// large offset such as execution times.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidData`] if the inputs are empty, of inconsistent dimension or
    /// mismatched lengths, [`GpError::InvalidHyperparameter`] for a negative noise variance,
    /// and [`GpError::Linalg`] if the kernel matrix cannot be factorized.
    pub fn fit(
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        kernel: Kernel,
        noise_variance: f64,
    ) -> Result<Self> {
        if xs.is_empty() {
            return Err(GpError::InvalidData {
                reason: "no training points".into(),
            });
        }
        if xs.len() != ys.len() {
            return Err(GpError::InvalidData {
                reason: format!("{} inputs but {} targets", xs.len(), ys.len()),
            });
        }
        let dim = xs[0].len();
        if dim == 0 {
            return Err(GpError::InvalidData {
                reason: "inputs must have at least one dimension".into(),
            });
        }
        if xs.iter().any(|x| x.len() != dim) {
            return Err(GpError::InvalidData {
                reason: "inputs have inconsistent dimensions".into(),
            });
        }
        if ys.iter().any(|y| !y.is_finite()) {
            return Err(GpError::InvalidData {
                reason: "targets must be finite".into(),
            });
        }
        if !(noise_variance.is_finite() && noise_variance >= 0.0) {
            return Err(GpError::InvalidHyperparameter {
                name: "noise_variance",
                value: noise_variance,
            });
        }

        let y_mean = vector::mean(&ys);
        let centred: Vec<f64> = ys.iter().map(|y| y - y_mean).collect();

        let mut gram = kernel.gram(&xs);
        gram.add_diagonal(noise_variance.max(1e-10));
        let chol = Cholesky::new_with_jitter(&gram, 1e-8, 8)?;
        let alpha = chol.solve_vec(&centred)?;

        Ok(GaussianProcess {
            xs,
            ys,
            y_mean,
            kernel,
            noise_variance,
            chol,
            alpha,
        })
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the model has no training data (never true for a fitted model).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.xs[0].len()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Observation-noise variance σ_n².
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// Training inputs.
    pub fn training_inputs(&self) -> &[Vec<f64>] {
        &self.xs
    }

    /// Training targets (uncentred, as supplied).
    pub fn training_targets(&self) -> &[f64] {
        &self.ys
    }

    /// Mean of the training targets (the constant added back to predictions).
    pub fn target_mean(&self) -> f64 {
        self.y_mean
    }

    /// Posterior predictive mean and variance at a query point.
    ///
    /// The variance is the *latent* function variance (without observation noise), clamped at
    /// a tiny positive floor to protect downstream `ln σ` computations.
    ///
    /// # Errors
    ///
    /// Returns [`GpError::InvalidData`] if the query dimension does not match the training
    /// dimension.
    pub fn predict(&self, x: &[f64]) -> Result<(f64, f64)> {
        if x.len() != self.dim() {
            return Err(GpError::InvalidData {
                reason: format!(
                    "query has dimension {} but the model expects {}",
                    x.len(),
                    self.dim()
                ),
            });
        }
        let k_star = self.kernel.cross(x, &self.xs);
        let mean = self.y_mean + vector::dot(&k_star, &self.alpha);
        let v = self.chol.solve_lower(&k_star)?;
        let variance = (self.kernel.eval(x, x) - vector::dot(&v, &v)).max(1e-12);
        Ok((mean, variance))
    }

    /// Posterior predictive standard deviation at a query point.
    ///
    /// # Errors
    ///
    /// Same as [`predict`](Self::predict).
    pub fn predict_std(&self, x: &[f64]) -> Result<(f64, f64)> {
        let (m, v) = self.predict(x)?;
        Ok((m, v.sqrt()))
    }

    /// Log marginal likelihood of the training data under the current hyperparameters
    /// (Rasmussen & Williams, Eq. 2.30). Used by [`crate::hyperopt`] for model selection.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.len() as f64;
        let centred: Vec<f64> = self.ys.iter().map(|y| y - self.y_mean).collect();
        let data_fit = -0.5 * vector::dot(&centred, &self.alpha);
        let complexity = -0.5 * self.chol.log_determinant();
        let norm = -0.5 * n * (2.0 * std::f64::consts::PI).ln();
        data_fit + complexity + norm
    }

    /// Refits the model with an additional observation, returning the new model.
    ///
    /// PaRMIS adds exactly one evaluation per iteration (Algorithm 1, line 6); a full refit is
    /// O(n³) but n ≤ 500 in every experiment, so the simplicity is worth it.
    ///
    /// # Errors
    ///
    /// Same as [`fit`](Self::fit).
    pub fn with_observation(&self, x: Vec<f64>, y: f64) -> Result<Self> {
        let mut xs = self.xs.clone();
        let mut ys = self.ys.clone();
        xs.push(x);
        ys.push(y);
        GaussianProcess::fit(xs, ys, self.kernel.clone(), self.noise_variance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_gp() -> GaussianProcess {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let ys = vec![0.0, 0.8, 0.9, 0.1, -0.8];
        GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 1e-6).unwrap()
    }

    #[test]
    fn interpolates_training_points_with_small_noise() {
        let gp = toy_gp();
        for (x, y) in gp.training_inputs().iter().zip(gp.training_targets()) {
            let (mean, var) = gp.predict(x).unwrap();
            assert!((mean - y).abs() < 1e-3, "mean {mean} vs target {y}");
            assert!(var < 1e-3);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = toy_gp();
        let (_, var_near) = gp.predict(&[2.0]).unwrap();
        let (_, var_far) = gp.predict(&[10.0]).unwrap();
        assert!(var_far > var_near);
        // Far from all data the variance approaches the prior signal variance.
        assert!((var_far - 1.0).abs() < 0.05);
    }

    #[test]
    fn far_field_mean_reverts_to_target_mean() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![10.0, 12.0];
        let gp = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 0.5), 1e-6).unwrap();
        let (mean, _) = gp.predict(&[100.0]).unwrap();
        assert!(
            (mean - 11.0).abs() < 1e-6,
            "far-field mean should revert to 11, got {mean}"
        );
    }

    #[test]
    fn validates_inputs() {
        let k = Kernel::rbf(1.0, 1.0);
        assert!(GaussianProcess::fit(vec![], vec![], k.clone(), 1e-6).is_err());
        assert!(GaussianProcess::fit(vec![vec![0.0]], vec![1.0, 2.0], k.clone(), 1e-6).is_err());
        assert!(GaussianProcess::fit(
            vec![vec![0.0], vec![1.0, 2.0]],
            vec![1.0, 2.0],
            k.clone(),
            1e-6
        )
        .is_err());
        assert!(GaussianProcess::fit(vec![vec![0.0]], vec![f64::NAN], k.clone(), 1e-6).is_err());
        assert!(GaussianProcess::fit(vec![vec![0.0]], vec![1.0], k.clone(), -1.0).is_err());
        assert!(GaussianProcess::fit(vec![vec![]], vec![1.0], k, 1e-6).is_err());
    }

    #[test]
    fn predict_rejects_wrong_dimension() {
        let gp = toy_gp();
        assert!(gp.predict(&[0.0, 1.0]).is_err());
    }

    #[test]
    fn log_marginal_likelihood_prefers_sensible_lengthscale() {
        // Data drawn from a smooth function: a ridiculous tiny lengthscale should have a
        // lower marginal likelihood than a moderate one.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.4]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.8).sin()).collect();
        let good = GaussianProcess::fit(xs.clone(), ys.clone(), Kernel::rbf(1.0, 1.0), 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        let bad = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 0.01), 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        assert!(good > bad, "good {good} should exceed bad {bad}");
    }

    #[test]
    fn with_observation_extends_model() {
        let gp = toy_gp();
        let updated = gp.with_observation(vec![5.0], -1.5).unwrap();
        assert_eq!(updated.len(), gp.len() + 1);
        let (mean, var) = updated.predict(&[5.0]).unwrap();
        assert!((mean + 1.5).abs() < 1e-2);
        assert!(var < 1e-2);
        // Original model is untouched.
        assert_eq!(gp.len(), 5);
    }

    #[test]
    fn noisy_observations_smooth_the_fit() {
        let xs = vec![vec![0.0], vec![0.0]];
        let ys = vec![1.0, -1.0];
        // Two conflicting observations at the same point: with noise the posterior mean is
        // their average.
        let gp = GaussianProcess::fit(xs, ys, Kernel::rbf(1.0, 1.0), 0.5).unwrap();
        let (mean, _) = gp.predict(&[0.0]).unwrap();
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn accessors_report_configuration() {
        let gp = toy_gp();
        assert_eq!(gp.len(), 5);
        assert!(!gp.is_empty());
        assert_eq!(gp.dim(), 1);
        assert_eq!(gp.noise_variance(), 1e-6);
        assert_eq!(gp.training_targets().len(), 5);
        assert!((gp.target_mean() - 0.2).abs() < 1e-12);
        assert_eq!(gp.kernel().signal_variance(), 1.0);
    }

    #[test]
    fn multi_dimensional_inputs_work() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0.0, 1.0, 1.0, 2.0];
        let gp = GaussianProcess::fit(xs, ys, Kernel::matern52(1.0, 1.0), 1e-6).unwrap();
        let (mean, _) = gp.predict(&[0.5, 0.5]).unwrap();
        assert!((mean - 1.0).abs() < 0.2);
    }
}
