//! Property-based tests for the Gaussian-process substrate.

use gp::kernel::{Kernel, KernelFamily};
use gp::GaussianProcess;
use proptest::prelude::*;

fn xs_strategy() -> impl Strategy<Value = Vec<f64>> {
    // Distinct-ish 1-D inputs in [0, 10).
    prop::collection::btree_set(0u32..1000, 3..12)
        .prop_map(|set| set.into_iter().map(|v| v as f64 * 0.01).collect())
}

fn hyper_strategy() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.1f64..3.0, 0.2f64..4.0, 1e-6f64..1e-2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernel_is_symmetric_and_bounded(
        (ls, sv, _) in hyper_strategy(),
        a in prop::collection::vec(-5.0f64..5.0, 3),
        b in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        for family in [KernelFamily::SquaredExponential, KernelFamily::Matern52] {
            let k = Kernel::isotropic(family, sv, ls).unwrap();
            let kab = k.eval(&a, &b);
            let kba = k.eval(&b, &a);
            prop_assert!((kab - kba).abs() < 1e-12);
            prop_assert!(kab <= sv + 1e-12);
            prop_assert!(kab >= 0.0);
            prop_assert!((k.eval(&a, &a) - sv).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_matrix_is_positive_semidefinite(
        xs in xs_strategy(),
        (ls, sv, _) in hyper_strategy(),
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let k = Kernel::rbf(sv, ls);
        let mut gram = k.gram(&pts);
        // Adding a small jitter must make the Gram matrix positive definite (it is PSD).
        gram.add_diagonal(1e-8);
        prop_assert!(linalg::Cholesky::new_with_jitter(&gram, 1e-8, 10).is_ok());
    }

    #[test]
    fn posterior_variance_is_nonnegative_and_bounded_by_prior(
        xs in xs_strategy(),
        (ls, sv, noise) in hyper_strategy(),
        query in 0.0f64..10.0,
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.7).sin()).collect();
        let gp = GaussianProcess::fit(pts, ys, Kernel::rbf(sv, ls), noise).unwrap();
        let (_, var) = gp.predict(&[query]).unwrap();
        prop_assert!(var >= 0.0);
        prop_assert!(var <= sv + 1e-6, "posterior variance {} exceeds prior {}", var, sv);
    }

    #[test]
    fn prediction_at_training_point_is_close_with_small_noise(
        xs in xs_strategy(),
        (ls, sv, _) in hyper_strategy(),
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.5).cos()).collect();
        let gp = GaussianProcess::fit(pts.clone(), ys.clone(), Kernel::rbf(sv, ls), 1e-8).unwrap();
        // Interpolation property: residual at training points is tiny relative to signal.
        for (x, y) in pts.iter().zip(&ys) {
            let (mean, _) = gp.predict(x).unwrap();
            prop_assert!((mean - y).abs() < 0.05, "residual {} too large", (mean - y).abs());
        }
    }

    #[test]
    fn log_marginal_likelihood_is_finite(
        xs in xs_strategy(),
        (ls, sv, noise) in hyper_strategy(),
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.3 + 1.0).collect();
        let gp = GaussianProcess::fit(pts, ys, Kernel::matern52(sv, ls), noise).unwrap();
        prop_assert!(gp.log_marginal_likelihood().is_finite());
    }
}
