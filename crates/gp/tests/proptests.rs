//! Property-based tests for the Gaussian-process substrate.

use gp::kernel::{Kernel, KernelFamily};
use gp::GaussianProcess;
use proptest::prelude::*;

fn xs_strategy() -> impl Strategy<Value = Vec<f64>> {
    // Distinct-ish 1-D inputs in [0, 10).
    prop::collection::btree_set(0u32..1000, 3..12)
        .prop_map(|set| set.into_iter().map(|v| v as f64 * 0.01).collect())
}

fn hyper_strategy() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.1f64..3.0, 0.2f64..4.0, 1e-6f64..1e-2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernel_is_symmetric_and_bounded(
        (ls, sv, _) in hyper_strategy(),
        a in prop::collection::vec(-5.0f64..5.0, 3),
        b in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        for family in [KernelFamily::SquaredExponential, KernelFamily::Matern52] {
            let k = Kernel::isotropic(family, sv, ls).unwrap();
            let kab = k.eval(&a, &b);
            let kba = k.eval(&b, &a);
            prop_assert!((kab - kba).abs() < 1e-12);
            prop_assert!(kab <= sv + 1e-12);
            prop_assert!(kab >= 0.0);
            prop_assert!((k.eval(&a, &a) - sv).abs() < 1e-12);
        }
    }

    #[test]
    fn gram_matrix_is_positive_semidefinite(
        xs in xs_strategy(),
        (ls, sv, _) in hyper_strategy(),
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let k = Kernel::rbf(sv, ls);
        let mut gram = k.gram(&pts);
        // Adding a small jitter must make the Gram matrix positive definite (it is PSD).
        gram.add_diagonal(1e-8);
        prop_assert!(linalg::Cholesky::new_with_jitter(&gram, 1e-8, 10).is_ok());
    }

    #[test]
    fn posterior_variance_is_nonnegative_and_bounded_by_prior(
        xs in xs_strategy(),
        (ls, sv, noise) in hyper_strategy(),
        query in 0.0f64..10.0,
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.7).sin()).collect();
        let gp = GaussianProcess::fit(pts, ys, Kernel::rbf(sv, ls), noise).unwrap();
        let (_, var) = gp.predict(&[query]).unwrap();
        prop_assert!(var >= 0.0);
        prop_assert!(var <= sv + 1e-6, "posterior variance {} exceeds prior {}", var, sv);
    }

    #[test]
    fn prediction_at_training_point_is_close_with_small_noise(
        xs in xs_strategy(),
        (ls, sv, _) in hyper_strategy(),
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.5).cos()).collect();
        let gp = GaussianProcess::fit(pts.clone(), ys.clone(), Kernel::rbf(sv, ls), 1e-8).unwrap();
        // Interpolation property: residual at training points is tiny relative to signal.
        for (x, y) in pts.iter().zip(&ys) {
            let (mean, _) = gp.predict(x).unwrap();
            prop_assert!((mean - y).abs() < 0.05, "residual {} too large", (mean - y).abs());
        }
    }

    #[test]
    fn log_marginal_likelihood_is_finite(
        xs in xs_strategy(),
        (ls, sv, noise) in hyper_strategy(),
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.3 + 1.0).collect();
        let gp = GaussianProcess::fit(pts, ys, Kernel::matern52(sv, ls), noise).unwrap();
        prop_assert!(gp.log_marginal_likelihood().is_finite());
    }

    #[test]
    fn incremental_update_matches_full_fit(
        xs in xs_strategy(),
        (ls, sv, noise) in hyper_strategy(),
        new_x in 0.0f64..10.0,
        new_y in -2.0f64..2.0,
        query in 0.0f64..10.0,
    ) {
        // Fit on all but the last point, add it incrementally, and compare against fitting
        // the full data from scratch: the rank-one Cholesky extension must agree to 1e-8 on
        // predictions and marginal likelihood.
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.6).sin()).collect();
        let kernel = Kernel::matern52(sv, ls);
        let base = GaussianProcess::fit(pts.clone(), ys.clone(), kernel.clone(), noise).unwrap();
        let incremental = base.with_observation(vec![new_x], new_y).unwrap();

        let mut full_xs = pts;
        let mut full_ys = ys;
        full_xs.push(vec![new_x]);
        full_ys.push(new_y);
        let full = GaussianProcess::fit(full_xs, full_ys, kernel, noise).unwrap();

        let (mi, vi) = incremental.predict(&[query]).unwrap();
        let (mf, vf) = full.predict(&[query]).unwrap();
        prop_assert!((mi - mf).abs() < 1e-8, "mean {} vs {}", mi, mf);
        prop_assert!((vi - vf).abs() < 1e-8, "variance {} vs {}", vi, vf);
        prop_assert!(
            (incremental.log_marginal_likelihood() - full.log_marginal_likelihood()).abs() < 1e-8
        );
    }

    #[test]
    fn predict_batch_agrees_exactly_with_per_point_predict(
        xs in xs_strategy(),
        (ls, sv, noise) in hyper_strategy(),
        queries in prop::collection::vec(0.0f64..10.0, 1..9),
    ) {
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x * 0.4).cos()).collect();
        let gp = GaussianProcess::fit(pts, ys, Kernel::rbf(sv, ls), noise).unwrap();
        let block: Vec<Vec<f64>> = queries.iter().map(|&q| vec![q]).collect();
        let batched = gp.predict_batch(&block).unwrap();
        for (q, pair) in block.iter().zip(&batched) {
            // Bit-identical, not merely close: the batched path preserves the scalar path's
            // accumulation order.
            prop_assert_eq!(*pair, gp.predict(q).unwrap());
        }
    }
}
