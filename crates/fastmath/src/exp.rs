//! Range-reduced exponential and logarithm.
//!
//! `fast_exp` is the Cephes double-precision construction: round `x/ln 2` to the
//! nearest integer `k` (magic-number rounding, no libm call), subtract `k·ln 2` in two
//! parts so the reduced `r ∈ [-ln2/2, ln2/2]` is computed without cancellation error,
//! evaluate the degree-(2,3) rational minimax for `eʳ`, and scale by `2ᵏ` with an
//! exponent-field bit insert. `fast_ln` is the fdlibm construction: normalize the
//! mantissa to `[√2/2, √2)` via the exponent field, then evaluate the `log(1+f)`
//! rational series with the two-part `ln 2` recombination.
//!
//! Both delegate to libm outside their fast domain (overflow/underflow range for exp;
//! non-positive, subnormal or non-finite inputs for ln), so special-value semantics are
//! libm's exactly. The slice forms are bit-identical to mapping the scalar forms.
//!
//! Error contracts (enforced in `tests/accuracy.rs`): relative error `<= 1e-12`
//! (typically `<= 2` ULP) for `fast_exp` on `|x| <= 700`; absolute error
//! `<= max(1e-12, 1e-12·|ln x|)` for `fast_ln` on normal positive inputs.

// Published Cephes/fdlibm coefficients, kept verbatim — the extra decimal digits pin
// each constant to the intended bit pattern.
#![allow(clippy::excessive_precision)]

/// `|x|` bound for the exp polynomial path; beyond it [`fast_exp`] uses libm. Inside
/// it `2ᵏ` scaling never leaves the normal range (`k <= 1011`).
pub const MAX_FAST_EXP_ARG: f64 = 700.0;

/// 1.5·2⁵² magic-rounding constant (valid for `|v| < 2⁵¹`; `k` here is `<= 1011`).
const MAGIC: f64 = 6755399441055744.0;

/// log₂ e, the exp reduction scale.
const LOG2E: f64 = std::f64::consts::LOG2_E;

/// High bits of ln 2 (Cephes split): `k·LN2_HI` is exact for the `k` range of exp.
const LN2_HI: f64 = 6.93145751953125e-1;
/// ln 2 − [`LN2_HI`], to full double precision.
const LN2_LO: f64 = 1.42860682030941723212e-6;

/// Cephes exp numerator `P`: `e^r = 1 + 2r·P(r²)/(Q(r²) − r·P(r²))`.
const EXP_P: [f64; 3] = [
    1.26177193074810590878e-4,
    3.02994407707441961300e-2,
    9.99999999999999999910e-1,
];

/// Cephes exp denominator `Q`.
const EXP_Q: [f64; 4] = [
    3.00198505138664455042e-6,
    2.52448340349684104192e-3,
    2.27265548208155028766e-1,
    2.00000000000000000005e0,
];

/// fdlibm log series coefficients `Lg1..Lg7`.
const LG: [f64; 7] = [
    6.666666666666735130e-1,
    3.999999999940941908e-1,
    2.857142874366239149e-1,
    2.222219843214978396e-1,
    1.818357216161805012e-1,
    1.531383769920937332e-1,
    1.479819860511658591e-1,
];

/// High bits of ln 2 for the log recombination (fdlibm split, different from Cephes').
const LOG_LN2_HI: f64 = 6.93147180369123816490e-1;
/// ln 2 − [`LOG_LN2_HI`].
const LOG_LN2_LO: f64 = 1.90821492927058770002e-10;

/// The branch-free exp core: valid only for finite `|x| <= MAX_FAST_EXP_ARG`.
#[inline(always)]
fn fast_exp_core(x: f64) -> f64 {
    // Magic rounding of x/ln2; k as integer for the exponent insert below.
    let t = x * LOG2E + MAGIC;
    let k = t - MAGIC;
    // Two-part Cody–Waite reduction: r = x − k·ln2, |r| <= ln2/2.
    let r = (x - k * LN2_HI) - k * LN2_LO;
    let z = r * r;
    let p = r * ((EXP_P[0] * z + EXP_P[1]) * z + EXP_P[2]);
    let q = ((EXP_Q[0] * z + EXP_Q[1]) * z + EXP_Q[2]) * z + EXP_Q[3];
    let e = 1.0 + 2.0 * p / (q - p);
    // 2ᵏ via the exponent field: k ∈ [-1011, 1011], so 1023 + k stays in (0, 2047).
    let two_k = f64::from_bits(((1023 + k as i64) as u64) << 52);
    e * two_k
}

/// Whether `x` is inside the exp polynomial domain (finite and `|x| <= 700`).
#[inline(always)]
fn in_exp_domain(x: f64) -> bool {
    x.abs() <= MAX_FAST_EXP_ARG
}

/// Bounded-error exponential: relative error `<= 1e-12` vs libm for `|x| <= 700`.
///
/// Outside that domain — including NaN and ±∞ — the result **is** `f64::exp(x)`.
///
/// # Examples
///
/// ```
/// use fastmath::fast_exp;
///
/// let rel = (fast_exp(1.0) - 1.0f64.exp()).abs() / 1.0f64.exp();
/// assert!(rel <= 1e-12);
/// assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
/// assert!(fast_exp(f64::NAN).is_nan());
/// ```
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    if in_exp_domain(x) {
        fast_exp_core(x)
    } else {
        x.exp()
    }
}

/// Replaces every element of `xs` with its [`fast_exp`]; bit-identical to the scalar
/// map, with a branch-free main pass and a libm patch-up pass for out-of-domain lanes.
pub fn fast_exp_slice(xs: &mut [f64]) {
    const B: usize = 64;
    let mut orig = [0.0f64; B];
    let mut base = 0;
    while base < xs.len() {
        let n = B.min(xs.len() - base);
        let chunk = &mut xs[base..base + n];
        orig[..n].copy_from_slice(chunk);
        // Branch-free main pass (clamping keeps the core's arithmetic finite on lanes
        // the patch pass will overwrite anyway).
        for v in chunk.iter_mut() {
            *v = fast_exp_core(v.clamp(-MAX_FAST_EXP_ARG, MAX_FAST_EXP_ARG));
        }
        for (v, &x) in chunk.iter_mut().zip(orig[..n].iter()) {
            if !in_exp_domain(x) {
                *v = x.exp();
            }
        }
        base += n;
    }
}

/// The fdlibm log core: valid only for positive, normal, finite `x`.
#[inline(always)]
fn fast_ln_core(x: f64) -> f64 {
    let bits = x.to_bits();
    let mut k = ((bits >> 52) as i64) - 1023;
    // Mantissa normalized to [1, 2); shift to [√2/2, √2) so f = m − 1 is small.
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        k += 1;
    }
    let f = m - 1.0;
    let s = f / (2.0 + f);
    let z = s * s;
    let w = z * z;
    let t1 = w * (LG[1] + w * (LG[3] + w * LG[5]));
    let t2 = z * (LG[0] + w * (LG[2] + w * (LG[4] + w * LG[6])));
    let r = t2 + t1;
    let dk = k as f64;
    dk * LOG_LN2_HI - ((s * (f - r) - dk * LOG_LN2_LO) - f)
}

/// Whether `x` is inside the ln fast domain (positive, normal, finite).
#[inline(always)]
fn in_ln_domain(x: f64) -> bool {
    (f64::MIN_POSITIVE..=f64::MAX).contains(&x)
}

/// Bounded-error natural logarithm for positive normal inputs; delegates to libm for
/// `x <= 0`, subnormals, NaN and ∞.
///
/// # Examples
///
/// ```
/// use fastmath::fast_ln;
///
/// assert!((fast_ln(10.0) - 10.0f64.ln()).abs() <= 1e-12 * 10.0f64.ln().abs().max(1.0));
/// assert!(fast_ln(-1.0).is_nan());
/// assert_eq!(fast_ln(0.0), f64::NEG_INFINITY);
/// ```
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    if in_ln_domain(x) {
        fast_ln_core(x)
    } else {
        x.ln()
    }
}

/// Replaces every element of `xs` with its [`fast_ln`]; bit-identical to the scalar
/// map. The mantissa-shift branch in the core is a select, so the main pass stays
/// straight-line; out-of-domain lanes are patched with libm in a second pass.
pub fn fast_ln_slice(xs: &mut [f64]) {
    const B: usize = 64;
    let mut orig = [0.0f64; B];
    let mut base = 0;
    while base < xs.len() {
        let n = B.min(xs.len() - base);
        let chunk = &mut xs[base..base + n];
        orig[..n].copy_from_slice(chunk);
        for v in chunk.iter_mut() {
            *v = fast_ln_core(v.max(f64::MIN_POSITIVE));
        }
        for (v, &x) in chunk.iter_mut().zip(orig[..n].iter()) {
            if !in_ln_domain(x) {
                *v = x.ln();
            }
        }
        base += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_matches_libm_on_simple_points() {
        for &x in &[0.0, 1.0, -1.0, 0.5, -20.0, 100.0, -700.0, 700.0, 1e-8] {
            let (got, want) = (fast_exp(x), x.exp());
            let rel = (got - want).abs() / want.max(f64::MIN_POSITIVE);
            assert!(rel <= 1e-12, "x={x}: {got} vs {want} (rel {rel:e})");
        }
        assert_eq!(fast_exp(0.0), 1.0);
    }

    #[test]
    fn exp_out_of_domain_delegates_to_libm() {
        assert_eq!(fast_exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(710.0), f64::INFINITY);
        assert_eq!(fast_exp(-746.0), 0.0);
        assert!(fast_exp(f64::NAN).is_nan());
    }

    #[test]
    fn ln_matches_libm_on_simple_points() {
        for &x in &[1.0, 2.0, 0.5, 1e-10, 1e10, std::f64::consts::E, 0.9999999] {
            let (got, want) = (fast_ln(x), x.ln());
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "x={x}: {got} vs {want}"
            );
        }
        assert_eq!(fast_ln(1.0), 0.0);
    }

    #[test]
    fn ln_out_of_domain_delegates_to_libm() {
        assert!(fast_ln(-1.0).is_nan());
        assert!(fast_ln(f64::NAN).is_nan());
        assert_eq!(fast_ln(0.0), f64::NEG_INFINITY);
        assert_eq!(fast_ln(f64::INFINITY), f64::INFINITY);
        let sub = f64::from_bits(12345);
        assert_eq!(fast_ln(sub), sub.ln());
    }

    #[test]
    fn slices_are_bit_identical_to_scalars() {
        let mut xs: Vec<f64> = (0..257).map(|i| (i as f64) * 0.11 - 14.0).collect();
        xs.extend([f64::NAN, 1000.0, f64::NEG_INFINITY]);
        let scalar: Vec<f64> = xs.iter().map(|&x| fast_exp(x)).collect();
        let mut got = xs.clone();
        fast_exp_slice(&mut got);
        for (g, w) in got.iter().zip(scalar.iter()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }

        let mut ys: Vec<f64> = (1..300).map(|i| (i as f64) * 0.37).collect();
        ys.extend([0.0, -3.0, f64::NAN, f64::from_bits(7)]);
        let scalar: Vec<f64> = ys.iter().map(|&y| fast_ln(y)).collect();
        fast_ln_slice(&mut ys);
        for (g, w) in ys.iter().zip(scalar.iter()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}
