//! Precision-tiered math kernels for the PaRMIS hot paths.
//!
//! PR 4 and PR 5 rebuilt the simulation and acquisition engines around streaming tables
//! and flat buffers, but both kept bit-identity with the seed implementation — which
//! pins ~75 % of an end-to-end acquisition `sample()` on scalar libm `cos` over RFF
//! features and the noisy simulation path on per-epoch scalar Box–Muller draws. This
//! crate is the explicit trade: a **fast tier** of polynomial, range-reduced,
//! chunk-friendly kernels whose error against libm is *bounded and tested* rather than
//! zero, selected by the [`Precision`] knob that defaults to [`Precision::SeedExact`]
//! everywhere.
//!
//! # Tiers
//!
//! | Tier | Semantics | Pinned by |
//! |------|-----------|-----------|
//! | [`Precision::SeedExact`] | The seed's exact scalar ops (libm `cos`/`exp`/`ln`, per-draw Box–Muller). Bit-identical to every pre-existing golden. | scenario-matrix goldens, determinism/equivalence suites |
//! | [`Precision::Fast`] | This crate's kernels. Still fully deterministic (same seeds → same bits), just not the *same* bits as libm. | `tests/goldens/fastmath_{acq,sim}.json` + the error-contract proptests in `crates/fastmath/tests/accuracy.rs` |
//!
//! # Error contracts (enforced by `tests/accuracy.rs`)
//!
//! | Kernel | Domain | Bound vs libm |
//! |--------|--------|---------------|
//! | [`fast_cos`] | `\|x\| <= 1e6` | absolute error `<= 1e-12` (typically `<= 2` ULP) |
//! | [`fast_cos`] | `\|x\| > 1e6`, `±0`, subnormal, NaN, ±∞ | delegates to libm — exact |
//! | [`fast_exp`] | `\|x\| <= 700` | relative error `<= 1e-12` (typically `<= 2` ULP) |
//! | [`fast_exp`] | outside, NaN, ±∞ | delegates to libm — exact |
//! | [`fast_ln`] | normal positive finite `x` | absolute error `<= max(1e-12, 1e-12·\|ln x\|)` |
//! | [`fast_ln`] | `x <= 0`, subnormal, NaN, ∞ | delegates to libm — exact |
//! | [`normal::fill_standard_normal`] | — | per-draw `<= 1e-9` absolute vs the scalar Box–Muller on the *same* uniform stream; distribution-level moment + KS bounds |
//!
//! The slice kernels ([`fast_cos_slice`], [`fast_exp_slice`], [`fast_ln_slice`],
//! [`fused_cos_axpy`]) produce **bit-identical results to their scalar counterparts**,
//! element for element — they exist so the main loop is straight-line (select instead of
//! branch) and auto-vectorizable, with the rare out-of-domain lanes patched in a
//! separate pass. That invariant is what lets the fast tier commit its own goldens: a
//! chunked evaluation order never changes the bits.
//!
//! # Who consumes this
//!
//! - `gp::rff::PosteriorSample::eval_batch_into` routes its per-feature cosine through
//!   [`fused_cos_axpy`] when the sampler is built with [`Precision::Fast`].
//! - `soc_sim::platform::Platform` swaps its per-epoch `LogNormal` draws for a
//!   [`normal::LogNormalBlock`] fed by the same dedicated noise RNG (identical uniform
//!   consumption order, so fast-tier noise factors track the exact tier to ~1e-12).
//! - `parmis::ParmisConfig::precision` / `EvaluatorBuilder::precision` /
//!   `soc_sim::scenario::Scenario::precision` thread the knob end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

pub mod cos;
pub mod exp;
pub mod normal;

pub use cos::{fast_cos, fast_cos_slice, fused_cos_axpy};
pub use exp::{fast_exp, fast_exp_slice, fast_ln, fast_ln_slice};

/// Which math tier a component runs on.
///
/// `SeedExact` (the default everywhere) is the seed implementation's exact scalar
/// arithmetic — every pre-existing golden, determinism and bit-identity gate pins it.
/// `Fast` selects this crate's kernels: deterministic, bounded-error, chunk-friendly.
/// The fast tier has its *own* committed goldens (`tests/goldens/fastmath_{acq,sim}.json`),
/// so both tiers are regression-pinned; they are just pinned to different bits.
///
/// Serializes as the variant name (`"SeedExact"` / `"Fast"`); scenario JSON written
/// before this axis existed omits the field and parses as `SeedExact` via `Option`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// Bit-identical to the seed implementation (libm scalar ops, per-draw Box–Muller).
    #[default]
    SeedExact,
    /// This crate's bounded-error kernels (chunked polynomial cos/exp/ln, batched
    /// Box–Muller over pre-drawn uniform blocks).
    Fast,
}

impl Precision {
    /// Every precision tier, in declaration order.
    pub const ALL: [Precision; 2] = [Precision::SeedExact, Precision::Fast];

    /// Stable kebab-case name used in reports and scenario files.
    pub fn name(&self) -> &'static str {
        match self {
            Precision::SeedExact => "seed-exact",
            Precision::Fast => "fast",
        }
    }

    /// Looks a tier up by its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Precision> {
        Precision::ALL.iter().copied().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_seed_exact() {
        assert_eq!(Precision::default(), Precision::SeedExact);
    }

    #[test]
    fn names_round_trip() {
        for p in Precision::ALL {
            assert_eq!(Precision::from_name(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(Precision::from_name("exact"), None);
    }

    #[test]
    fn serde_round_trips_as_variant_name() {
        for p in Precision::ALL {
            let v = p.to_json_value();
            let back = Precision::from_json_value(&v).expect("round trip");
            assert_eq!(back, p);
        }
    }
}
