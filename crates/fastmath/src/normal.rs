//! Batched Box–Muller draws over pre-drawn uniform blocks.
//!
//! The seed-exact noise path (`rand_distr`'s `LogNormal`) draws two uniforms and pays a
//! scalar `ln`, `sqrt`, `cos` and `exp` *per epoch, per factor* — the pinned hot spot of
//! the noisy simulation. The fast tier batches: it pre-draws a block of uniforms from
//! the same RNG **in the same per-draw order as the scalar path** (`u1 = (1 −
//! next_f64()).max(MIN_POSITIVE)` then `u2 = next_f64()`, per variate) and then runs the
//! transcendental pipeline over the whole block with the chunk-friendly kernels.
//!
//! Consuming the RNG in the scalar order is a deliberate trade: the fast tier's draws
//! are then the *same* uniforms the exact tier would have used, so each fast noise
//! factor tracks its exact counterpart to kernel error (~1e-12 relative) instead of
//! being an independent realization. That is what lets the end-to-end
//! "fast-vs-exact Pareto fronts agree" suites use tight tolerances. The speedup comes
//! from batching the `ln`/`cos`/`exp` work, not from re-ordering the stream. (The block
//! may leave the RNG ahead of where the scalar path would — callers hand the stream a
//! *dedicated* noise RNG, as `soc_sim::Platform` does.)

use crate::{cos, exp};
use rand::RngCore;

/// Draws per refill of a [`LogNormalBlock`] (a stack-sized scratch; no heap involved).
pub const NOISE_BLOCK: usize = 128;

const TWO_PI: f64 = std::f64::consts::TAU;

/// Fills `out` with standard-normal draws via batched Box–Muller.
///
/// Draw-for-draw equivalent of `rand_distr::StandardNormal`: variate `i` consumes the
/// same two uniforms (in the same order) as `i` scalar draws would, and differs from
/// the scalar value only by the fast-kernel error (`<= 1e-9` absolute, enforced by the
/// accuracy suite; distribution-level moment/KS bounds are tested on top).
pub fn fill_standard_normal<R: RngCore + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let mut u2 = [0.0f64; NOISE_BLOCK];
    let mut base = 0;
    while base < out.len() {
        let n = NOISE_BLOCK.min(out.len() - base);
        let block = &mut out[base..base + n];
        let angles = &mut u2[..n];
        for (radius, angle) in block.iter_mut().zip(angles.iter_mut()) {
            *radius = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
            *angle = rng.next_f64();
        }
        // radius := sqrt(-2 ln u1), angle := cos(2π u2), then multiply through.
        exp::fast_ln_slice(block);
        for radius in block.iter_mut() {
            *radius = (-2.0 * *radius).sqrt();
        }
        for angle in angles.iter_mut() {
            *angle *= TWO_PI;
        }
        cos::fast_cos_slice(angles);
        for (radius, angle) in block.iter_mut().zip(angles.iter()) {
            *radius *= *angle;
        }
        base += n;
    }
}

/// A buffered stream of log-normal factors `exp(σ·z)`, `z ~ N(0, 1)`.
///
/// Drop-in fast-tier replacement for per-epoch `LogNormal::sample` calls: construction
/// is allocation-free (the buffer is a fixed array), and [`next_factor`] consumes the
/// RNG in the scalar path's per-variate order so factor `i` tracks the scalar factor
/// `i` to kernel error. Refills batch the whole `ln → sqrt → cos → exp` pipeline.
///
/// [`next_factor`]: LogNormalBlock::next_factor
///
/// # Examples
///
/// ```
/// use fastmath::normal::LogNormalBlock;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let mut stream = LogNormalBlock::new(0.01);
/// let factor = stream.next_factor(&mut rng);
/// assert!(factor > 0.0 && (factor - 1.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct LogNormalBlock {
    sigma: f64,
    buf: [f64; NOISE_BLOCK],
    len: usize,
    pos: usize,
}

impl LogNormalBlock {
    /// Creates a stream of `exp(σ·z)` factors.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "LogNormalBlock sigma must be finite and >= 0, got {sigma}"
        );
        Self {
            sigma,
            buf: [0.0; NOISE_BLOCK],
            len: 0,
            pos: 0,
        }
    }

    /// The σ this stream was built with.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Returns the next log-normal factor, refilling the block from `rng` if drained.
    pub fn next_factor<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.pos == self.len {
            self.refill(rng);
        }
        let factor = self.buf[self.pos];
        self.pos += 1;
        factor
    }

    fn refill<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        fill_standard_normal(rng, &mut self.buf);
        for z in self.buf.iter_mut() {
            *z *= self.sigma;
        }
        exp::fast_exp_slice(&mut self.buf);
        self.len = NOISE_BLOCK;
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// The scalar path's draw, verbatim (mirrors `rand_distr::StandardNormal`).
    fn scalar_normal<R: RngCore>(rng: &mut R) -> f64 {
        let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    #[test]
    fn batched_draws_track_scalar_draws_on_the_same_stream() {
        let mut fast_rng = StdRng::seed_from_u64(42);
        let mut exact_rng = StdRng::seed_from_u64(42);
        let mut out = [0.0; 500];
        fill_standard_normal(&mut fast_rng, &mut out);
        for (i, &z) in out.iter().enumerate() {
            let want = scalar_normal(&mut exact_rng);
            assert!(
                (z - want).abs() <= 1e-9,
                "draw {i}: fast {z} vs exact {want}"
            );
        }
    }

    #[test]
    fn lognormal_factors_track_the_scalar_lognormal() {
        let sigma = 0.01;
        let mut fast_rng = StdRng::seed_from_u64(9);
        let mut exact_rng = StdRng::seed_from_u64(9);
        let mut stream = LogNormalBlock::new(sigma);
        for i in 0..300 {
            let fast = stream.next_factor(&mut fast_rng);
            let exact = (sigma * scalar_normal(&mut exact_rng)).exp();
            assert!(
                ((fast - exact) / exact).abs() <= 1e-9,
                "factor {i}: fast {fast} vs exact {exact}"
            );
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = LogNormalBlock::new(0.05);
            (0..NOISE_BLOCK * 2 + 3)
                .map(|_| s.next_factor(&mut rng))
                .collect::<Vec<_>>()
        };
        let (a, b) = (draw(1234), draw(1234));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_ne!(draw(1)[0].to_bits(), draw(2)[0].to_bits());
    }

    #[test]
    fn sigma_zero_yields_unit_factors() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = LogNormalBlock::new(0.0);
        for _ in 0..10 {
            assert_eq!(s.next_factor(&mut rng), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "sigma must be finite")]
    fn negative_sigma_is_rejected() {
        LogNormalBlock::new(-0.1);
    }
}
