//! Range-reduced polynomial cosine.
//!
//! The kernel is the classical Cody–Waite / Cephes construction: round `|x|·2/π` to the
//! nearest integer `n` with the 1.5·2⁵² magic-number trick (round-to-nearest without a
//! libm call, and the quadrant `n mod 4` falls out of the low mantissa bits), subtract
//! `n·π/2` in two parts (`PIO2_1` carries the first 33 bits of π/2 so `n·PIO2_1` is
//! exact for `n < 2²⁰`, `PIO2_1T` carries the remainder), then evaluate the Cephes
//! double-precision minimax polynomials for sin/cos on the reduced `r ∈ [-π/4, π/4]`.
//!
//! The construction is valid for `|x| <= MAX_FAST_ARG` (1e6); beyond that — and for
//! NaN/±∞ — the kernel delegates to libm, so propagation semantics are libm's exactly.
//! Subnormals and ±0 fall in the `n = 0` branch where the reduction is the identity.
//!
//! Error contract (enforced in `tests/accuracy.rs`): absolute error vs `f64::cos` is
//! `<= 1e-12` over the whole fast domain; sweeps observe `<= 2` ULP.
//!
//! [`fast_cos_slice`] / [`fused_cos_axpy`] apply the same kernel over a slice with a
//! straight-line (select-based, branch-free) main pass so the compiler can vectorize,
//! and a separate patch-up pass for the rare out-of-domain lanes. They are
//! **bit-identical to mapping [`fast_cos`] element-wise** — chunking never changes bits,
//! which is what lets the fast tier commit stable goldens of its own.

// The reduction splits and polynomial coefficients are the published fdlibm/Cephes
// double-precision values, kept verbatim — their extra decimal digits pin each constant
// to the intended bit pattern.
#![allow(clippy::excessive_precision)]

/// Largest `|x|` handled by the polynomial path; beyond this [`fast_cos`] uses libm.
///
/// At 1e6 the two-part reduction still carries ~1e-20 of absolute reduction error,
/// leaving orders of magnitude of margin under the 1e-12 contract.
pub const MAX_FAST_ARG: f64 = 1.0e6;

/// 2/π, the reduction scale.
const FRAC_2_PI: f64 = std::f64::consts::FRAC_2_PI;

/// 1.5·2⁵²: adding and subtracting rounds to the nearest integer (for `|v| < 2⁵¹`) and
/// leaves the integer in the low mantissa bits of the sum.
const MAGIC: f64 = 6755399441055744.0;

/// First 33 bits of π/2 — `n·PIO2_1` is exact for `n < 2²⁰`.
const PIO2_1: f64 = 1.57079632673412561417e0;
/// π/2 − [`PIO2_1`], to full double precision.
const PIO2_1T: f64 = 6.07710050650619224932e-11;

/// Cephes `sincof`: minimax for `(sin r − r)/(r·r²)` on `|r| <= π/4`, low order last.
const SINCOF: [f64; 6] = [
    1.58962301576546568060e-10,
    -2.50507477628578072866e-8,
    2.75573136213857245213e-6,
    -1.98412698295895385996e-4,
    8.33333333332211858878e-3,
    -1.66666666666666307295e-1,
];

/// Cephes `coscof`: minimax for `(cos r − 1 + r²/2)/r⁴` on `|r| <= π/4`, low order last.
const COSCOF: [f64; 6] = [
    -1.13585365213876817300e-11,
    2.08757008419747316778e-9,
    -2.75573141792967388112e-7,
    2.48015872888517179954e-5,
    -1.38888888888730564116e-3,
    4.16666666666665929218e-2,
];

/// `sin r` for reduced `r ∈ [-π/4, π/4]`, via `r + r·r²·P(r²)`.
#[inline(always)]
fn sin_kernel(r: f64, z: f64) -> f64 {
    let p = (((((SINCOF[0] * z + SINCOF[1]) * z + SINCOF[2]) * z + SINCOF[3]) * z + SINCOF[4]) * z
        + SINCOF[5])
        * z;
    r + r * p
}

/// `cos r` for reduced `r ∈ [-π/4, π/4]`, via `1 − r²/2 + r⁴·Q(r²)`.
#[inline(always)]
fn cos_kernel(z: f64) -> f64 {
    let q = ((((COSCOF[0] * z + COSCOF[1]) * z + COSCOF[2]) * z + COSCOF[3]) * z + COSCOF[4]) * z
        + COSCOF[5];
    1.0 - 0.5 * z + z * z * q
}

/// The branch-free core: valid only for finite `|x| <= MAX_FAST_ARG`.
///
/// Computes both the sin and the cos polynomial and picks by quadrant parity with a
/// select and a sign-bit XOR, so a slice of these compiles to straight-line code.
#[inline(always)]
fn fast_cos_core(x: f64) -> f64 {
    let ax = x.abs();
    // Magic rounding: t's low two mantissa bits are n mod 4, t - MAGIC is n exactly.
    let t = ax * FRAC_2_PI + MAGIC;
    let q = t.to_bits();
    let n = t - MAGIC;
    // Two-part Cody–Waite reduction: r = ax - n·(π/2) to ~86 bits of π/2.
    let r = (ax - n * PIO2_1) - n * PIO2_1T;
    let z = r * r;
    let s = sin_kernel(r, z);
    let c = cos_kernel(z);
    // cos(n·π/2 + r): quadrants 0..3 give  c, -s, -c, s.
    let v = if q & 1 == 0 { c } else { s };
    let sign = ((q.wrapping_add(1)) & 2) << 62;
    f64::from_bits(v.to_bits() ^ sign)
}

/// Whether `x` is inside the polynomial kernel's domain (finite and `|x| <= 1e6`).
#[inline(always)]
fn in_fast_domain(x: f64) -> bool {
    // A NaN comparison is false, so NaN routes to libm along with ±∞ and huge args.
    x.abs() <= MAX_FAST_ARG
}

/// Bounded-error cosine: `|fast_cos(x) − cos(x)| <= 1e-12` for `|x| <= 1e6`.
///
/// Outside that domain — including NaN and ±∞ — the result **is** `f64::cos(x)`, so
/// special-value propagation matches libm bit for bit.
///
/// # Examples
///
/// ```
/// use fastmath::fast_cos;
///
/// assert!((fast_cos(1.0) - 1.0f64.cos()).abs() <= 1e-12);
/// assert_eq!(fast_cos(0.0), 1.0);
/// assert!(fast_cos(f64::NAN).is_nan());
/// ```
#[inline]
pub fn fast_cos(x: f64) -> f64 {
    if in_fast_domain(x) {
        fast_cos_core(x)
    } else {
        x.cos()
    }
}

/// Replaces every element of `xs` with its [`fast_cos`], chunk-friendly.
///
/// Bit-identical to `for v in xs { *v = fast_cos(*v) }`; the main pass is branch-free
/// so the optimizer can vectorize it, and out-of-domain lanes (|x| > 1e6, NaN, ±∞) are
/// patched with libm in a second pass.
pub fn fast_cos_slice(xs: &mut [f64]) {
    const B: usize = 64;
    let mut orig = [0.0f64; B];
    let mut base = 0;
    while base < xs.len() {
        let n = B.min(xs.len() - base);
        let chunk = &mut xs[base..base + n];
        orig[..n].copy_from_slice(chunk);
        // Unconditional core keeps this pass straight-line; the garbage it produces on
        // out-of-domain lanes is overwritten by the patch pass below.
        for v in chunk.iter_mut() {
            *v = fast_cos_core(v.clamp(-MAX_FAST_ARG, MAX_FAST_ARG));
        }
        for (v, &x) in chunk.iter_mut().zip(orig[..n].iter()) {
            if !in_fast_domain(x) {
                *v = x.cos();
            }
        }
        base += n;
    }
}

/// The fused RFF primitive: `out[i] += coeff · fast_cos(args[i])`, consuming `args`.
///
/// `gp::rff::PosteriorSample::eval_batch_into` fills `args` with one feature's
/// `w·x + b` over a chunk of query points and folds the weighted cosine straight into
/// the objective accumulator — no intermediate feature matrix, no allocation.
/// Bit-identical to the scalar sequence `out[i] += coeff * fast_cos(args[i])`.
///
/// # Panics
///
/// Panics if `args` and `out` have different lengths.
pub fn fused_cos_axpy(args: &mut [f64], coeff: f64, out: &mut [f64]) {
    assert_eq!(
        args.len(),
        out.len(),
        "fused_cos_axpy requires matching slice lengths"
    );
    fast_cos_slice(args);
    for (o, a) in out.iter_mut().zip(args.iter()) {
        *o += coeff * *a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_on_simple_points() {
        for &x in &[0.0, 0.5, 1.0, -1.0, 3.0, -7.5, 100.0, 1e5, 999_999.0] {
            assert!(
                (fast_cos(x) - x.cos()).abs() <= 1e-12,
                "x={x}: {} vs {}",
                fast_cos(x),
                x.cos()
            );
        }
    }

    #[test]
    fn zero_and_subnormals_are_exact() {
        assert_eq!(fast_cos(0.0), 1.0);
        assert_eq!(fast_cos(-0.0), 1.0);
        assert_eq!(fast_cos(f64::from_bits(1)), 1.0);
        assert_eq!(fast_cos(-f64::MIN_POSITIVE), 1.0);
    }

    #[test]
    fn out_of_domain_delegates_to_libm() {
        for &x in &[1.0e7, -3.5e9, 1.0e300, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                fast_cos(x) == x.cos() || (fast_cos(x).is_nan() && x.cos().is_nan()),
                "x={x}"
            );
        }
        assert!(fast_cos(f64::NAN).is_nan());
    }

    #[test]
    fn slice_is_bit_identical_to_scalar() {
        let mut xs: Vec<f64> = (0..257).map(|i| (i as f64) * 0.37 - 40.0).collect();
        xs.push(f64::NAN);
        xs.push(2.0e8);
        xs.push(f64::INFINITY);
        let scalar: Vec<f64> = xs.iter().map(|&x| fast_cos(x)).collect();
        fast_cos_slice(&mut xs);
        for (got, want) in xs.iter().zip(scalar.iter()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn fused_axpy_accumulates() {
        let mut args = [0.0, 1.0, 2.0];
        let mut out = [10.0, 10.0, 10.0];
        fused_cos_axpy(&mut args, 2.0, &mut out);
        for (i, &x) in [0.0f64, 1.0, 2.0].iter().enumerate() {
            let want = 10.0 + 2.0 * fast_cos(x);
            assert_eq!(out[i].to_bits(), want.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "matching slice lengths")]
    fn fused_axpy_rejects_mismatched_lengths() {
        let mut args = [0.0; 2];
        let mut out = [0.0; 3];
        fused_cos_axpy(&mut args, 1.0, &mut out);
    }
}
