//! Error-contract suite for the fast tier.
//!
//! Every bound asserted here is a documented contract from the `fastmath` crate docs:
//! the kernels may differ from libm, but only by this much, only inside their fast
//! domains, and never on special values (which delegate to libm outright). Sweeps fold
//! through `tolerance::ErrorStats` so a regression reports the worst offending input,
//! not just the first failure. The proptest RNG is deterministic (vendored harness), so
//! these are regression tests, not flaky statistical gates.

use fastmath::normal::{fill_standard_normal, LogNormalBlock};
use fastmath::{fast_cos, fast_exp, fast_ln};
use proptest::prelude::*;
use rand::{rngs::StdRng, RngCore, SeedableRng};
use tolerance::{assert_close_abs, assert_close_ulps, ErrorStats};

/// Documented |Δcos| bound over the fast domain.
const COS_ABS_BOUND: f64 = 1e-12;
/// Documented relative bound for exp over |x| <= 700, in ULPs (4 ULP ≈ 9e-16 relative).
const EXP_ULP_BOUND: u64 = 4;
/// Documented ULP bound for ln on normal positive inputs.
const LN_ULP_BOUND: u64 = 4;

// ---------------------------------------------------------------------------
// Dense sweeps: worst-case error over structured grids, reported via ErrorStats.
// ---------------------------------------------------------------------------

#[test]
fn cos_sweep_small_angles_stays_within_two_ulps() {
    let mut stats = ErrorStats::new("fast_cos on [-20, 20]");
    for i in -20_000..=20_000 {
        let x = i as f64 * 1e-3;
        stats.record(x, fast_cos(x), x.cos());
    }
    stats.assert_max_ulps(2);
    stats.assert_max_abs(COS_ABS_BOUND);
}

#[test]
fn cos_sweep_full_fast_domain_stays_within_abs_bound() {
    let mut stats = ErrorStats::new("fast_cos on [-1e6, 1e6]");
    for i in -100_000..=100_000 {
        let x = i as f64 * 10.0 + 0.123_456_789;
        if x.abs() <= 1e6 {
            stats.record(x, fast_cos(x), x.cos());
        }
    }
    stats.assert_max_abs(COS_ABS_BOUND);
}

#[test]
fn exp_sweep_stays_within_ulp_bound() {
    let mut stats = ErrorStats::new("fast_exp on [-700, 700]");
    for i in -70_000..=70_000 {
        let x = i as f64 * 1e-2 + 3.3e-3;
        if x.abs() <= 700.0 {
            stats.record(x, fast_exp(x), x.exp());
        }
    }
    stats.assert_max_ulps(EXP_ULP_BOUND);
}

#[test]
fn ln_sweep_stays_within_ulp_bound() {
    let mut stats = ErrorStats::new("fast_ln over decades");
    // Geometric sweep across the whole normal range plus a fine sweep around 1 (the
    // cancellation-sensitive region that matters for Box–Muller's ln(u1)).
    let mut x = 1e-300;
    while x < 1e300 {
        stats.record(x, fast_ln(x), x.ln());
        x *= 1.37;
    }
    for i in 1..=20_000 {
        let y = i as f64 * 1e-4; // (0, 2]
        stats.record(y, fast_ln(y), y.ln());
    }
    stats.assert_max_ulps(LN_ULP_BOUND);
}

// ---------------------------------------------------------------------------
// Randomized contracts over the full domains.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn cos_contract_holds_on_random_fast_domain_inputs(x in -1.0e6f64..1.0e6) {
        assert_close_abs(fast_cos(x), x.cos(), COS_ABS_BOUND, "fast_cos random");
    }

    #[test]
    fn cos_near_multiples_of_half_pi(
        k in -636_619i64..636_619,
        jitter in -1.0e-8f64..1.0e-8,
    ) {
        // k·π/2 spans the whole fast domain; the jitter lands x where the reduced
        // argument is tiny and the quadrant polynomials hand off to each other.
        let x = k as f64 * std::f64::consts::FRAC_PI_2 + jitter;
        if x.abs() <= 1.0e6 {
            assert_close_abs(fast_cos(x), x.cos(), COS_ABS_BOUND, "fast_cos near k*pi/2");
        }
    }

    #[test]
    fn cos_beyond_fast_domain_is_libm_bit_for_bit(x in 1.0e6f64..1.0e12) {
        for v in [x + 1.0, -(x + 1.0)] {
            prop_assert_eq!(fast_cos(v).to_bits(), v.cos().to_bits());
        }
    }

    #[test]
    fn exp_contract_holds_on_random_inputs(x in -700.0f64..700.0) {
        assert_close_ulps(fast_exp(x), x.exp(), EXP_ULP_BOUND, "fast_exp random");
    }

    #[test]
    fn ln_contract_holds_on_random_inputs(x in 1.0e-12f64..1.0e12) {
        assert_close_ulps(fast_ln(x), x.ln(), LN_ULP_BOUND, "fast_ln random");
    }

    #[test]
    fn subnormal_cos_and_exp_are_exact(bits in 1u64..4_503_599_627_370_496) {
        // All positive subnormals: cos and exp round to exactly 1.0, matching libm.
        let x = f64::from_bits(bits);
        prop_assert_eq!(fast_cos(x), 1.0);
        prop_assert_eq!(fast_cos(-x), 1.0);
        prop_assert_eq!(fast_exp(x), 1.0);
        prop_assert_eq!(fast_ln(x).to_bits(), x.ln().to_bits());
    }
}

// ---------------------------------------------------------------------------
// Pinned regression cases: explicit edge inputs, exact expectations.
// ---------------------------------------------------------------------------

#[test]
fn pinned_zero_signs() {
    assert_eq!(fast_cos(0.0).to_bits(), 1.0f64.to_bits());
    assert_eq!(fast_cos(-0.0).to_bits(), 1.0f64.to_bits());
    assert_eq!(fast_exp(0.0).to_bits(), 1.0f64.to_bits());
    assert_eq!(fast_exp(-0.0).to_bits(), 1.0f64.to_bits());
    assert_eq!(fast_ln(0.0), f64::NEG_INFINITY);
    assert_eq!(fast_ln(-0.0), f64::NEG_INFINITY);
}

#[test]
fn pinned_non_finite_propagation() {
    assert!(fast_cos(f64::NAN).is_nan());
    assert!(fast_cos(f64::INFINITY).is_nan());
    assert!(fast_cos(f64::NEG_INFINITY).is_nan());
    assert!(fast_exp(f64::NAN).is_nan());
    assert_eq!(fast_exp(f64::INFINITY), f64::INFINITY);
    assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
    assert!(fast_ln(f64::NAN).is_nan());
    assert_eq!(fast_ln(f64::INFINITY), f64::INFINITY);
    assert!(fast_ln(-1.0).is_nan());
    assert!(fast_ln(f64::NEG_INFINITY).is_nan());
}

#[test]
fn pinned_fast_domain_boundaries() {
    // The largest in-domain magnitude and its successor (which delegates to libm).
    let hi = 1.0e6;
    assert_close_abs(fast_cos(hi), hi.cos(), COS_ABS_BOUND, "cos at +1e6");
    assert_close_abs(fast_cos(-hi), (-hi).cos(), COS_ABS_BOUND, "cos at -1e6");
    let above = f64::from_bits(hi.to_bits() + 1);
    assert_eq!(fast_cos(above).to_bits(), above.cos().to_bits());
    assert_eq!(fast_cos(-above).to_bits(), (-above).cos().to_bits());

    assert_close_ulps(fast_exp(700.0), 700.0f64.exp(), EXP_ULP_BOUND, "exp at 700");
    assert_close_ulps(
        fast_exp(-700.0),
        (-700.0f64).exp(),
        EXP_ULP_BOUND,
        "exp at -700",
    );
    // Just past the domain: still finite for libm (exp overflows near 709.78).
    assert_eq!(fast_exp(709.0).to_bits(), 709.0f64.exp().to_bits());
    assert_eq!(fast_exp(-745.0).to_bits(), (-745.0f64).exp().to_bits());
}

#[test]
fn pinned_half_pi_neighborhood() {
    // cos(π/2 + δ) ≈ -δ: the reduced argument is ~1e-17, the sin polynomial's hardest
    // region for *relative* error — the contract is absolute, pin it explicitly.
    let half_pi = std::f64::consts::FRAC_PI_2;
    for &x in &[
        half_pi,
        -half_pi,
        3.0 * half_pi,
        1000.0 * half_pi,
        999_999.0 * half_pi / 2.0,
    ] {
        assert_close_abs(fast_cos(x), x.cos(), COS_ABS_BOUND, "cos at k*pi/2");
    }
}

#[test]
fn pinned_ln_cancellation_region() {
    // ln(1 ± ε): f = m − 1 is computed exactly; the result must track libm's tiny value.
    for &x in &[
        1.0 + f64::EPSILON,
        1.0 - f64::EPSILON / 2.0,
        0.999_999_999,
        1.000_000_001,
    ] {
        assert_close_ulps(fast_ln(x), x.ln(), LN_ULP_BOUND, "ln near 1");
    }
    assert_eq!(fast_ln(1.0).to_bits(), 0.0f64.to_bits());
}

// ---------------------------------------------------------------------------
// Distribution-level checks for the batched normal draws.
// ---------------------------------------------------------------------------

fn scalar_normal<R: RngCore>(rng: &mut R) -> f64 {
    // `rand_distr::StandardNormal`, verbatim.
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Two-sample Kolmogorov–Smirnov statistic.
fn ks_statistic(a: &mut [f64], b: &mut [f64]) -> f64 {
    a.sort_by(|x, y| x.partial_cmp(y).expect("finite draws"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("finite draws"));
    let (n, m) = (a.len(), b.len());
    let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
    while i < n && j < m {
        if a[i] <= b[j] {
            i += 1;
        } else {
            j += 1;
        }
        d = d.max((i as f64 / n as f64 - j as f64 / m as f64).abs());
    }
    d
}

#[test]
fn batched_normal_moments_match_standard_normal() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0001);
    let mut draws = vec![0.0; 100_000];
    fill_standard_normal(&mut rng, &mut draws);
    let n = draws.len() as f64;
    let mean = draws.iter().sum::<f64>() / n;
    let var = draws.iter().map(|z| (z - mean).powi(2)).sum::<f64>() / n;
    let skew = draws.iter().map(|z| (z - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
    assert!(mean.abs() < 0.01, "mean {mean}");
    assert!((var - 1.0).abs() < 0.02, "variance {var}");
    assert!(skew.abs() < 0.05, "skewness {skew}");
}

#[test]
fn batched_normal_ks_matches_scalar_path_on_same_stream() {
    // Same seed → same uniforms → the empirical CDFs are kernel-error apart: the KS
    // statistic collapses to (near) zero.
    let mut fast = vec![0.0; 20_000];
    fill_standard_normal(&mut StdRng::seed_from_u64(123), &mut fast);
    let mut exact_rng = StdRng::seed_from_u64(123);
    let mut exact: Vec<f64> = (0..20_000).map(|_| scalar_normal(&mut exact_rng)).collect();
    let d = ks_statistic(&mut fast, &mut exact);
    assert!(d <= 1e-4, "same-stream KS {d}");
}

#[test]
fn batched_normal_ks_matches_scalar_path_across_streams() {
    // Independent seeds: a conventional two-sample KS bound (n = m = 20000, the 0.001
    // critical value is ~0.0195; deterministic seeds, so this is a regression pin).
    let mut fast = vec![0.0; 20_000];
    fill_standard_normal(&mut StdRng::seed_from_u64(2024), &mut fast);
    let mut exact_rng = StdRng::seed_from_u64(977);
    let mut exact: Vec<f64> = (0..20_000).map(|_| scalar_normal(&mut exact_rng)).collect();
    let d = ks_statistic(&mut fast, &mut exact);
    assert!(d <= 0.02, "cross-stream KS {d}");
}

#[test]
fn lognormal_block_mean_matches_theory() {
    // E[exp(σZ)] = exp(σ²/2); σ = 0.2 keeps the tail mild enough for a tight check.
    let sigma = 0.2f64;
    let mut rng = StdRng::seed_from_u64(55);
    let mut stream = LogNormalBlock::new(sigma);
    let n = 200_000;
    let mean = (0..n).map(|_| stream.next_factor(&mut rng)).sum::<f64>() / n as f64;
    let theory = (sigma * sigma / 2.0).exp();
    assert!(
        (mean - theory).abs() < 0.005,
        "lognormal mean {mean} vs {theory}"
    );
}

#[test]
fn per_draw_error_bound_against_scalar_path() {
    // The documented per-draw bound: same uniforms, |fast − exact| <= 1e-9.
    let mut fast = vec![0.0; 4096];
    fill_standard_normal(&mut StdRng::seed_from_u64(7), &mut fast);
    let mut exact_rng = StdRng::seed_from_u64(7);
    let mut stats = ErrorStats::new("batched normal vs scalar Box-Muller");
    for (i, &z) in fast.iter().enumerate() {
        stats.record(i as f64, z, scalar_normal(&mut exact_rng));
    }
    stats.assert_max_abs(1e-9);
}
