//! Property-based tests for the multi-objective optimization toolkit.

use moo::dominance::{
    compare, dominates, fast_non_dominated_sort, non_dominated_indices, Dominance,
};
use moo::front::ParetoFront;
use moo::hypervolume::hypervolume;
use proptest::prelude::*;

fn point_strategy(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..10.0, dim)
}

fn points_strategy(dim: usize, max_points: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(point_strategy(dim), 1..max_points)
}

proptest! {
    #[test]
    fn dominance_is_irreflexive(p in point_strategy(3)) {
        prop_assert!(!dominates(&p, &p));
    }

    #[test]
    fn dominance_is_antisymmetric(a in point_strategy(3), b in point_strategy(3)) {
        if dominates(&a, &b) {
            prop_assert!(!dominates(&b, &a));
        }
    }

    #[test]
    fn compare_is_consistent_with_dominates(a in point_strategy(2), b in point_strategy(2)) {
        match compare(&a, &b) {
            Dominance::Dominates => prop_assert!(dominates(&a, &b)),
            Dominance::DominatedBy => prop_assert!(dominates(&b, &a)),
            Dominance::Indifferent => {
                prop_assert!(!dominates(&a, &b));
                prop_assert!(!dominates(&b, &a));
            }
        }
    }

    #[test]
    fn non_dominated_matches_brute_force(points in points_strategy(3, 12)) {
        let fast = non_dominated_indices(&points);
        // Brute force: point i is non-dominated iff no j dominates it.
        let brute: Vec<usize> = (0..points.len())
            .filter(|&i| !points.iter().enumerate().any(|(j, q)| j != i && dominates(q, &points[i])))
            .collect();
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn front_zero_of_fast_sort_is_non_dominated_set(points in points_strategy(2, 14)) {
        let ranks = fast_non_dominated_sort(&points);
        let front0: Vec<usize> = ranks.iter().enumerate().filter(|(_, &r)| r == 0).map(|(i, _)| i).collect();
        prop_assert_eq!(front0, non_dominated_indices(&points));
    }

    #[test]
    fn pareto_front_members_are_mutually_non_dominated(points in points_strategy(2, 20)) {
        let mut front = ParetoFront::new(2);
        for (i, p) in points.iter().enumerate() {
            front.insert(p.clone(), i);
        }
        let values = front.objective_values();
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(a, b), "front contains dominated pair");
                }
            }
        }
    }

    #[test]
    fn pareto_front_contains_every_non_dominated_input(points in points_strategy(2, 16)) {
        let mut front = ParetoFront::new(2);
        for (i, p) in points.iter().enumerate() {
            front.insert(p.clone(), i);
        }
        // Every non-dominated, non-duplicate input must be present in the archive.
        let values = front.objective_values();
        for &i in &non_dominated_indices(&points) {
            let p = &points[i];
            prop_assert!(values.iter().any(|v| v == p));
        }
    }

    #[test]
    fn hypervolume_is_monotone_under_insertion(
        points in points_strategy(2, 10),
        extra in point_strategy(2),
    ) {
        let reference = [12.0, 12.0];
        let base = hypervolume(points.clone(), &reference);
        let mut more = points;
        more.push(extra);
        let larger = hypervolume(more, &reference);
        prop_assert!(larger + 1e-9 >= base, "hypervolume decreased: {} -> {}", base, larger);
    }

    #[test]
    fn hypervolume_is_bounded_by_reference_box(points in points_strategy(2, 10)) {
        let reference = [10.0, 10.0];
        let hv = hypervolume(points, &reference);
        prop_assert!(hv >= 0.0);
        prop_assert!(hv <= 100.0 + 1e-9);
    }

    #[test]
    fn hypervolume_invariant_to_dominated_points(points in points_strategy(2, 10)) {
        let reference = [11.0, 11.0];
        let hv_all = hypervolume(points.clone(), &reference);
        let nd: Vec<Vec<f64>> = non_dominated_indices(&points).into_iter().map(|i| points[i].clone()).collect();
        let hv_nd = hypervolume(nd, &reference);
        prop_assert!((hv_all - hv_nd).abs() < 1e-9);
    }

    #[test]
    fn hv3d_equals_product_for_single_point(p in point_strategy(3)) {
        let reference = [11.0, 11.0, 11.0];
        let expected: f64 = p.iter().zip(&reference).map(|(v, r)| r - v).product();
        let hv = hypervolume(vec![p], &reference);
        prop_assert!((hv - expected).abs() < 1e-9);
    }
}
