//! Incrementally maintained Pareto-front archive.

use crate::dominance::dominates;

/// A single entry of a [`ParetoFront`]: an objective vector plus a user-supplied tag.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEntry<T> {
    /// Objective values of the entry (minimization).
    pub objectives: Vec<f64>,
    /// User payload, e.g. the policy parameters that produced the objectives.
    pub tag: T,
}

/// Non-dominated archive of objective vectors with attached payloads.
///
/// Used throughout the workspace to accumulate the Pareto-frontier DRM policies found during
/// a PaRMIS/RL/IL run: the tag carries the policy parameters, the objective vector carries
/// (execution time, energy) or (execution time, -PPW), always as minimization objectives.
///
/// # Examples
///
/// ```
/// use moo::ParetoFront;
///
/// let mut front: ParetoFront<&str> = ParetoFront::new(2);
/// assert!(front.insert(vec![2.0, 2.0], "balanced"));
/// assert!(front.insert(vec![1.0, 4.0], "fast"));
/// assert!(!front.insert(vec![3.0, 3.0], "dominated"));
/// assert_eq!(front.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ParetoFront<T> {
    dim: usize,
    entries: Vec<FrontEntry<T>>,
}

impl<T> ParetoFront<T> {
    /// Creates an empty front for objective vectors of length `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "objective dimension must be positive");
        ParetoFront {
            dim,
            entries: Vec::new(),
        }
    }

    /// Number of objectives tracked by the front.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of non-dominated entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the front holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Attempts to insert a point. Returns `true` if the point was added (i.e. it is not
    /// dominated by any archived point); dominated archive members are evicted.
    ///
    /// Points equal to an existing entry are treated as dominated and rejected, keeping the
    /// archive free of duplicates.
    ///
    /// # Panics
    ///
    /// Panics if `objectives.len() != self.dim()` or if any value is NaN.
    pub fn insert(&mut self, objectives: Vec<f64>, tag: T) -> bool {
        assert_eq!(
            objectives.len(),
            self.dim,
            "objective vector has wrong dimension"
        );
        assert!(
            objectives.iter().all(|v| !v.is_nan()),
            "objective values must not be NaN"
        );
        for e in &self.entries {
            if dominates(&e.objectives, &objectives) || e.objectives == objectives {
                return false;
            }
        }
        self.entries
            .retain(|e| !dominates(&objectives, &e.objectives));
        self.entries.push(FrontEntry { objectives, tag });
        true
    }

    /// Returns `true` if `objectives` would be accepted by [`insert`](Self::insert) without
    /// modifying the front.
    pub fn would_accept(&self, objectives: &[f64]) -> bool {
        assert_eq!(objectives.len(), self.dim);
        !self
            .entries
            .iter()
            .any(|e| dominates(&e.objectives, objectives) || e.objectives == objectives)
    }

    /// Iterates over the archived entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &FrontEntry<T>> {
        self.entries.iter()
    }

    /// Returns the archived objective vectors.
    pub fn objective_values(&self) -> Vec<Vec<f64>> {
        self.entries.iter().map(|e| e.objectives.clone()).collect()
    }

    /// Returns the archived tags in insertion order.
    pub fn tags(&self) -> Vec<&T> {
        self.entries.iter().map(|e| &e.tag).collect()
    }

    /// Consumes the front and returns its entries.
    pub fn into_entries(self) -> Vec<FrontEntry<T>> {
        self.entries
    }

    /// Returns, for each objective, the worst (maximum) archived value. Useful for choosing a
    /// hypervolume reference point. Returns `None` when the front is empty.
    pub fn nadir(&self) -> Option<Vec<f64>> {
        if self.entries.is_empty() {
            return None;
        }
        let mut worst = vec![f64::NEG_INFINITY; self.dim];
        for e in &self.entries {
            for (w, v) in worst.iter_mut().zip(&e.objectives) {
                *w = w.max(*v);
            }
        }
        Some(worst)
    }

    /// Returns, for each objective, the best (minimum) archived value (the ideal point).
    /// Returns `None` when the front is empty.
    pub fn ideal(&self) -> Option<Vec<f64>> {
        if self.entries.is_empty() {
            return None;
        }
        let mut best = vec![f64::INFINITY; self.dim];
        for e in &self.entries {
            for (b, v) in best.iter_mut().zip(&e.objectives) {
                *b = b.min(*v);
            }
        }
        Some(best)
    }

    /// Returns the entry whose objectives minimize the supplied scalarization, or `None` for
    /// an empty front. This is the runtime policy-selection step of the paper (§V-A): given a
    /// user preference expressed as a scalarization, pick the matching Pareto policy.
    pub fn select_by<F: Fn(&[f64]) -> f64>(&self, score: F) -> Option<&FrontEntry<T>> {
        self.entries.iter().min_by(|a, b| {
            score(&a.objectives)
                .partial_cmp(&score(&b.objectives))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

impl<T> Extend<(Vec<f64>, T)> for ParetoFront<T> {
    fn extend<I: IntoIterator<Item = (Vec<f64>, T)>>(&mut self, iter: I) {
        for (obj, tag) in iter {
            self.insert(obj, tag);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_only_non_dominated() {
        let mut f = ParetoFront::new(2);
        assert!(f.insert(vec![5.0, 5.0], 'a'));
        assert!(f.insert(vec![1.0, 6.0], 'b'));
        // Dominates 'a': evicts it.
        assert!(f.insert(vec![4.0, 4.0], 'c'));
        assert_eq!(f.len(), 2);
        assert!(!f.iter().any(|e| e.tag == 'a'));
        // Dominated: rejected.
        assert!(!f.insert(vec![4.5, 4.5], 'd'));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn duplicate_points_rejected() {
        let mut f = ParetoFront::new(2);
        assert!(f.insert(vec![1.0, 2.0], 0));
        assert!(!f.insert(vec![1.0, 2.0], 1));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn would_accept_matches_insert_behaviour() {
        let mut f = ParetoFront::new(2);
        f.insert(vec![2.0, 2.0], ());
        assert!(f.would_accept(&[1.0, 3.0]));
        assert!(!f.would_accept(&[3.0, 3.0]));
        assert!(!f.would_accept(&[2.0, 2.0]));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn nadir_and_ideal() {
        let mut f = ParetoFront::new(2);
        assert!(f.nadir().is_none());
        assert!(f.ideal().is_none());
        f.insert(vec![1.0, 4.0], ());
        f.insert(vec![3.0, 2.0], ());
        assert_eq!(f.nadir().unwrap(), vec![3.0, 4.0]);
        assert_eq!(f.ideal().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn select_by_weighted_sum() {
        let mut f = ParetoFront::new(2);
        f.insert(vec![1.0, 10.0], "perf");
        f.insert(vec![10.0, 1.0], "energy");
        let perf_pref = f.select_by(|o| 0.9 * o[0] + 0.1 * o[1]).unwrap();
        assert_eq!(perf_pref.tag, "perf");
        let energy_pref = f.select_by(|o| 0.1 * o[0] + 0.9 * o[1]).unwrap();
        assert_eq!(energy_pref.tag, "energy");
    }

    #[test]
    fn extend_inserts_all() {
        let mut f = ParetoFront::new(2);
        f.extend(vec![
            (vec![1.0, 5.0], 0),
            (vec![5.0, 1.0], 1),
            (vec![6.0, 6.0], 2),
        ]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.tags().len(), 2);
    }

    #[test]
    #[should_panic]
    fn insert_rejects_nan() {
        let mut f = ParetoFront::new(2);
        f.insert(vec![f64::NAN, 1.0], ());
    }

    #[test]
    #[should_panic]
    fn zero_dim_front_panics() {
        let _: ParetoFront<()> = ParetoFront::new(0);
    }
}
