//! Pareto-dominance relations for minimization problems.
//!
//! Following the paper's definition (§II): a point `a` Pareto-dominates `b` when
//! `a_i <= b_i` for all objectives `i` and `a_j < b_j` for at least one `j`.

/// Outcome of comparing two objective vectors under Pareto dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dominance {
    /// The first vector dominates the second.
    Dominates,
    /// The second vector dominates the first.
    DominatedBy,
    /// Neither vector dominates the other (they are incomparable or equal).
    Indifferent,
}

/// Returns `true` if `a` Pareto-dominates `b` (minimization).
///
/// # Panics
///
/// Panics if the vectors have different lengths or are empty.
///
/// # Examples
///
/// ```
/// assert!(moo::dominates(&[1.0, 2.0], &[2.0, 3.0]));
/// assert!(!moo::dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal points do not dominate
/// assert!(!moo::dominates(&[1.0, 4.0], &[2.0, 3.0])); // trade-off: incomparable
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert!(!a.is_empty(), "objective vectors must be non-empty");
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Compares two objective vectors and returns their [`Dominance`] relation.
///
/// # Panics
///
/// Panics if the vectors have different lengths or are empty.
pub fn compare(a: &[f64], b: &[f64]) -> Dominance {
    if dominates(a, b) {
        Dominance::Dominates
    } else if dominates(b, a) {
        Dominance::DominatedBy
    } else {
        Dominance::Indifferent
    }
}

/// Returns the indices of the non-dominated points in `points`.
///
/// Duplicated points are all retained (none of them dominates the others). The result is
/// sorted in ascending index order.
///
/// # Panics
///
/// Panics if the points do not all share the same dimension.
///
/// # Examples
///
/// ```
/// let pts = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![3.0, 3.0]];
/// assert_eq!(moo::non_dominated_indices(&pts), vec![0, 1]);
/// ```
pub fn non_dominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut result = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && dominates(q, p) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

/// Filters `points` down to its non-dominated subset, preserving order.
pub fn non_dominated(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    non_dominated_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Fast non-dominated sorting (Deb et al., NSGA-II): partitions `points` into fronts.
///
/// Front 0 contains the non-dominated points, front 1 the points only dominated by front 0,
/// and so on. Returns the front index of every point.
///
/// # Panics
///
/// Panics if the points do not all share the same dimension.
pub fn fast_non_dominated_sort(points: &[Vec<f64>]) -> Vec<usize> {
    let n = points.len();
    let mut domination_count = vec![0usize; n];
    let mut dominated_sets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut rank = vec![0usize; n];
    let mut current_front: Vec<usize> = Vec::new();

    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&points[i], &points[j]) {
                dominated_sets[i].push(j);
            } else if dominates(&points[j], &points[i]) {
                domination_count[i] += 1;
            }
        }
        if domination_count[i] == 0 {
            rank[i] = 0;
            current_front.push(i);
        }
    }

    let mut front_idx = 0;
    while !current_front.is_empty() {
        let mut next_front = Vec::new();
        for &i in &current_front {
            for &j in &dominated_sets[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    rank[j] = front_idx + 1;
                    next_front.push(j);
                }
            }
        }
        front_idx += 1;
        current_front = next_front;
    }
    rank
}

/// Crowding distance of every point **within a single front** (Deb et al.).
///
/// Boundary points of every objective get infinite distance; interior points get the sum of
/// normalized neighbour gaps. Larger values indicate less crowded points.
///
/// # Panics
///
/// Panics if the points do not all share the same dimension.
pub fn crowding_distance(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = points[0].len();
    let mut distance = vec![0.0; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    // `obj` indexes a column across every point; an iterator over `points` cannot express
    // that access pattern.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..k {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            points[a][obj]
                .partial_cmp(&points[b][obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let min_v = points[order[0]][obj];
        let max_v = points[order[n - 1]][obj];
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        let span = max_v - min_v;
        if span <= f64::EPSILON {
            continue;
        }
        for w in 1..(n - 1) {
            let prev = points[order[w - 1]][obj];
            let next = points[order[w + 1]][obj];
            distance[order[w]] += (next - prev) / span;
        }
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_basic_cases() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    fn compare_is_antisymmetric() {
        assert_eq!(compare(&[1.0, 1.0], &[2.0, 2.0]), Dominance::Dominates);
        assert_eq!(compare(&[2.0, 2.0], &[1.0, 1.0]), Dominance::DominatedBy);
        assert_eq!(compare(&[1.0, 3.0], &[3.0, 1.0]), Dominance::Indifferent);
        assert_eq!(compare(&[1.0, 1.0], &[1.0, 1.0]), Dominance::Indifferent);
    }

    #[test]
    #[should_panic]
    fn dominates_rejects_length_mismatch() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn non_dominated_filters_interior_points() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 4.0], // dominated by (2, 3)
            vec![4.0, 1.0],
            vec![2.0, 3.0], // duplicate of index 1: kept
        ];
        let idx = non_dominated_indices(&pts);
        assert_eq!(idx, vec![0, 1, 3, 4]);
        assert_eq!(non_dominated(&pts).len(), 4);
    }

    #[test]
    fn non_dominated_single_point() {
        let pts = vec![vec![1.0, 2.0, 3.0]];
        assert_eq!(non_dominated_indices(&pts), vec![0]);
    }

    #[test]
    fn fast_sort_ranks_layered_fronts() {
        let pts = vec![
            vec![1.0, 1.0], // front 0 (dominates everything)
            vec![2.0, 2.0], // front 1
            vec![3.0, 3.0], // front 2
            vec![1.5, 2.5], // front 1 (dominated only by front 0)
        ];
        let ranks = fast_non_dominated_sort(&pts);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[1], 1);
        assert_eq!(ranks[2], 2);
        assert_eq!(ranks[3], 1);
    }

    #[test]
    fn fast_sort_front0_matches_non_dominated() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 4.0],
            vec![4.0, 1.0],
        ];
        let ranks = fast_non_dominated_sort(&pts);
        let front0: Vec<usize> = ranks
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(front0, non_dominated_indices(&pts));
    }

    #[test]
    fn crowding_distance_boundaries_are_infinite() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![4.0, 1.0],
        ];
        let d = crowding_distance(&pts);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_distance_small_fronts_are_infinite() {
        assert!(crowding_distance(&[vec![1.0, 2.0]])
            .iter()
            .all(|d| d.is_infinite()));
        assert!(crowding_distance(&[vec![1.0, 2.0], vec![2.0, 1.0]])
            .iter()
            .all(|d| d.is_infinite()));
        assert!(crowding_distance(&[]).is_empty());
    }

    #[test]
    fn crowding_distance_identical_objective_column() {
        // Degenerate span in one objective must not produce NaN.
        let pts = vec![vec![1.0, 1.0], vec![2.0, 1.0], vec![3.0, 1.0]];
        let d = crowding_distance(&pts);
        assert!(d.iter().all(|v| !v.is_nan()));
    }
}
