//! Pareto-dominance relations for minimization problems.
//!
//! Following the paper's definition (§II): a point `a` Pareto-dominates `b` when
//! `a_i <= b_i` for all objectives `i` and `a_j < b_j` for at least one `j`.

/// Outcome of comparing two objective vectors under Pareto dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dominance {
    /// The first vector dominates the second.
    Dominates,
    /// The second vector dominates the first.
    DominatedBy,
    /// Neither vector dominates the other (they are incomparable or equal).
    Indifferent,
}

/// Returns `true` if `a` Pareto-dominates `b` (minimization).
///
/// # Panics
///
/// Panics if the vectors have different lengths or are empty.
///
/// # Examples
///
/// ```
/// assert!(moo::dominates(&[1.0, 2.0], &[2.0, 3.0]));
/// assert!(!moo::dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal points do not dominate
/// assert!(!moo::dominates(&[1.0, 4.0], &[2.0, 3.0])); // trade-off: incomparable
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert!(!a.is_empty(), "objective vectors must be non-empty");
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Compares two objective vectors and returns their [`Dominance`] relation.
///
/// # Panics
///
/// Panics if the vectors have different lengths or are empty.
pub fn compare(a: &[f64], b: &[f64]) -> Dominance {
    if dominates(a, b) {
        Dominance::Dominates
    } else if dominates(b, a) {
        Dominance::DominatedBy
    } else {
        Dominance::Indifferent
    }
}

/// Returns the indices of the non-dominated points in `points`.
///
/// Duplicated points are all retained (none of them dominates the others). The result is
/// sorted in ascending index order.
///
/// # Panics
///
/// Panics if the points do not all share the same dimension.
///
/// # Examples
///
/// ```
/// let pts = vec![vec![1.0, 4.0], vec![2.0, 2.0], vec![3.0, 3.0]];
/// assert_eq!(moo::non_dominated_indices(&pts), vec![0, 1]);
/// ```
pub fn non_dominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut result = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && dominates(q, p) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

/// Filters `points` down to its non-dominated subset, preserving order.
pub fn non_dominated(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    non_dominated_indices(points)
        .into_iter()
        .map(|i| points[i].clone())
        .collect()
}

/// Fast non-dominated sorting (Deb et al., NSGA-II): partitions `points` into fronts.
///
/// Front 0 contains the non-dominated points, front 1 the points only dominated by front 0,
/// and so on. Returns the front index of every point.
///
/// # Panics
///
/// Panics if the points do not all share the same dimension.
pub fn fast_non_dominated_sort(points: &[Vec<f64>]) -> Vec<usize> {
    let n = points.len();
    let mut domination_count = vec![0usize; n];
    let mut dominated_sets: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut rank = vec![0usize; n];
    let mut current_front: Vec<usize> = Vec::new();

    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&points[i], &points[j]) {
                dominated_sets[i].push(j);
            } else if dominates(&points[j], &points[i]) {
                domination_count[i] += 1;
            }
        }
        if domination_count[i] == 0 {
            rank[i] = 0;
            current_front.push(i);
        }
    }

    let mut front_idx = 0;
    while !current_front.is_empty() {
        let mut next_front = Vec::new();
        for &i in &current_front {
            for &j in &dominated_sets[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    rank[j] = front_idx + 1;
                    next_front.push(j);
                }
            }
        }
        front_idx += 1;
        current_front = next_front;
    }
    rank
}

/// Crowding distance of every point **within a single front** (Deb et al.).
///
/// Boundary points of every objective get infinite distance; interior points get the sum of
/// normalized neighbour gaps. Larger values indicate less crowded points.
///
/// # Panics
///
/// Panics if the points do not all share the same dimension.
pub fn crowding_distance(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = points[0].len();
    let mut distance = vec![0.0; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    // `obj` indexes a column across every point; an iterator over `points` cannot express
    // that access pattern.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..k {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            points[a][obj]
                .partial_cmp(&points[b][obj])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let min_v = points[order[0]][obj];
        let max_v = points[order[n - 1]][obj];
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        let span = max_v - min_v;
        if span <= f64::EPSILON {
            continue;
        }
        for w in 1..(n - 1) {
            let prev = points[order[w - 1]][obj];
            let next = points[order[w + 1]][obj];
            distance[order[w]] += (next - prev) / span;
        }
    }
    distance
}

/// Returns `true` if the `a`-th row of the flat objective block dominates the `b`-th.
///
/// Identical relation to [`dominates`], expressed over a row-major `count × k` block with
/// the length assertions hoisted out of the pairwise loop (the caller validates the block
/// shape once).
#[inline]
fn dominates_rows(objectives: &[f64], k: usize, a: usize, b: usize) -> bool {
    let a = &objectives[a * k..(a + 1) * k];
    let b = &objectives[b * k..(b + 1) * k];
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Compares two objective rows in both directions with a single pass: returns
/// `(a dominates b, b dominates a)`.
///
/// One pass replaces the seed's two [`dominates`] calls per point pair — the relation is
/// identical, the work is halved.
#[inline]
fn compare_rows(a: &[f64], b: &[f64]) -> (bool, bool) {
    let mut a_less = false;
    let mut b_less = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            a_less = true;
        } else if y < x {
            b_less = true;
        }
    }
    (a_less && !b_less, b_less && !a_less)
}

/// Reusable buffers for [`fast_non_dominated_sort_flat`] and [`per_front_crowding_flat`].
///
/// All members retain their capacity across calls, so a warm scratch performs both passes
/// with zero heap allocation — the property the NSGA-II engine's per-generation loop is
/// built on.
#[derive(Debug, Clone, Default)]
pub struct DominanceScratch {
    /// How many points dominate point `i` (not yet assigned to a front).
    domination_count: Vec<usize>,
    /// For each point, the points it dominates. Inner vectors are cleared, never dropped.
    dominated: Vec<Vec<usize>>,
    /// Front currently being expanded.
    current_front: Vec<usize>,
    /// Front discovered while expanding `current_front`.
    next_front: Vec<usize>,
    /// Member indices of one front (crowding pass).
    members: Vec<usize>,
    /// Member indices sorted by one objective column (crowding pass).
    order: Vec<usize>,
    /// Merge buffer of the stable index sort.
    merge: Vec<usize>,
}

/// [`fast_non_dominated_sort`] over a row-major flat objective block.
///
/// Writes the front index of every point into `ranks` (resized to `count`). Produces
/// exactly the ranks of the `Vec<Vec<f64>>` version; with a warm `scratch` it allocates
/// nothing.
///
/// # Panics
///
/// Panics if `objectives.len() != count * k` or `k == 0` (for `count > 0`).
pub fn fast_non_dominated_sort_flat(
    objectives: &[f64],
    count: usize,
    k: usize,
    ranks: &mut Vec<usize>,
    scratch: &mut DominanceScratch,
) {
    assert_eq!(objectives.len(), count * k, "flat objective block shape");
    assert!(k > 0 || count == 0, "objective vectors must be non-empty");
    crate::stats::record_flat_sort();
    crate::stats::record_dominance_comparisons((count * count.saturating_sub(1) / 2) as u64);

    ranks.clear();
    ranks.resize(count, 0);
    scratch.domination_count.clear();
    scratch.domination_count.resize(count, 0);
    if scratch.dominated.len() < count {
        scratch.dominated.resize_with(count, Vec::new);
    }
    for set in scratch.dominated.iter_mut().take(count) {
        set.clear();
    }
    scratch.current_front.clear();

    // Every unordered pair once, both directions per pass. The dominated-set *order*
    // differs from the seed's all-`j` sweep, but the peeling below assigns each point the
    // same front index regardless of the order its dominators release it.
    if k == 2 {
        // Bi-objective fast path (the PaRMIS trade-off shape): both rows live in
        // registers and the per-pair relation reduces to four branchless compares.
        for i in 0..count {
            let (i0, i1) = (objectives[i * 2], objectives[i * 2 + 1]);
            for j in (i + 1)..count {
                let (j0, j1) = (objectives[j * 2], objectives[j * 2 + 1]);
                let i_less = (i0 < j0) | (i1 < j1);
                let j_less = (j0 < i0) | (j1 < i1);
                if i_less & !j_less {
                    scratch.dominated[i].push(j);
                    scratch.domination_count[j] += 1;
                } else if j_less & !i_less {
                    scratch.dominated[j].push(i);
                    scratch.domination_count[i] += 1;
                }
            }
        }
    } else {
        for i in 0..count {
            let row_i = &objectives[i * k..(i + 1) * k];
            for j in (i + 1)..count {
                let row_j = &objectives[j * k..(j + 1) * k];
                let (i_dominates, j_dominates) = compare_rows(row_i, row_j);
                if i_dominates {
                    scratch.dominated[i].push(j);
                    scratch.domination_count[j] += 1;
                } else if j_dominates {
                    scratch.dominated[j].push(i);
                    scratch.domination_count[i] += 1;
                }
            }
        }
    }
    for (i, rank) in ranks.iter_mut().enumerate() {
        if scratch.domination_count[i] == 0 {
            *rank = 0;
            scratch.current_front.push(i);
        }
    }

    let mut front_idx = 0;
    while !scratch.current_front.is_empty() {
        scratch.next_front.clear();
        for idx in 0..scratch.current_front.len() {
            let i = scratch.current_front[idx];
            for idx_j in 0..scratch.dominated[i].len() {
                let j = scratch.dominated[i][idx_j];
                scratch.domination_count[j] -= 1;
                if scratch.domination_count[j] == 0 {
                    ranks[j] = front_idx + 1;
                    scratch.next_front.push(j);
                }
            }
        }
        front_idx += 1;
        std::mem::swap(&mut scratch.current_front, &mut scratch.next_front);
    }
}

/// Per-front crowding distance over a row-major flat objective block.
///
/// `ranks` must come from [`fast_non_dominated_sort_flat`] on the same block. Writes the
/// crowding distance of every point into `crowding` (resized to `count`), bit-identical to
/// `crowding_distance` applied front by front: boundary points are *assigned*
/// `f64::INFINITY`, interior points *accumulate* normalized neighbour gaps in objective
/// order, and fronts of one or two members are entirely infinite. With a warm `scratch` it
/// allocates nothing.
pub fn per_front_crowding_flat(
    objectives: &[f64],
    count: usize,
    k: usize,
    ranks: &[usize],
    crowding: &mut Vec<f64>,
    scratch: &mut DominanceScratch,
) {
    assert_eq!(objectives.len(), count * k, "flat objective block shape");
    assert_eq!(ranks.len(), count, "one rank per point");
    crowding.clear();
    crowding.resize(count, 0.0);
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for front in 0..=max_rank {
        scratch.members.clear();
        scratch
            .members
            .extend((0..count).filter(|&i| ranks[i] == front));
        let n = scratch.members.len();
        if n == 0 {
            continue;
        }
        if n <= 2 {
            for &m in &scratch.members {
                crowding[m] = f64::INFINITY;
            }
            continue;
        }
        for obj in 0..k {
            scratch.order.clear();
            scratch.order.extend_from_slice(&scratch.members);
            // Stable sort by the objective column: same permutation as the seed path's
            // stable `sort_by` under the same NaN-tolerant comparator, without its
            // allocation.
            stable_sort_indices(&mut scratch.order, &mut scratch.merge, |a, b| {
                objectives[a * k + obj]
                    .partial_cmp(&objectives[b * k + obj])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let order = &scratch.order;
            let min_v = objectives[order[0] * k + obj];
            let max_v = objectives[order[n - 1] * k + obj];
            crowding[order[0]] = f64::INFINITY;
            crowding[order[n - 1]] = f64::INFINITY;
            let span = max_v - min_v;
            if span <= f64::EPSILON {
                continue;
            }
            for w in 1..(n - 1) {
                let prev = objectives[order[w - 1] * k + obj];
                let next = objectives[order[w + 1] * k + obj];
                crowding[order[w]] += (next - prev) / span;
            }
        }
    }
}

/// Indices of the non-dominated rows of a flat objective block, ascending, appended to
/// `out` after clearing it. Matches [`non_dominated_indices`] exactly.
pub fn non_dominated_indices_flat(
    objectives: &[f64],
    count: usize,
    k: usize,
    out: &mut Vec<usize>,
) {
    assert_eq!(objectives.len(), count * k, "flat objective block shape");
    out.clear();
    'outer: for i in 0..count {
        for j in 0..count {
            if i != j && dominates_rows(objectives, k, j, i) {
                continue 'outer;
            }
        }
        out.push(i);
    }
}

/// Stable sort of an index buffer against a caller-owned merge scratch.
///
/// Bottom-up merge sort over insertion-sorted runs. Stability makes the result the
/// *unique* stably-sorted permutation for a given comparator, which is what lets the flat
/// engine reproduce `slice::sort_by` (a stable merge sort that allocates its own buffer)
/// without allocating once `scratch` is warm.
pub(crate) fn stable_sort_indices<F: FnMut(usize, usize) -> std::cmp::Ordering>(
    v: &mut [usize],
    scratch: &mut Vec<usize>,
    mut cmp: F,
) {
    const RUN: usize = 16;
    let n = v.len();
    // Insertion-sort short runs (stable); short inputs are done after this pass.
    let mut start = 0;
    while start < n {
        let end = (start + RUN).min(n);
        for i in (start + 1)..end {
            let x = v[i];
            let mut j = i;
            while j > start && cmp(x, v[j - 1]) == std::cmp::Ordering::Less {
                v[j] = v[j - 1];
                j -= 1;
            }
            v[j] = x;
        }
        start = end;
    }
    if n <= RUN {
        return;
    }
    scratch.clear();
    scratch.resize(n, 0);
    let mut width = RUN;
    while width < n {
        let mut start = 0;
        while start + width < n {
            let mid = start + width;
            let end = (start + 2 * width).min(n);
            // Merge v[start..mid] and v[mid..end] into the scratch, taking the left run on
            // ties (stability), then copy back.
            let (mut l, mut r, mut o) = (start, mid, start);
            while l < mid && r < end {
                if cmp(v[r], v[l]) == std::cmp::Ordering::Less {
                    scratch[o] = v[r];
                    r += 1;
                } else {
                    scratch[o] = v[l];
                    l += 1;
                }
                o += 1;
            }
            let left_remaining = mid - l;
            scratch[o..o + left_remaining].copy_from_slice(&v[l..mid]);
            scratch[o + left_remaining..end].copy_from_slice(&v[r..end]);
            v[start..end].copy_from_slice(&scratch[start..end]);
            start = end;
        }
        width *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_basic_cases() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    fn compare_is_antisymmetric() {
        assert_eq!(compare(&[1.0, 1.0], &[2.0, 2.0]), Dominance::Dominates);
        assert_eq!(compare(&[2.0, 2.0], &[1.0, 1.0]), Dominance::DominatedBy);
        assert_eq!(compare(&[1.0, 3.0], &[3.0, 1.0]), Dominance::Indifferent);
        assert_eq!(compare(&[1.0, 1.0], &[1.0, 1.0]), Dominance::Indifferent);
    }

    #[test]
    #[should_panic]
    fn dominates_rejects_length_mismatch() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn non_dominated_filters_interior_points() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 4.0], // dominated by (2, 3)
            vec![4.0, 1.0],
            vec![2.0, 3.0], // duplicate of index 1: kept
        ];
        let idx = non_dominated_indices(&pts);
        assert_eq!(idx, vec![0, 1, 3, 4]);
        assert_eq!(non_dominated(&pts).len(), 4);
    }

    #[test]
    fn non_dominated_single_point() {
        let pts = vec![vec![1.0, 2.0, 3.0]];
        assert_eq!(non_dominated_indices(&pts), vec![0]);
    }

    #[test]
    fn fast_sort_ranks_layered_fronts() {
        let pts = vec![
            vec![1.0, 1.0], // front 0 (dominates everything)
            vec![2.0, 2.0], // front 1
            vec![3.0, 3.0], // front 2
            vec![1.5, 2.5], // front 1 (dominated only by front 0)
        ];
        let ranks = fast_non_dominated_sort(&pts);
        assert_eq!(ranks[0], 0);
        assert_eq!(ranks[1], 1);
        assert_eq!(ranks[2], 2);
        assert_eq!(ranks[3], 1);
    }

    #[test]
    fn fast_sort_front0_matches_non_dominated() {
        let pts = vec![
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 4.0],
            vec![4.0, 1.0],
        ];
        let ranks = fast_non_dominated_sort(&pts);
        let front0: Vec<usize> = ranks
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == 0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(front0, non_dominated_indices(&pts));
    }

    #[test]
    fn crowding_distance_boundaries_are_infinite() {
        let pts = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![4.0, 1.0],
        ];
        let d = crowding_distance(&pts);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_distance_small_fronts_are_infinite() {
        assert!(crowding_distance(&[vec![1.0, 2.0]])
            .iter()
            .all(|d| d.is_infinite()));
        assert!(crowding_distance(&[vec![1.0, 2.0], vec![2.0, 1.0]])
            .iter()
            .all(|d| d.is_infinite()));
        assert!(crowding_distance(&[]).is_empty());
    }

    #[test]
    fn crowding_distance_identical_objective_column() {
        // Degenerate span in one objective must not produce NaN.
        let pts = vec![vec![1.0, 1.0], vec![2.0, 1.0], vec![3.0, 1.0]];
        let d = crowding_distance(&pts);
        assert!(d.iter().all(|v| !v.is_nan()));
    }

    fn flatten(points: &[Vec<f64>]) -> (Vec<f64>, usize, usize) {
        let k = points.first().map_or(0, Vec::len);
        let flat: Vec<f64> = points.iter().flatten().copied().collect();
        (flat, points.len(), k)
    }

    /// Mixed fronts with duplicated points and a constant column — the flat pass must be
    /// bit-identical to the nested seed helpers.
    fn awkward_points() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 5.0, 2.0],
            vec![2.0, 3.0, 2.0],
            vec![3.0, 4.0, 2.0],
            vec![4.0, 1.0, 2.0],
            vec![2.0, 3.0, 2.0],
            vec![5.0, 5.0, 2.0],
            vec![1.0, 5.0, 2.0],
        ]
    }

    #[test]
    fn flat_sort_matches_nested_sort() {
        let points = awkward_points();
        let (flat, n, k) = flatten(&points);
        let mut ranks = Vec::new();
        let mut scratch = DominanceScratch::default();
        fast_non_dominated_sort_flat(&flat, n, k, &mut ranks, &mut scratch);
        assert_eq!(ranks, fast_non_dominated_sort(&points));
        // A warm scratch must reproduce the result (buffers are reset, not stale).
        fast_non_dominated_sort_flat(&flat, n, k, &mut ranks, &mut scratch);
        assert_eq!(ranks, fast_non_dominated_sort(&points));
    }

    #[test]
    fn flat_crowding_matches_per_front_nested_crowding() {
        let points = awkward_points();
        let (flat, n, k) = flatten(&points);
        let mut scratch = DominanceScratch::default();
        let mut ranks = Vec::new();
        fast_non_dominated_sort_flat(&flat, n, k, &mut ranks, &mut scratch);
        let mut flat_crowding = Vec::new();
        per_front_crowding_flat(&flat, n, k, &ranks, &mut flat_crowding, &mut scratch);

        // Nested reference: crowding_distance applied front by front, exactly as the seed
        // NSGA-II loop did.
        let mut expected = vec![0.0; n];
        let max_rank = ranks.iter().copied().max().unwrap();
        for front in 0..=max_rank {
            let members: Vec<usize> = (0..n).filter(|&i| ranks[i] == front).collect();
            let pts: Vec<Vec<f64>> = members.iter().map(|&i| points[i].clone()).collect();
            let d = crowding_distance(&pts);
            for (idx, &m) in members.iter().enumerate() {
                expected[m] = d[idx];
            }
        }
        assert_eq!(flat_crowding.len(), n);
        for (a, b) in flat_crowding.iter().zip(&expected) {
            assert!(
                (a.is_infinite() && b.is_infinite()) || a == b,
                "crowding diverged: {a} vs {b}"
            );
        }
    }

    #[test]
    fn flat_non_dominated_matches_nested() {
        let points = awkward_points();
        let (flat, n, k) = flatten(&points);
        let mut out = Vec::new();
        non_dominated_indices_flat(&flat, n, k, &mut out);
        assert_eq!(out, non_dominated_indices(&points));
    }

    #[test]
    fn stable_sort_matches_std_stable_sort() {
        let mut scratch = Vec::new();
        // Many duplicated keys across several merge widths: the scratch-backed sort must
        // produce exactly `slice::sort_by`'s (stable) permutation.
        for n in [0usize, 1, 2, 6, 16, 17, 33, 100, 257] {
            let keys: Vec<f64> = (0..n).map(|i| ((i * 7919) % 13) as f64).collect();
            let mut ours: Vec<usize> = (0..n).collect();
            stable_sort_indices(&mut ours, &mut scratch, |a, b| {
                keys[a]
                    .partial_cmp(&keys[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut expected: Vec<usize> = (0..n).collect();
            expected.sort_by(|&a, &b| {
                keys[a]
                    .partial_cmp(&keys[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            assert_eq!(ours, expected, "n = {n}");
        }
    }
}
