//! NSGA-II (Deb et al., 2002) for continuous box-constrained multi-objective problems.
//!
//! PaRMIS uses NSGA-II to solve the *cheap* multi-objective problem over functions sampled
//! from the GP posteriors (paper §IV-B step 1); the RL/IL baselines and ablations reuse it as
//! a generic Pareto solver. The implementation is the textbook algorithm: fast non-dominated
//! sorting, crowding distance, binary tournament selection, simulated binary crossover (SBX)
//! and polynomial mutation.

use crate::dominance::{crowding_distance, fast_non_dominated_sort, non_dominated_indices};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an NSGA-II run.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    /// Population size (kept constant across generations). Must be even and >= 4.
    pub population_size: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability of applying SBX crossover to a mating pair.
    pub crossover_probability: f64,
    /// SBX distribution index (larger values produce children closer to the parents).
    pub crossover_eta: f64,
    /// Per-gene probability of polynomial mutation. `None` selects `1 / dimension`.
    pub mutation_probability: Option<f64>,
    /// Polynomial-mutation distribution index.
    pub mutation_eta: f64,
    /// RNG seed so runs are reproducible.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population_size: 80,
            generations: 60,
            crossover_probability: 0.9,
            crossover_eta: 15.0,
            mutation_probability: None,
            mutation_eta: 20.0,
            seed: 0x5eed_5eed,
        }
    }
}

/// A solved population: decision vectors and their objective values, plus the Pareto subset.
#[derive(Debug, Clone)]
pub struct Population {
    /// Decision-space points of the final population.
    pub decisions: Vec<Vec<f64>>,
    /// Objective vectors corresponding to [`Self::decisions`].
    pub objectives: Vec<Vec<f64>>,
}

impl Population {
    /// Returns the indices of the non-dominated members.
    pub fn pareto_indices(&self) -> Vec<usize> {
        non_dominated_indices(&self.objectives)
    }

    /// Returns the Pareto-optimal `(decision, objectives)` pairs of the population.
    pub fn pareto_set(&self) -> Vec<(Vec<f64>, Vec<f64>)> {
        self.pareto_indices()
            .into_iter()
            .map(|i| (self.decisions[i].clone(), self.objectives[i].clone()))
            .collect()
    }

    /// Returns only the Pareto-optimal objective vectors.
    pub fn pareto_front(&self) -> Vec<Vec<f64>> {
        self.pareto_indices()
            .into_iter()
            .map(|i| self.objectives[i].clone())
            .collect()
    }
}

/// NSGA-II solver over a box-constrained continuous decision space.
///
/// # Examples
///
/// ```
/// use moo::nsga2::{Nsga2, Nsga2Config};
///
/// // Minimal bi-objective problem: f1 = x², f2 = (x - 2)² over x ∈ [-4, 4].
/// let config = Nsga2Config { population_size: 40, generations: 30, ..Default::default() };
/// let solver = Nsga2::new(vec![-4.0], vec![4.0], config).unwrap();
/// let pop = solver.run(|x| vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)]);
/// // The Pareto set of this problem is x ∈ [0, 2].
/// for (x, _) in pop.pareto_set() {
///     assert!(x[0] > -0.5 && x[0] < 2.5);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Nsga2 {
    lower: Vec<f64>,
    upper: Vec<f64>,
    config: Nsga2Config,
}

impl Nsga2 {
    /// Creates a solver for the box `[lower, upper]`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string if the bounds are empty, of mismatched length,
    /// inverted, or if the configuration is invalid (odd/small population, zero generations,
    /// probabilities outside `[0, 1]`).
    pub fn new(lower: Vec<f64>, upper: Vec<f64>, config: Nsga2Config) -> Result<Self, String> {
        if lower.is_empty() {
            return Err("decision space must have at least one dimension".into());
        }
        if lower.len() != upper.len() {
            return Err(format!(
                "bounds length mismatch: {} vs {}",
                lower.len(),
                upper.len()
            ));
        }
        if lower.iter().zip(&upper).any(|(l, u)| l >= u) {
            return Err("every lower bound must be strictly below its upper bound".into());
        }
        if config.population_size < 4 || config.population_size % 2 != 0 {
            return Err("population_size must be an even number >= 4".into());
        }
        if config.generations == 0 {
            return Err("generations must be positive".into());
        }
        if !(0.0..=1.0).contains(&config.crossover_probability) {
            return Err("crossover_probability must lie in [0, 1]".into());
        }
        if let Some(p) = config.mutation_probability {
            if !(0.0..=1.0).contains(&p) {
                return Err("mutation_probability must lie in [0, 1]".into());
            }
        }
        Ok(Nsga2 {
            lower,
            upper,
            config,
        })
    }

    /// Dimension of the decision space.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Runs the evolutionary loop, evaluating objective vectors with `evaluate`.
    ///
    /// The objective function must return the same number of objectives for every point; this
    /// is asserted on the first two evaluations.
    pub fn run<F: FnMut(&[f64]) -> Vec<f64>>(&self, mut evaluate: F) -> Population {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let dim = self.dim();
        let pop_size = self.config.population_size;
        let mutation_p = self.config.mutation_probability.unwrap_or(1.0 / dim as f64);

        let mut decisions: Vec<Vec<f64>> = (0..pop_size)
            .map(|_| {
                (0..dim)
                    .map(|d| rng.gen_range(self.lower[d]..self.upper[d]))
                    .collect()
            })
            .collect();
        let mut objectives: Vec<Vec<f64>> = decisions.iter().map(|x| evaluate(x)).collect();
        let n_obj = objectives[0].len();
        assert!(
            n_obj > 0,
            "objective function must return at least one value"
        );
        assert!(
            objectives.iter().all(|o| o.len() == n_obj),
            "objective function returned inconsistent dimensions"
        );

        for _gen in 0..self.config.generations {
            // --- selection + variation -> offspring of the same size
            let ranks = fast_non_dominated_sort(&objectives);
            let crowding = per_front_crowding(&objectives, &ranks);

            let mut offspring: Vec<Vec<f64>> = Vec::with_capacity(pop_size);
            while offspring.len() < pop_size {
                let p1 = tournament(&mut rng, &ranks, &crowding);
                let p2 = tournament(&mut rng, &ranks, &crowding);
                let (mut c1, mut c2) = self.crossover(&mut rng, &decisions[p1], &decisions[p2]);
                self.mutate(&mut rng, &mut c1, mutation_p);
                self.mutate(&mut rng, &mut c2, mutation_p);
                offspring.push(c1);
                if offspring.len() < pop_size {
                    offspring.push(c2);
                }
            }
            let offspring_obj: Vec<Vec<f64>> = offspring.iter().map(|x| evaluate(x)).collect();

            // --- environmental selection over parents + offspring
            let mut combined_dec = decisions;
            combined_dec.extend(offspring);
            let mut combined_obj = objectives;
            combined_obj.extend(offspring_obj);

            let ranks = fast_non_dominated_sort(&combined_obj);
            let crowding = per_front_crowding(&combined_obj, &ranks);
            let mut order: Vec<usize> = (0..combined_dec.len()).collect();
            order.sort_by(|&a, &b| {
                ranks[a].cmp(&ranks[b]).then(
                    crowding[b]
                        .partial_cmp(&crowding[a])
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
            });
            order.truncate(pop_size);

            decisions = order.iter().map(|&i| combined_dec[i].clone()).collect();
            objectives = order.iter().map(|&i| combined_obj[i].clone()).collect();
        }

        Population {
            decisions,
            objectives,
        }
    }

    /// Simulated binary crossover (SBX).
    fn crossover(&self, rng: &mut StdRng, p1: &[f64], p2: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut c1 = p1.to_vec();
        let mut c2 = p2.to_vec();
        if rng.gen::<f64>() > self.config.crossover_probability {
            return (c1, c2);
        }
        let eta = self.config.crossover_eta;
        for d in 0..p1.len() {
            if rng.gen::<f64>() > 0.5 {
                continue;
            }
            let (x1, x2) = (p1[d].min(p2[d]), p1[d].max(p2[d]));
            if (x2 - x1).abs() < 1e-14 {
                continue;
            }
            let u: f64 = rng.gen();
            let beta = if u <= 0.5 {
                (2.0 * u).powf(1.0 / (eta + 1.0))
            } else {
                (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
            };
            let v1 = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
            let v2 = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
            c1[d] = v1.clamp(self.lower[d], self.upper[d]);
            c2[d] = v2.clamp(self.lower[d], self.upper[d]);
        }
        (c1, c2)
    }

    /// Polynomial mutation.
    fn mutate(&self, rng: &mut StdRng, x: &mut [f64], probability: f64) {
        let eta = self.config.mutation_eta;
        for (d, xd) in x.iter_mut().enumerate() {
            if rng.gen::<f64>() > probability {
                continue;
            }
            let (lo, hi) = (self.lower[d], self.upper[d]);
            let span = hi - lo;
            let u: f64 = rng.gen();
            let delta = if u < 0.5 {
                (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
            } else {
                1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
            };
            *xd = (*xd + delta * span).clamp(lo, hi);
        }
    }
}

/// Crowding distance computed per front over the whole population.
fn per_front_crowding(objectives: &[Vec<f64>], ranks: &[usize]) -> Vec<f64> {
    let mut crowding = vec![0.0; objectives.len()];
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for front in 0..=max_rank {
        let members: Vec<usize> = ranks
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == front)
            .map(|(i, _)| i)
            .collect();
        let pts: Vec<Vec<f64>> = members.iter().map(|&i| objectives[i].clone()).collect();
        let d = crowding_distance(&pts);
        for (idx, &member) in members.iter().enumerate() {
            crowding[member] = d[idx];
        }
    }
    crowding
}

/// Binary tournament on (rank, crowding distance).
fn tournament(rng: &mut StdRng, ranks: &[usize], crowding: &[f64]) -> usize {
    let n = ranks.len();
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    if ranks[a] < ranks[b] {
        a
    } else if ranks[b] < ranks[a] {
        b
    } else if crowding[a] >= crowding[b] {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervolume::hypervolume;

    fn small_config(seed: u64) -> Nsga2Config {
        Nsga2Config {
            population_size: 40,
            generations: 40,
            seed,
            ..Default::default()
        }
    }

    /// ZDT1-like convex bi-objective benchmark over [0,1]^d.
    fn zdt1(x: &[f64]) -> Vec<f64> {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        vec![f1, f2]
    }

    #[test]
    fn validates_configuration() {
        assert!(Nsga2::new(vec![], vec![], Nsga2Config::default()).is_err());
        assert!(Nsga2::new(vec![0.0], vec![1.0, 2.0], Nsga2Config::default()).is_err());
        assert!(Nsga2::new(vec![1.0], vec![0.0], Nsga2Config::default()).is_err());
        let bad_pop = Nsga2Config {
            population_size: 5,
            ..Default::default()
        };
        assert!(Nsga2::new(vec![0.0], vec![1.0], bad_pop).is_err());
        let bad_gen = Nsga2Config {
            generations: 0,
            ..Default::default()
        };
        assert!(Nsga2::new(vec![0.0], vec![1.0], bad_gen).is_err());
        let bad_cx = Nsga2Config {
            crossover_probability: 1.5,
            ..Default::default()
        };
        assert!(Nsga2::new(vec![0.0], vec![1.0], bad_cx).is_err());
        let bad_mut = Nsga2Config {
            mutation_probability: Some(-0.1),
            ..Default::default()
        };
        assert!(Nsga2::new(vec![0.0], vec![1.0], bad_mut).is_err());
    }

    #[test]
    fn schaffer_problem_converges_to_known_front() {
        // Schaffer N.1: f1 = x², f2 = (x-2)²; Pareto set is x ∈ [0, 2].
        let solver = Nsga2::new(vec![-10.0], vec![10.0], small_config(7)).unwrap();
        let pop = solver.run(|x| vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)]);
        let pareto = pop.pareto_set();
        assert!(!pareto.is_empty());
        let inside = pareto
            .iter()
            .filter(|(x, _)| x[0] >= -0.2 && x[0] <= 2.2)
            .count();
        assert!(
            inside as f64 / pareto.len() as f64 > 0.9,
            "most pareto points must lie in [0, 2], got {inside}/{}",
            pareto.len()
        );
    }

    #[test]
    fn zdt1_front_approaches_theoretical_hypervolume() {
        let dim = 6;
        let solver = Nsga2::new(vec![0.0; dim], vec![1.0; dim], small_config(13)).unwrap();
        let pop = solver.run(zdt1);
        let front = pop.pareto_front();
        let hv = hypervolume(front, &[1.1, 1.1]);
        // The true front f2 = 1 - sqrt(f1) has HV ≈ 0.756 w.r.t. (1.1, 1.1); a short run on a
        // 6-D ZDT1 should reach a good fraction of it.
        assert!(hv > 0.5, "hypervolume too small: {hv}");
    }

    #[test]
    fn population_respects_bounds() {
        let solver = Nsga2::new(vec![-1.0, 2.0], vec![1.0, 3.0], small_config(3)).unwrap();
        let pop = solver.run(|x| vec![x[0].abs(), (x[1] - 2.5).abs()]);
        for d in &pop.decisions {
            assert!(d[0] >= -1.0 && d[0] <= 1.0);
            assert!(d[1] >= 2.0 && d[1] <= 3.0);
        }
        assert_eq!(pop.decisions.len(), 40);
        assert_eq!(pop.objectives.len(), 40);
    }

    #[test]
    fn runs_are_reproducible_for_same_seed() {
        let mk = || {
            let solver = Nsga2::new(vec![-5.0], vec![5.0], small_config(99)).unwrap();
            solver.run(|x| vec![x[0] * x[0], (x[0] - 1.0).powi(2)])
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.objectives, b.objectives);
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let solver = Nsga2::new(vec![-5.0], vec![5.0], small_config(seed)).unwrap();
            solver.run(|x| vec![x[0] * x[0], (x[0] - 1.0).powi(2)])
        };
        let a = run(1);
        let b = run(2);
        assert_ne!(a.decisions, b.decisions);
    }

    #[test]
    fn pareto_front_is_internally_non_dominated() {
        let solver = Nsga2::new(vec![0.0; 3], vec![1.0; 3], small_config(21)).unwrap();
        let pop = solver.run(zdt1);
        let front = pop.pareto_front();
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(!crate::dominance::dominates(a, b));
                }
            }
        }
    }
}
