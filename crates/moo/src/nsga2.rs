//! NSGA-II (Deb et al., 2002) for continuous box-constrained multi-objective problems.
//!
//! PaRMIS uses NSGA-II to solve the *cheap* multi-objective problem over functions sampled
//! from the GP posteriors (paper §IV-B step 1); the RL/IL baselines and ablations reuse it as
//! a generic Pareto solver. The algorithm is the textbook one: fast non-dominated sorting,
//! crowding distance, binary tournament selection, simulated binary crossover (SBX) and
//! polynomial mutation.
//!
//! # Flat-buffer evolution engine
//!
//! The evolutionary loop runs on a scratch-owning [`Nsga2Engine`] that stores decisions and
//! objectives as row-major flat `Vec<f64>` blocks (`[x₀₀ … x₀ᵈ, x₁₀ …]`), reuses every
//! generation buffer — the combined parent+offspring block, ranks, crowding distances,
//! selection order, offspring rows and the non-dominated-sort adjacency scratch — across
//! generations *and* across solves, and evaluates offspring through one batched callback
//! `FnMut(&FlatPopulation, &mut [f64])` per generation instead of a call per point. After
//! the engine's buffers have warmed up (first solve at a given shape), a generation performs
//! **zero heap allocations**; `bench_acq` pins this with a counting allocator.
//!
//! Selection order, RNG consumption and floating-point operation order are exactly those of
//! the original per-point loop, so the evolved [`Population`] is bit-identical to the seed
//! implementation for every seed — `bench::seedpath_acq` preserves that loop verbatim and
//! the `acq_equivalence` proptest suite compares the two. [`Nsga2::run`] is a thin adapter
//! that wraps a per-point objective function into the batched callback.
//!
//! Regenerate the measured seed-vs-flat ratios with
//! `PARMIS_RESULTS_DIR=results cargo bench -p bench --bench bench_acq` (writes
//! `BENCH_acq.json`); the `#[ignore]`d gate in `crates/bench/tests/acq_speed_gate.rs`
//! asserts the ≥2× machinery contract in release mode.

use crate::dominance::{
    fast_non_dominated_sort_flat, non_dominated_indices, non_dominated_indices_flat,
    per_front_crowding_flat, stable_sort_indices, DominanceScratch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an NSGA-II run.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    /// Population size (kept constant across generations). Must be even and >= 4.
    pub population_size: usize,
    /// Number of generations to evolve.
    pub generations: usize,
    /// Probability of applying SBX crossover to a mating pair.
    pub crossover_probability: f64,
    /// SBX distribution index (larger values produce children closer to the parents).
    pub crossover_eta: f64,
    /// Per-gene probability of polynomial mutation. `None` selects `1 / dimension`.
    pub mutation_probability: Option<f64>,
    /// Polynomial-mutation distribution index.
    pub mutation_eta: f64,
    /// RNG seed so runs are reproducible.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population_size: 80,
            generations: 60,
            crossover_probability: 0.9,
            crossover_eta: 15.0,
            mutation_probability: None,
            mutation_eta: 20.0,
            seed: 0x5eed_5eed,
        }
    }
}

/// A solved population: decision vectors and their objective values, plus the Pareto subset.
#[derive(Debug, Clone)]
pub struct Population {
    /// Decision-space points of the final population.
    pub decisions: Vec<Vec<f64>>,
    /// Objective vectors corresponding to [`Self::decisions`].
    pub objectives: Vec<Vec<f64>>,
}

impl Population {
    /// Returns the indices of the non-dominated members.
    pub fn pareto_indices(&self) -> Vec<usize> {
        non_dominated_indices(&self.objectives)
    }

    /// Returns the Pareto-optimal `(decision, objectives)` pairs of the population.
    pub fn pareto_set(&self) -> Vec<(Vec<f64>, Vec<f64>)> {
        self.pareto_indices()
            .into_iter()
            .map(|i| (self.decisions[i].clone(), self.objectives[i].clone()))
            .collect()
    }

    /// Returns only the Pareto-optimal objective vectors.
    pub fn pareto_front(&self) -> Vec<Vec<f64>> {
        self.pareto_indices()
            .into_iter()
            .map(|i| self.objectives[i].clone())
            .collect()
    }
}

/// NSGA-II solver over a box-constrained continuous decision space.
///
/// # Examples
///
/// ```
/// use moo::nsga2::{Nsga2, Nsga2Config};
///
/// // Minimal bi-objective problem: f1 = x², f2 = (x - 2)² over x ∈ [-4, 4].
/// let config = Nsga2Config { population_size: 40, generations: 30, ..Default::default() };
/// let solver = Nsga2::new(vec![-4.0], vec![4.0], config).unwrap();
/// let pop = solver.run(|x| vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)]);
/// // The Pareto set of this problem is x ∈ [0, 2].
/// for (x, _) in pop.pareto_set() {
///     assert!(x[0] > -0.5 && x[0] < 2.5);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Nsga2 {
    lower: Vec<f64>,
    upper: Vec<f64>,
    config: Nsga2Config,
}

impl Nsga2 {
    /// Creates a solver for the box `[lower, upper]`.
    ///
    /// A dimension with `lower[d] == upper[d]` is *degenerate*: the coordinate is pinned to
    /// that value in every individual (no random draw, and crossover/mutation leave it in
    /// place), rather than panicking on an empty sampling range.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string if the bounds are empty, of mismatched length,
    /// inverted (`lower[d] > upper[d]`), or if the configuration is invalid (odd/small
    /// population, zero generations, probabilities outside `[0, 1]`).
    pub fn new(lower: Vec<f64>, upper: Vec<f64>, config: Nsga2Config) -> Result<Self, String> {
        if lower.is_empty() {
            return Err("decision space must have at least one dimension".into());
        }
        if lower.len() != upper.len() {
            return Err(format!(
                "bounds length mismatch: {} vs {}",
                lower.len(),
                upper.len()
            ));
        }
        if lower.iter().zip(&upper).any(|(l, u)| l > u) {
            return Err("every lower bound must not exceed its upper bound".into());
        }
        if config.population_size < 4 || config.population_size % 2 != 0 {
            return Err("population_size must be an even number >= 4".into());
        }
        if config.generations == 0 {
            return Err("generations must be positive".into());
        }
        if !(0.0..=1.0).contains(&config.crossover_probability) {
            return Err("crossover_probability must lie in [0, 1]".into());
        }
        if let Some(p) = config.mutation_probability {
            if !(0.0..=1.0).contains(&p) {
                return Err("mutation_probability must lie in [0, 1]".into());
            }
        }
        Ok(Nsga2 {
            lower,
            upper,
            config,
        })
    }

    /// Dimension of the decision space.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Runs the evolutionary loop, evaluating objective vectors with `evaluate`.
    ///
    /// The objective function must return the same number of objectives for every point; this
    /// is asserted on every evaluation. This is a thin per-point adapter over the flat
    /// [`Nsga2Engine`]: use [`run_batched`](Self::run_batched) (or [`Nsga2Engine::solve`]
    /// with a long-lived engine) when a whole population can be answered at once.
    pub fn run<F: FnMut(&[f64]) -> Vec<f64>>(&self, mut evaluate: F) -> Population {
        let mut engine = Nsga2Engine::new();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        engine.init_population(self, &mut rng);

        // Per-point initial evaluation: the objective count is inferred from the first
        // point, exactly like the original loop.
        let pop_size = self.config.population_size;
        let mut initial = Vec::new();
        let mut n_obj = 0usize;
        for i in 0..pop_size {
            let o = evaluate(engine.initial_row(i));
            if i == 0 {
                n_obj = o.len();
                assert!(
                    n_obj > 0,
                    "objective function must return at least one value"
                );
            }
            assert!(
                o.len() == n_obj,
                "objective function returned inconsistent dimensions"
            );
            initial.extend(o);
        }
        engine.install_initial_objectives(n_obj, &initial);

        engine.evolve(
            self,
            &mut rng,
            &mut |points: &FlatPopulation<'_>, out: &mut [f64]| {
                for i in 0..points.count() {
                    let o = evaluate(points.row(i));
                    assert!(
                        o.len() == n_obj,
                        "objective function returned inconsistent dimensions"
                    );
                    out[i * n_obj..(i + 1) * n_obj].copy_from_slice(&o);
                }
            },
        );
        engine.to_population()
    }

    /// Runs the evolutionary loop with a **batched** objective callback on a caller-owned
    /// engine, then materializes the final [`Population`].
    ///
    /// `evaluate` receives every to-be-scored population (initial parents, then one
    /// offspring block per generation) as a [`FlatPopulation`] and must fill the row-major
    /// `count × num_objectives` output block. Reusing `engine` across calls (even across
    /// differently-seeded solves of the same shape) keeps every generation allocation-free.
    pub fn run_batched<F: FnMut(&FlatPopulation<'_>, &mut [f64])>(
        &self,
        engine: &mut Nsga2Engine,
        num_objectives: usize,
        evaluate: F,
    ) -> Population {
        engine.solve(self, num_objectives, evaluate);
        engine.to_population()
    }

    /// Simulated binary crossover (SBX) writing both children in place.
    ///
    /// `c1`/`c2` start as copies of the parents; the per-gene draw order matches the seed
    /// implementation exactly.
    fn crossover_into(
        &self,
        rng: &mut StdRng,
        p1: &[f64],
        p2: &[f64],
        c1: &mut [f64],
        c2: &mut [f64],
    ) {
        c1.copy_from_slice(p1);
        c2.copy_from_slice(p2);
        if rng.gen::<f64>() > self.config.crossover_probability {
            return;
        }
        let eta = self.config.crossover_eta;
        for d in 0..p1.len() {
            if rng.gen::<f64>() > 0.5 {
                continue;
            }
            let (x1, x2) = (p1[d].min(p2[d]), p1[d].max(p2[d]));
            if (x2 - x1).abs() < 1e-14 {
                continue;
            }
            let u: f64 = rng.gen();
            let beta = if u <= 0.5 {
                (2.0 * u).powf(1.0 / (eta + 1.0))
            } else {
                (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
            };
            let v1 = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
            let v2 = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
            c1[d] = v1.clamp(self.lower[d], self.upper[d]);
            c2[d] = v2.clamp(self.lower[d], self.upper[d]);
        }
    }

    /// Polynomial mutation. Degenerate (pinned) dimensions have zero span, so the mutated
    /// coordinate is unchanged.
    fn mutate(&self, rng: &mut StdRng, x: &mut [f64], probability: f64) {
        let eta = self.config.mutation_eta;
        for (d, xd) in x.iter_mut().enumerate() {
            if rng.gen::<f64>() > probability {
                continue;
            }
            let (lo, hi) = (self.lower[d], self.upper[d]);
            let span = hi - lo;
            let u: f64 = rng.gen();
            let delta = if u < 0.5 {
                (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
            } else {
                1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
            };
            *xd = (*xd + delta * span).clamp(lo, hi);
        }
    }
}

/// A borrowed, row-major view of a population's decision vectors.
///
/// Row `i` is the decision vector of individual `i`; the backing storage is one contiguous
/// `count × dim` block inside the [`Nsga2Engine`], so batched evaluators can hand the whole
/// population to a matrix kernel without gathering.
#[derive(Debug, Clone, Copy)]
pub struct FlatPopulation<'a> {
    data: &'a [f64],
    count: usize,
    dim: usize,
}

impl<'a> FlatPopulation<'a> {
    /// Wraps a row-major `count × dim` slice.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != count * dim`.
    pub fn new(data: &'a [f64], count: usize, dim: usize) -> Self {
        assert_eq!(data.len(), count * dim, "flat population shape mismatch");
        FlatPopulation { data, count, dim }
    }

    /// Number of individuals.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Decision-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th decision vector.
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole row-major block.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }
}

/// Scratch-owning flat-buffer NSGA-II evolution engine.
///
/// The engine owns every buffer the evolutionary loop needs — the combined
/// parent+offspring decision and objective blocks (parents in rows `0..pop`, offspring in
/// rows `pop..2·pop`), per-generation ranks/crowding for both the parent and the combined
/// population, the environmental-selection order, gather buffers, and the
/// [`DominanceScratch`] of the index-based non-dominated sort. Buffers are resized on the
/// first solve of a given shape and reused verbatim afterwards, so a warm engine evolves
/// each generation — and each subsequent [`solve`](Self::solve) — with zero heap
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct Nsga2Engine {
    /// Row-major decisions: `2·pop × dim`, parents first.
    combined_dec: Vec<f64>,
    /// Row-major objectives: `2·pop × k`, parents first.
    combined_obj: Vec<f64>,
    /// Gather target for the surviving decisions (`pop × dim`).
    select_dec: Vec<f64>,
    /// Gather target for the surviving objectives (`pop × k`).
    select_obj: Vec<f64>,
    /// Front index of every parent (tournament selection).
    parent_ranks: Vec<usize>,
    /// Crowding distance of every parent (tournament selection).
    parent_crowding: Vec<f64>,
    /// Front index over the combined population (environmental selection).
    ranks: Vec<usize>,
    /// Crowding distance over the combined population (environmental selection).
    crowding: Vec<f64>,
    /// Environmental-selection permutation of `0..2·pop`.
    order: Vec<usize>,
    /// Merge buffer for the environmental-selection sort.
    order_scratch: Vec<usize>,
    /// Adjacency and membership scratch of the flat dominance passes.
    dominance: DominanceScratch,
    pop_size: usize,
    dim: usize,
    num_obj: usize,
}

impl Nsga2Engine {
    /// Creates an empty engine; buffers are sized lazily by the first solve.
    pub fn new() -> Self {
        Nsga2Engine::default()
    }

    /// Runs a full NSGA-II solve of `problem` with a batched objective callback, leaving
    /// the final population in the engine (see [`decisions`](Self::decisions),
    /// [`objectives`](Self::objectives), [`to_population`](Self::to_population)).
    ///
    /// `evaluate` is called once for the initial parents and once per generation for the
    /// offspring block; it must fill the row-major `count × num_objectives` output slice.
    ///
    /// # Panics
    ///
    /// Panics if `num_objectives == 0`.
    pub fn solve<F: FnMut(&FlatPopulation<'_>, &mut [f64])>(
        &mut self,
        problem: &Nsga2,
        num_objectives: usize,
        mut evaluate: F,
    ) {
        assert!(num_objectives > 0, "at least one objective is required");
        let mut rng = StdRng::seed_from_u64(problem.config.seed);
        self.init_population(problem, &mut rng);
        self.install_num_objectives(num_objectives);
        let pop = self.pop_size;
        {
            let points = FlatPopulation::new(&self.combined_dec[..pop * self.dim], pop, self.dim);
            evaluate(&points, &mut self.combined_obj[..pop * num_objectives]);
        }
        self.evolve(problem, &mut rng, &mut evaluate);
    }

    /// Final population size (0 before the first solve).
    pub fn population_size(&self) -> usize {
        self.pop_size
    }

    /// Number of objectives of the last solve.
    pub fn num_objectives(&self) -> usize {
        self.num_obj
    }

    /// Decision vectors of the final population, as a flat view.
    pub fn decisions(&self) -> FlatPopulation<'_> {
        FlatPopulation::new(
            &self.combined_dec[..self.pop_size * self.dim],
            self.pop_size,
            self.dim,
        )
    }

    /// Row-major `pop × k` objective block of the final population.
    pub fn objectives(&self) -> &[f64] {
        &self.combined_obj[..self.pop_size * self.num_obj]
    }

    /// Indices of the non-dominated members of the final population, ascending, written
    /// into `out` (cleared first). Allocation-free for a warm `out`.
    pub fn pareto_indices_into(&self, out: &mut Vec<usize>) {
        non_dominated_indices_flat(self.objectives(), self.pop_size, self.num_obj, out);
    }

    /// Materializes the final population as nested vectors (the [`Nsga2::run`] interface).
    pub fn to_population(&self) -> Population {
        let decisions = (0..self.pop_size)
            .map(|i| self.decisions().row(i).to_vec())
            .collect();
        let objectives = (0..self.pop_size)
            .map(|i| self.objectives()[i * self.num_obj..(i + 1) * self.num_obj].to_vec())
            .collect();
        Population {
            decisions,
            objectives,
        }
    }

    /// Sizes the decision buffers for `problem` and draws the initial population into the
    /// parent block. Degenerate dimensions (`lower[d] == upper[d]`) are pinned without
    /// consuming a random draw; every other coordinate consumes exactly one `gen_range`,
    /// in the seed order.
    fn init_population(&mut self, problem: &Nsga2, rng: &mut StdRng) {
        let dim = problem.dim();
        let pop = problem.config.population_size;
        self.pop_size = pop;
        self.dim = dim;
        self.combined_dec.clear();
        self.combined_dec.resize(2 * pop * dim, 0.0);
        self.select_dec.clear();
        self.select_dec.resize(pop * dim, 0.0);
        for i in 0..pop {
            for d in 0..dim {
                self.combined_dec[i * dim + d] = if problem.lower[d] == problem.upper[d] {
                    problem.lower[d]
                } else {
                    rng.gen_range(problem.lower[d]..problem.upper[d])
                };
            }
        }
    }

    /// The `i`-th initial decision vector (valid after [`init_population`](Self::init_population)).
    fn initial_row(&self, i: usize) -> &[f64] {
        &self.combined_dec[i * self.dim..(i + 1) * self.dim]
    }

    /// Sizes the objective buffers for `k` objectives per point.
    fn install_num_objectives(&mut self, k: usize) {
        self.num_obj = k;
        self.combined_obj.clear();
        self.combined_obj.resize(2 * self.pop_size * k, 0.0);
        self.select_obj.clear();
        self.select_obj.resize(self.pop_size * k, 0.0);
    }

    /// Installs pre-computed objectives for the initial parents (per-point adapter path).
    fn install_initial_objectives(&mut self, k: usize, values: &[f64]) {
        self.install_num_objectives(k);
        self.combined_obj[..self.pop_size * k].copy_from_slice(values);
    }

    /// The generation loop: selection + variation + batched evaluation + environmental
    /// selection, entirely over the engine's flat buffers.
    fn evolve<F: FnMut(&FlatPopulation<'_>, &mut [f64])>(
        &mut self,
        problem: &Nsga2,
        rng: &mut StdRng,
        evaluate: &mut F,
    ) {
        let pop = self.pop_size;
        let dim = self.dim;
        let k = self.num_obj;
        let mutation_p = problem
            .config
            .mutation_probability
            .unwrap_or(1.0 / dim as f64);

        for _gen in 0..problem.config.generations {
            crate::stats::record_generation();

            // --- selection + variation -> offspring block of the same size
            fast_non_dominated_sort_flat(
                &self.combined_obj[..pop * k],
                pop,
                k,
                &mut self.parent_ranks,
                &mut self.dominance,
            );
            per_front_crowding_flat(
                &self.combined_obj[..pop * k],
                pop,
                k,
                &self.parent_ranks,
                &mut self.parent_crowding,
                &mut self.dominance,
            );

            {
                let (parents, offspring) = self.combined_dec.split_at_mut(pop * dim);
                let mut produced = 0;
                while produced < pop {
                    let p1 = tournament(rng, &self.parent_ranks, &self.parent_crowding);
                    let p2 = tournament(rng, &self.parent_ranks, &self.parent_crowding);
                    // The pair always fits: population sizes are even by construction.
                    let (c1, c2) =
                        offspring[produced * dim..(produced + 2) * dim].split_at_mut(dim);
                    problem.crossover_into(
                        rng,
                        &parents[p1 * dim..(p1 + 1) * dim],
                        &parents[p2 * dim..(p2 + 1) * dim],
                        c1,
                        c2,
                    );
                    problem.mutate(rng, c1, mutation_p);
                    problem.mutate(rng, c2, mutation_p);
                    produced += 2;
                }
            }
            {
                let points = FlatPopulation::new(&self.combined_dec[pop * dim..], pop, dim);
                evaluate(&points, &mut self.combined_obj[pop * k..]);
            }

            // --- environmental selection over parents + offspring
            fast_non_dominated_sort_flat(
                &self.combined_obj,
                2 * pop,
                k,
                &mut self.ranks,
                &mut self.dominance,
            );
            per_front_crowding_flat(
                &self.combined_obj,
                2 * pop,
                k,
                &self.ranks,
                &mut self.crowding,
                &mut self.dominance,
            );
            self.order.clear();
            self.order.extend(0..2 * pop);
            {
                let (ranks, crowding) = (&self.ranks, &self.crowding);
                stable_sort_indices(&mut self.order, &mut self.order_scratch, |a, b| {
                    ranks[a].cmp(&ranks[b]).then(
                        crowding[b]
                            .partial_cmp(&crowding[a])
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
                });
            }
            for (slot, &src) in self.order[..pop].iter().enumerate() {
                self.select_dec[slot * dim..(slot + 1) * dim]
                    .copy_from_slice(&self.combined_dec[src * dim..(src + 1) * dim]);
                self.select_obj[slot * k..(slot + 1) * k]
                    .copy_from_slice(&self.combined_obj[src * k..(src + 1) * k]);
            }
            self.combined_dec[..pop * dim].copy_from_slice(&self.select_dec);
            self.combined_obj[..pop * k].copy_from_slice(&self.select_obj);
        }
    }
}

/// Binary tournament on (rank, crowding distance).
fn tournament(rng: &mut StdRng, ranks: &[usize], crowding: &[f64]) -> usize {
    let n = ranks.len();
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    if ranks[a] < ranks[b] {
        a
    } else if ranks[b] < ranks[a] {
        b
    } else if crowding[a] >= crowding[b] {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervolume::hypervolume;

    fn small_config(seed: u64) -> Nsga2Config {
        Nsga2Config {
            population_size: 40,
            generations: 40,
            seed,
            ..Default::default()
        }
    }

    /// ZDT1-like convex bi-objective benchmark over [0,1]^d.
    fn zdt1(x: &[f64]) -> Vec<f64> {
        let f1 = x[0];
        let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (x.len() - 1) as f64;
        let f2 = g * (1.0 - (f1 / g).sqrt());
        vec![f1, f2]
    }

    #[test]
    fn validates_configuration() {
        assert!(Nsga2::new(vec![], vec![], Nsga2Config::default()).is_err());
        assert!(Nsga2::new(vec![0.0], vec![1.0, 2.0], Nsga2Config::default()).is_err());
        assert!(Nsga2::new(vec![1.0], vec![0.0], Nsga2Config::default()).is_err());
        let bad_pop = Nsga2Config {
            population_size: 5,
            ..Default::default()
        };
        assert!(Nsga2::new(vec![0.0], vec![1.0], bad_pop).is_err());
        let bad_gen = Nsga2Config {
            generations: 0,
            ..Default::default()
        };
        assert!(Nsga2::new(vec![0.0], vec![1.0], bad_gen).is_err());
        let bad_cx = Nsga2Config {
            crossover_probability: 1.5,
            ..Default::default()
        };
        assert!(Nsga2::new(vec![0.0], vec![1.0], bad_cx).is_err());
        let bad_mut = Nsga2Config {
            mutation_probability: Some(-0.1),
            ..Default::default()
        };
        assert!(Nsga2::new(vec![0.0], vec![1.0], bad_mut).is_err());
    }

    #[test]
    fn schaffer_problem_converges_to_known_front() {
        // Schaffer N.1: f1 = x², f2 = (x-2)²; Pareto set is x ∈ [0, 2].
        let solver = Nsga2::new(vec![-10.0], vec![10.0], small_config(7)).unwrap();
        let pop = solver.run(|x| vec![x[0] * x[0], (x[0] - 2.0) * (x[0] - 2.0)]);
        let pareto = pop.pareto_set();
        assert!(!pareto.is_empty());
        let inside = pareto
            .iter()
            .filter(|(x, _)| x[0] >= -0.2 && x[0] <= 2.2)
            .count();
        assert!(
            inside as f64 / pareto.len() as f64 > 0.9,
            "most pareto points must lie in [0, 2], got {inside}/{}",
            pareto.len()
        );
    }

    #[test]
    fn zdt1_front_approaches_theoretical_hypervolume() {
        let dim = 6;
        let solver = Nsga2::new(vec![0.0; dim], vec![1.0; dim], small_config(13)).unwrap();
        let pop = solver.run(zdt1);
        let front = pop.pareto_front();
        let hv = hypervolume(front, &[1.1, 1.1]);
        // The true front f2 = 1 - sqrt(f1) has HV ≈ 0.756 w.r.t. (1.1, 1.1); a short run on a
        // 6-D ZDT1 should reach a good fraction of it.
        assert!(hv > 0.5, "hypervolume too small: {hv}");
    }

    #[test]
    fn population_respects_bounds() {
        let solver = Nsga2::new(vec![-1.0, 2.0], vec![1.0, 3.0], small_config(3)).unwrap();
        let pop = solver.run(|x| vec![x[0].abs(), (x[1] - 2.5).abs()]);
        for d in &pop.decisions {
            assert!(d[0] >= -1.0 && d[0] <= 1.0);
            assert!(d[1] >= 2.0 && d[1] <= 3.0);
        }
        assert_eq!(pop.decisions.len(), 40);
        assert_eq!(pop.objectives.len(), 40);
    }

    #[test]
    fn runs_are_reproducible_for_same_seed() {
        let mk = || {
            let solver = Nsga2::new(vec![-5.0], vec![5.0], small_config(99)).unwrap();
            solver.run(|x| vec![x[0] * x[0], (x[0] - 1.0).powi(2)])
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.objectives, b.objectives);
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let solver = Nsga2::new(vec![-5.0], vec![5.0], small_config(seed)).unwrap();
            solver.run(|x| vec![x[0] * x[0], (x[0] - 1.0).powi(2)])
        };
        let a = run(1);
        let b = run(2);
        assert_ne!(a.decisions, b.decisions);
    }

    #[test]
    fn degenerate_bounds_pin_the_fixed_coordinate() {
        // lower[d] == upper[d] used to panic in the initializer (`gen_range` on an empty
        // range); it must instead pin the coordinate for the whole run.
        let solver = Nsga2::new(vec![0.5, -1.0], vec![0.5, 1.0], small_config(11)).unwrap();
        let pop = solver.run(|x| vec![x[1] * x[1], (x[1] - 0.7).powi(2)]);
        assert_eq!(pop.decisions.len(), 40);
        for d in &pop.decisions {
            assert_eq!(d[0], 0.5, "degenerate coordinate must stay pinned");
            assert!(d[1] >= -1.0 && d[1] <= 1.0);
        }
        // Fully degenerate box: every individual is the single feasible point.
        let solver = Nsga2::new(vec![1.0, 2.0], vec![1.0, 2.0], small_config(12)).unwrap();
        let pop = solver.run(|x| vec![x[0], x[1]]);
        for d in &pop.decisions {
            assert_eq!(d, &vec![1.0, 2.0]);
        }
        // Inverted bounds are still rejected.
        assert!(Nsga2::new(vec![1.0], vec![0.5], small_config(1)).is_err());
    }

    #[test]
    fn run_batched_matches_per_point_run_bit_for_bit() {
        let mk_solver = || Nsga2::new(vec![0.0; 4], vec![1.0; 4], small_config(37)).unwrap();
        let per_point = mk_solver().run(zdt1);
        let mut engine = Nsga2Engine::new();
        let batched = mk_solver().run_batched(&mut engine, 2, |points, out| {
            for i in 0..points.count() {
                let o = zdt1(points.row(i));
                out[2 * i..2 * i + 2].copy_from_slice(&o);
            }
        });
        assert_eq!(per_point.decisions, batched.decisions);
        assert_eq!(per_point.objectives, batched.objectives);
        // Engine accessors agree with the materialized population.
        assert_eq!(engine.population_size(), 40);
        assert_eq!(engine.num_objectives(), 2);
        let mut pareto = Vec::new();
        engine.pareto_indices_into(&mut pareto);
        assert_eq!(pareto, batched.pareto_indices());
    }

    #[test]
    fn engine_reuse_across_solves_is_stateless() {
        // A warm engine (even one warmed on a different shape) must reproduce exactly what
        // a fresh engine computes.
        let mut engine = Nsga2Engine::new();
        let warm = Nsga2::new(vec![-2.0; 6], vec![2.0; 6], small_config(3)).unwrap();
        warm.run_batched(&mut engine, 2, |points, out| {
            for i in 0..points.count() {
                let o = zdt1(
                    &points
                        .row(i)
                        .iter()
                        .map(|v| v.abs() / 2.0)
                        .collect::<Vec<_>>(),
                );
                out[2 * i..2 * i + 2].copy_from_slice(&o);
            }
        });
        let solver = Nsga2::new(vec![0.0; 3], vec![1.0; 3], small_config(21)).unwrap();
        let eval = |points: &FlatPopulation<'_>, out: &mut [f64]| {
            for i in 0..points.count() {
                out[2 * i..2 * i + 2].copy_from_slice(&zdt1(points.row(i)));
            }
        };
        let reused = solver.run_batched(&mut engine, 2, eval);
        let fresh = solver.run_batched(&mut Nsga2Engine::new(), 2, eval);
        assert_eq!(reused.decisions, fresh.decisions);
        assert_eq!(reused.objectives, fresh.objectives);
    }

    #[test]
    fn pareto_front_is_internally_non_dominated() {
        let solver = Nsga2::new(vec![0.0; 3], vec![1.0; 3], small_config(21)).unwrap();
        let pop = solver.run(zdt1);
        let front = pop.pareto_front();
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                if i != j {
                    assert!(!crate::dominance::dominates(a, b));
                }
            }
        }
    }
}
