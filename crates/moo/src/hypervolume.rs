//! Pareto hypervolume (PHV) indicator.
//!
//! The paper reports all Pareto-front quality comparisons with the hypervolume metric
//! (Zitzler, 1999): the Lebesgue measure of the region dominated by the front and bounded by
//! a reference point that is worse than every front point in every objective. All objectives
//! are minimized here, so a point contributes the box between itself and the reference point.
//!
//! * `k = 2`: exact sweep in `O(n log n)`.
//! * `k >= 3`: recursive slicing (WFG-style "inclusion–exclusion by sweep" over the last
//!   objective), exact but exponential in `k` — fine for the `k <= 3` used by the paper.

use crate::dominance::non_dominated;

/// Computes the hypervolume of `points` with respect to `reference` (minimization).
///
/// Points that do not strictly dominate the reference point in every coordinate contribute
/// nothing (they are clipped away). Dominated points are filtered out first, so callers may
/// pass raw objective sets.
///
/// # Panics
///
/// Panics if `reference` is empty or any point's dimension differs from the reference.
///
/// # Examples
///
/// ```
/// use moo::hypervolume::hypervolume;
///
/// // Single point (1, 1) with reference (3, 3): dominated box is 2 x 2.
/// let hv = hypervolume(vec![vec![1.0, 1.0]], &[3.0, 3.0]);
/// assert!((hv - 4.0).abs() < 1e-12);
/// ```
pub fn hypervolume(points: Vec<Vec<f64>>, reference: &[f64]) -> f64 {
    assert!(!reference.is_empty(), "reference point must be non-empty");
    let k = reference.len();
    let clipped: Vec<Vec<f64>> = points
        .into_iter()
        .inspect(|p| {
            assert_eq!(
                p.len(),
                k,
                "point dimension must match the reference point dimension"
            )
        })
        .filter(|p| p.iter().zip(reference).all(|(v, r)| v < r))
        .collect();
    if clipped.is_empty() {
        return 0.0;
    }
    let front = non_dominated(&clipped);
    match k {
        1 => reference[0] - front.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min),
        2 => hv2d(front, reference),
        _ => hv_recursive(&front, reference),
    }
}

/// Exact 2-D hypervolume via a sorted sweep.
fn hv2d(front: Vec<Vec<f64>>, reference: &[f64]) -> f64 {
    let mut pairs: Vec<(f64, f64)> = front.iter().map(|p| (p[0], p[1])).collect();
    hv2d_pairs(&mut pairs, reference)
}

/// The 2-D sweep over `(x, y)` pairs; sorts its scratch buffer in place so recursive callers
/// can reuse one allocation across slabs.
fn hv2d_pairs(pairs: &mut [(f64, f64)], reference: &[f64]) -> f64 {
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut hv = 0.0;
    let mut prev_y = reference[1];
    for &(x, y) in pairs.iter() {
        // Non-dominated and sorted by x ascending => y strictly decreasing; dominated points
        // (possible in recursive slabs) simply fail the height test.
        let width = reference[0] - x;
        let height = prev_y - y;
        if width > 0.0 && height > 0.0 {
            hv += width * height;
        }
        prev_y = prev_y.min(y);
    }
    hv
}

/// Returns `true` if `a` is weakly dominated by `b` (`b_i <= a_i` for every objective).
/// Weakly dominated points contribute nothing to the hypervolume, so the recursive slicer
/// can drop them even when strict [`non_dominated`] filtering would keep duplicates.
fn weakly_dominated(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(av, bv)| bv <= av)
}

/// Recursive hypervolume by slicing on the last objective.
///
/// Sorts points by the last coordinate and accumulates slab volumes whose cross-sections are
/// (k-1)-dimensional hypervolumes of the points present in each slab. The (k-1)-D prefixes
/// live in one `active` buffer that grows across slabs, and the non-dominated filter is
/// maintained *incrementally* as each point enters its first slab — the seed implementation
/// re-allocated every prefix and re-ran a full `O(s²)` `non_dominated` pass (plus reference
/// clipping) for every slab of every recursion level.
fn hv_recursive(front: &[Vec<f64>], reference: &[f64]) -> f64 {
    let k = reference.len();
    if k == 2 {
        return hv2d(front.to_vec(), reference);
    }
    let mut order: Vec<usize> = (0..front.len()).collect();
    order.sort_by(|&a, &b| {
        front[a][k - 1]
            .partial_cmp(&front[b][k - 1])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // The (k-1)-D projections of the points seen so far, filtered to the weakly
    // non-dominated subset, plus one reused scratch buffer for the 2-D base case.
    let mut active: Vec<&[f64]> = Vec::with_capacity(front.len());
    let mut scratch: Vec<(f64, f64)> = Vec::with_capacity(front.len());
    let mut hv = 0.0;
    for (rank, &idx) in order.iter().enumerate() {
        let prefix = &front[idx][..k - 1];
        // Incremental non-dominated maintenance: skip the newcomer if an active point
        // already covers it, otherwise evict the active points it covers.
        if !active.iter().any(|p| weakly_dominated(prefix, p)) {
            active.retain(|p| !weakly_dominated(p, prefix));
            active.push(prefix);
        }

        let z_low = front[idx][k - 1];
        let z_high = if rank + 1 < order.len() {
            front[order[rank + 1]][k - 1]
        } else {
            reference[k - 1]
        };
        let thickness = z_high - z_low;
        if thickness <= 0.0 {
            continue;
        }
        let cross_section = if k - 1 == 2 {
            scratch.clear();
            scratch.extend(active.iter().map(|p| (p[0], p[1])));
            hv2d_pairs(&mut scratch, &reference[..2])
        } else {
            let lower: Vec<Vec<f64>> = active.iter().map(|p| p.to_vec()).collect();
            hv_recursive(&lower, &reference[..k - 1])
        };
        hv += thickness * cross_section;
    }
    hv
}

/// Normalizes `value` against a baseline hypervolume, returning `value / baseline`.
///
/// The paper reports "normalized PHV w.r.t. PaRMIS" in Figures 4, 5 and 7; this helper keeps
/// that computation in one place. Returns 0.0 when the baseline is not positive.
pub fn normalized(value: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        value / baseline
    }
}

/// Chooses a reference point that is `margin` (fractionally) worse than the worst value of
/// every objective across all supplied fronts, guaranteeing a common, valid reference.
///
/// # Panics
///
/// Panics if `fronts` contains no points or the points disagree on dimension.
pub fn common_reference_point(fronts: &[&[Vec<f64>]], margin: f64) -> Vec<f64> {
    let first = fronts
        .iter()
        .flat_map(|f| f.iter())
        .next()
        .expect("at least one point is required to compute a reference point");
    let k = first.len();
    let mut worst = vec![f64::NEG_INFINITY; k];
    for front in fronts {
        for p in front.iter() {
            assert_eq!(p.len(), k, "all points must share the same dimension");
            for (w, v) in worst.iter_mut().zip(p) {
                *w = w.max(*v);
            }
        }
    }
    worst
        .into_iter()
        .map(|w| {
            if w.abs() < f64::EPSILON {
                margin
            } else {
                w + w.abs() * margin
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_box() {
        let hv = hypervolume(vec![vec![1.0, 2.0]], &[4.0, 4.0]);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn two_point_staircase() {
        // (1,3) and (3,1) vs ref (4,4): union area = 3*1 + 1*3 + ... compute directly.
        // Box1 = (4-1)*(4-3) = 3; plus box2 strip below y=3: (4-3)*(3-1) = 2 => 5... do sweep:
        // sorted by x: (1,3): width 3, height 4-3=1 => 3 ; (3,1): width 1, height 3-1=2 => 2. total 5.
        let hv = hypervolume(vec![vec![1.0, 3.0], vec![3.0, 1.0]], &[4.0, 4.0]);
        assert!((hv - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_do_not_change_hv() {
        let base = hypervolume(vec![vec![1.0, 3.0], vec![3.0, 1.0]], &[4.0, 4.0]);
        let with_dominated = hypervolume(
            vec![vec![1.0, 3.0], vec![3.0, 1.0], vec![3.5, 3.5]],
            &[4.0, 4.0],
        );
        assert!((base - with_dominated).abs() < 1e-12);
    }

    #[test]
    fn points_outside_reference_contribute_nothing() {
        let hv = hypervolume(vec![vec![5.0, 5.0]], &[4.0, 4.0]);
        assert_eq!(hv, 0.0);
        let hv = hypervolume(vec![vec![5.0, 1.0], vec![1.0, 1.0]], &[4.0, 4.0]);
        assert!((hv - 9.0).abs() < 1e-12);
    }

    #[test]
    fn empty_front_has_zero_hv() {
        assert_eq!(hypervolume(Vec::new(), &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn one_dimensional_hv() {
        let hv = hypervolume(vec![vec![2.0], vec![3.0]], &[10.0]);
        assert!((hv - 8.0).abs() < 1e-12);
    }

    #[test]
    fn three_dimensional_unit_cubes() {
        // Single point at (1,1,1), reference (2,2,2): volume 1.
        let hv = hypervolume(vec![vec![1.0, 1.0, 1.0]], &[2.0, 2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-12);

        // Two incomparable points forming an L-shape.
        // (0,1,1) and (1,0,0) vs ref (2,2,2).
        // Vol(a) = 2*1*1 = 2, Vol(b) = 1*2*2 = 4, overlap = box(max coords)=(1..2,1..2,1..2)=1.
        // Union = 2 + 4 - 1 = 5.
        let hv = hypervolume(
            vec![vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 0.0]],
            &[2.0, 2.0, 2.0],
        );
        assert!((hv - 5.0).abs() < 1e-9, "got {hv}");
    }

    #[test]
    fn three_dimensional_matches_inclusion_exclusion() {
        // Three points, verify against a Monte-Carlo estimate.
        let pts = vec![
            vec![0.2, 0.8, 0.6],
            vec![0.7, 0.3, 0.5],
            vec![0.5, 0.5, 0.1],
        ];
        let reference = [1.0, 1.0, 1.0];
        let exact = hypervolume(pts.clone(), &reference);

        // Deterministic grid estimate (fine enough for 2 decimal places).
        let n = 60usize;
        let mut hits = 0usize;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = (i as f64 + 0.5) / n as f64;
                    let y = (j as f64 + 0.5) / n as f64;
                    let z = (k as f64 + 0.5) / n as f64;
                    if pts.iter().any(|p| p[0] <= x && p[1] <= y && p[2] <= z) {
                        hits += 1;
                    }
                }
            }
        }
        let estimate = hits as f64 / (n * n * n) as f64;
        assert!(
            (exact - estimate).abs() < 0.02,
            "exact {exact} vs grid {estimate}"
        );
    }

    #[test]
    fn three_dimensional_duplicates_and_dominated_projections_are_harmless() {
        // Duplicates, a dominated point and ties in the sliced coordinate all hit the
        // incremental active-set filter of `hv_recursive`.
        let base = hypervolume(
            vec![vec![0.0, 1.0, 1.0], vec![1.0, 0.0, 0.0]],
            &[2.0, 2.0, 2.0],
        );
        let with_noise = hypervolume(
            vec![
                vec![0.0, 1.0, 1.0],
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 1.0], // exact duplicate
                vec![1.5, 1.5, 1.5], // dominated
                vec![1.0, 1.0, 0.0], // ties the slice coordinate of (1,0,0)
            ],
            &[2.0, 2.0, 2.0],
        );
        // (1,1,0) adds the box [1,2]x[1,2]x[0,2] minus its overlaps with the others:
        // grid-check value below guards the exact number.
        assert!(with_noise >= base);
        let pts = [[0.0, 1.0, 1.0], [1.0, 0.0, 0.0], [1.0, 1.0, 0.0]];
        let n = 40usize;
        let mut hits = 0usize;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let x = 2.0 * (i as f64 + 0.5) / n as f64;
                    let y = 2.0 * (j as f64 + 0.5) / n as f64;
                    let z = 2.0 * (k as f64 + 0.5) / n as f64;
                    if pts.iter().any(|p| p[0] <= x && p[1] <= y && p[2] <= z) {
                        hits += 1;
                    }
                }
            }
        }
        let estimate = hits as f64 / (n * n * n) as f64 * 8.0;
        assert!(
            (with_noise - estimate).abs() < 0.05,
            "exact {with_noise} vs grid {estimate}"
        );
    }

    #[test]
    fn four_dimensional_hv_exercises_the_deep_recursion() {
        // Single point: a unit tesseract.
        let hv = hypervolume(vec![vec![1.0; 4]], &[2.0, 2.0, 2.0, 2.0]);
        assert!((hv - 1.0).abs() < 1e-9);
        // Two points by inclusion-exclusion: vol(a) = 2*1*1*1 = 2, vol(b) = 1*2*2*2 = 8,
        // overlap at the componentwise max (1,1,1,1) = 1 => union = 9.
        let hv = hypervolume(
            vec![vec![0.0, 1.0, 1.0, 1.0], vec![1.0, 0.0, 0.0, 0.0]],
            &[2.0, 2.0, 2.0, 2.0],
        );
        assert!((hv - 9.0).abs() < 1e-9, "got {hv}");
    }

    #[test]
    fn normalized_handles_degenerate_baseline() {
        assert_eq!(normalized(2.0, 4.0), 0.5);
        assert_eq!(normalized(2.0, 0.0), 0.0);
        assert_eq!(normalized(2.0, -1.0), 0.0);
    }

    #[test]
    fn common_reference_point_bounds_all_fronts() {
        let a = vec![vec![1.0, 5.0], vec![2.0, 3.0]];
        let b = vec![vec![4.0, 1.0]];
        let r = common_reference_point(&[&a, &b], 0.1);
        for p in a.iter().chain(b.iter()) {
            assert!(p.iter().zip(&r).all(|(v, rv)| v < rv));
        }
    }

    #[test]
    #[should_panic]
    fn common_reference_point_requires_points() {
        let empty: Vec<Vec<f64>> = Vec::new();
        common_reference_point(&[&empty], 0.1);
    }
}
