//! Scalarization schemes used by the RL/IL baselines.
//!
//! The paper's baselines collapse multiple objectives into a single reward with a linear
//! combination `R = Σ λ_i R(O_i)` and sweep the scalarization parameters to trace out a
//! Pareto front. Linear scalarization famously cannot reach non-convex regions of the front
//! (Das & Dennis, 1997), which is one of the weaknesses PaRMIS avoids; the augmented
//! Tchebycheff scalarization is provided as well for completeness and for ablations.

/// A non-negative weight vector over `k` objectives, normalized to sum to one.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightVector {
    weights: Vec<f64>,
}

impl WeightVector {
    /// Creates a weight vector, normalizing the entries to sum to one.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite entry, or sums to zero.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "weight vector must be non-empty");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");
        WeightVector {
            weights: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// Returns the normalized weights.
    pub fn as_slice(&self) -> &[f64] {
        &self.weights
    }

    /// Number of objectives covered by the weight vector.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if the weight vector is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Generates `count` evenly spaced weight vectors for two objectives:
    /// `(0, 1), …, (1, 0)`. This is the sweep the RL/IL baselines run to approximate a front.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2`.
    pub fn sweep_2d(count: usize) -> Vec<WeightVector> {
        assert!(count >= 2, "a 2-D sweep needs at least two weight vectors");
        (0..count)
            .map(|i| {
                let w = i as f64 / (count - 1) as f64;
                // Avoid exactly-zero weights so every objective keeps a little pressure;
                // mirrors how practitioners avoid degenerate reward functions.
                let w = w.clamp(0.01, 0.99);
                WeightVector::new(vec![w, 1.0 - w])
            })
            .collect()
    }

    /// Generates a simplex-lattice sweep for `k` objectives with `divisions` per axis.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `divisions == 0`.
    pub fn sweep(k: usize, divisions: usize) -> Vec<WeightVector> {
        assert!(k >= 2, "need at least two objectives");
        assert!(divisions > 0, "divisions must be positive");
        let mut out = Vec::new();
        let mut current = vec![0usize; k];
        fill_lattice(k, divisions, 0, divisions, &mut current, &mut out);
        out
    }
}

fn fill_lattice(
    k: usize,
    divisions: usize,
    idx: usize,
    remaining: usize,
    current: &mut Vec<usize>,
    out: &mut Vec<WeightVector>,
) {
    if idx == k - 1 {
        current[idx] = remaining;
        let weights: Vec<f64> = current
            .iter()
            .map(|&c| (c as f64 / divisions as f64).max(0.005))
            .collect();
        out.push(WeightVector::new(weights));
        return;
    }
    for c in 0..=remaining {
        current[idx] = c;
        fill_lattice(k, divisions, idx + 1, remaining - c, current, out);
    }
}

/// Scalarization scheme turning an objective vector into a single score to minimize.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalarization {
    /// Weighted sum `Σ w_i · o_i`.
    Linear(WeightVector),
    /// Augmented Tchebycheff: `max_i w_i (o_i - z_i) + rho Σ (o_i - z_i)` with ideal point `z`.
    Tchebycheff {
        /// Objective weights.
        weights: WeightVector,
        /// Ideal (utopian) point subtracted from the objectives.
        ideal: Vec<f64>,
        /// Augmentation coefficient, typically a small positive value such as 1e-3.
        rho: f64,
    },
}

impl Scalarization {
    /// Evaluates the scalarized score of an objective vector (lower is better).
    ///
    /// # Panics
    ///
    /// Panics if the objective dimension does not match the scalarization's weight dimension.
    pub fn score(&self, objectives: &[f64]) -> f64 {
        match self {
            Scalarization::Linear(w) => {
                assert_eq!(objectives.len(), w.len(), "objective dimension mismatch");
                objectives
                    .iter()
                    .zip(w.as_slice())
                    .map(|(o, w)| o * w)
                    .sum()
            }
            Scalarization::Tchebycheff {
                weights,
                ideal,
                rho,
            } => {
                assert_eq!(
                    objectives.len(),
                    weights.len(),
                    "objective dimension mismatch"
                );
                assert_eq!(
                    objectives.len(),
                    ideal.len(),
                    "ideal point dimension mismatch"
                );
                let diffs: Vec<f64> = objectives.iter().zip(ideal).map(|(o, z)| o - z).collect();
                let max_term = diffs
                    .iter()
                    .zip(weights.as_slice())
                    .map(|(d, w)| d * w)
                    .fold(f64::NEG_INFINITY, f64::max);
                max_term + rho * diffs.iter().sum::<f64>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_normalized() {
        let w = WeightVector::new(vec![2.0, 2.0]);
        assert_eq!(w.as_slice(), &[0.5, 0.5]);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    #[test]
    #[should_panic]
    fn negative_weights_rejected() {
        WeightVector::new(vec![1.0, -0.5]);
    }

    #[test]
    #[should_panic]
    fn all_zero_weights_rejected() {
        WeightVector::new(vec![0.0, 0.0]);
    }

    #[test]
    fn sweep_2d_covers_extremes() {
        let sweep = WeightVector::sweep_2d(5);
        assert_eq!(sweep.len(), 5);
        // First favours objective 2, last favours objective 1.
        assert!(sweep[0].as_slice()[0] < sweep[0].as_slice()[1]);
        assert!(sweep[4].as_slice()[0] > sweep[4].as_slice()[1]);
        for w in &sweep {
            let sum: f64 = w.as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_lattice_has_expected_count() {
        // k=3, divisions=4 -> C(4+2, 2) = 15 weight vectors.
        let sweep = WeightVector::sweep(3, 4);
        assert_eq!(sweep.len(), 15);
        for w in &sweep {
            assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn linear_scalarization_orders_points() {
        let s = Scalarization::Linear(WeightVector::new(vec![0.5, 0.5]));
        assert!(s.score(&[1.0, 1.0]) < s.score(&[2.0, 2.0]));
        assert_eq!(s.score(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn tchebycheff_reaches_nonconvex_points() {
        // Non-convex front: the middle point (1.2, 1.2) is never the linear-scalarization
        // optimum among {(0,2), (1.2,1.2), (2,0)} for any weights, but Tchebycheff with equal
        // weights selects it.
        let points = [vec![0.0, 2.0], vec![1.2, 1.2], vec![2.0, 0.0]];
        let linear = Scalarization::Linear(WeightVector::new(vec![0.5, 0.5]));
        let best_linear = points
            .iter()
            .enumerate()
            .min_by(|a, b| linear.score(a.1).partial_cmp(&linear.score(b.1)).unwrap())
            .unwrap()
            .0;
        assert_ne!(best_linear, 1, "linear scalarization should skip the knee");

        let tche = Scalarization::Tchebycheff {
            weights: WeightVector::new(vec![0.5, 0.5]),
            ideal: vec![0.0, 0.0],
            rho: 1e-3,
        };
        let best_tche = points
            .iter()
            .enumerate()
            .min_by(|a, b| tche.score(a.1).partial_cmp(&tche.score(b.1)).unwrap())
            .unwrap()
            .0;
        assert_eq!(best_tche, 1, "tchebycheff should select the knee point");
    }

    #[test]
    #[should_panic]
    fn score_rejects_dimension_mismatch() {
        let s = Scalarization::Linear(WeightVector::new(vec![0.5, 0.5]));
        s.score(&[1.0]);
    }
}
