//! Multi-objective optimization toolkit for the PaRMIS reproduction.
//!
//! The PaRMIS framework (and its RL/IL baselines) need a small set of multi-objective
//! primitives, all assuming **minimization** of every objective:
//!
//! * [`dominance`] — Pareto-dominance tests and non-dominated filtering.
//! * [`front`] — the [`ParetoFront`] container that incrementally maintains a non-dominated
//!   archive of points and their tags (e.g. policy parameters).
//! * [`hypervolume`](mod@hypervolume) — the Pareto hypervolume (PHV) quality indicator used throughout the
//!   paper's evaluation (exact 2-D sweep plus a recursive WFG-style algorithm for `k > 2`).
//! * [`nsga2`] — the NSGA-II evolutionary algorithm used by PaRMIS to solve the cheap
//!   multi-objective problem over sampled GP posterior functions (paper §IV-B step 1).
//! * [`scalarize`] — linear and Tchebycheff scalarizations used by the RL/IL baselines.
//!
//! # Examples
//!
//! ```
//! use moo::front::ParetoFront;
//! use moo::hypervolume::hypervolume;
//!
//! let mut front = ParetoFront::new(2);
//! front.insert(vec![1.0, 4.0], 0usize);
//! front.insert(vec![2.0, 2.0], 1usize);
//! front.insert(vec![4.0, 1.0], 2usize);
//! front.insert(vec![3.0, 3.0], 3usize); // dominated by (2, 2)
//! assert_eq!(front.len(), 3);
//!
//! let phv = hypervolume(front.objective_values(), &[5.0, 5.0]);
//! assert!(phv > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dominance;
pub mod front;
pub mod hypervolume;
pub mod nsga2;
pub mod scalarize;
pub mod stats;

pub use dominance::{dominates, non_dominated_indices, Dominance, DominanceScratch};
pub use front::ParetoFront;
pub use hypervolume::hypervolume;
pub use nsga2::{FlatPopulation, Nsga2, Nsga2Config, Nsga2Engine, Population};
pub use scalarize::{Scalarization, WeightVector};
