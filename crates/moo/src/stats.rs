//! Process-wide operation counters for the multi-objective substrate.
//!
//! The flat-buffer NSGA-II engine is only worth its complexity if the acquisition pipeline
//! actually routes through it. Mirroring the `gp::stats` design, these counters let
//! integration tests assert that (e.g.) a `Parmis::run` evolved its sampled-front
//! populations through the batched engine — generation by generation — without timing
//! anything: wall-clock assertions flake on shared machines, operation counts do not.
//!
//! Counters are global atomics (`Relaxed` ordering — they are statistics, not
//! synchronization), so tests that assert on them should either run in their own process or
//! use `>=` comparisons against a [`snapshot`] taken after [`reset`].

use std::sync::atomic::{AtomicU64, Ordering};

static NSGA2_GENERATIONS: AtomicU64 = AtomicU64::new(0);
static DOMINANCE_COMPARISONS: AtomicU64 = AtomicU64::new(0);
static FLAT_SORTS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// NSGA-II generations evolved by the flat engine (one per selection + variation +
    /// environmental-selection round, across every `run`/`solve` call).
    pub nsga2_generations: u64,
    /// Unordered candidate pairs examined by flat non-dominated sorting: each
    /// [`crate::dominance::fast_non_dominated_sort_flat`] pass over `n` points adds
    /// `n·(n−1)/2` (every pair is compared once, in both directions, with a single pass —
    /// half the work of the seed's ordered-pair sweep).
    pub dominance_comparisons: u64,
    /// Flat index-based non-dominated sorts performed by the engine.
    pub flat_sorts: u64,
}

/// Resets every counter to zero.
pub fn reset() {
    NSGA2_GENERATIONS.store(0, Ordering::Relaxed);
    DOMINANCE_COMPARISONS.store(0, Ordering::Relaxed);
    FLAT_SORTS.store(0, Ordering::Relaxed);
}

/// Returns the current value of every counter.
pub fn snapshot() -> OpCounts {
    OpCounts {
        nsga2_generations: NSGA2_GENERATIONS.load(Ordering::Relaxed),
        dominance_comparisons: DOMINANCE_COMPARISONS.load(Ordering::Relaxed),
        flat_sorts: FLAT_SORTS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_generation() {
    NSGA2_GENERATIONS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_dominance_comparisons(pairs: u64) {
    DOMINANCE_COMPARISONS.fetch_add(pairs, Ordering::Relaxed);
}

pub(crate) fn record_flat_sort() {
    FLAT_SORTS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_generation();
        record_flat_sort();
        record_dominance_comparisons(12);
        let s = snapshot();
        assert!(s.nsga2_generations >= 1);
        assert!(s.flat_sorts >= 1);
        assert!(s.dominance_comparisons >= 12);
        reset();
        // Another test in this process may race a fresh increment in, so only assert the
        // reset did not fail outright.
        assert!(snapshot().dominance_comparisons < s.dominance_comparisons + 12);
    }
}
