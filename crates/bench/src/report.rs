//! Plain-text and JSON reporting helpers for the figure/table binaries.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Prints a header line for an experiment, mirroring the figure/table it reproduces.
pub fn print_header(experiment: &str, description: &str) {
    println!("==================================================================");
    println!("{experiment}: {description}");
    println!("==================================================================");
}

/// Prints a two-column series (e.g. PHV vs. iteration) with a short label.
pub fn print_series(label: &str, x_name: &str, y_name: &str, series: &[(f64, f64)]) {
    println!("-- {label} ({x_name} vs {y_name})");
    for (x, y) in series {
        println!("{label},{x:.4},{y:.6}");
    }
}

/// Prints the parallelism context of a run (effective worker threads and PaRMIS batch
/// size), so logged numbers in `BENCH_*.json` comparisons are attributable to a machine
/// shape. Results themselves are thread-count invariant.
pub fn print_run_context(threads: usize, batch: usize) {
    println!("run context: threads={threads} batch={batch}");
}

/// Prints a labelled table of rows, comma separated, with a header row.
pub fn print_table(label: &str, columns: &[&str], rows: &[Vec<String>]) {
    println!("-- {label}");
    println!("{}", columns.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
}

/// Writes `data` as pretty JSON into `$PARMIS_RESULTS_DIR/<name>.json` when the environment
/// variable is set; silently does nothing otherwise. Errors are reported on stderr but never
/// abort the experiment.
pub fn write_json<T: Serialize>(name: &str, data: &T) {
    let Ok(dir) = std::env::var("PARMIS_RESULTS_DIR") else {
        return;
    };
    let path = PathBuf::from(dir).join(format!("{name}.json"));
    match serde_json::to_string_pretty(data) {
        Ok(json) => {
            if let Some(parent) = path.parent() {
                let _ = fs::create_dir_all(parent);
            }
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Formats a floating-point value with a sensible number of digits for tables.
pub fn fmt(value: f64) -> String {
    if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else if value.abs() >= 1.0 {
        format!("{value:.3}")
    } else {
        format!("{value:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_switches_precision_with_magnitude() {
        assert_eq!(fmt(1234.5678), "1234.6");
        assert_eq!(fmt(12.34567), "12.346");
        assert_eq!(fmt(0.123456), "0.1235");
    }

    #[test]
    fn write_json_respects_env_var() {
        let dir = std::env::temp_dir().join("parmis-report-test");
        std::env::set_var("PARMIS_RESULTS_DIR", &dir);
        write_json("unit-test", &vec![1, 2, 3]);
        let path = dir.join("unit-test.json");
        assert!(path.exists());
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains('1'));
        std::env::remove_var("PARMIS_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
