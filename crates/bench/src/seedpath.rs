//! The seed simulation path, preserved verbatim as a benchmarking baseline.
//!
//! The streaming, table-driven engine (`soc_sim::engine`, `Platform::run_application_with`)
//! replaced the original epoch loop, which re-validated every decision with linear OPP-table
//! scans, re-derived per-decision cluster power from the models on every epoch, recomputed
//! `energy = time · power` three times per epoch, and materialized a `Vec<EpochResult>` plus
//! fresh identity `String`s per run. That seed loop is reproduced here — against the same
//! public model APIs, operation for operation — so `bench_sim` and the release timing gate
//! can measure the streaming engine against the exact code it replaced, and the equivalence
//! tests below can pin that the rewrite is bit-identical.
//!
//! This module is **not** a supported simulation API: use
//! [`soc_sim::platform::Platform::run_application`] (or the streaming
//! `run_application_with`) for real work.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use soc_sim::config::DrmDecision;
use soc_sim::counters::CounterSnapshot;
use soc_sim::platform::{DrmController, EpochResult, Platform, RunSummary};
use soc_sim::workload::{Application, ApplicationBuilder, PhaseSpec};

/// Controller pinning one fixed decision — the shared fixture of `bench_sim` and the
/// release timing gate, so both measure exactly the same controller behaviour.
pub struct FixedDecisionController(pub DrmDecision);

impl DrmController for FixedDecisionController {
    fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
        self.0
    }

    fn name(&self) -> &str {
        "fixed"
    }
}

/// The probe phase `bench_sim` and the timing gate both run: a balanced mixed workload.
pub fn probe_phase() -> PhaseSpec {
    PhaseSpec {
        name: "probe".into(),
        instructions: 40e6,
        parallel_fraction: 0.55,
        memory_refs_per_instr: 0.25,
        l2_miss_rate: 0.05,
        branch_fraction: 0.1,
        branch_miss_rate: 0.05,
        ilp_scale: 0.85,
    }
}

/// A jittered `epochs`-epoch application over [`probe_phase`] — the shared measurement
/// workload. Keeping it here (next to the seed baseline) guarantees the `BENCH_sim.json`
/// rows and the `#[ignore]`d gate never drift onto different workloads.
pub fn probe_app(epochs: usize) -> Application {
    ApplicationBuilder::new(format!("sim-bench-{epochs}"))
        .phase(probe_phase(), epochs)
        .jitter(0.05)
        .build()
        .expect("valid probe application")
}

/// The seed's `Platform::run_epoch`: validate (linear scans), then derive performance,
/// power (two more OPP scans inside `cluster_power`) and counters from the models.
///
/// # Errors
///
/// Returns [`soc_sim::SocError::InvalidDecision`] exactly as the seed did.
pub fn run_epoch_seed(
    platform: &Platform,
    decision: &DrmDecision,
    phase: &PhaseSpec,
) -> soc_sim::Result<EpochResult> {
    let spec = platform.spec();
    spec.decision_space().validate(decision)?;
    let big = spec.big_cluster();
    let little = spec.little_cluster();
    let perf = spec.perf_model().run_epoch(big, little, decision, phase);
    let power = spec
        .power_model()
        .epoch_power(big, little, decision, phase, &perf);
    let counters = CounterSnapshot::from_epoch(big, little, decision, phase, &perf, &power);
    let power_w = power.total_w();
    Ok(EpochResult {
        decision: *decision,
        time_s: perf.time_s,
        energy_j: power_w * perf.time_s,
        power_w,
        big_power_w: power.big_w,
        little_power_w: power.little_w,
        temperature_c: spec.thermal_model().ambient_c,
        counters,
    })
}

/// The seed's `Platform::run_application`: the materializing epoch loop with per-epoch
/// validation, throttle-cap scans, and the triple `energy = time · power` recomputation.
///
/// # Errors
///
/// Returns [`soc_sim::SocError::InvalidDecision`] if the controller leaves the decision
/// space, exactly as the seed did.
pub fn run_application_seed(
    platform: &Platform,
    app: &Application,
    controller: &mut dyn DrmController,
    seed: u64,
) -> soc_sim::Result<RunSummary> {
    let spec = platform.spec();
    controller.reset();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    let noise = spec.measurement_noise();
    let noise_dist = if noise > 0.0 {
        Some(LogNormal::new(0.0, noise).expect("valid lognormal"))
    } else {
        None
    };

    let mut previous = spec.decision_space().initial_decision();
    let mut counters = CounterSnapshot::zeroed();
    let mut epochs = Vec::with_capacity(app.epoch_count());
    let mut total_time = 0.0;
    let mut total_energy = 0.0;
    let mut total_instructions = 0.0;
    let thermal = *spec.thermal_model();
    let mut thermal_state = thermal.initial_state();
    let mut peak_temperature_c = thermal_state.hottest_c();

    for phase in &app.epochs {
        let requested = controller.decide(&counters, &previous);
        let throttling = thermal.throttles(&thermal_state);
        let decision = thermal.cap_decision(
            throttling,
            &requested,
            spec.big_cluster(),
            spec.little_cluster(),
        );
        let mut result = run_epoch_seed(platform, &decision, phase)?;
        let leakage_scale = thermal.leakage_multiplier(thermal_state.die_c);
        result.power_w *= leakage_scale;
        result.big_power_w *= leakage_scale;
        result.little_power_w *= leakage_scale;
        result.counters.total_chip_power_w = result.power_w;
        result.energy_j = result.time_s * result.power_w;
        let switch_s = spec.transition_model().switch_time_s(&previous, &decision);
        if switch_s > 0.0 {
            result.time_s += switch_s;
            result.energy_j = result.time_s * result.power_w;
        }
        if let Some(dist) = &noise_dist {
            let time_factor: f64 = dist.sample(&mut rng);
            let power_factor: f64 = dist.sample(&mut rng);
            result.time_s *= time_factor;
            result.power_w *= power_factor;
            result.big_power_w *= power_factor;
            result.little_power_w *= power_factor;
            result.energy_j = result.time_s * result.power_w;
            result.counters.total_chip_power_w = result.power_w;
        }
        let switch_j = spec
            .transition_model()
            .switch_energy_j(&previous, &decision);
        if switch_j > 0.0 {
            result.energy_j += switch_j;
        }
        total_time += result.time_s;
        total_energy += result.energy_j;
        total_instructions += phase.instructions;
        thermal_state = thermal.advance(
            &thermal_state,
            result.big_power_w,
            result.little_power_w,
            result.power_w,
            result.time_s,
        );
        result.temperature_c = thermal_state.hottest_c();
        if result.temperature_c > peak_temperature_c {
            peak_temperature_c = result.temperature_c;
        }
        counters = result.counters;
        previous = decision;
        epochs.push(result);
    }

    let average_power_w = if total_time > 0.0 {
        total_energy / total_time
    } else {
        0.0
    };
    let ppw = if total_energy > 0.0 {
        total_instructions / 1e9 / total_energy
    } else {
        0.0
    };

    Ok(RunSummary {
        application: app.name.clone(),
        controller: controller.shared_name(),
        execution_time_s: total_time,
        energy_j: total_energy,
        average_power_w,
        ppw,
        peak_temperature_c,
        epochs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_sim::governor::default_governors;

    /// The contract behind every `bench_sim` ratio: the streaming, table-driven engine is
    /// bit-identical to the seed path it replaced, across platforms and controllers.
    #[test]
    fn seed_path_and_streaming_engine_are_bit_identical() {
        for platform in [
            Platform::odroid_xu3(),
            Platform::hexa_asym(),
            Platform::wearable(),
        ] {
            let app = soc_sim::workload::bursty(
                "equivalence",
                soc_sim::workload::PhaseSpec {
                    name: "p".into(),
                    instructions: 40e6,
                    parallel_fraction: 0.6,
                    memory_refs_per_instr: 0.22,
                    l2_miss_rate: 0.05,
                    branch_fraction: 0.1,
                    branch_miss_rate: 0.04,
                    ilp_scale: 0.8,
                },
                5.0,
                7,
                2,
                60,
                0.1,
                3,
            )
            .unwrap();
            for mut governor in default_governors(platform.spec()) {
                let seeded = run_application_seed(&platform, &app, &mut governor, 11).unwrap();
                let streamed = platform.run_application(&app, &mut governor, 11).unwrap();
                assert_eq!(
                    seeded,
                    streamed,
                    "summary diverged under {}",
                    governor.name()
                );
            }
        }
    }

    #[test]
    fn seed_epoch_and_table_epoch_agree_across_the_whole_space() {
        let platform = Platform::odroid_xu3();
        let phase = PhaseSpec {
            name: "probe".into(),
            instructions: 25e6,
            parallel_fraction: 0.5,
            memory_refs_per_instr: 0.3,
            l2_miss_rate: 0.06,
            branch_fraction: 0.12,
            branch_miss_rate: 0.05,
            ilp_scale: 0.75,
        };
        for decision in platform.spec().decision_space().iter().step_by(17) {
            assert_eq!(
                run_epoch_seed(&platform, &decision, &phase).unwrap(),
                platform.run_epoch(&decision, &phase).unwrap(),
                "epoch diverged at {decision}"
            );
        }
    }
}
