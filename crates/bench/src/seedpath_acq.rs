//! The seed acquisition-sampling path, preserved verbatim as a benchmarking baseline.
//!
//! The flat-buffer batched engine (`moo::nsga2::Nsga2Engine` +
//! `gp::PosteriorSample::eval_batch_into`, driven by `parmis::pareto_sampling`) replaced the
//! original per-point loop, which stored populations as `Vec<Vec<f64>>`, re-allocated the
//! offspring block, the combined population, the non-dominated-sort adjacency lists and the
//! per-front crowding clones on every generation, and answered every candidate with
//! `population × k` independent random-feature recomputations. That seed loop is reproduced
//! here — same RNG consumption, same floating-point operation order, against the same
//! public `moo::dominance` and `gp` APIs — so `bench_acq` and the release timing gate can
//! measure the flat engine against the exact code it replaced, and the `acq_equivalence`
//! proptest suite can pin that the rewrite is bit-identical.
//!
//! This module is **not** a supported optimization API: use [`moo::nsga2::Nsga2`] (or the
//! batched [`moo::nsga2::Nsga2Engine`]) and [`parmis::pareto_sampling`] for real work.

use gp::{GaussianProcess, PosteriorSample, RffSampler};
use moo::dominance::{crowding_distance, fast_non_dominated_sort};
use moo::nsga2::{FlatPopulation, Nsga2Config, Population};
use parmis::pareto_sampling::ParetoSamplingConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The seed `Nsga2::run`: nested-`Vec` populations, per-point evaluation, per-generation
/// allocation of offspring/combined/rank/crowding buffers.
///
/// # Panics
///
/// Panics exactly as the seed did: empty/odd configurations are the caller's problem (the
/// fixtures mirror `Nsga2::new`-validated inputs), and the objective function must return a
/// consistent, non-zero number of objectives.
pub fn nsga2_run_seed<F: FnMut(&[f64]) -> Vec<f64>>(
    lower: &[f64],
    upper: &[f64],
    config: &Nsga2Config,
    mut evaluate: F,
) -> Population {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dim = lower.len();
    let pop_size = config.population_size;
    let mutation_p = config.mutation_probability.unwrap_or(1.0 / dim as f64);

    let mut decisions: Vec<Vec<f64>> = (0..pop_size)
        .map(|_| {
            (0..dim)
                .map(|d| {
                    if lower[d] == upper[d] {
                        // The one divergence from the seed: the seed panicked on an empty
                        // `gen_range`; the fixed coordinate is pinned instead, mirroring
                        // the engine so degenerate-bound problems stay comparable.
                        lower[d]
                    } else {
                        rng.gen_range(lower[d]..upper[d])
                    }
                })
                .collect()
        })
        .collect();
    let mut objectives: Vec<Vec<f64>> = decisions.iter().map(|x| evaluate(x)).collect();
    let n_obj = objectives[0].len();
    assert!(
        n_obj > 0,
        "objective function must return at least one value"
    );
    assert!(
        objectives.iter().all(|o| o.len() == n_obj),
        "objective function returned inconsistent dimensions"
    );

    for _gen in 0..config.generations {
        // --- selection + variation -> offspring of the same size
        let ranks = fast_non_dominated_sort(&objectives);
        let crowding = per_front_crowding_seed(&objectives, &ranks);

        let mut offspring: Vec<Vec<f64>> = Vec::with_capacity(pop_size);
        while offspring.len() < pop_size {
            let p1 = tournament_seed(&mut rng, &ranks, &crowding);
            let p2 = tournament_seed(&mut rng, &ranks, &crowding);
            let (mut c1, mut c2) = crossover_seed(
                &mut rng,
                config,
                lower,
                upper,
                &decisions[p1],
                &decisions[p2],
            );
            mutate_seed(&mut rng, config, lower, upper, &mut c1, mutation_p);
            mutate_seed(&mut rng, config, lower, upper, &mut c2, mutation_p);
            offspring.push(c1);
            if offspring.len() < pop_size {
                offspring.push(c2);
            }
        }
        let offspring_obj: Vec<Vec<f64>> = offspring.iter().map(|x| evaluate(x)).collect();

        // --- environmental selection over parents + offspring
        let mut combined_dec = decisions;
        combined_dec.extend(offspring);
        let mut combined_obj = objectives;
        combined_obj.extend(offspring_obj);

        let ranks = fast_non_dominated_sort(&combined_obj);
        let crowding = per_front_crowding_seed(&combined_obj, &ranks);
        let mut order: Vec<usize> = (0..combined_dec.len()).collect();
        order.sort_by(|&a, &b| {
            ranks[a].cmp(&ranks[b]).then(
                crowding[b]
                    .partial_cmp(&crowding[a])
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        order.truncate(pop_size);

        decisions = order.iter().map(|&i| combined_dec[i].clone()).collect();
        objectives = order.iter().map(|&i| combined_obj[i].clone()).collect();
    }

    Population {
        decisions,
        objectives,
    }
}

/// The seed SBX crossover: allocates both children per mating pair.
fn crossover_seed(
    rng: &mut StdRng,
    config: &Nsga2Config,
    lower: &[f64],
    upper: &[f64],
    p1: &[f64],
    p2: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    if rng.gen::<f64>() > config.crossover_probability {
        return (c1, c2);
    }
    let eta = config.crossover_eta;
    for d in 0..p1.len() {
        if rng.gen::<f64>() > 0.5 {
            continue;
        }
        let (x1, x2) = (p1[d].min(p2[d]), p1[d].max(p2[d]));
        if (x2 - x1).abs() < 1e-14 {
            continue;
        }
        let u: f64 = rng.gen();
        let beta = if u <= 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0))
        } else {
            (1.0 / (2.0 * (1.0 - u))).powf(1.0 / (eta + 1.0))
        };
        let v1 = 0.5 * ((1.0 + beta) * x1 + (1.0 - beta) * x2);
        let v2 = 0.5 * ((1.0 - beta) * x1 + (1.0 + beta) * x2);
        c1[d] = v1.clamp(lower[d], upper[d]);
        c2[d] = v2.clamp(lower[d], upper[d]);
    }
    (c1, c2)
}

/// The seed polynomial mutation.
fn mutate_seed(
    rng: &mut StdRng,
    config: &Nsga2Config,
    lower: &[f64],
    upper: &[f64],
    x: &mut [f64],
    probability: f64,
) {
    let eta = config.mutation_eta;
    for (d, xd) in x.iter_mut().enumerate() {
        if rng.gen::<f64>() > probability {
            continue;
        }
        let (lo, hi) = (lower[d], upper[d]);
        let span = hi - lo;
        let u: f64 = rng.gen();
        let delta = if u < 0.5 {
            (2.0 * u).powf(1.0 / (eta + 1.0)) - 1.0
        } else {
            1.0 - (2.0 * (1.0 - u)).powf(1.0 / (eta + 1.0))
        };
        *xd = (*xd + delta * span).clamp(lo, hi);
    }
}

/// The seed per-front crowding: clones every front's points before scoring them.
fn per_front_crowding_seed(objectives: &[Vec<f64>], ranks: &[usize]) -> Vec<f64> {
    let mut crowding = vec![0.0; objectives.len()];
    let max_rank = ranks.iter().copied().max().unwrap_or(0);
    for front in 0..=max_rank {
        let members: Vec<usize> = ranks
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == front)
            .map(|(i, _)| i)
            .collect();
        let pts: Vec<Vec<f64>> = members.iter().map(|&i| objectives[i].clone()).collect();
        let d = crowding_distance(&pts);
        for (idx, &member) in members.iter().enumerate() {
            crowding[member] = d[idx];
        }
    }
    crowding
}

/// The seed binary tournament on (rank, crowding distance).
fn tournament_seed(rng: &mut StdRng, ranks: &[usize], crowding: &[f64]) -> usize {
    let n = ranks.len();
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    if ranks[a] < ranks[b] {
        a
    } else if ranks[b] < ranks[a] {
        b
    } else if crowding[a] >= crowding[b] {
        a
    } else {
        b
    }
}

/// The shared measurement fixture of `bench_acq` and the release timing gate: two
/// 3-dimensional GP models with opposing trends (a genuine model Pareto trade-off), fitted
/// on a deterministic design. Keeping it here (next to the seed baseline) guarantees the
/// `BENCH_acq.json` rows and the `#[ignore]`d gate never drift onto different problems.
pub fn probe_models() -> Vec<GaussianProcess> {
    let dim = 3;
    let xs: Vec<Vec<f64>> = (0..30)
        .map(|i| {
            let t = i as f64 / 29.0 * 6.0 - 3.0;
            (0..dim)
                .map(|d| t * (1.0 - 0.3 * d as f64) + 0.15 * d as f64)
                .collect()
        })
        .collect();
    let y1: Vec<f64> = xs.iter().map(|x| x[0] + 0.1 * x[2] + 0.05 * x[1]).collect();
    let y2: Vec<f64> = xs.iter().map(|x| -x[0] + 0.2 * x[1]).collect();
    let kernel = gp::kernel::Kernel::matern52(1.0, 2.0);
    vec![
        GaussianProcess::fit(xs.clone(), y1, kernel.clone(), 1e-4).expect("valid fit"),
        GaussianProcess::fit(xs, y2, kernel, 1e-4).expect("valid fit"),
    ]
}

/// The sampling configuration both `bench_acq` and the gate run: 200 random features,
/// a 40-individual population evolved for 30 generations — the shape named by the
/// acquisition speed contract.
pub fn probe_sampling_config() -> ParetoSamplingConfig {
    ParetoSamplingConfig {
        rff_features: 200,
        nsga_population: 40,
        nsga_generations: 30,
    }
}

/// The shared NSGA-II *machinery* probe of `bench_acq` and the gate: a 6-D box and a
/// near-free bi-objective so the measurement isolates population storage, sorting,
/// crowding, selection and variation. Returns `(lower, upper, config)` at the contract
/// shape (40-pop/30-gen).
pub fn probe_machinery_problem() -> (Vec<f64>, Vec<f64>, Nsga2Config) {
    let dim = 6;
    (
        vec![-2.0; dim],
        vec![2.0; dim],
        Nsga2Config {
            population_size: probe_sampling_config().nsga_population,
            generations: probe_sampling_config().nsga_generations,
            seed: 21,
            ..Default::default()
        },
    )
}

/// The machinery probe's objective through the seed interface, which forces one
/// `Vec<f64>` per evaluated point.
pub fn probe_machinery_eval(x: &[f64]) -> Vec<f64> {
    vec![
        x.iter().map(|v| v * v).sum(),
        x.iter().map(|v| (v - 1.0) * (v - 1.0)).sum(),
    ]
}

/// The machinery probe's objective through the batched interface, writing straight into
/// the flat objective block (each path pays exactly the cost its interface imposes).
pub fn probe_machinery_eval_flat(points: &FlatPopulation<'_>, out: &mut [f64]) {
    for i in 0..points.count() {
        let (mut o1, mut o2) = (0.0, 0.0);
        for v in points.row(i) {
            o1 += v * v;
            o2 += (v - 1.0) * (v - 1.0);
        }
        out[2 * i] = o1;
        out[2 * i + 1] = o2;
    }
}

/// A seed-path Pareto-front sample: same fields as
/// [`parmis::pareto_sampling::ParetoFrontSample`], kept separate so the baseline never
/// routes through the rewritten constructor.
#[derive(Debug, Clone)]
pub struct SeedFrontSample {
    /// Objective vectors of the sampled front (minimization).
    pub front: Vec<Vec<f64>>,
    /// Per-objective minimum over the sampled front.
    pub per_objective_best: Vec<f64>,
}

/// The seed RFF samplers of `ParetoFrontSampler::new`: one per objective model, with the
/// seed's exact per-objective seed derivation.
///
/// # Panics
///
/// Panics if RFF construction fails (mirrors the fixtures' `unwrap`, not seed behaviour).
pub fn build_seed_samplers(
    models: &[GaussianProcess],
    rff_features: usize,
    seed: u64,
) -> Vec<RffSampler> {
    models
        .iter()
        .enumerate()
        .map(|(i, m)| {
            RffSampler::new(m, rff_features, seed.wrapping_add(i as u64 * 0x9e37))
                .expect("valid RFF construction")
        })
        .collect()
}

/// The seed `ParetoFrontSampler::sample`: draw one posterior function per objective, solve
/// the cheap multi-objective problem with the seed NSGA-II loop evaluating every candidate
/// point-by-point, and reduce the resulting front.
pub fn sample_front_seed(
    samplers: &[RffSampler],
    parameter_bound: f64,
    config: &ParetoSamplingConfig,
    sample_seed: u64,
) -> SeedFrontSample {
    let dim = samplers[0].dim();
    let functions: Vec<PosteriorSample> = samplers
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.sample(sample_seed.wrapping_add(i as u64 * 7919))
                .expect("valid posterior sample")
        })
        .collect();

    let nsga_config = Nsga2Config {
        population_size: config.nsga_population.max(4) & !1,
        generations: config.nsga_generations.max(1),
        seed: sample_seed ^ 0xD1CE,
        ..Default::default()
    };
    let lower = vec![-parameter_bound; dim];
    let upper = vec![parameter_bound; dim];
    let population = nsga2_run_seed(&lower, &upper, &nsga_config, |theta| {
        functions.iter().map(|f| f.eval(theta)).collect()
    });
    let front = population.pareto_front();

    let k = samplers.len();
    let mut per_objective_best = vec![f64::INFINITY; k];
    for point in &front {
        for (best, v) in per_objective_best.iter_mut().zip(point) {
            *best = best.min(*v);
        }
    }
    SeedFrontSample {
        front,
        per_objective_best,
    }
}
