//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each `fig*`/`table*` binary in `src/bin/` reproduces one experiment from the paper's
//! evaluation section and prints the corresponding rows/series to stdout (and, when the
//! `PARMIS_RESULTS_DIR` environment variable is set, writes the same data as JSON for
//! post-processing). This library holds the pieces they share: experiment configuration from
//! the command line, PaRMIS/baseline runners with consistent budgets, PHV bookkeeping with a
//! common reference point, and plain-text table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod harness;
pub mod report;
pub mod seedpath;
pub mod seedpath_acq;

pub use harness::{ExperimentBudget, MethodFront, PhvSummary};
