//! Job-supervisor kill soak: the CI gate for crash-safe fleet supervision.
//!
//! ```text
//! cargo run --release -p bench --bin job_soak -- [--quick] [--seed N] [--max-seconds N]
//! ```
//!
//! The orchestrator (no `--phase` flag) first computes reference outcome digests by
//! running a 4-job fleet uninterrupted in-process. Then, for worker counts {1, 2, 4},
//! it first drills the **graceful path** — a supervisor child armed with
//! [`SupervisorConfig::drain_on_signals`] receives a real `SIGTERM` mid-fleet, drains
//! every job to a checkpoint boundary, and must exit 0 with only resumable phases and
//! zero quarantined files (a polite shutdown is not a crash) — and then the **crash
//! path**: it repeatedly spawns itself as a supervisor process over the same checkpoint
//! directory and kills it at a randomized point (seed logged; rerun with `--seed` to
//! reproduce):
//!
//! * a timer thread that SIGKILLs the process mid-segment after a random delay, or
//! * an armed [`CrashPlan`] that aborts during the N-th durable write — *before* or
//!   *after* the atomic rename, i.e. mid-checkpoint-write;
//!
//! and, after the first kill, corrupts the newest checkpoint generation of one job in
//! place to exercise quarantine fallback. Each restart must recover cleanly (no
//! corrupt-state panic); the final run completes the fleet and writes per-job outcome
//! digests, which must be **bit-identical** to the uninterrupted references for every
//! worker count. `--max-seconds` maps the whole drill schedule onto a
//! [`parmis::cancel`] deadline source: once the budget expires, remaining drain/kill
//! drills are skipped and every fleet is driven straight to completion, so soak length
//! is time-bounded instead of fuel-guessed. Set `PARMIS_RESULTS_DIR` to keep the fleet
//! directories (journal + quarantine) and `BENCH_job_soak.json` as artifacts.

use bench::report;
use parmis::jobs::{
    atomic_write, outcome_digest, CrashPlan, CrashStage, JobPhase, JobSpec, JobSupervisor,
    SupervisorConfig,
};
use parmis::prelude::*;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::process::Command;

const FLEET: u64 = 4;

fn die(message: &str) -> ! {
    eprintln!("job_soak: {message}");
    std::process::exit(1)
}

fn job_config(quick: bool, index: u64) -> ParmisConfig {
    use parmis::acquisition::AcquisitionOptimizerConfig;
    use parmis::pareto_sampling::ParetoSamplingConfig;
    ParmisConfig {
        max_iterations: if quick { 8 } else { 14 },
        initial_samples: 4,
        num_pareto_samples: 1,
        sampling: ParetoSamplingConfig {
            rff_features: 40,
            nsga_population: 12,
            nsga_generations: 5,
        },
        acquisition: AcquisitionOptimizerConfig {
            random_candidates: 12,
            local_candidates: 4,
            local_perturbation: 0.2,
        },
        refit_hyperparameters_every: 5,
        batch_size: 2,
        seed: 173 + 31 * index,
        ..ParmisConfig::default()
    }
}

fn fleet_specs(quick: bool) -> Vec<JobSpec> {
    (0..FLEET)
        .map(|i| JobSpec::new(format!("soak-{i}"), job_config(quick, i)))
        .collect()
}

fn supervisor_config(workers: usize, drain_on_signals: bool) -> SupervisorConfig {
    SupervisorConfig {
        workers,
        segment_fuel: 4,
        checkpoint_every: 2,
        drain_on_signals,
        ..SupervisorConfig::default()
    }
}

fn evaluator_factory(_spec: &JobSpec) -> Result<Box<dyn PolicyEvaluator>, ParmisError> {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
    Ok(Box::new(evaluator))
}

/// Seeded xorshift64* — all kill-schedule randomness flows from the logged seed.
struct SoakRng(u64);

impl SoakRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// How one supervisor attempt is scheduled to die (or allowed to finish).
#[derive(Debug, Clone, Copy)]
enum KillMode {
    /// SIGKILL from a timer thread after this many milliseconds.
    Timer(u64),
    /// Abort during the N-th durable write, at the given protocol stage.
    Write(u64, CrashStage),
    /// No kill: the attempt must complete the fleet.
    Clean,
}

/// Child phase: open the supervisor over `dir` (recovering whatever the previous
/// process left), optionally arm a kill or a delayed `SIGTERM`, drive the fleet, and
/// persist the per-job digests on completion. Under `term_after_ms` the supervisor is
/// opened with [`SupervisorConfig::drain_on_signals`]: the signal drains the fleet to a
/// checkpoint boundary and the process exits **0** with only resumable phases — the
/// graceful path the orchestrator asserts is distinct from the SIGKILL crash path.
fn phase_drive(
    quick: bool,
    dir: &Path,
    workers: usize,
    kill: KillMode,
    term_after_ms: Option<u64>,
) {
    if let KillMode::Timer(ms) = kill {
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            let pid = std::process::id().to_string();
            // A real SIGKILL: no destructors, no unwinding — the hard crash the
            // supervisor must survive. Fall back to abort if kill(1) is missing.
            let _ = Command::new("kill").args(["-9", &pid]).status();
            std::process::abort();
        });
    }

    let config = supervisor_config(workers, term_after_ms.is_some());
    let supervisor = match kill {
        KillMode::Write(on_write, stage) => {
            JobSupervisor::open_with_crash_plan(dir, config, CrashPlan { on_write, stage })
        }
        _ => JobSupervisor::open(dir, config),
    };
    let mut supervisor = supervisor.unwrap_or_else(|e| die(&format!("recovery open failed: {e}")));
    let recovery = supervisor.recovery();
    println!(
        "drive: recovered (interrupted: {:?}, quarantined: {:?}, journal_rebuilt: {})",
        recovery.interrupted, recovery.quarantined, recovery.journal_rebuilt
    );

    if let Some(ms) = term_after_ms {
        // The drain handler is armed (the supervisor is open): a real SIGTERM from here
        // on is a graceful drain, not a kill.
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            let pid = std::process::id().to_string();
            let _ = Command::new("kill").args(["-TERM", &pid]).status();
        });
    }

    let specs = fleet_specs(quick);
    let fleet = supervisor
        .run(&specs, evaluator_factory)
        .unwrap_or_else(|e| die(&format!("fleet run failed: {e}")));

    if term_after_ms.is_some() && !fleet.all_done() {
        // Drained mid-fleet: every job must have parked at a checkpoint boundary in a
        // resumable phase — nothing failed, nothing quarantined, journal flushed.
        for job in &fleet.jobs {
            if !matches!(
                job.phase,
                JobPhase::Done | JobPhase::Suspended | JobPhase::Pending
            ) {
                die(&format!(
                    "drain left job {} in non-resumable phase {} (note: {:?})",
                    job.id,
                    job.phase.name(),
                    job.note
                ));
            }
            println!(
                "drive: {} drained as {} at {} evaluations",
                job.id,
                job.phase.name(),
                job.evaluations
            );
        }
        println!("drive: SIGTERM drain complete, exiting cleanly");
        return;
    }

    let mut lines = String::new();
    for job in &fleet.jobs {
        if job.phase != JobPhase::Done {
            die(&format!(
                "job {} ended {} instead of done (note: {:?})",
                job.id,
                job.phase.name(),
                job.note
            ));
        }
        let digest = job
            .outcome_digest
            .unwrap_or_else(|| die(&format!("job {} has no outcome digest", job.id)));
        lines.push_str(&format!("{}\t{digest:#018x}\n", job.id));
        println!(
            "drive: {} done after {} segments, {} evaluations, digest {digest:#018x}",
            job.id, job.segments, job.evaluations
        );
    }
    atomic_write(&dir.join("digests.tsv"), lines.as_bytes())
        .unwrap_or_else(|e| die(&format!("writing digests failed: {e}")));
}

/// Flip one bit in the newest checkpoint generation of a random job — the in-place rot
/// the quarantine path must absorb.
fn corrupt_one_checkpoint(dir: &Path, rng: &mut SoakRng) {
    let store = parmis::jobs::CheckpointStore::open(dir, 32)
        .unwrap_or_else(|e| die(&format!("opening store for corruption drill failed: {e}")));
    let jobs = store
        .jobs_on_disk()
        .unwrap_or_else(|e| die(&format!("scanning store failed: {e}")));
    if jobs.is_empty() {
        return; // killed before the first checkpoint ever landed
    }
    let job = &jobs[(rng.next() % jobs.len() as u64) as usize];
    let Some((seq, path)) = store
        .generations(job)
        .unwrap_or_else(|e| die(&format!("listing generations failed: {e}")))
        .pop()
    else {
        return;
    };
    let mut bytes = std::fs::read(&path)
        .unwrap_or_else(|e| die(&format!("reading {} failed: {e}", path.display())));
    let offset = (rng.next() % bytes.len() as u64) as usize;
    bytes[offset] ^= 1 << (rng.next() % 8);
    std::fs::write(&path, &bytes)
        .unwrap_or_else(|e| die(&format!("corrupting {} failed: {e}", path.display())));
    println!("orchestrator: corrupted {job} generation {seq} (bit flip at byte {offset})");
}

#[derive(Serialize)]
struct WorkerSoakReport {
    workers: usize,
    drain_drills: usize,
    kills: usize,
    attempts: usize,
    corruption_drills: usize,
    quarantined_files: usize,
    bitwise_match: bool,
}

#[derive(Serialize)]
struct JobSoakReport {
    quick: bool,
    seed: u64,
    fleet: usize,
    max_seconds: Option<u64>,
    time_budget_expired: bool,
    runs: Vec<WorkerSoakReport>,
}

fn read_digests(dir: &Path) -> Vec<(String, String)> {
    let text = std::fs::read_to_string(dir.join("digests.tsv"))
        .unwrap_or_else(|e| die(&format!("reading digests failed: {e}")));
    text.lines()
        .filter_map(|line| {
            let (job, digest) = line.split_once('\t')?;
            Some((job.to_string(), digest.to_string()))
        })
        .collect()
}

fn orchestrate(quick: bool, seed: u64, max_seconds: Option<u64>, results_dir: &Path) {
    report::print_header(
        "job soak",
        "supervised fleet vs SIGTERM drain / randomized SIGKILL / mid-write crashes / rot",
    );
    println!("kill-schedule seed = {seed} (rerun with --seed {seed})");
    // The soak's wall-clock bound rides the same deadline machinery the searches use:
    // a cancel scope whose deadline trips once the budget is spent. Expiry never
    // abandons a fleet — it skips the remaining drills and drives straight to Clean.
    let time_budget = max_seconds.map(|secs| {
        println!("time budget: {secs}s (--max-seconds, mapped onto a cancel deadline scope)");
        CancelSource::new().child_with_deadline(std::time::Duration::from_secs(secs))
    });
    let budget_expired =
        |budget: &Option<CancelSource>| budget.as_ref().is_some_and(CancelSource::is_cancelled);
    std::fs::create_dir_all(results_dir)
        .unwrap_or_else(|e| die(&format!("creating {} failed: {e}", results_dir.display())));

    // Uninterrupted references: plain Parmis::run, no supervisor involved at all.
    let specs = fleet_specs(quick);
    let references: Vec<(String, String)> = specs
        .iter()
        .map(|spec| {
            let evaluator =
                SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
            let outcome = Parmis::new(spec.config.clone())
                .run(&evaluator)
                .unwrap_or_else(|e| die(&format!("reference run {} failed: {e}", spec.id)));
            (
                spec.id.clone(),
                format!("{:#018x}", outcome_digest(&outcome)),
            )
        })
        .collect();
    println!(
        "references: {} uninterrupted digests computed",
        references.len()
    );

    let exe = std::env::current_exe()
        .unwrap_or_else(|e| die(&format!("cannot locate own executable: {e}")));
    let mut rng = SoakRng(seed);
    let max_kills = if quick { 2 } else { 4 };
    let mut runs = Vec::new();
    let mut all_match = true;

    for workers in [1usize, 2, 4] {
        let dir = results_dir.join(format!("fleet-w{workers}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut drain_drills = 0usize;
        let mut kills = 0usize;
        let mut attempts = 0usize;
        let mut corruption_drills = 0usize;

        // Graceful-drain drill: a SIGTERM mid-fleet must come back exit-0 (the drain
        // path, unlike every SIGKILL below, is not a crash), leave only resumable
        // phases in the journal, and quarantine nothing.
        if !budget_expired(&time_budget) {
            attempts += 1;
            drain_drills += 1;
            // The handler is armed before the child's timer starts counting, so even a
            // near-zero delay is a graceful drain, never a default-disposition kill.
            let term_ms = rng.range(5, if quick { 100 } else { 1000 });
            let mut cmd = Command::new(&exe);
            cmd.args(["--phase", "drive", "--dir"])
                .arg(&dir)
                .args(["--workers", &workers.to_string()])
                .args(["--term-after-ms", &term_ms.to_string()]);
            if quick {
                cmd.arg("--quick");
            }
            println!("orchestrator: workers={workers} drain drill (SIGTERM after {term_ms} ms)");
            let status = cmd
                .status()
                .unwrap_or_else(|e| die(&format!("spawning drain drill failed: {e}")));
            if !status.success() {
                die(&format!(
                    "drain drill (workers={workers}) exited with {status}: SIGTERM must \
                     drain gracefully, not crash"
                ));
            }
            let quarantined = parmis::jobs::CheckpointStore::open(&dir, 32)
                .and_then(|s| s.quarantined_files())
                .map(|q| q.len())
                .unwrap_or(0);
            if quarantined != 0 {
                die(&format!(
                    "drain drill (workers={workers}) quarantined {quarantined} files: a \
                     graceful drain must not tear state"
                ));
            }
        }

        loop {
            attempts += 1;
            let mode = if kills >= max_kills || budget_expired(&time_budget) {
                KillMode::Clean
            } else if rng.next() % 2 == 0 {
                KillMode::Timer(rng.range(5, if quick { 400 } else { 1500 }))
            } else {
                let stage = if rng.next() % 2 == 0 {
                    CrashStage::BeforeRename
                } else {
                    CrashStage::AfterRename
                };
                KillMode::Write(rng.range(1, 24), stage)
            };
            let mut cmd = Command::new(&exe);
            cmd.args(["--phase", "drive", "--dir"])
                .arg(&dir)
                .args(["--workers", &workers.to_string()]);
            if quick {
                cmd.arg("--quick");
            }
            match mode {
                KillMode::Timer(ms) => {
                    cmd.args(["--kill-after-ms", &ms.to_string()]);
                }
                KillMode::Write(n, stage) => {
                    let stage = match stage {
                        CrashStage::BeforeRename => "before-rename",
                        CrashStage::AfterRename => "after-rename",
                    };
                    cmd.args(["--crash-write", &n.to_string(), "--crash-stage", stage]);
                }
                KillMode::Clean => {}
            }
            println!("orchestrator: workers={workers} attempt={attempts} mode={mode:?}");
            let status = cmd
                .status()
                .unwrap_or_else(|e| die(&format!("spawning drive failed: {e}")));
            if status.success() {
                break;
            }
            if matches!(mode, KillMode::Clean) {
                die(&format!(
                    "clean attempt (workers={workers}) failed with {status}: recovery is broken"
                ));
            }
            kills += 1;
            println!("orchestrator: supervisor died ({status}); drilling recovery");
            if kills == 1 {
                corrupt_one_checkpoint(&dir, &mut rng);
                corruption_drills += 1;
            }
        }

        let digests = read_digests(&dir);
        let matched = digests == references;
        if !matched {
            eprintln!(
                "job_soak: workers={workers} digests diverged\n  reference: {references:?}\n  \
                 recovered: {digests:?}"
            );
            all_match = false;
        }
        let quarantined_files = parmis::jobs::CheckpointStore::open(&dir, 32)
            .and_then(|s| s.quarantined_files())
            .map(|q| q.len())
            .unwrap_or(0);
        println!(
            "workers={workers}: {drain_drills} drains, {kills} kills, {attempts} attempts, \
             {quarantined_files} quarantined, bitwise_match={matched}"
        );
        runs.push(WorkerSoakReport {
            workers,
            drain_drills,
            kills,
            attempts,
            corruption_drills,
            quarantined_files,
            bitwise_match: matched,
        });
    }

    if budget_expired(&time_budget) {
        println!("time budget expired: remaining drills were skipped, all fleets completed");
    }
    report::write_json(
        "BENCH_job_soak",
        &JobSoakReport {
            quick,
            seed,
            fleet: FLEET as usize,
            max_seconds,
            time_budget_expired: budget_expired(&time_budget),
            runs,
        },
    );
    if !all_match {
        die("bitwise audit FAILED: a recovered fleet diverged from the uninterrupted runs");
    }
    println!("bitwise audit passed: all fleets identical to uninterrupted runs");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed: Option<u64> = None;
    let mut phase: Option<String> = None;
    let mut dir: Option<PathBuf> = None;
    let mut workers = 1usize;
    let mut kill_after_ms: Option<u64> = None;
    let mut term_after_ms: Option<u64> = None;
    let mut crash_write: Option<u64> = None;
    let mut crash_stage = CrashStage::BeforeRename;
    let mut max_seconds: Option<u64> = None;
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i)
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
            .clone()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = Some(
                    value(&args, &mut i, "--seed")
                        .parse()
                        .unwrap_or_else(|_| die("--seed needs a u64")),
                )
            }
            "--phase" => phase = Some(value(&args, &mut i, "--phase")),
            "--dir" => dir = Some(PathBuf::from(value(&args, &mut i, "--dir"))),
            "--workers" => {
                workers = value(&args, &mut i, "--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers needs a usize"))
            }
            "--kill-after-ms" => {
                kill_after_ms = Some(
                    value(&args, &mut i, "--kill-after-ms")
                        .parse()
                        .unwrap_or_else(|_| die("--kill-after-ms needs a u64")),
                )
            }
            "--term-after-ms" => {
                term_after_ms = Some(
                    value(&args, &mut i, "--term-after-ms")
                        .parse()
                        .unwrap_or_else(|_| die("--term-after-ms needs a u64")),
                )
            }
            "--max-seconds" => {
                max_seconds = Some(
                    value(&args, &mut i, "--max-seconds")
                        .parse()
                        .unwrap_or_else(|_| die("--max-seconds needs a u64")),
                )
            }
            "--crash-write" => {
                crash_write = Some(
                    value(&args, &mut i, "--crash-write")
                        .parse()
                        .unwrap_or_else(|_| die("--crash-write needs a u64")),
                )
            }
            "--crash-stage" => {
                crash_stage = match value(&args, &mut i, "--crash-stage").as_str() {
                    "before-rename" => CrashStage::BeforeRename,
                    "after-rename" => CrashStage::AfterRename,
                    other => die(&format!("unknown crash stage {other}")),
                }
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    match phase.as_deref() {
        None => {
            let results_dir = std::env::var("PARMIS_RESULTS_DIR")
                .map(|d| PathBuf::from(d).join("job_soak"))
                .unwrap_or_else(|_| std::env::temp_dir().join("parmis_job_soak"));
            let seed = seed.unwrap_or_else(|| {
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.subsec_nanos() as u64)
                    .unwrap_or(0);
                (u64::from(std::process::id()) << 20) ^ nanos | 1
            });
            orchestrate(quick, seed, max_seconds, &results_dir);
        }
        Some("drive") => {
            let dir = dir.unwrap_or_else(|| die("--phase drive needs --dir"));
            let kill = match (kill_after_ms, crash_write) {
                (Some(ms), _) => KillMode::Timer(ms),
                (None, Some(n)) => KillMode::Write(n, crash_stage),
                (None, None) => KillMode::Clean,
            };
            phase_drive(quick, &dir, workers, kill, term_after_ms);
        }
        Some(other) => die(&format!("unknown phase {other}")),
    }
}
