//! Two-process checkpoint→kill→resume smoke: the CI gate for crash durability.
//!
//! ```text
//! cargo run --release -p bench --bin resume_smoke -- [--quick] [--max-seconds N]
//! ```
//!
//! The orchestrator (no `--phase` flag) spawns **itself** twice: a `first` phase that runs
//! the search under a fuel budget, writes the suspended [`SearchState`] as checkpoint JSON
//! plus a trace-hash log, and exits — a stand-in for a killed process, since nothing
//! survives it but the files — and a `resume` phase in a fresh process that loads the
//! checkpoint, verifies it, and finishes the search. The orchestrator then runs the same
//! search uninterrupted in-process and compares the full trace-hash chains link by link.
//! `--max-seconds` additionally puts the first segment on [`ParmisConfig::deadline_ms`]
//! (the cooperative wall-clock budget): the segment suspends on whichever of the deadline
//! or the fuel backstop fires first, and the audit is unchanged either way — deadlines
//! decide *when* a segment suspends, never what it computes. Set `PARMIS_RESULTS_DIR` to
//! keep the checkpoint, the hash logs and `BENCH_resume_smoke.json` as artifacts.

use bench::report;
use parmis::jobs::atomic_write;
use parmis::prelude::*;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::process::Command;

fn smoke_config(quick: bool) -> ParmisConfig {
    use parmis::acquisition::AcquisitionOptimizerConfig;
    use parmis::pareto_sampling::ParetoSamplingConfig;
    ParmisConfig {
        max_iterations: if quick { 10 } else { 20 },
        initial_samples: if quick { 4 } else { 6 },
        num_pareto_samples: 1,
        sampling: ParetoSamplingConfig {
            rff_features: 40,
            nsga_population: 12,
            nsga_generations: 5,
        },
        acquisition: AcquisitionOptimizerConfig {
            random_candidates: 12,
            local_candidates: 4,
            local_perturbation: 0.2,
        },
        refit_hyperparameters_every: 5,
        batch_size: 2,
        seed: 29,
        ..ParmisConfig::default()
    }
}

fn evaluator() -> SocEvaluator {
    SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec())
}

fn hash_log(hashes: &[u64]) -> String {
    let mut out = String::new();
    for (i, h) in hashes.iter().enumerate() {
        out.push_str(&format!("{i}\t{h:#018x}\n"));
    }
    out
}

fn die(message: &str) -> ! {
    eprintln!("resume_smoke: {message}");
    std::process::exit(1)
}

/// Phase 1 (child process): run until the fuel budget — or, with `--max-seconds`, the
/// wall-clock deadline — suspends the search, persist the checkpoint and its trace-hash
/// log, and exit. The process boundary *is* the kill.
fn phase_first(quick: bool, checkpoint: &Path, max_seconds: Option<u64>) {
    let config = smoke_config(quick);
    let fueled = ParmisConfig {
        max_fuel: config.max_iterations / 2,
        deadline_ms: max_seconds.map(|s| s.saturating_mul(1000)),
        ..config
    };
    let step = Parmis::new(fueled)
        .run_resumable(&evaluator())
        .unwrap_or_else(|e| die(&format!("first segment failed: {e}")));
    let reason = step.stop_reason();
    let state = match step {
        SearchStep::Suspended { state, .. } => *state,
        SearchStep::Completed(_) => die("first segment completed instead of suspending"),
    };
    println!("first: suspended by `{reason}`");
    let json = state
        .to_json()
        .unwrap_or_else(|e| die(&format!("checkpoint serialization failed: {e}")));
    // Durable atomic writes (temp + fsync + rename): a kill during persistence leaves
    // no torn checkpoint for the resume phase to trip over.
    atomic_write(checkpoint, json.as_bytes())
        .unwrap_or_else(|e| die(&format!("writing {} failed: {e}", checkpoint.display())));
    atomic_write(
        &checkpoint.with_extension("first.hashes"),
        hash_log(&state.trace_hashes).as_bytes(),
    )
    .unwrap_or_else(|e| die(&format!("writing hash log failed: {e}")));
    println!(
        "first: suspended after {} evaluations, checkpoint {} ({} bytes)",
        state.evaluations(),
        checkpoint.display(),
        json.len()
    );
}

/// Phase 2 (child process): a fresh process that knows nothing but the checkpoint path —
/// load, verify, resume to completion, persist the full trace-hash chain.
fn phase_resume(quick: bool, checkpoint: &Path) {
    let json = std::fs::read_to_string(checkpoint)
        .unwrap_or_else(|e| die(&format!("reading {} failed: {e}", checkpoint.display())));
    let state =
        SearchState::from_json(&json).unwrap_or_else(|e| die(&format!("checkpoint rejected: {e}")));
    println!(
        "resume: loaded checkpoint at evaluation {} (hash chain verified)",
        state.evaluations()
    );
    let outcome = Parmis::new(smoke_config(quick))
        .resume(state, &evaluator())
        .unwrap_or_else(|e| die(&format!("resume failed: {e}")))
        .into_completed()
        .unwrap_or_else(|| die("resumed segment suspended again (fuel should be unlimited)"));
    atomic_write(
        &checkpoint.with_extension("final.hashes"),
        hash_log(&outcome.trace_hashes).as_bytes(),
    )
    .unwrap_or_else(|e| die(&format!("writing final hash log failed: {e}")));
    println!(
        "resume: completed with {} evaluations, {} front policies, PHV {:.3}",
        outcome.history.len(),
        outcome.front.len(),
        outcome.final_phv()
    );
}

#[derive(Serialize)]
struct ResumeSmokeReport {
    quick: bool,
    evaluations: usize,
    checkpoint_bytes: usize,
    suspended_at: usize,
    hash_links: usize,
    bitwise_match: bool,
}

/// Orchestrator: drive both phases as separate OS processes, then audit them against an
/// uninterrupted in-process run.
fn orchestrate(quick: bool, max_seconds: Option<u64>, results_dir: &Path) {
    report::print_header(
        "resume smoke",
        "two-process checkpoint → kill → resume with trace-hash audit",
    );
    std::fs::create_dir_all(results_dir)
        .unwrap_or_else(|e| die(&format!("creating {} failed: {e}", results_dir.display())));
    let checkpoint = results_dir.join("resume_smoke_checkpoint.json");

    let exe = std::env::current_exe()
        .unwrap_or_else(|e| die(&format!("cannot locate own executable: {e}")));
    for phase in ["first", "resume"] {
        let mut cmd = Command::new(&exe);
        cmd.args(["--phase", phase, "--checkpoint"])
            .arg(&checkpoint);
        if quick {
            cmd.arg("--quick");
        }
        if let (Some(secs), "first") = (max_seconds, phase) {
            cmd.args(["--max-seconds", &secs.to_string()]);
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| die(&format!("spawning phase {phase} failed: {e}")));
        if !status.success() {
            die(&format!("phase {phase} exited with {status}"));
        }
    }

    // Audit: the resumed chain must equal the uninterrupted in-process chain bit for bit.
    let reference = Parmis::new(smoke_config(quick))
        .run(&evaluator())
        .unwrap_or_else(|e| die(&format!("reference run failed: {e}")));
    let resumed_log = std::fs::read_to_string(checkpoint.with_extension("final.hashes"))
        .unwrap_or_else(|e| die(&format!("reading final hash log failed: {e}")));
    let reference_log = hash_log(&reference.trace_hashes);
    if resumed_log != reference_log {
        die("trace-hash audit FAILED: resumed chain diverged from the uninterrupted run");
    }
    println!(
        "trace-hash audit passed: {} links identical across kill/resume",
        reference.trace_hashes.len()
    );

    let checkpoint_bytes = std::fs::metadata(&checkpoint).map(|m| m.len()).unwrap_or(0) as usize;
    let suspended_at = smoke_config(quick).max_iterations / 2;
    report::write_json(
        "BENCH_resume_smoke",
        &ResumeSmokeReport {
            quick,
            evaluations: reference.history.len(),
            checkpoint_bytes,
            suspended_at,
            hash_links: reference.trace_hashes.len(),
            bitwise_match: true,
        },
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut phase: Option<String> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut max_seconds: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--max-seconds" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--max-seconds needs a u64"));
                if secs == 0 {
                    // ParmisConfig rejects deadline_ms == Some(0) as degenerate.
                    die("--max-seconds must be positive");
                }
                max_seconds = Some(secs);
            }
            "--phase" => {
                i += 1;
                phase = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--phase needs first|resume"))
                        .clone(),
                );
            }
            "--checkpoint" => {
                i += 1;
                checkpoint = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--checkpoint needs a path")),
                ));
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    match phase.as_deref() {
        None => {
            let results_dir = std::env::var("PARMIS_RESULTS_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|_| std::env::temp_dir().join("parmis_resume_smoke"));
            orchestrate(quick, max_seconds, &results_dir);
        }
        Some("first") => phase_first(
            quick,
            &checkpoint.unwrap_or_else(|| die("--phase first needs --checkpoint")),
            max_seconds,
        ),
        Some("resume") => phase_resume(
            quick,
            &checkpoint.unwrap_or_else(|| die("--phase resume needs --checkpoint")),
        ),
        Some(other) => die(&format!("unknown phase {other}")),
    }
}
