//! Figure 7: normalized PHV of RL and IL w.r.t. PaRMIS for application-specific optimization
//! of (PPW, execution time), across all 12 benchmarks.
//!
//! The paper reports PaRMIS achieving on average 16 % higher PHV than RL and 21 % higher than
//! IL on this objective pair.
//!
//! ```text
//! cargo run --release -p bench --bin fig7_ppw_phv [-- --quick | --iterations N | --apps a,b]
//! ```

use bench::harness::{collect_method_fronts, phv_summary, ExperimentBudget};
use bench::report::{fmt, print_header, print_run_context, print_table, write_json};
use parmis::objective::Objective;
use soc_sim::apps::Benchmark;

fn benchmarks_from_args() -> Vec<Benchmark> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--apps") {
        if let Some(list) = args.get(pos + 1) {
            let parsed: Vec<Benchmark> = list.split(',').filter_map(Benchmark::from_name).collect();
            if !parsed.is_empty() {
                return parsed;
            }
        }
    }
    Benchmark::ALL.to_vec()
}

fn main() {
    let budget = ExperimentBudget::from_args();
    let benchmarks = benchmarks_from_args();
    print_header(
        "Figure 7",
        "Normalized PHV of RL and IL w.r.t. PaRMIS for PPW vs execution time",
    );

    print_run_context(budget.effective_threads(), budget.parmis_batch);

    let mut summaries = Vec::new();
    for (i, benchmark) in benchmarks.iter().enumerate() {
        let fronts =
            collect_method_fronts(*benchmark, &Objective::TIME_PPW, &budget, 300 + i as u64);
        let summary = phv_summary(*benchmark, &fronts, &budget);
        println!(
            "{}: PaRMIS PHV {:.4}, RL {:.3}, IL {:.3} (normalized)",
            summary.benchmark, summary.parmis_phv, summary.rl_normalized, summary.il_normalized
        );
        summaries.push(summary);
    }

    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.benchmark.clone(),
                "1.000".to_string(),
                fmt(s.rl_normalized),
                fmt(s.il_normalized),
                s.threads.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 7: normalized PHV per application (PPW, execution time)",
        &["benchmark", "parmis", "rl", "il", "threads"],
        &rows,
    );

    let avg_rl = summaries.iter().map(|s| s.rl_normalized).sum::<f64>() / summaries.len() as f64;
    let avg_il = summaries.iter().map(|s| s.il_normalized).sum::<f64>() / summaries.len() as f64;
    println!("\naverage normalized PHV: rl {avg_rl:.3}, il {avg_il:.3}");
    println!(
        "PaRMIS advantage: {:.1}% over RL (paper: ~16%), {:.1}% over IL (paper: ~21%)",
        (1.0 / avg_rl.max(1e-9) - 1.0) * 100.0,
        (1.0 / avg_il.max(1e-9) - 1.0) * 100.0
    );
    write_json("fig7_ppw_phv", &summaries);
}
