//! Figure 3: application-specific Pareto fronts (execution time vs. energy) for Qsort and
//! PCA, comparing PaRMIS against RL, IL and the four default governors.
//!
//! ```text
//! cargo run --release -p bench --bin fig3_app_pareto [-- --quick | --iterations N]
//! ```

use bench::harness::{collect_method_fronts, phv_with_common_reference, ExperimentBudget};
use bench::report::{fmt, print_header, print_table, write_json};
use moo::dominance::dominates;
use parmis::objective::Objective;
use serde::Serialize;
use soc_sim::apps::Benchmark;

#[derive(Serialize)]
struct FigureData {
    benchmark: String,
    fronts: Vec<bench::MethodFront>,
    phv: Vec<(String, f64)>,
}

fn main() {
    let budget = ExperimentBudget::from_args();
    print_header(
        "Figure 3",
        "Application-specific Pareto fronts (execution time [s] vs energy [J]) for Qsort and PCA",
    );

    let mut all = Vec::new();
    for benchmark in [Benchmark::Qsort, Benchmark::Pca] {
        println!("\n=== {} ===", benchmark.name());
        let fronts = collect_method_fronts(benchmark, &Objective::TIME_ENERGY, &budget, 11);

        for front in &fronts {
            let rows: Vec<Vec<String>> = front
                .points
                .iter()
                .map(|p| vec![front.method.clone(), fmt(p[0]), fmt(p[1])])
                .collect();
            print_table(
                &format!("{} / {}", benchmark.name(), front.method),
                &["method", "execution_time_s", "energy_j"],
                &rows,
            );
        }

        // Paper observation 1: the PaRMIS front dominates the RL and IL fronts.
        let parmis_points = &fronts.iter().find(|f| f.method == "parmis").unwrap().points;
        for baseline in [
            "rl",
            "il",
            "performance",
            "powersave",
            "ondemand",
            "interactive",
        ] {
            let Some(points) = fronts
                .iter()
                .find(|f| f.method == baseline)
                .map(|f| &f.points)
            else {
                continue;
            };
            let dominated = points
                .iter()
                .filter(|p| parmis_points.iter().any(|q| dominates(q, p)))
                .count();
            println!(
                "{}: {}/{} {} points dominated by the PaRMIS front",
                benchmark.name(),
                dominated,
                points.len(),
                baseline
            );
        }

        let phv = phv_with_common_reference(&fronts);
        let rows: Vec<Vec<String>> = phv.iter().map(|(m, v)| vec![m.clone(), fmt(*v)]).collect();
        print_table(
            &format!("{} PHV (common reference)", benchmark.name()),
            &["method", "phv"],
            &rows,
        );

        all.push(FigureData {
            benchmark: benchmark.name().to_string(),
            fronts,
            phv,
        });
    }
    write_json("fig3_app_pareto", &all);
}
