//! Cross-scenario matrix runner: every registered scenario under every stock governor.
//!
//! ```text
//! cargo run --release -p bench --bin scenario_matrix -- [--list-scenarios]
//!     [--scenario <name>] [--scenario-json <path>]
//! ```
//!
//! With no flags the full registry runs and the (energy, exec-time, peak-temp, penalty)
//! tuple of every (scenario, governor) cell is printed; set `PARMIS_RESULTS_DIR` to also
//! write `scenario_matrix.json`. `--scenario` narrows the run to one registered scenario
//! and `--scenario-json` runs a scenario definition loaded from a JSON file — the same
//! format `Scenario::to_json` emits.

use bench::harness::{run_scenario_matrix, ScenarioSelection};
use bench::report;
use soc_sim::scenario;

fn main() {
    let selection = match ScenarioSelection::from_args() {
        Ok(selection) => selection,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };

    let scenarios = match selection {
        ScenarioSelection::List => {
            report::print_header("scenario registry", "named workload/platform scenarios");
            report::print_table(
                "scenarios",
                &["name", "platform", "workload", "description"],
                &scenario::registry()
                    .iter()
                    .map(|s| {
                        vec![
                            s.name.clone(),
                            s.platform.name().to_string(),
                            format!("{:?}", s.workload.kind).to_lowercase(),
                            s.description.clone(),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
            return;
        }
        ScenarioSelection::Some(scenarios) => scenarios,
    };

    report::print_header(
        "scenario matrix",
        "stock governors across the scenario registry",
    );
    let cells = match run_scenario_matrix(&scenarios) {
        Ok(cells) => cells,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };
    report::print_table(
        "matrix",
        &[
            "scenario",
            "governor",
            "time_s",
            "energy_j",
            "peak_temp_c",
            "penalty",
        ],
        &cells
            .iter()
            .map(|c| {
                vec![
                    c.scenario.clone(),
                    c.governor.clone(),
                    report::fmt(c.execution_time_s),
                    report::fmt(c.energy_j),
                    report::fmt(c.peak_temperature_c),
                    report::fmt(c.constraint_penalty),
                ]
            })
            .collect::<Vec<_>>(),
    );
    report::write_json("scenario_matrix", &cells);
}
