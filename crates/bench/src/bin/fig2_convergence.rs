//! Figure 2: convergence of PaRMIS — Pareto hypervolume of the uncovered front vs. the number
//! of iterations, for the Blowfish and Spectral benchmarks.
//!
//! ```text
//! cargo run --release -p bench --bin fig2_convergence [-- --quick | --iterations N]
//! ```

use bench::harness::{run_parmis, ExperimentBudget};
use bench::report::{print_header, print_series, write_json};
use parmis::objective::Objective;
use serde::Serialize;
use soc_sim::apps::Benchmark;

#[derive(Serialize)]
struct ConvergenceSeries {
    benchmark: String,
    phv_by_iteration: Vec<f64>,
    converged_within: usize,
}

fn main() {
    let budget = ExperimentBudget::from_args();
    print_header(
        "Figure 2",
        "PaRMIS convergence: PHV of the uncovered Pareto front vs. iterations (execution time, energy)",
    );
    println!(
        "budget: {} PaRMIS iterations per application\n",
        budget.parmis_iterations
    );

    let mut all = Vec::new();
    for benchmark in [Benchmark::Blowfish, Benchmark::Spectral] {
        let outcome = run_parmis(benchmark, &Objective::TIME_ENERGY, &budget, 7);
        let series: Vec<(f64, f64)> = outcome
            .phv_history
            .iter()
            .enumerate()
            .map(|(i, phv)| (i as f64, *phv))
            .collect();
        print_series(benchmark.name(), "iteration", "phv", &series);

        // Report the iteration after which PHV stopped improving by more than 0.5 %.
        let final_phv = outcome.final_phv();
        let converged_within = outcome
            .phv_history
            .iter()
            .position(|phv| *phv >= final_phv * 0.995)
            .map(|i| i + 1)
            .unwrap_or(outcome.phv_history.len());
        println!(
            "{}: final PHV {:.4}, within 0.5% of final after {} iterations (paper: converges within ~300 of 500)\n",
            benchmark.name(),
            final_phv,
            converged_within
        );
        all.push(ConvergenceSeries {
            benchmark: benchmark.name().to_string(),
            phv_by_iteration: outcome.phv_history.clone(),
            converged_within,
        });
    }
    write_json("fig2_convergence", &all);
}
