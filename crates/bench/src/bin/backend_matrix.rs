//! Backend matrix smoke: one registry scenario through every evaluation backend.
//!
//! ```text
//! cargo run --release -p bench --bin backend_matrix -- [--quick] [--scenario <name>]
//! ```
//!
//! Runs the same θ batch through [`AnalyticSim`] (recording fixtures as it goes),
//! [`TraceReplay`] (replaying those fixtures) and [`CounterProfile`], checks that the
//! replayed objective vectors are bit-identical to the recorded run, and reports the
//! per-evaluation cost of each backend plus the analytic/replay cost ratio (the tracked
//! "replay is ≥ 5× cheaper" number). Set `PARMIS_RESULTS_DIR` to also write
//! `BENCH_backends.json`.

use bench::report;
use parmis::backend::{AnalyticSim, CounterProfile, TraceReplay};
use parmis::prelude::*;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

#[derive(Serialize)]
struct BackendRow {
    backend: String,
    deterministic: bool,
    batch: usize,
    total_seconds: f64,
    per_eval_micros: f64,
    matches_analytic_bitwise: bool,
}

#[derive(Serialize)]
struct BackendReport {
    scenario: String,
    batch: usize,
    replay_speedup: f64,
    rows: Vec<BackendRow>,
}

fn timed_batch(evaluator: &SocEvaluator, thetas: &[Vec<f64>]) -> (f64, Vec<Vec<f64>>) {
    let start = Instant::now();
    let results = evaluator
        .evaluate_batch(thetas)
        .expect("backend matrix batch evaluation failed");
    (start.elapsed().as_secs_f64(), results)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_name = "odroid-pca-thermal".to_string();
    let mut batch = 64usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => batch = 12,
            "--scenario" => {
                i += 1;
                match args.get(i) {
                    Some(name) => scenario_name = name.clone(),
                    None => {
                        eprintln!("error: --scenario needs a name");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scenario = match soc_sim::scenario::by_name(&scenario_name) {
        Some(scenario) => scenario,
        None => {
            eprintln!("error: unknown scenario {scenario_name}");
            std::process::exit(2);
        }
    };
    report::print_header(
        "backend matrix",
        "one scenario through AnalyticSim / TraceReplay / CounterProfile",
    );
    println!("scenario: {scenario_name}   batch: {batch}");

    let build = |backend: Arc<dyn parmis::backend::EvalBackend>| -> SocEvaluator {
        SocEvaluator::builder()
            .scenario(&scenario)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .backend(backend)
            .build()
            .expect("registry scenarios always build")
    };

    let (recording, _) = AnalyticSim::recording();
    let recorder = Arc::new(recording);
    let analytic = build(recorder.clone());
    let thetas: Vec<Vec<f64>> = (0..batch)
        .map(|i| vec![(i as f64 / batch as f64) - 0.5; analytic.parameter_dim()])
        .collect();

    // Warm-up records the fixture; the timed analytic pass then runs without recording.
    let (_, recorded_results) = timed_batch(&analytic, &thetas);
    let fixtures = recorder.snapshot_traces().expect("recorder was attached");
    let (analytic_s, analytic_results) = timed_batch(&build(Arc::new(AnalyticSim::new())), &thetas);
    assert_eq!(
        recorded_results, analytic_results,
        "recording must not perturb the evaluation"
    );

    let replay_eval = build(Arc::new(TraceReplay::new(fixtures)));
    let (replay_s, replay_results) = timed_batch(&replay_eval, &thetas);
    let replay_matches = replay_results == analytic_results;
    assert!(
        replay_matches,
        "replayed objectives must be bit-identical to the recorded run"
    );

    let (profile_s, profile_results) =
        timed_batch(&build(Arc::new(CounterProfile::new())), &thetas);

    let per_eval = |total_s: f64| total_s / batch as f64 * 1e6;
    let rows = vec![
        BackendRow {
            backend: "analytic-sim".into(),
            deterministic: true,
            batch,
            total_seconds: analytic_s,
            per_eval_micros: per_eval(analytic_s),
            matches_analytic_bitwise: true,
        },
        BackendRow {
            backend: "trace-replay".into(),
            deterministic: true,
            batch,
            total_seconds: replay_s,
            per_eval_micros: per_eval(replay_s),
            matches_analytic_bitwise: replay_matches,
        },
        BackendRow {
            backend: "counter-profile".into(),
            deterministic: true,
            batch,
            total_seconds: profile_s,
            per_eval_micros: per_eval(profile_s),
            matches_analytic_bitwise: profile_results == analytic_results,
        },
    ];
    report::print_table(
        "backends",
        &["backend", "per_eval_us", "total_s", "bitwise_vs_analytic"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.backend.clone(),
                    report::fmt(r.per_eval_micros),
                    report::fmt(r.total_seconds),
                    r.matches_analytic_bitwise.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let replay_speedup = if replay_s > 0.0 {
        analytic_s / replay_s
    } else {
        f64::INFINITY
    };
    println!("replay speedup over analytic simulation: {replay_speedup:.1}x (tracked >= 5x)");

    report::write_json(
        "BENCH_backends",
        &BackendReport {
            scenario: scenario_name,
            batch,
            replay_speedup,
            rows,
        },
    );
}
