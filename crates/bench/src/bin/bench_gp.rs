//! GP engine speedup report: measures the incremental-refit and batched-prediction ratios
//! and emits them as `BENCH_gp.json` (into `$PARMIS_RESULTS_DIR` when set).
//!
//! Two ratios are tracked:
//!
//! * `incremental_speedup` — from-scratch `GaussianProcess::fit` of `n + 1` points vs. the
//!   rank-one `with_observation` update of an `n`-point model (`O(n³)` vs. `O(n²)`).
//! * `batch_speedup` — 128 per-point `predict` calls vs. one `predict_batch` blocked solve
//!   over the same 128 queries (identical results, cache-contiguous memory traffic).
//!
//! Accepts `--quick` (or `PARMIS_QUICK=1`) for a CI-sized problem.

use bench::data::synthetic_gp_data;
use bench::report::{fmt, print_header, write_json};
use gp::kernel::Kernel;
use gp::GaussianProcess;
use serde::Serialize;
use std::time::Instant;

/// The measured engine ratios, one JSON object per training-set size.
#[derive(Debug, Serialize)]
struct GpBenchPoint {
    n_train: usize,
    dim: usize,
    reps: usize,
    batch: usize,
    full_fit_ms: f64,
    incremental_ms: f64,
    /// full_fit_ms / incremental_ms — how much cheaper the rank-one update is.
    incremental_speedup: f64,
    per_point_predict_ms: f64,
    batched_predict_ms: f64,
    /// per_point_predict_ms / batched_predict_ms — how much cheaper the blocked solve is.
    batch_speedup: f64,
}

/// Mean wall-clock milliseconds per call over `reps` calls (after one warm-up call).
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1e3 / reps as f64
}

fn measure(n: usize, dim: usize, reps: usize, batch: usize) -> GpBenchPoint {
    let (xs, ys) = synthetic_gp_data(n + 1, dim, 17);
    let kernel = Kernel::matern52(1.0, 8.0);
    let gp = GaussianProcess::fit(xs[..n].to_vec(), ys[..n].to_vec(), kernel.clone(), 1e-4)
        .expect("baseline fit");
    let (new_x, new_y) = (xs[n].clone(), ys[n]);

    let full_fit_ms = time_ms(reps, || {
        std::hint::black_box(
            GaussianProcess::fit(xs.clone(), ys.clone(), kernel.clone(), 1e-4).unwrap(),
        );
    });
    let incremental_ms = time_ms(reps, || {
        std::hint::black_box(gp.with_observation(new_x.clone(), new_y).unwrap());
    });

    let (queries, _) = synthetic_gp_data(batch, dim, 31);
    let per_point_predict_ms = time_ms(reps, || {
        for q in &queries {
            std::hint::black_box(gp.predict(q).unwrap());
        }
    });
    let batched_predict_ms = time_ms(reps, || {
        std::hint::black_box(gp.predict_batch(&queries).unwrap());
    });

    GpBenchPoint {
        n_train: n,
        dim,
        reps,
        batch,
        full_fit_ms,
        incremental_ms,
        incremental_speedup: full_fit_ms / incremental_ms.max(1e-9),
        per_point_predict_ms,
        batched_predict_ms,
        batch_speedup: per_point_predict_ms / batched_predict_ms.max(1e-9),
    }
}

fn main() {
    let quick = std::env::var("PARMIS_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick");
    let (sizes, reps): (&[usize], usize) = if quick {
        (&[60, 120], 3)
    } else {
        (&[100, 200, 300], 8)
    };
    let dim = 20;
    let batch = 128;

    print_header(
        "BENCH_gp",
        "incremental-refit and batched-prediction speedups of the GP engine",
    );
    let points: Vec<GpBenchPoint> = sizes
        .iter()
        .map(|&n| measure(n, dim, reps, batch))
        .collect();
    println!(
        "n,full_fit_ms,incremental_ms,incremental_speedup,per_point_ms,batched_ms,batch_speedup"
    );
    for p in &points {
        println!(
            "{},{},{},{}x,{},{},{}x",
            p.n_train,
            fmt(p.full_fit_ms),
            fmt(p.incremental_ms),
            fmt(p.incremental_speedup),
            fmt(p.per_point_predict_ms),
            fmt(p.batched_predict_ms),
            fmt(p.batch_speedup),
        );
    }
    write_json("BENCH_gp", &points);
}
