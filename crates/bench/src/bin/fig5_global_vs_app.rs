//! Figure 5: global vs. application-specific Pareto-frontier DRM policies.
//!
//! PaRMIS is trained once over all applications ("global" policies) and the PHV it achieves on
//! each individual application is normalized by the PHV of the application-specific policies.
//! The paper finds the global policies within ~2 % of (and occasionally better than) the
//! application-specific ones.
//!
//! ```text
//! cargo run --release -p bench --bin fig5_global_vs_app [-- --quick | --iterations N | --apps a,b]
//! ```

use bench::harness::{front_of, run_global_parmis, run_parmis, ExperimentBudget};
use bench::report::{fmt, print_header, print_table, write_json};
use moo::hypervolume::{common_reference_point, hypervolume, normalized};
use parmis::objective::Objective;
use serde::Serialize;
use soc_sim::apps::Benchmark;

#[derive(Serialize)]
struct GlobalVsApp {
    benchmark: String,
    app_specific_phv: f64,
    global_phv: f64,
    normalized_global: f64,
}

fn benchmarks_from_args() -> Vec<Benchmark> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--apps") {
        if let Some(list) = args.get(pos + 1) {
            let parsed: Vec<Benchmark> = list.split(',').filter_map(Benchmark::from_name).collect();
            if !parsed.is_empty() {
                return parsed;
            }
        }
    }
    Benchmark::ALL.to_vec()
}

fn main() {
    let budget = ExperimentBudget::from_args();
    let benchmarks = benchmarks_from_args();
    let objectives = Objective::TIME_ENERGY;
    print_header(
        "Figure 5",
        "Normalized PHV of global Pareto-frontier policies w.r.t. application-specific policies",
    );

    // Train the global policy set once over all requested applications.
    let (global_eval, global_outcome) = run_global_parmis(&benchmarks, &objectives, &budget, 41);
    println!(
        "global run: {} Pareto-frontier policies from {} evaluations\n",
        global_outcome.front.len(),
        global_outcome.history.len()
    );

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (i, benchmark) in benchmarks.iter().enumerate() {
        // Application-specific PaRMIS front.
        let app_outcome = run_parmis(*benchmark, &objectives, &budget, 200 + i as u64);
        let app_front = app_outcome.front.objective_values();

        // Evaluate every global Pareto policy on this application and keep the non-dominated set.
        let global_points: Vec<Vec<f64>> = global_outcome
            .front
            .tags()
            .iter()
            .map(|theta| {
                global_eval
                    .evaluate_on(theta, *benchmark)
                    .expect("global policy evaluation failed")
            })
            .collect();
        let global_front = front_of(global_points).objective_values();

        let reference = common_reference_point(&[&app_front, &global_front], 0.05);
        let app_phv = hypervolume(app_front, &reference);
        let global_phv = hypervolume(global_front, &reference);
        let norm = normalized(global_phv, app_phv);
        println!(
            "{}: app-specific PHV {:.4}, global PHV {:.4}, normalized {:.3}",
            benchmark.name(),
            app_phv,
            global_phv,
            norm
        );
        rows.push(vec![
            benchmark.name().to_string(),
            fmt(app_phv),
            fmt(global_phv),
            fmt(norm),
        ]);
        results.push(GlobalVsApp {
            benchmark: benchmark.name().to_string(),
            app_specific_phv: app_phv,
            global_phv,
            normalized_global: norm,
        });
    }

    print_table(
        "Figure 5: global vs application-specific PHV",
        &[
            "benchmark",
            "app_specific_phv",
            "global_phv",
            "normalized_global",
        ],
        &rows,
    );
    let avg = results.iter().map(|r| r.normalized_global).sum::<f64>() / results.len() as f64;
    println!("\naverage normalized global PHV: {avg:.3} (paper: within ~2% of 1.0 on average)");
    write_json("fig5_global_vs_app", &results);
}
