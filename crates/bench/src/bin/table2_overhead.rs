//! Table II: implementation overhead of the learned DRM policies.
//!
//! The paper reports, for its user-space governor implementation on the Odroid-XU3, about
//! 200 µs of decision latency per control knob (800 µs per decision, ≈0.8 % of a 100 ms
//! decision interval) and about 1 KB of storage per policy (27 KB for the 27 global
//! Pareto-frontier policies). This binary measures the analogous quantities for the
//! reproduction's MLP policies on the host CPU: per-knob and per-decision inference latency,
//! per-policy storage, and the resulting overhead percentages.
//!
//! ```text
//! cargo run --release -p bench --bin table2_overhead
//! ```

use bench::report::{fmt, print_header, print_table, write_json};
use policy::drm_policy::{DrmPolicy, PolicyArchitecture};
use policy::features::policy_features;
use serde::Serialize;
use soc_sim::counters::CounterSnapshot;
use soc_sim::DecisionSpace;
use std::time::Instant;

/// Number of Pareto-frontier policies the paper's global run produced (used for the total
/// storage row so the numbers are directly comparable).
const PAPER_GLOBAL_POLICY_COUNT: usize = 27;
/// DRM decision interval assumed by the paper when quoting percentage overhead.
const DECISION_INTERVAL_US: f64 = 100_000.0;

#[derive(Serialize)]
struct OverheadReport {
    per_knob_latency_us: f64,
    per_decision_latency_us: f64,
    decision_overhead_percent: f64,
    per_policy_storage_bytes: usize,
    total_storage_bytes: usize,
    policy_count: usize,
}

fn main() {
    print_header("Table II", "Implementation overhead of the DRM policies");

    let space = DecisionSpace::exynos5422();
    let architecture = PolicyArchitecture::paper_default();
    let policy = DrmPolicy::random(&space, &architecture, 7);

    // Representative busy-epoch counters.
    let counters = CounterSnapshot {
        instructions_retired: 8e7,
        cpu_cycles: 2.4e8,
        branch_mispredictions: 4e5,
        l2_cache_misses: 9e5,
        data_memory_accesses: 2.4e7,
        noncache_external_requests: 7e5,
        little_cluster_utilization_sum: 2.4,
        big_cluster_utilization_per_core: 0.8,
        total_chip_power_w: 4.2,
    };
    let features = policy_features(&counters);

    // Warm up, then time the full 4-knob decision.
    for _ in 0..1_000 {
        std::hint::black_box(policy.decide_indices(&features));
    }
    let iterations = 200_000usize;
    let start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(policy.decide_indices(std::hint::black_box(&features)));
    }
    let elapsed = start.elapsed();
    let per_decision_us = elapsed.as_secs_f64() * 1e6 / iterations as f64;
    let per_knob_us = per_decision_us / 4.0;
    let overhead_percent = per_decision_us / DECISION_INTERVAL_US * 100.0;

    let per_policy_bytes = policy.storage_bytes();
    let total_bytes = per_policy_bytes * PAPER_GLOBAL_POLICY_COUNT;

    let rows = vec![
        vec![
            "decision latency".to_string(),
            format!("{} us", fmt(per_knob_us)),
            format!("{} us", fmt(per_decision_us)),
            format!("{} % (every 100 ms)", fmt(overhead_percent)),
        ],
        vec![
            "memory".to_string(),
            format!("{} KB", fmt(per_policy_bytes as f64 / 1024.0)),
            format!("{} KB", fmt(total_bytes as f64 / 1024.0)),
            format!(
                "{} % (of 2 GB RAM)",
                fmt(total_bytes as f64 / (2.0 * 1024.0 * 1024.0 * 1024.0) * 100.0)
            ),
        ],
    ];
    print_table(
        "Table II: summary of implementation overhead",
        &["metric", "per knob / per policy", "total", "% overhead"],
        &rows,
    );
    println!(
        "\npaper reference values: 200 us per knob, 800 us per decision (0.8%), 1 KB per policy, 27 KB total"
    );
    println!(
        "note: latency is measured on the host CPU, not an in-order A7 core, so the absolute value is\nfar smaller than the paper's; the storage figures and the negligible-percentage conclusion carry over"
    );

    write_json(
        "table2_overhead",
        &OverheadReport {
            per_knob_latency_us: per_knob_us,
            per_decision_latency_us: per_decision_us,
            decision_overhead_percent: overhead_percent,
            per_policy_storage_bytes: per_policy_bytes,
            total_storage_bytes: total_bytes,
            policy_count: PAPER_GLOBAL_POLICY_COUNT,
        },
    );
}
