//! Figure 6: application-specific Pareto fronts trading off PPW (performance per watt) and
//! execution time, for Basicmath and Dijkstra.
//!
//! PPW is the paper's "complex objective": RL and IL cannot be trained for it directly, so —
//! exactly as in §V-E — their energy/time-trained policy sets are re-evaluated under the
//! (time, PPW) objective pair, while PaRMIS optimizes the pair natively.
//!
//! ```text
//! cargo run --release -p bench --bin fig6_ppw_pareto [-- --quick | --iterations N]
//! ```

use bench::harness::{collect_method_fronts, phv_with_common_reference, ExperimentBudget};
use bench::report::{fmt, print_header, print_table, write_json};
use parmis::objective::{reporting_vector, Objective};
use serde::Serialize;
use soc_sim::apps::Benchmark;

#[derive(Serialize)]
struct FigureData {
    benchmark: String,
    fronts: Vec<bench::MethodFront>,
    phv: Vec<(String, f64)>,
}

fn main() {
    let budget = ExperimentBudget::from_args();
    print_header(
        "Figure 6",
        "Application-specific Pareto fronts for PPW vs execution time (Basicmath, Dijkstra)",
    );

    let objectives = Objective::TIME_PPW;
    let mut all = Vec::new();
    for benchmark in [Benchmark::Basicmath, Benchmark::Dijkstra] {
        println!("\n=== {} ===", benchmark.name());
        let fronts = collect_method_fronts(benchmark, &objectives, &budget, 23);

        for front in &fronts {
            let rows: Vec<Vec<String>> = front
                .points
                .iter()
                .map(|p| {
                    let reporting = reporting_vector(&objectives, p);
                    vec![front.method.clone(), fmt(reporting[0]), fmt(reporting[1])]
                })
                .collect();
            print_table(
                &format!("{} / {}", benchmark.name(), front.method),
                &["method", "execution_time_s", "ppw"],
                &rows,
            );
        }

        let phv = phv_with_common_reference(&fronts);
        let rows: Vec<Vec<String>> = phv.iter().map(|(m, v)| vec![m.clone(), fmt(*v)]).collect();
        print_table(
            &format!(
                "{} PHV (common reference, minimization space)",
                benchmark.name()
            ),
            &["method", "phv"],
            &rows,
        );
        all.push(FigureData {
            benchmark: benchmark.name().to_string(),
            fronts,
            phv,
        });
    }
    write_json("fig6_ppw_pareto", &all);
}
