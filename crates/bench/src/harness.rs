//! Experiment runners shared by the figure/table binaries.

use baselines::sweep::{governor_results, il_front, rl_front, SweepConfig};
use baselines::{IlConfig, RlConfig};
use moo::hypervolume::{common_reference_point, hypervolume, normalized};
use moo::ParetoFront;
use parmis::acquisition::AcquisitionOptimizerConfig;
use parmis::evaluation::{GlobalEvaluator, SocEvaluator};
use parmis::framework::{Parmis, ParmisConfig, ParmisOutcome};
use parmis::objective::Objective;
use parmis::pareto_sampling::ParetoSamplingConfig;
use policy::training::TrainingConfig;
use serde::Serialize;
use soc_sim::apps::Benchmark;

/// How much compute an experiment binary is allowed to spend.
///
/// The figure binaries default to a "standard" budget that reproduces the paper's qualitative
/// results in minutes on a laptop; `--quick` (or `PARMIS_QUICK=1`) shrinks everything for
/// smoke tests and `--iterations N` overrides the PaRMIS evaluation budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentBudget {
    /// PaRMIS evaluation budget (the paper runs up to 500, converging by ~300).
    pub parmis_iterations: usize,
    /// Number of scalarization weights for the RL/IL sweeps.
    pub sweep_weights: usize,
    /// RL episodes per scalarization.
    pub rl_episodes: usize,
    /// Oracle decision-space stride for IL.
    pub il_stride: usize,
    /// IL supervised-training epochs.
    pub il_epochs: usize,
    /// Worker threads for batched policy evaluation and sweep-arm training (`0` = one per
    /// available CPU). Results are bit-identical for any value; this only trades wall-clock.
    pub threads: usize,
    /// Candidates selected and evaluated per PaRMIS iteration (`batch_size`); `1` is the
    /// paper's sequential loop.
    pub parmis_batch: usize,
}

impl ExperimentBudget {
    /// The default budget used when no flags are passed.
    pub fn standard() -> Self {
        ExperimentBudget {
            parmis_iterations: 120,
            sweep_weights: 7,
            rl_episodes: 25,
            il_stride: 7,
            il_epochs: 50,
            threads: 0,
            parmis_batch: 1,
        }
    }

    /// A small budget for smoke tests and CI.
    pub fn quick() -> Self {
        ExperimentBudget {
            parmis_iterations: 18,
            sweep_weights: 3,
            rl_episodes: 4,
            il_stride: 101,
            il_epochs: 10,
            threads: 0,
            parmis_batch: 1,
        }
    }

    /// Parses the budget from command-line arguments (`--quick`, `--iterations N`,
    /// `--threads N`, `--batch N`) and the `PARMIS_QUICK` environment variable.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick_env = std::env::var("PARMIS_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let mut budget = if quick_env || args.iter().any(|a| a == "--quick") {
            ExperimentBudget::quick()
        } else {
            ExperimentBudget::standard()
        };
        let flag = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|pos| args.get(pos + 1))
                .and_then(|v| v.parse::<usize>().ok())
        };
        if let Some(n) = flag("--iterations") {
            budget.parmis_iterations = n.max(5);
        }
        if let Some(n) = flag("--threads") {
            budget.threads = n;
        }
        if let Some(n) = flag("--batch") {
            budget.parmis_batch = n.max(1);
        }
        budget
    }

    /// The worker count actually used after resolving the "all CPUs" sentinel.
    pub fn effective_threads(&self) -> usize {
        parmis::parallel::resolve_workers(self.threads)
    }

    /// PaRMIS configuration matching this budget.
    pub fn parmis_config(&self, seed: u64) -> ParmisConfig {
        let quick = self.parmis_iterations < 40;
        ParmisConfig {
            max_iterations: self.parmis_iterations,
            initial_samples: (self.parmis_iterations / 10).clamp(4, 12),
            num_pareto_samples: 1,
            sampling: if quick {
                ParetoSamplingConfig {
                    rff_features: 60,
                    nsga_population: 16,
                    nsga_generations: 8,
                }
            } else {
                ParetoSamplingConfig::default()
            },
            acquisition: if quick {
                AcquisitionOptimizerConfig {
                    random_candidates: 32,
                    local_candidates: 12,
                    local_perturbation: 0.2,
                }
            } else {
                AcquisitionOptimizerConfig::default()
            },
            kernel_family: gp::kernel::KernelFamily::Matern52,
            refit_hyperparameters_every: 20,
            convergence_window: 0,
            seed,
            batch_size: self.parmis_batch,
            num_workers: self.threads,
        }
    }

    /// Baseline sweep configuration matching this budget.
    pub fn sweep_config(&self, seed: u64) -> SweepConfig {
        SweepConfig {
            weight_count: self.sweep_weights,
            rl: RlConfig {
                episodes: self.rl_episodes,
                seed,
                ..Default::default()
            },
            il: IlConfig {
                oracle_stride: self.il_stride,
                training: TrainingConfig {
                    epochs: self.il_epochs,
                    learning_rate: 0.06,
                    seed,
                },
                ..Default::default()
            },
            eval_seed: 29,
            num_workers: self.threads,
        }
    }
}

/// A named Pareto front (or single point set) produced by one method on one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct MethodFront {
    /// Method name (`parmis`, `rl`, `il`, or a governor name).
    pub method: String,
    /// Minimization objective vectors of the front.
    pub points: Vec<Vec<f64>>,
}

/// Per-benchmark PHV comparison of PaRMIS against the two learned baselines.
#[derive(Debug, Clone, Serialize)]
pub struct PhvSummary {
    /// Benchmark name.
    pub benchmark: String,
    /// Absolute PHV of PaRMIS.
    pub parmis_phv: f64,
    /// PHV of RL normalized by the PaRMIS PHV.
    pub rl_normalized: f64,
    /// PHV of IL normalized by the PaRMIS PHV.
    pub il_normalized: f64,
    /// Worker threads the experiment ran with (results are thread-count invariant; the
    /// column exists so BENCH_*.json speedup comparisons know what produced each number).
    pub threads: usize,
}

/// Runs PaRMIS for one benchmark with this budget, evaluating candidate batches across the
/// budget's worker threads.
pub fn run_parmis(
    benchmark: Benchmark,
    objectives: &[Objective],
    budget: &ExperimentBudget,
    seed: u64,
) -> ParmisOutcome {
    let evaluator = SocEvaluator::for_benchmark(benchmark, objectives.to_vec());
    Parmis::new(budget.parmis_config(seed))
        .run_parallel(&evaluator)
        .expect("PaRMIS run failed")
}

/// Runs PaRMIS once over the whole application suite (global policies, Fig. 5).
pub fn run_global_parmis(
    benchmarks: &[Benchmark],
    objectives: &[Objective],
    budget: &ExperimentBudget,
    seed: u64,
) -> (GlobalEvaluator, ParmisOutcome) {
    let evaluator = GlobalEvaluator::for_benchmarks(benchmarks, objectives.to_vec());
    let outcome = Parmis::new(budget.parmis_config(seed))
        .run_parallel(&evaluator)
        .expect("global PaRMIS run failed");
    (evaluator, outcome)
}

/// Collects the method fronts (PaRMIS, RL, IL, governors) for one benchmark.
pub fn collect_method_fronts(
    benchmark: Benchmark,
    objectives: &[Objective],
    budget: &ExperimentBudget,
    seed: u64,
) -> Vec<MethodFront> {
    let parmis_outcome = run_parmis(benchmark, objectives, budget, seed);
    let sweep = budget.sweep_config(seed);
    let rl = rl_front(benchmark, objectives, &sweep);
    let il = il_front(benchmark, objectives, &sweep);
    let governors = governor_results(benchmark, objectives);

    let mut fronts = vec![
        MethodFront {
            method: "parmis".into(),
            points: parmis_outcome.front.objective_values(),
        },
        MethodFront {
            method: "rl".into(),
            points: rl.objective_values(),
        },
        MethodFront {
            method: "il".into(),
            points: il.objective_values(),
        },
    ];
    for (name, point) in governors {
        fronts.push(MethodFront {
            method: name,
            points: vec![point],
        });
    }
    fronts
}

/// Computes the PHV of every method front against a reference point shared by all of them
/// (the paper stresses that a common reference point is required for fair comparison, §V-C).
pub fn phv_with_common_reference(fronts: &[MethodFront]) -> Vec<(String, f64)> {
    let all: Vec<&[Vec<f64>]> = fronts.iter().map(|f| f.points.as_slice()).collect();
    let reference = common_reference_point(&all, 0.05);
    fronts
        .iter()
        .map(|f| (f.method.clone(), hypervolume(f.points.clone(), &reference)))
        .collect()
}

/// Builds the Fig. 4 / Fig. 7 style normalized-PHV summary for one benchmark.
pub fn phv_summary(
    benchmark: Benchmark,
    fronts: &[MethodFront],
    budget: &ExperimentBudget,
) -> PhvSummary {
    let phv = phv_with_common_reference(fronts);
    let get = |name: &str| {
        phv.iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let parmis = get("parmis");
    PhvSummary {
        benchmark: benchmark.name().to_string(),
        parmis_phv: parmis,
        rl_normalized: normalized(get("rl"), parmis),
        il_normalized: normalized(get("il"), parmis),
        threads: budget.effective_threads(),
    }
}

/// Extracts the non-dominated archive of an arbitrary point set (helper for Fig. 5, where a
/// global policy set is re-evaluated per application).
pub fn front_of(points: Vec<Vec<f64>>) -> ParetoFront<()> {
    let dim = points.first().map(|p| p.len()).unwrap_or(1);
    let mut front = ParetoFront::new(dim);
    for p in points {
        front.insert(p, ());
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_as_expected() {
        let quick = ExperimentBudget::quick();
        let standard = ExperimentBudget::standard();
        assert!(quick.parmis_iterations < standard.parmis_iterations);
        assert!(quick.rl_episodes < standard.rl_episodes);
        assert!(quick.il_stride > standard.il_stride);
        let cfg = quick.parmis_config(1);
        assert_eq!(cfg.max_iterations, quick.parmis_iterations);
        assert!(cfg.sampling.rff_features <= 60);
        let cfg = standard.parmis_config(1);
        assert_eq!(
            cfg.sampling.rff_features,
            ParetoSamplingConfig::default().rff_features
        );
        let sweep = quick.sweep_config(3);
        assert_eq!(sweep.weight_count, 3);
        assert_eq!(sweep.rl.episodes, 4);
        assert_eq!(sweep.num_workers, quick.threads);
    }

    #[test]
    fn parallelism_knobs_flow_into_the_parmis_config() {
        let budget = ExperimentBudget {
            threads: 4,
            parmis_batch: 6,
            ..ExperimentBudget::quick()
        };
        let cfg = budget.parmis_config(7);
        assert_eq!(cfg.num_workers, 4);
        assert_eq!(cfg.batch_size, 6);
        assert_eq!(budget.effective_threads(), 4);
        assert!(ExperimentBudget::quick().effective_threads() >= 1);
    }

    #[test]
    fn phv_with_common_reference_orders_methods_sensibly() {
        // A front that dominates another must have at least as large a PHV.
        let better = MethodFront {
            method: "a".into(),
            points: vec![vec![1.0, 1.0], vec![0.5, 2.0]],
        };
        let worse = MethodFront {
            method: "b".into(),
            points: vec![vec![2.0, 2.0]],
        };
        let phv = phv_with_common_reference(&[better, worse]);
        assert!(phv[0].1 > phv[1].1);
    }

    #[test]
    fn phv_summary_normalizes_against_parmis() {
        let fronts = vec![
            MethodFront {
                method: "parmis".into(),
                points: vec![vec![1.0, 1.0]],
            },
            MethodFront {
                method: "rl".into(),
                points: vec![vec![1.5, 1.5]],
            },
            MethodFront {
                method: "il".into(),
                points: vec![vec![2.0, 2.0]],
            },
        ];
        let budget = ExperimentBudget::quick();
        let summary = phv_summary(Benchmark::Qsort, &fronts, &budget);
        assert_eq!(summary.benchmark, "qsort");
        assert!(summary.parmis_phv > 0.0);
        assert!(summary.rl_normalized < 1.0);
        assert!(summary.il_normalized < summary.rl_normalized);
        assert_eq!(summary.threads, budget.effective_threads());
        assert!(summary.threads >= 1);
    }

    #[test]
    fn front_of_filters_dominated_points() {
        let front = front_of(vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0]]);
        assert_eq!(front.len(), 2);
    }
}
