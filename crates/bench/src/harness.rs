//! Experiment runners shared by the figure/table binaries.

use baselines::sweep::{governor_results, il_front, rl_front, SweepConfig};
use baselines::{IlConfig, RlConfig};
use moo::hypervolume::{common_reference_point, hypervolume, normalized};
use moo::ParetoFront;
use parmis::acquisition::AcquisitionOptimizerConfig;
use parmis::evaluation::{GlobalEvaluator, SocEvaluator};
use parmis::framework::{Parmis, ParmisConfig, ParmisOutcome};
use parmis::objective::Objective;
use parmis::pareto_sampling::ParetoSamplingConfig;
use policy::training::TrainingConfig;
use serde::Serialize;
use soc_sim::apps::Benchmark;
use soc_sim::governor::default_governors;
use soc_sim::platform::DiscardEpochs;
use soc_sim::scenario::{self, Scenario};

/// How much compute an experiment binary is allowed to spend.
///
/// The figure binaries default to a "standard" budget that reproduces the paper's qualitative
/// results in minutes on a laptop; `--quick` (or `PARMIS_QUICK=1`) shrinks everything for
/// smoke tests and `--iterations N` overrides the PaRMIS evaluation budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentBudget {
    /// PaRMIS evaluation budget (the paper runs up to 500, converging by ~300).
    pub parmis_iterations: usize,
    /// Number of scalarization weights for the RL/IL sweeps.
    pub sweep_weights: usize,
    /// RL episodes per scalarization.
    pub rl_episodes: usize,
    /// Oracle decision-space stride for IL.
    pub il_stride: usize,
    /// IL supervised-training epochs.
    pub il_epochs: usize,
    /// Worker threads for batched policy evaluation and sweep-arm training (`0` = one per
    /// available CPU). Results are bit-identical for any value; this only trades wall-clock.
    pub threads: usize,
    /// Candidates selected and evaluated per PaRMIS iteration (`batch_size`); `1` is the
    /// paper's sequential loop.
    pub parmis_batch: usize,
}

impl ExperimentBudget {
    /// The default budget used when no flags are passed.
    pub fn standard() -> Self {
        ExperimentBudget {
            parmis_iterations: 120,
            sweep_weights: 7,
            rl_episodes: 25,
            il_stride: 7,
            il_epochs: 50,
            threads: 0,
            parmis_batch: 1,
        }
    }

    /// A small budget for smoke tests and CI.
    pub fn quick() -> Self {
        ExperimentBudget {
            parmis_iterations: 18,
            sweep_weights: 3,
            rl_episodes: 4,
            il_stride: 101,
            il_epochs: 10,
            threads: 0,
            parmis_batch: 1,
        }
    }

    /// Parses the budget from command-line arguments (`--quick`, `--iterations N`,
    /// `--threads N`, `--batch N`) and the `PARMIS_QUICK` environment variable.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick_env = std::env::var("PARMIS_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let mut budget = if quick_env || args.iter().any(|a| a == "--quick") {
            ExperimentBudget::quick()
        } else {
            ExperimentBudget::standard()
        };
        let flag = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|pos| args.get(pos + 1))
                .and_then(|v| v.parse::<usize>().ok())
        };
        if let Some(n) = flag("--iterations") {
            budget.parmis_iterations = n.max(5);
        }
        if let Some(n) = flag("--threads") {
            budget.threads = n;
        }
        if let Some(n) = flag("--batch") {
            budget.parmis_batch = n.max(1);
        }
        budget
    }

    /// The worker count actually used after resolving the "all CPUs" sentinel.
    pub fn effective_threads(&self) -> usize {
        parmis::parallel::resolve_workers(self.threads)
    }

    /// PaRMIS configuration matching this budget.
    pub fn parmis_config(&self, seed: u64) -> ParmisConfig {
        let quick = self.parmis_iterations < 40;
        ParmisConfig {
            max_iterations: self.parmis_iterations,
            initial_samples: (self.parmis_iterations / 10).clamp(4, 12),
            num_pareto_samples: 1,
            sampling: if quick {
                ParetoSamplingConfig {
                    rff_features: 60,
                    nsga_population: 16,
                    nsga_generations: 8,
                }
            } else {
                ParetoSamplingConfig::default()
            },
            acquisition: if quick {
                AcquisitionOptimizerConfig {
                    random_candidates: 32,
                    local_candidates: 12,
                    local_perturbation: 0.2,
                }
            } else {
                AcquisitionOptimizerConfig::default()
            },
            kernel_family: gp::kernel::KernelFamily::Matern52,
            refit_hyperparameters_every: 20,
            convergence_window: 0,
            seed,
            batch_size: self.parmis_batch,
            num_workers: self.threads,
            ..ParmisConfig::default()
        }
    }

    /// Baseline sweep configuration matching this budget.
    pub fn sweep_config(&self, seed: u64) -> SweepConfig {
        SweepConfig {
            weight_count: self.sweep_weights,
            rl: RlConfig {
                episodes: self.rl_episodes,
                seed,
                ..Default::default()
            },
            il: IlConfig {
                oracle_stride: self.il_stride,
                training: TrainingConfig {
                    epochs: self.il_epochs,
                    learning_rate: 0.06,
                    seed,
                },
                ..Default::default()
            },
            eval_seed: 29,
            num_workers: self.threads,
        }
    }
}

/// A named Pareto front (or single point set) produced by one method on one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct MethodFront {
    /// Method name (`parmis`, `rl`, `il`, or a governor name).
    pub method: String,
    /// Minimization objective vectors of the front.
    pub points: Vec<Vec<f64>>,
}

/// Per-benchmark PHV comparison of PaRMIS against the two learned baselines.
#[derive(Debug, Clone, Serialize)]
pub struct PhvSummary {
    /// Benchmark name.
    pub benchmark: String,
    /// Absolute PHV of PaRMIS.
    pub parmis_phv: f64,
    /// PHV of RL normalized by the PaRMIS PHV.
    pub rl_normalized: f64,
    /// PHV of IL normalized by the PaRMIS PHV.
    pub il_normalized: f64,
    /// Worker threads the experiment ran with (results are thread-count invariant; the
    /// column exists so BENCH_*.json speedup comparisons know what produced each number).
    pub threads: usize,
}

/// Runs PaRMIS for one benchmark with this budget, evaluating candidate batches across the
/// budget's worker threads.
pub fn run_parmis(
    benchmark: Benchmark,
    objectives: &[Objective],
    budget: &ExperimentBudget,
    seed: u64,
) -> ParmisOutcome {
    let evaluator = SocEvaluator::for_benchmark(benchmark, objectives.to_vec());
    Parmis::new(budget.parmis_config(seed))
        .run_parallel(&evaluator)
        .expect("PaRMIS run failed")
}

/// Runs PaRMIS once over the whole application suite (global policies, Fig. 5).
pub fn run_global_parmis(
    benchmarks: &[Benchmark],
    objectives: &[Objective],
    budget: &ExperimentBudget,
    seed: u64,
) -> (GlobalEvaluator, ParmisOutcome) {
    let evaluator = GlobalEvaluator::for_benchmarks(benchmarks, objectives.to_vec());
    let outcome = Parmis::new(budget.parmis_config(seed))
        .run_parallel(&evaluator)
        .expect("global PaRMIS run failed");
    (evaluator, outcome)
}

/// Collects the method fronts (PaRMIS, RL, IL, governors) for one benchmark.
pub fn collect_method_fronts(
    benchmark: Benchmark,
    objectives: &[Objective],
    budget: &ExperimentBudget,
    seed: u64,
) -> Vec<MethodFront> {
    let parmis_outcome = run_parmis(benchmark, objectives, budget, seed);
    let sweep = budget.sweep_config(seed);
    let rl = rl_front(benchmark, objectives, &sweep);
    let il = il_front(benchmark, objectives, &sweep);
    let governors = governor_results(benchmark, objectives);

    let mut fronts = vec![
        MethodFront {
            method: "parmis".into(),
            points: parmis_outcome.front.objective_values(),
        },
        MethodFront {
            method: "rl".into(),
            points: rl.objective_values(),
        },
        MethodFront {
            method: "il".into(),
            points: il.objective_values(),
        },
    ];
    for (name, point) in governors {
        fronts.push(MethodFront {
            method: name,
            points: vec![point],
        });
    }
    fronts
}

/// Computes the PHV of every method front against a reference point shared by all of them
/// (the paper stresses that a common reference point is required for fair comparison, §V-C).
pub fn phv_with_common_reference(fronts: &[MethodFront]) -> Vec<(String, f64)> {
    let all: Vec<&[Vec<f64>]> = fronts.iter().map(|f| f.points.as_slice()).collect();
    let reference = common_reference_point(&all, 0.05);
    fronts
        .iter()
        .map(|f| (f.method.clone(), hypervolume(f.points.clone(), &reference)))
        .collect()
}

/// Builds the Fig. 4 / Fig. 7 style normalized-PHV summary for one benchmark.
pub fn phv_summary(
    benchmark: Benchmark,
    fronts: &[MethodFront],
    budget: &ExperimentBudget,
) -> PhvSummary {
    let phv = phv_with_common_reference(fronts);
    let get = |name: &str| {
        phv.iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    let parmis = get("parmis");
    PhvSummary {
        benchmark: benchmark.name().to_string(),
        parmis_phv: parmis,
        rl_normalized: normalized(get("rl"), parmis),
        il_normalized: normalized(get("il"), parmis),
        threads: budget.effective_threads(),
    }
}

/// Which scenarios a scenario-aware binary should process, parsed from the command line.
///
/// `--list-scenarios` lists the registry and exits; `--scenario <name>` selects one
/// registered scenario; `--scenario-json <path>` loads a scenario definition from a JSON
/// file (the [`Scenario::to_json`] format); no flag means the full registry.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSelection {
    /// Print the registry and exit.
    List,
    /// Run exactly these scenarios.
    Some(Vec<Scenario>),
}

impl ScenarioSelection {
    /// Parses the selection from the process arguments.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown scenario name, an unreadable or
    /// malformed `--scenario-json` file, a flag without its value, conflicting flags, or a
    /// misspelled `--scenario…` flag (so a typo cannot silently select the full registry).
    pub fn from_args() -> Result<Self, String> {
        Self::from_arg_list(std::env::args().skip(1))
    }

    /// [`from_args`](Self::from_args) over an explicit argument list (testable core).
    ///
    /// Both `--flag value` and `--flag=value` spellings are accepted. Arguments unrelated
    /// to scenario selection are ignored, so binaries can mix these flags with their own.
    ///
    /// # Errors
    ///
    /// See [`from_args`](Self::from_args).
    pub fn from_arg_list(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut name: Option<String> = None;
        let mut json_path: Option<String> = None;
        let mut list = false;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value_for = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            if arg == "--list-scenarios" {
                list = true;
            } else if arg == "--scenario" {
                name = Some(value_for("--scenario")?);
            } else if let Some(v) = arg.strip_prefix("--scenario=") {
                name = Some(v.to_string());
            } else if arg == "--scenario-json" {
                json_path = Some(value_for("--scenario-json")?);
            } else if let Some(v) = arg.strip_prefix("--scenario-json=") {
                json_path = Some(v.to_string());
            } else if arg.starts_with("--scenario") || arg.starts_with("--list-scenario") {
                // A near-miss spelling must not silently fall through to "run everything".
                return Err(format!(
                    "unrecognized flag `{arg}`; did you mean --scenario, --scenario-json or \
                     --list-scenarios?"
                ));
            }
        }
        if list {
            return Ok(ScenarioSelection::List);
        }
        if name.is_some() && json_path.is_some() {
            return Err("pass either --scenario or --scenario-json, not both".into());
        }
        if let Some(name) = name {
            let scenario = scenario::by_name(&name).ok_or_else(|| {
                format!("unknown scenario `{name}`; run with --list-scenarios to see the registry")
            })?;
            return Ok(ScenarioSelection::Some(vec![scenario]));
        }
        if let Some(path) = json_path {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let scenario = Scenario::from_json(&text).map_err(|e| e.to_string())?;
            return Ok(ScenarioSelection::Some(vec![scenario]));
        }
        Ok(ScenarioSelection::Some(scenario::registry()))
    }
}

/// One (scenario, governor) cell of the cross-scenario regression matrix.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioCell {
    /// Scenario name.
    pub scenario: String,
    /// Governor name.
    pub governor: String,
    /// Total execution time in seconds.
    pub execution_time_s: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Peak junction temperature in °C.
    pub peak_temperature_c: f64,
    /// Weighted constraint-violation penalty of the run (zero when all limits are met).
    pub constraint_penalty: f64,
}

/// Runs one scenario under every stock governor with a fixed measurement seed, producing
/// the snapshot tuples the golden regression suite pins down.
///
/// # Errors
///
/// Returns a message if the scenario's workload fails to build or a run fails.
pub fn run_scenario_row(scenario: &Scenario) -> Result<Vec<ScenarioCell>, String> {
    let platform = scenario.platform();
    let app = scenario
        .application()
        .map_err(|e| format!("{}: {e}", scenario.name))?;
    let mut cells = Vec::new();
    for mut governor in default_governors(platform.spec()) {
        // Streaming runner: the golden cells only need aggregates, so no per-epoch trace
        // is materialized (aggregates are bit-identical to the collecting path).
        let run = platform
            .run_application_with(&app, &mut governor, 0, &mut DiscardEpochs)
            .map_err(|e| format!("{} under {}: {e}", scenario.name, governor.name()))?;
        cells.push(ScenarioCell {
            scenario: scenario.name.clone(),
            governor: governor.name().to_string(),
            execution_time_s: run.execution_time_s,
            energy_j: run.energy_j,
            peak_temperature_c: run.peak_temperature_c,
            constraint_penalty: scenario.constraints.penalty_from_metrics(
                run.execution_time_s,
                run.average_power_w,
                run.peak_temperature_c,
            ),
        });
    }
    Ok(cells)
}

/// Runs the full cross-scenario matrix ([`run_scenario_row`] for every given scenario).
///
/// # Errors
///
/// Propagates the first row failure.
pub fn run_scenario_matrix(scenarios: &[Scenario]) -> Result<Vec<ScenarioCell>, String> {
    let mut cells = Vec::new();
    for scenario in scenarios {
        cells.extend(run_scenario_row(scenario)?);
    }
    Ok(cells)
}

/// Extracts the non-dominated archive of an arbitrary point set (helper for Fig. 5, where a
/// global policy set is re-evaluated per application).
pub fn front_of(points: Vec<Vec<f64>>) -> ParetoFront<()> {
    let dim = points.first().map(|p| p.len()).unwrap_or(1);
    let mut front = ParetoFront::new(dim);
    for p in points {
        front.insert(p, ());
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_scale_as_expected() {
        let quick = ExperimentBudget::quick();
        let standard = ExperimentBudget::standard();
        assert!(quick.parmis_iterations < standard.parmis_iterations);
        assert!(quick.rl_episodes < standard.rl_episodes);
        assert!(quick.il_stride > standard.il_stride);
        let cfg = quick.parmis_config(1);
        assert_eq!(cfg.max_iterations, quick.parmis_iterations);
        assert!(cfg.sampling.rff_features <= 60);
        let cfg = standard.parmis_config(1);
        assert_eq!(
            cfg.sampling.rff_features,
            ParetoSamplingConfig::default().rff_features
        );
        let sweep = quick.sweep_config(3);
        assert_eq!(sweep.weight_count, 3);
        assert_eq!(sweep.rl.episodes, 4);
        assert_eq!(sweep.num_workers, quick.threads);
    }

    #[test]
    fn parallelism_knobs_flow_into_the_parmis_config() {
        let budget = ExperimentBudget {
            threads: 4,
            parmis_batch: 6,
            ..ExperimentBudget::quick()
        };
        let cfg = budget.parmis_config(7);
        assert_eq!(cfg.num_workers, 4);
        assert_eq!(cfg.batch_size, 6);
        assert_eq!(budget.effective_threads(), 4);
        assert!(ExperimentBudget::quick().effective_threads() >= 1);
    }

    #[test]
    fn phv_with_common_reference_orders_methods_sensibly() {
        // A front that dominates another must have at least as large a PHV.
        let better = MethodFront {
            method: "a".into(),
            points: vec![vec![1.0, 1.0], vec![0.5, 2.0]],
        };
        let worse = MethodFront {
            method: "b".into(),
            points: vec![vec![2.0, 2.0]],
        };
        let phv = phv_with_common_reference(&[better, worse]);
        assert!(phv[0].1 > phv[1].1);
    }

    #[test]
    fn phv_summary_normalizes_against_parmis() {
        let fronts = vec![
            MethodFront {
                method: "parmis".into(),
                points: vec![vec![1.0, 1.0]],
            },
            MethodFront {
                method: "rl".into(),
                points: vec![vec![1.5, 1.5]],
            },
            MethodFront {
                method: "il".into(),
                points: vec![vec![2.0, 2.0]],
            },
        ];
        let budget = ExperimentBudget::quick();
        let summary = phv_summary(Benchmark::Qsort, &fronts, &budget);
        assert_eq!(summary.benchmark, "qsort");
        assert!(summary.parmis_phv > 0.0);
        assert!(summary.rl_normalized < 1.0);
        assert!(summary.il_normalized < summary.rl_normalized);
        assert_eq!(summary.threads, budget.effective_threads());
        assert!(summary.threads >= 1);
    }

    #[test]
    fn front_of_filters_dominated_points() {
        let front = front_of(vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0]]);
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn scenario_rows_cover_all_governors_and_are_deterministic() {
        let scenario = scenario::by_name("odroid-qsort-baseline").unwrap();
        let row = run_scenario_row(&scenario).unwrap();
        let governors: Vec<&str> = row.iter().map(|c| c.governor.as_str()).collect();
        assert_eq!(
            governors,
            vec!["ondemand", "interactive", "performance", "powersave"]
        );
        for cell in &row {
            assert!(cell.execution_time_s > 0.0);
            assert!(cell.energy_j > 0.0);
            assert!(cell.peak_temperature_c >= 25.0);
            assert_eq!(cell.constraint_penalty, 0.0, "baseline is unconstrained");
        }
        let again = run_scenario_row(&scenario).unwrap();
        for (a, b) in row.iter().zip(&again) {
            assert_eq!(a.execution_time_s, b.execution_time_s);
            assert_eq!(a.energy_j, b.energy_j);
            assert_eq!(a.peak_temperature_c, b.peak_temperature_c);
        }
    }

    fn select(args: &[&str]) -> Result<ScenarioSelection, String> {
        ScenarioSelection::from_arg_list(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn scenario_selection_parses_both_flag_spellings_and_rejects_near_misses() {
        assert_eq!(select(&["--list-scenarios"]), Ok(ScenarioSelection::List));
        let by_space = select(&["--scenario", "odroid-qsort-baseline"]).unwrap();
        let by_equals = select(&["--scenario=odroid-qsort-baseline"]).unwrap();
        assert_eq!(by_space, by_equals);
        match by_space {
            ScenarioSelection::Some(s) => assert_eq!(s[0].name, "odroid-qsort-baseline"),
            other => panic!("expected one scenario, got {other:?}"),
        }
        // No flags: the whole registry.
        match select(&["--quick"]).unwrap() {
            ScenarioSelection::Some(s) => assert_eq!(s.len(), scenario::registry().len()),
            other => panic!("expected full registry, got {other:?}"),
        }
        // Misspellings and misuse fail loudly instead of silently running everything.
        assert!(select(&["--scenaros", "x"]).is_ok(), "unrelated flags pass");
        assert!(select(&["--scenarios", "x"]).is_err());
        assert!(select(&["--scenario"]).is_err());
        assert!(select(&["--scenario", "not-registered"]).is_err());
        assert!(select(&["--scenario-json"]).is_err());
        assert!(select(&["--scenario-json", "/nonexistent/path.json"]).is_err());
        assert!(select(&[
            "--scenario",
            "odroid-qsort-baseline",
            "--scenario-json",
            "x"
        ])
        .is_err());
        assert!(select(&["--list-scenarioz"]).is_err());
    }

    #[test]
    fn scenario_matrix_concatenates_rows_in_registry_order() {
        let scenarios: Vec<_> = scenario::registry().into_iter().take(2).collect();
        let cells = run_scenario_matrix(&scenarios).unwrap();
        assert_eq!(cells.len(), 8);
        assert!(cells[..4].iter().all(|c| c.scenario == scenarios[0].name));
        assert!(cells[4..].iter().all(|c| c.scenario == scenarios[1].name));
    }
}
