//! Shared synthetic data for the GP microbenchmarks and speedup reports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic GP training/query set: `n` uniform points in `[-3, 3]^dim` with a smooth
/// sin-sum response. Used by `benches/microbench.rs` and the `bench_gp` binary so both
/// measure the engine on identical inputs.
pub fn synthetic_gp_data(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| v.sin()).sum::<f64>() / dim as f64)
        .collect();
    (xs, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_is_deterministic_and_well_shaped() {
        let (xs, ys) = synthetic_gp_data(10, 3, 7);
        assert_eq!(xs.len(), 10);
        assert_eq!(ys.len(), 10);
        assert!(xs.iter().all(|x| x.len() == 3));
        assert!(ys.iter().all(|y| y.is_finite()));
        assert_eq!(synthetic_gp_data(10, 3, 7), (xs, ys));
    }
}
