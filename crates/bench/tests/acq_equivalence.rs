//! Bit-identity contract of the flat-buffer batched acquisition engine.
//!
//! The flat NSGA-II engine (`moo::nsga2::Nsga2Engine`), the batched RFF evaluation
//! (`gp::PosteriorSample::eval_batch_into`) and the batched front sampler
//! (`parmis::pareto_sampling::ParetoFrontSampler::sample_with`) must reproduce the seed
//! per-point loop — preserved verbatim in [`bench::seedpath_acq`] — **bit for bit**, across
//! seeds, dimensions, population sizes and both kernel families. Any `!=` here means the
//! rewrite changed the numbers, not just the speed.

use bench::seedpath_acq::{build_seed_samplers, nsga2_run_seed, sample_front_seed};
use gp::kernel::Kernel;
use gp::{GaussianProcess, RffSampler};
use moo::nsga2::{Nsga2, Nsga2Config, Nsga2Engine};
use parmis::pareto_sampling::{AcquisitionScratch, ParetoFrontSampler, ParetoSamplingConfig};
use proptest::prelude::*;

/// A smooth, seed-parametrized bi-objective test function over `[-bound, bound]^d`.
fn objectives(theta: &[f64], shift: f64) -> Vec<f64> {
    let o1: f64 = theta.iter().map(|v| (v - shift) * (v - shift)).sum();
    let o2: f64 = theta
        .iter()
        .enumerate()
        .map(|(d, v)| (v + shift * 0.5 + d as f64 * 0.1).abs())
        .sum();
    vec![o1, o2]
}

/// Deterministic training data with a per-objective trade-off for GP fixtures.
fn toy_models(dim: usize, kernel: &Kernel) -> Vec<GaussianProcess> {
    let xs: Vec<Vec<f64>> = (0..14)
        .map(|i| {
            let t = i as f64 / 13.0 * 6.0 - 3.0;
            (0..dim)
                .map(|d| t * (1.0 - 0.4 * d as f64) + 0.2 * d as f64)
                .collect()
        })
        .collect();
    let y1: Vec<f64> = xs.iter().map(|x| x[0] + 0.1 * x[dim - 1]).collect();
    let y2: Vec<f64> = xs.iter().map(|x| -x[0] + 0.2 * x[dim - 1]).collect();
    vec![
        GaussianProcess::fit(xs.clone(), y1, kernel.clone(), 1e-4).unwrap(),
        GaussianProcess::fit(xs, y2, kernel.clone(), 1e-4).unwrap(),
    ]
}

fn kernel_for(family: u8, dim: usize) -> Kernel {
    let lengthscale = 1.0 + dim as f64 * 0.5;
    if family % 2 == 0 {
        Kernel::rbf(1.0, lengthscale)
    } else {
        Kernel::matern52(1.0, lengthscale)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine-backed `Nsga2::run` and the batched `run_batched` both reproduce the
    /// preserved seed loop exactly: same decisions, same objectives, for any seed, any
    /// dimension, any (even) population size and generation count.
    #[test]
    fn flat_nsga2_is_bit_identical_to_the_seed_loop(
        seed in 0u64..u64::MAX,
        dim in 1usize..5,
        pop_half in 2usize..9,
        generations in 1usize..7,
        shift in -1.5f64..1.5,
    ) {
        let config = Nsga2Config {
            population_size: 2 * pop_half,
            generations,
            seed,
            ..Default::default()
        };
        let lower = vec![-2.0; dim];
        let upper = vec![2.0; dim];

        let seed_pop = nsga2_run_seed(&lower, &upper, &config, |x| objectives(x, shift));

        let solver = Nsga2::new(lower, upper, config).unwrap();
        let flat_pop = solver.run(|x| objectives(x, shift));
        prop_assert_eq!(&seed_pop.decisions, &flat_pop.decisions);
        prop_assert_eq!(&seed_pop.objectives, &flat_pop.objectives);

        let mut engine = Nsga2Engine::new();
        let batched_pop = solver.run_batched(&mut engine, 2, |points, out| {
            for i in 0..points.count() {
                out[2 * i..2 * i + 2].copy_from_slice(&objectives(points.row(i), shift));
            }
        });
        prop_assert_eq!(&seed_pop.decisions, &batched_pop.decisions);
        prop_assert_eq!(&seed_pop.objectives, &batched_pop.objectives);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Batched RFF evaluation answers exactly what the per-point path answers, for both
    /// kernel families and any draw seed.
    #[test]
    fn eval_batch_into_is_bit_identical_across_kernels(
        family in 0u8..2,
        dim in 1usize..4,
        sampler_seed in 0u64..u64::MAX,
        draw_seed in 0u64..u64::MAX,
    ) {
        let kernel = kernel_for(family, dim);
        let models = toy_models(dim, &kernel);
        for model in &models {
            let sampler = RffSampler::new(model, 90, sampler_seed).unwrap();
            let f = sampler.sample(draw_seed).unwrap();
            let queries: Vec<Vec<f64>> = (0..23)
                .map(|i| (0..dim).map(|d| -2.5 + 0.23 * i as f64 + 0.4 * d as f64).collect())
                .collect();
            let flat: Vec<f64> = queries.iter().flatten().copied().collect();
            let mut batched = vec![0.0; queries.len()];
            f.eval_batch_into(&flat, &mut batched);
            for (q, b) in queries.iter().zip(&batched) {
                prop_assert_eq!(f.eval(q), *b);
            }
        }
    }

    /// End to end: the batched front sampler reproduces the seed path's sampled Pareto
    /// front and per-objective extrema bit for bit — with a fresh scratch *and* with a
    /// warm scratch reused across draws (the framework's usage pattern).
    #[test]
    fn sampled_fronts_are_bit_identical_to_the_seed_path(
        family in 0u8..2,
        sampler_seed in 0u64..u64::MAX,
        sample_seed in 0u64..u64::MAX,
    ) {
        let dim = 2;
        let kernel = kernel_for(family, dim);
        let models = toy_models(dim, &kernel);
        let config = ParetoSamplingConfig {
            rff_features: 60,
            nsga_population: 16,
            nsga_generations: 6,
        };
        let bound = 3.0;

        let seed_samplers = build_seed_samplers(&models, config.rff_features, sampler_seed);
        let sampler = ParetoFrontSampler::new(&models, bound, config.clone(), sampler_seed).unwrap();

        let mut scratch = AcquisitionScratch::default();
        for offset in 0..3u64 {
            let s = sample_seed.wrapping_add(offset * 104729);
            let seed_sample = sample_front_seed(&seed_samplers, bound, &config, s);
            let flat_sample = sampler.sample_with(&mut scratch, s).unwrap();
            prop_assert_eq!(&seed_sample.front, &flat_sample.front);
            prop_assert_eq!(&seed_sample.per_objective_best, &flat_sample.per_objective_best);
        }
    }
}
