//! Release-mode wall-clock gate for the fast precision tier ([`Precision::Fast`]).
//!
//! The two structural caps the earlier engine gates document are exactly what the fast
//! tier removes:
//!
//! 1. **Acquisition** (`acq_speed_gate`): ~75 % of an end-to-end
//!    `ParetoFrontSampler::sample()` is `cos` over the random features, and bit-identity
//!    pinned those to libm on both the seed and the flat path — capping the end-to-end
//!    win near 1.1×. With the fast polynomial cosine in the flat engine, the end-to-end
//!    fast-tier `sample()` must beat the seed-exact per-point path by at least **2×**.
//! 2. **Simulation** (`sim_speed_gate`): the two Box–Muller log-normal draws per epoch
//!    are an identical RNG-stream-mandated cost on both simulation paths, compressing
//!    the noisy full-application win to ~1.4×. With the blocked fast-math noise
//!    pipeline, the fast-tier streaming run must beat the seed path on the *noisy*
//!    1000-epoch application by at least **1.5×**.
//!
//! The measured ratios are also emitted (unasserted) by `bench_acq` / `bench_sim` into
//! `BENCH_acq.json` / `BENCH_sim.json` as the `*_fast_tier` rows.
//!
//! Timing assertions are meaningless in debug builds and flake under noisy neighbours, so
//! this stays `#[ignore]`d; run it with `cargo test -q -p bench --release -- --ignored` on
//! a quiet machine.

use bench::seedpath::{self, probe_app, FixedDecisionController as FixedController};
use bench::seedpath_acq::{build_seed_samplers, probe_models, probe_sampling_config};
use fastmath::Precision;
use parmis::pareto_sampling::{AcquisitionScratch, ParetoFrontSampler};
use soc_sim::config::DrmDecision;
use soc_sim::platform::{DiscardEpochs, Platform};
use std::time::{Duration, Instant};

#[test]
#[ignore = "wall-clock sensitive; run in release mode on a quiet machine"]
fn fast_tier_lifts_the_cos_bound_on_end_to_end_sampling() {
    let models = probe_models();
    let config = probe_sampling_config();
    let sampler_seed = 17u64;
    let seed_samplers = build_seed_samplers(&models, config.rff_features, sampler_seed);
    let fast = ParetoFrontSampler::new_with_precision(
        &models,
        3.0,
        config.clone(),
        sampler_seed,
        Precision::Fast,
    )
    .expect("valid sampler");
    let mut scratch = AcquisitionScratch::default();
    // Warm both paths; agreement is covered by the accuracy suites, not re-checked here
    // (the tiers are *not* bit-identical by design).
    std::hint::black_box(seedpath_acq_sample(&seed_samplers, &config, 1_000_000));
    fast.sample_with(&mut scratch, 1_000_000)
        .expect("valid sample");

    // Interleaved min-of-batches: the minimum over several short batches discards noisy
    // neighbour interference on both sides symmetrically.
    let (batches, reps) = (4u64, 4u64);
    let mut seed_time = Duration::MAX;
    let mut fast_time = Duration::MAX;
    for batch in 0..batches {
        let start = Instant::now();
        for s in 0..reps {
            std::hint::black_box(seedpath_acq_sample(
                &seed_samplers,
                &config,
                batch * reps + s,
            ));
        }
        seed_time = seed_time.min(start.elapsed());
        let start = Instant::now();
        for s in 0..reps {
            std::hint::black_box(
                fast.sample_with(&mut scratch, batch * reps + s)
                    .expect("valid sample"),
            );
        }
        fast_time = fast_time.min(start.elapsed());
    }
    let ratio = seed_time.as_secs_f64() / fast_time.as_secs_f64();
    assert!(
        fast_time.as_secs_f64() * 2.0 <= seed_time.as_secs_f64(),
        "expected >= 2x from the fast tier on an end-to-end 2-objective, 200-feature, \
         40-pop/30-gen sample(): fast {fast_time:?}, seed-exact {seed_time:?} ({ratio:.2}x)"
    );
    println!("fastmath gate: end-to-end sample() {ratio:.2}x (>= 2x)");
}

fn seedpath_acq_sample(
    samplers: &[gp::RffSampler],
    config: &parmis::pareto_sampling::ParetoSamplingConfig,
    seed: u64,
) -> bench::seedpath_acq::SeedFrontSample {
    bench::seedpath_acq::sample_front_seed(samplers, 3.0, config, seed)
}

#[test]
#[ignore = "wall-clock sensitive; run in release mode on a quiet machine"]
fn fast_tier_lifts_the_noise_bound_on_the_noisy_full_application() {
    // The default Odroid platform keeps its measurement noise (0.01), so both paths pay
    // the per-epoch noise pipeline — the cost the fast tier is built to cut.
    let exact = Platform::odroid_xu3();
    let fast = Platform::odroid_xu3().with_precision(Precision::Fast);
    let app = probe_app(1000);
    let decision = DrmDecision {
        big_cores: 4,
        little_cores: 4,
        big_freq_mhz: 1800,
        little_freq_mhz: 1200,
    };

    // Warm both paths.
    let mut controller = FixedController(decision);
    std::hint::black_box(seedpath::run_application_seed(&exact, &app, &mut controller, 7).unwrap());
    std::hint::black_box(
        fast.run_application_with(&app, &mut controller, 7, &mut DiscardEpochs)
            .unwrap(),
    );

    let (batches, reps) = (5u32, 4u32);
    let mut seed_time = Duration::MAX;
    let mut fast_time = Duration::MAX;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..reps {
            let mut controller = FixedController(decision);
            std::hint::black_box(
                seedpath::run_application_seed(&exact, &app, &mut controller, 7).unwrap(),
            );
        }
        seed_time = seed_time.min(start.elapsed());
        let start = Instant::now();
        for _ in 0..reps {
            let mut controller = FixedController(decision);
            std::hint::black_box(
                fast.run_application_with(&app, &mut controller, 7, &mut DiscardEpochs)
                    .unwrap(),
            );
        }
        fast_time = fast_time.min(start.elapsed());
    }
    let ratio = seed_time.as_secs_f64() / fast_time.as_secs_f64();
    assert!(
        fast_time.as_secs_f64() * 1.5 <= seed_time.as_secs_f64(),
        "expected >= 1.5x from the fast tier on the noisy 1000-epoch application: fast \
         {fast_time:?}, seed path {seed_time:?} ({ratio:.2}x)"
    );
    println!("fastmath gate: noisy full application {ratio:.2}x (>= 1.5x)");
}
