//! Release-mode wall-clock gate for the flat-buffer batched acquisition engine.
//!
//! Two contracts on the shared probe shape (2 objectives, 200 random features,
//! 40-individual population, 30 generations):
//!
//! 1. The NSGA-II evolution machinery the rewrite replaced — population storage, sorting,
//!    crowding, selection, variation — must be at least **2×** faster on the flat engine
//!    than on the preserved seed loop.
//! 2. End-to-end, a warm-scratch `ParetoFrontSampler::sample_with` must beat the seed
//!    per-point path outright.
//!
//! The end-to-end ratio is structurally capped well below the machinery ratio: ~75 % of a
//! `sample()` is `cos` evaluations of the random features, and bit-identity (the
//! `acq_equivalence` contract) pins those to the exact same scalar operations on both
//! paths — the same situation as PR 4's Box–Muller noise draws, which were an identical
//! cost on both simulation paths. The engine's full win therefore shows where the model is
//! cheap relative to the evolution, and as allocation-freedom (see `bench_acq`'s counting
//! -allocator assert) everywhere else.
//!
//! Timing assertions are meaningless in debug builds and flake under noisy neighbours, so
//! this stays `#[ignore]`d; run it with `cargo test -q -p bench --release -- --ignored` on
//! a quiet machine.

use bench::seedpath_acq::{
    self, build_seed_samplers, probe_models, probe_sampling_config, sample_front_seed,
};
use moo::nsga2::{Nsga2, Nsga2Engine};
use parmis::pareto_sampling::{AcquisitionScratch, ParetoFrontSampler};
use std::time::Instant;

#[test]
#[ignore = "wall-clock sensitive; run in release mode on a quiet machine"]
fn acquisition_sampling_doubles_throughput() {
    // --- contract 1: the evolution machinery, isolated by a near-free objective --------
    // The shared probe ([`seedpath_acq::probe_machinery_problem`]) keeps this gate and the
    // BENCH_acq.json `nsga2_machinery_40x30` row on the same problem. The seed interface
    // forces one `Vec<f64>` per evaluated point; the batched callback writes straight into
    // the flat objective block — each path pays exactly the cost its interface imposes.
    let (lower, upper, nsga_config) = seedpath_acq::probe_machinery_problem();
    let solver = Nsga2::new(lower.clone(), upper.clone(), nsga_config.clone()).unwrap();
    let mut engine = Nsga2Engine::new();
    engine.solve(&solver, 2, seedpath_acq::probe_machinery_eval_flat);

    // Interleaved min-of-batches: the minimum over several short batches discards noisy
    // neighbour interference on both sides symmetrically, which a single long loop cannot.
    let (batches, reps) = (6u32, 5u32);
    let mut seed_machinery = std::time::Duration::MAX;
    let mut flat_machinery = std::time::Duration::MAX;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(seedpath_acq::nsga2_run_seed(
                &lower,
                &upper,
                &nsga_config,
                seedpath_acq::probe_machinery_eval,
            ));
        }
        seed_machinery = seed_machinery.min(start.elapsed());
        let start = Instant::now();
        for _ in 0..reps {
            engine.solve(&solver, 2, seedpath_acq::probe_machinery_eval_flat);
            std::hint::black_box(engine.objectives());
        }
        flat_machinery = flat_machinery.min(start.elapsed());
    }
    assert!(
        flat_machinery.as_secs_f64() * 2.0 <= seed_machinery.as_secs_f64(),
        "expected >= 2x speedup from the flat engine on the 2-objective, 40-pop/30-gen \
         evolution machinery: flat {flat_machinery:?}, seed {seed_machinery:?} ({:.2}x)",
        seed_machinery.as_secs_f64() / flat_machinery.as_secs_f64()
    );

    // --- contract 2: end-to-end sample() on the full probe problem ----------------------
    let models = probe_models();
    let config = probe_sampling_config();
    let sampler_seed = 17u64;
    let samplers = build_seed_samplers(&models, config.rff_features, sampler_seed);
    let sampler =
        ParetoFrontSampler::new(&models, 3.0, config.clone(), sampler_seed).expect("valid sampler");
    let mut scratch = AcquisitionScratch::default();

    // Warm both paths, and check the comparison is honest: same front, bit for bit,
    // before any timing.
    let warm_seed = 1_000_000u64;
    let seed_sample = sample_front_seed(&samplers, 3.0, &config, warm_seed);
    let flat_sample = sampler
        .sample_with(&mut scratch, warm_seed)
        .expect("valid sample");
    assert_eq!(seed_sample.front, flat_sample.front);
    assert_eq!(
        seed_sample.per_objective_best,
        flat_sample.per_objective_best
    );

    let (batches, reps) = (4u64, 4u64);
    let mut seed_time = std::time::Duration::MAX;
    let mut flat_time = std::time::Duration::MAX;
    for batch in 0..batches {
        let start = Instant::now();
        for s in 0..reps {
            std::hint::black_box(sample_front_seed(&samplers, 3.0, &config, batch * reps + s));
        }
        seed_time = seed_time.min(start.elapsed());
        let start = Instant::now();
        for s in 0..reps {
            std::hint::black_box(
                sampler
                    .sample_with(&mut scratch, batch * reps + s)
                    .expect("valid sample"),
            );
        }
        flat_time = flat_time.min(start.elapsed());
    }
    let end_to_end = seed_time.as_secs_f64() / flat_time.as_secs_f64();
    assert!(
        flat_time.as_secs_f64() * 1.1 <= seed_time.as_secs_f64(),
        "the flat path must beat the seed path end-to-end on a 2-objective, 200-feature, \
         40-pop/30-gen sample: flat {flat_time:?}, seed {seed_time:?} ({end_to_end:.2}x)"
    );
    println!(
        "acquisition gate: machinery {:.2}x (>= 2x), end-to-end sample() {end_to_end:.2}x \
         (cos-bound; see module docs)",
        seed_machinery.as_secs_f64() / flat_machinery.as_secs_f64()
    );
}
