//! Wall-clock contract for the streaming simulation engine.
//!
//! Mirrors the PR 2 GP gate (`incremental_refit_and_predict_batch_beat_the_serial_baselines`):
//! timing assertions are meaningless in debug builds and flake under noisy neighbours, so
//! the gate stays `#[ignore]`d; run it with
//! `cargo test -q -p bench --release -- --ignored` on a quiet machine.

use bench::seedpath::{self, probe_app, FixedDecisionController as FixedController};
use soc_sim::config::{DecisionSpace, DrmDecision};
use soc_sim::platform::{DiscardEpochs, Platform, SocSpec};

/// The streaming, table-driven engine must evaluate a 1000-epoch application at least twice
/// as fast as the seed path it replaced (validate-and-rederive per epoch, materialized
/// trace, triple energy recomputation).
///
/// Measured on a **zero-measurement-noise** platform: the noise model costs two Box–Muller
/// log-normal draws per epoch on *both* paths — an identical, RNG-stream-mandated cost that
/// the engine rewrite neither added nor can remove — and with it in the denominator the
/// engine's own ≥ 2× win is compressed to ~1.4×. `bench_sim`'s `BENCH_sim.json` reports
/// both ratios (`full_application_1000` on the default noisy platform,
/// `full_application_1000_quiet` on this configuration) so the trade stays visible.
#[test]
#[ignore = "wall-clock sensitive; run in release mode on a quiet machine"]
fn streaming_engine_doubles_full_application_throughput() {
    let platform = Platform::new(SocSpec::new(
        DecisionSpace::exynos5422(),
        soc_sim::perf::PerfModel::default(),
        soc_sim::power::PowerModel::default(),
        0.0,
    ));
    let app = probe_app(1000);
    let decision = DrmDecision {
        big_cores: 4,
        little_cores: 4,
        big_freq_mhz: 1800,
        little_freq_mhz: 1200,
    };

    let reps = 20;
    // Warm both paths once so lazy setup stays out of the measurement.
    let mut controller = FixedController(decision);
    let expected = seedpath::run_application_seed(&platform, &app, &mut controller, 7).unwrap();
    let aggregates = platform
        .run_application_with(&app, &mut controller, 7, &mut DiscardEpochs)
        .unwrap();
    // The comparison only means something while both paths produce the same numbers.
    assert_eq!(expected.execution_time_s, aggregates.execution_time_s);
    assert_eq!(expected.energy_j, aggregates.energy_j);
    assert_eq!(expected.peak_temperature_c, aggregates.peak_temperature_c);

    let start = std::time::Instant::now();
    for _ in 0..reps {
        let mut controller = FixedController(decision);
        std::hint::black_box(
            platform
                .run_application_with(&app, &mut controller, 7, &mut DiscardEpochs)
                .unwrap(),
        );
    }
    let streaming_time = start.elapsed();

    let start = std::time::Instant::now();
    for _ in 0..reps {
        let mut controller = FixedController(decision);
        std::hint::black_box(
            seedpath::run_application_seed(&platform, &app, &mut controller, 7).unwrap(),
        );
    }
    let seed_time = start.elapsed();

    assert!(
        streaming_time.as_secs_f64() * 2.0 <= seed_time.as_secs_f64(),
        "expected >= 2x speedup from the streaming engine on a 1000-epoch app: streaming \
         {streaming_time:?}, seed path {seed_time:?}"
    );
}
