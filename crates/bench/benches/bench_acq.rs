//! Acquisition-engine speedup report: measures the flat-buffer batched front-sampling
//! pipeline against the preserved seed path ([`bench::seedpath_acq`]) and emits the ratios
//! as `BENCH_acq.json` (into `$PARMIS_RESULTS_DIR` when set).
//!
//! Criterion groups:
//!
//! * `front_sample_200f_40x25` — one end-to-end `ParetoFrontSampler::sample` (draw one RFF
//!   function per objective, NSGA-II solve, front reduction): warm-scratch flat engine vs.
//!   the seed per-point loop on the shared probe problem.
//! * `rff_eval_batch80` — one 200-feature posterior sample answering 80 points:
//!   `eval_batch_into` vs. the per-point `eval` loop.
//! * `nsga2_machinery_40x30` — the evolutionary machinery isolated on a near-free synthetic
//!   objective: flat engine vs. the seed `Vec<Vec<f64>>` loop.
//!
//! The binary also asserts, via a counting global allocator, that a warm engine's
//! allocation count does **not** grow with the generation count — the "zero per-generation
//! heap allocation" contract of the flat rewrite.
//!
//! `cargo bench -p bench --bench bench_acq` for the timed report; `-- --test` (CI smoke
//! mode) runs every routine once, untimed, and skips the JSON emission.

use bench::report::{fmt, print_header, write_json};
use bench::seedpath_acq::{
    self, build_seed_samplers, probe_models, probe_sampling_config, sample_front_seed,
};
use criterion::Criterion;
use fastmath::Precision;
use gp::RffSampler;
use moo::nsga2::{Nsga2, Nsga2Config, Nsga2Engine};
use parmis::pareto_sampling::{AcquisitionScratch, ParetoFrontSampler, ParetoSamplingConfig};
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counts heap allocations so the bench can assert the warm engine allocates nothing per
/// generation. Deallocations are uncounted — only the allocation count matters here.
struct CountingAllocator;

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCATION_COUNT.load(Ordering::Relaxed);
    f();
    ALLOCATION_COUNT.load(Ordering::Relaxed) - before
}

/// One measured seed-vs-flat comparison.
#[derive(Debug, Serialize)]
struct AcqBenchRow {
    name: String,
    seed_ms: f64,
    flat_ms: f64,
    /// seed_ms / flat_ms — how much cheaper the flat batched path is.
    speedup: f64,
}

fn row(name: &str, seed: Duration, flat: Duration) -> AcqBenchRow {
    let seed_ms = seed.as_secs_f64() * 1e3;
    let flat_ms = flat.as_secs_f64() * 1e3;
    AcqBenchRow {
        name: name.to_string(),
        seed_ms,
        flat_ms,
        speedup: seed_ms / flat_ms.max(1e-12),
    }
}

/// The zero-per-generation-allocation contract: once the engine (and the RFF machinery it
/// drives) is warm, evolving 10× more generations must not add a single heap allocation —
/// the whole per-generation loop runs on reused flat buffers.
fn assert_allocations_stay_flat() {
    let models = probe_models();
    let config = probe_sampling_config();
    let sampler_seed = 11u64;
    let samplers = build_seed_samplers(&models, config.rff_features, sampler_seed);
    let functions: Vec<gp::PosteriorSample> = samplers
        .iter()
        .map(|s| s.sample(3).expect("valid draw"))
        .collect();
    let k = functions.len();
    let dim = samplers[0].dim();

    let mut engine = Nsga2Engine::new();
    let mut column: Vec<f64> = Vec::new();
    let mut run = |generations: usize| {
        let nsga = Nsga2::new(
            vec![-3.0; dim],
            vec![3.0; dim],
            Nsga2Config {
                population_size: config.nsga_population,
                generations,
                seed: 99,
                ..Default::default()
            },
        )
        .expect("valid problem");
        allocations_during(|| {
            engine.solve(&nsga, k, |points, out| {
                for (j, f) in functions.iter().enumerate() {
                    column.clear();
                    column.resize(points.count(), 0.0);
                    f.eval_batch_into(points.as_slice(), &mut column);
                    for (p, v) in column.iter().enumerate() {
                        out[p * k + j] = *v;
                    }
                }
            });
        })
    };
    // Warm-up at the largest shape, then measure: a warm engine must be allocation-free
    // regardless of how many generations it evolves.
    run(30);
    let allocs_3 = run(3);
    let allocs_30 = run(30);
    assert_eq!(
        allocs_3, allocs_30,
        "warm NSGA-II solves must not allocate per generation: {allocs_3} allocations at \
         3 generations vs {allocs_30} at 30"
    );
    assert_eq!(
        allocs_30, 0,
        "a warm engine solve must be entirely allocation-free, saw {allocs_30}"
    );
    println!("allocation flatness: {allocs_3}@3gen == {allocs_30}@30gen == 0 ok");
}

fn bench_front_sample(c: &mut Criterion, rows: &mut Vec<AcqBenchRow>) {
    let models = probe_models();
    // Slightly smaller than the gate shape so the timed report stays quick; the gate runs
    // the full probe_sampling_config shape.
    let config = ParetoSamplingConfig {
        nsga_generations: 25,
        ..probe_sampling_config()
    };
    let sampler_seed = 5u64;
    let samplers = build_seed_samplers(&models, config.rff_features, sampler_seed);
    let sampler =
        ParetoFrontSampler::new(&models, 3.0, config.clone(), sampler_seed).expect("valid sampler");
    let mut scratch = AcquisitionScratch::default();
    // Warm the scratch so the measurement sees the steady-state (framework) behaviour.
    sampler.sample_with(&mut scratch, 0).expect("valid sample");

    let mut sample_seed = 0u64;
    let seed = c.bench_timed("front_sample_200f_40x25/seed_path", |b| {
        b.iter(|| {
            sample_seed = sample_seed.wrapping_add(1);
            sample_front_seed(&samplers, 3.0, &config, sample_seed)
        })
    });
    let mut sample_seed = 0u64;
    let flat = c.bench_timed("front_sample_200f_40x25/flat_engine", |b| {
        b.iter(|| {
            sample_seed = sample_seed.wrapping_add(1);
            sampler
                .sample_with(&mut scratch, sample_seed)
                .expect("valid sample")
        })
    });
    rows.push(row("front_sample_200f_40x25", seed, flat));
}

fn bench_rff_eval_batch(c: &mut Criterion, rows: &mut Vec<AcqBenchRow>) {
    let models = probe_models();
    let sampler = RffSampler::new(&models[0], 200, 7).expect("valid sampler");
    let f = sampler.sample(1).expect("valid draw");
    let dim = sampler.dim();
    let points: Vec<f64> = (0..80 * dim)
        .map(|i| -2.0 + 0.05 * (i % 80) as f64)
        .collect();
    let mut out = vec![0.0; 80];

    let seed = c.bench_timed("rff_eval_batch80/per_point", |b| {
        b.iter(|| {
            for (p, o) in out.iter_mut().enumerate() {
                *o = f.eval(&points[p * dim..(p + 1) * dim]);
            }
        })
    });
    let flat = c.bench_timed("rff_eval_batch80/batched", |b| {
        b.iter(|| f.eval_batch_into(&points, &mut out))
    });
    rows.push(row("rff_eval_batch80", seed, flat));
}

/// Fast-tier rows: the same shapes as above, but comparing the seed-exact tier against
/// [`Precision::Fast`] (polynomial cosine kernels) on the *same* flat engine. Here
/// `seed_ms` is the seed-exact tier and `flat_ms` the fast tier, so `speedup` is the
/// exact→fast ratio the release gate (`fastmath_speed_gate`) asserts on.
fn bench_fast_tier(c: &mut Criterion, rows: &mut Vec<AcqBenchRow>) {
    let models = probe_models();
    let config = ParetoSamplingConfig {
        nsga_generations: 25,
        ..probe_sampling_config()
    };
    let sampler_seed = 5u64;
    let exact =
        ParetoFrontSampler::new(&models, 3.0, config.clone(), sampler_seed).expect("valid sampler");
    let fast = ParetoFrontSampler::new_with_precision(
        &models,
        3.0,
        config.clone(),
        sampler_seed,
        Precision::Fast,
    )
    .expect("valid sampler");
    let mut scratch = AcquisitionScratch::default();
    exact.sample_with(&mut scratch, 0).expect("valid sample");
    fast.sample_with(&mut scratch, 0).expect("valid sample");

    let mut sample_seed = 0u64;
    let exact_time = c.bench_timed("front_sample_fast_tier/seed_exact", |b| {
        b.iter(|| {
            sample_seed = sample_seed.wrapping_add(1);
            exact
                .sample_with(&mut scratch, sample_seed)
                .expect("valid sample")
        })
    });
    let mut sample_seed = 0u64;
    let fast_time = c.bench_timed("front_sample_fast_tier/fast", |b| {
        b.iter(|| {
            sample_seed = sample_seed.wrapping_add(1);
            fast.sample_with(&mut scratch, sample_seed)
                .expect("valid sample")
        })
    });
    rows.push(row("front_sample_fast_tier", exact_time, fast_time));

    // The 80-point batched posterior evaluation in isolation — the cosine-bound inner loop
    // the fast tier targets.
    let exact_sampler = RffSampler::new(&models[0], 200, 7).expect("valid sampler");
    let fast_sampler = RffSampler::new(&models[0], 200, 7)
        .expect("valid sampler")
        .with_precision(Precision::Fast);
    let exact_f = exact_sampler.sample(1).expect("valid draw");
    let fast_f = fast_sampler.sample(1).expect("valid draw");
    let dim = exact_sampler.dim();
    let points: Vec<f64> = (0..80 * dim)
        .map(|i| -2.0 + 0.05 * (i % 80) as f64)
        .collect();
    let mut out = vec![0.0; 80];

    // The fast batched path shares the exact path's allocation contract: warm, then zero.
    fast_f.eval_batch_into(&points, &mut out);
    let fast_allocs = allocations_during(|| fast_f.eval_batch_into(&points, &mut out));
    assert_eq!(
        fast_allocs, 0,
        "the fast-tier batched posterior evaluation must stay allocation-free"
    );

    let exact_time = c.bench_timed("rff_eval_batch80_fast_tier/seed_exact", |b| {
        b.iter(|| exact_f.eval_batch_into(&points, &mut out))
    });
    let fast_time = c.bench_timed("rff_eval_batch80_fast_tier/fast", |b| {
        b.iter(|| fast_f.eval_batch_into(&points, &mut out))
    });
    rows.push(row("rff_eval_batch80_fast_tier", exact_time, fast_time));
}

fn bench_nsga2_machinery(c: &mut Criterion, rows: &mut Vec<AcqBenchRow>) {
    // The shared machinery probe ([`seedpath_acq::probe_machinery_problem`]) isolates the
    // evolutionary machinery with a near-free objective — the gate asserts >= 2x on this
    // exact problem, so the BENCH_acq.json row and the gated ratio stay comparable.
    let (lower, upper, config) = seedpath_acq::probe_machinery_problem();

    let seed = c.bench_timed("nsga2_machinery_40x30/seed_path", |b| {
        b.iter(|| {
            seedpath_acq::nsga2_run_seed(
                &lower,
                &upper,
                &config,
                seedpath_acq::probe_machinery_eval,
            )
        })
    });
    let solver = Nsga2::new(lower.clone(), upper.clone(), config).expect("valid problem");
    let mut engine = Nsga2Engine::new();
    let flat = c.bench_timed("nsga2_machinery_40x30/flat_engine", |b| {
        b.iter(|| {
            engine.solve(&solver, 2, seedpath_acq::probe_machinery_eval_flat);
        })
    });
    rows.push(row("nsga2_machinery_40x30", seed, flat));
}

fn main() {
    let quick = std::env::var("PARMIS_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick");
    let mut criterion = Criterion::default().sample_size(if quick { 4 } else { 10 });

    print_header(
        "BENCH_acq",
        "flat-buffer batched acquisition engine vs the seed per-point sampling loop",
    );
    assert_allocations_stay_flat();

    let mut rows = Vec::new();
    bench_front_sample(&mut criterion, &mut rows);
    bench_rff_eval_batch(&mut criterion, &mut rows);
    bench_fast_tier(&mut criterion, &mut rows);
    bench_nsga2_machinery(&mut criterion, &mut rows);

    if criterion.is_test_mode() {
        println!("bench_acq smoke: every routine ran once; ratios not measured");
        return;
    }
    println!("name,seed_ms,flat_ms,speedup");
    for r in &rows {
        println!(
            "{},{},{},{}x",
            r.name,
            fmt(r.seed_ms),
            fmt(r.flat_ms),
            fmt(r.speedup)
        );
    }
    write_json("BENCH_acq", &rows);
}
