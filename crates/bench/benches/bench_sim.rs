//! Simulation-engine speedup report: measures the streaming, table-driven epoch loop
//! against the preserved seed path ([`bench::seedpath`]) and emits the ratios as
//! `BENCH_sim.json` (into `$PARMIS_RESULTS_DIR` when set).
//!
//! Criterion groups:
//!
//! * `epoch_loop` — one table-driven `Platform::run_epoch` vs. the seed's
//!   validate-and-rederive epoch.
//! * `full_application` — a 1000-epoch governor run: streaming `run_application_with`
//!   (no per-epoch materialization) vs. the seed's collecting loop.
//! * `evaluate_batch16` — a 16-θ policy-evaluation batch through `SocEvaluator`'s reusable
//!   `SimBuffers` scratch vs. the seed's decode-per-θ, materialize-per-run evaluation.
//! * `scenario_matrix_row` — one golden-matrix row (every stock governor on one scenario):
//!   the streaming `run_scenario_row` vs. the seed path.
//!
//! The binary also asserts, via a counting global allocator, that a streaming run's heap
//! allocation count does **not** grow with the epoch count — the "zero per-epoch heap
//! allocation" contract of the engine rewrite.
//!
//! `cargo bench -p bench --bench bench_sim` for the timed report; `-- --test` (CI smoke
//! mode) runs every routine once, untimed, and skips the JSON emission.

use bench::report::{fmt, print_header, write_json};
use bench::seedpath::{self, probe_app, probe_phase, FixedDecisionController as FixedController};
use criterion::Criterion;
use parmis::evaluation::{PolicyEvaluator, SocEvaluator};
use parmis::objective::{objective_vector, Objective};
use policy::drm_policy::DrmPolicy;
use serde::Serialize;
use soc_sim::apps::Benchmark;
use soc_sim::config::DrmDecision;
use soc_sim::platform::{DiscardEpochs, Platform};
use soc_sim::scenario;
use soc_sim::workload::Application;
use soc_sim::Precision;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counts heap allocations so the bench can assert the streaming loop allocates nothing
/// per epoch. Deallocations are uncounted — only the allocation count matters here.
struct CountingAllocator;

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to the system allocator; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCATION_COUNT.load(Ordering::Relaxed);
    f();
    ALLOCATION_COUNT.load(Ordering::Relaxed) - before
}

/// One measured seed-vs-streaming comparison.
#[derive(Debug, Serialize)]
struct SimBenchRow {
    name: String,
    seed_ms: f64,
    streaming_ms: f64,
    /// seed_ms / streaming_ms — how much cheaper the streaming, table-driven path is.
    speedup: f64,
}

fn row(name: &str, seed: Duration, streaming: Duration) -> SimBenchRow {
    let seed_ms = seed.as_secs_f64() * 1e3;
    let streaming_ms = streaming.as_secs_f64() * 1e3;
    SimBenchRow {
        name: name.to_string(),
        seed_ms,
        streaming_ms,
        speedup: seed_ms / streaming_ms.max(1e-12),
    }
}

/// The zero-per-epoch-allocation contract: a streaming run's allocation count must not
/// grow with the epoch count — under a fixed controller AND under a learned policy (whose
/// four-head inference reuses the policy-owned `MlpScratch`).
fn assert_allocations_stay_flat(platform: &Platform) {
    let short = probe_app(100);
    let long = probe_app(1000);
    let decision = DrmDecision {
        big_cores: 2,
        little_cores: 2,
        big_freq_mhz: 1400,
        little_freq_mhz: 1000,
    };
    let run = |app: &Application| {
        let mut controller = FixedController(decision);
        allocations_during(|| {
            platform
                .run_application_with(app, &mut controller, 7, &mut DiscardEpochs)
                .expect("valid run");
        })
    };
    // Warm-up (lazy thread-local RNG state etc.), then measure both lengths.
    run(&short);
    let allocs_100 = run(&short);
    let allocs_1000 = run(&long);
    assert_eq!(
        allocs_100, allocs_1000,
        "streaming runs must not allocate per epoch: {allocs_100} allocations at 100 epochs \
         vs {allocs_1000} at 1000"
    );
    // Policy-driven runs: per-epoch MLP inference must stay allocation-free too once the
    // policy's scratch has warmed (the per-run delta is epoch-count-invariant).
    let space = platform.spec().decision_space();
    let mut policy = DrmPolicy::random(
        space,
        &policy::drm_policy::PolicyArchitecture::paper_default(),
        5,
    );
    let mut policy_run = |app: &Application| {
        allocations_during(|| {
            platform
                .run_application_with(app, &mut policy, 7, &mut DiscardEpochs)
                .expect("valid run");
        })
    };
    policy_run(&short);
    let policy_100 = policy_run(&short);
    let policy_1000 = policy_run(&long);
    assert_eq!(
        policy_100, policy_1000,
        "policy-driven streaming runs must not allocate per epoch: {policy_100} allocations \
         at 100 epochs vs {policy_1000} at 1000"
    );
    println!(
        "allocation flatness: fixed {allocs_100}@100 == {allocs_1000}@1000, \
         policy {policy_100}@100 == {policy_1000}@1000 ok"
    );
}

fn bench_epoch_loop(c: &mut Criterion, rows: &mut Vec<SimBenchRow>) {
    let platform = Platform::odroid_xu3();
    let phase = probe_phase();
    let decision = DrmDecision {
        big_cores: 3,
        little_cores: 2,
        big_freq_mhz: 1600,
        little_freq_mhz: 800,
    };
    let seed = c.bench_timed("epoch_loop/seed_path", |b| {
        b.iter(|| seedpath::run_epoch_seed(&platform, &decision, &phase).unwrap())
    });
    let streaming = c.bench_timed("epoch_loop/table_driven", |b| {
        b.iter(|| platform.run_epoch(&decision, &phase).unwrap())
    });
    rows.push(row("epoch_loop", seed, streaming));
}

/// `label` distinguishes the default (noisy) platform from the zero-measurement-noise one:
/// the noise model costs two Box–Muller draws per epoch on *both* paths, so the quiet row
/// shows the engine's own win while the noisy row shows the end-to-end effect.
fn bench_full_application(
    c: &mut Criterion,
    rows: &mut Vec<SimBenchRow>,
    platform: &Platform,
    label: &str,
    epochs: usize,
) {
    let app = probe_app(epochs);
    let decision = DrmDecision {
        big_cores: 4,
        little_cores: 4,
        big_freq_mhz: 1800,
        little_freq_mhz: 1200,
    };
    let name = format!("full_application_{epochs}{label}");
    let seed = c.bench_timed(&format!("{name}/seed_path"), |b| {
        b.iter(|| {
            let mut controller = FixedController(decision);
            seedpath::run_application_seed(platform, &app, &mut controller, 7).unwrap()
        })
    });
    let streaming = c.bench_timed(&format!("{name}/streaming"), |b| {
        b.iter(|| {
            let mut controller = FixedController(decision);
            platform
                .run_application_with(&app, &mut controller, 7, &mut DiscardEpochs)
                .unwrap()
        })
    });
    rows.push(row(&name, seed, streaming));
}

/// Fast-tier row: the same noisy 1000-epoch application on the same streaming engine,
/// comparing the seed-exact noise pipeline (scalar Box–Muller through libm) against
/// [`Precision::Fast`] (blocked Box–Muller through the `fastmath` kernels). Here
/// `seed_ms` is the seed-exact tier and `streaming_ms` the fast tier, so `speedup` is
/// the exact→fast ratio the release gate (`fastmath_speed_gate`) asserts on.
fn bench_full_application_fast_tier(c: &mut Criterion, rows: &mut Vec<SimBenchRow>) {
    let exact = Platform::odroid_xu3();
    let fast = Platform::odroid_xu3().with_precision(Precision::Fast);
    let app = probe_app(1000);
    let decision = DrmDecision {
        big_cores: 4,
        little_cores: 4,
        big_freq_mhz: 1800,
        little_freq_mhz: 1200,
    };
    let exact_time = c.bench_timed("full_application_1000_fast_tier/seed_exact", |b| {
        b.iter(|| {
            let mut controller = FixedController(decision);
            exact
                .run_application_with(&app, &mut controller, 7, &mut DiscardEpochs)
                .unwrap()
        })
    });
    let fast_time = c.bench_timed("full_application_1000_fast_tier/fast", |b| {
        b.iter(|| {
            let mut controller = FixedController(decision);
            fast.run_application_with(&app, &mut controller, 7, &mut DiscardEpochs)
                .unwrap()
        })
    });
    rows.push(row(
        "full_application_1000_fast_tier",
        exact_time,
        fast_time,
    ));
}

fn bench_evaluate_batch16(c: &mut Criterion, rows: &mut Vec<SimBenchRow>) {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
    let dim = evaluator.parameter_dim();
    let thetas: Vec<Vec<f64>> = (0..16).map(|i| vec![-0.75 + 0.1 * i as f64; dim]).collect();

    // The seed evaluation: decode a fresh policy per θ, run the materializing seed loop,
    // extract objectives from the full summary.
    let platform = Platform::odroid_xu3();
    let app = Benchmark::Qsort.application();
    let objectives = Objective::TIME_ENERGY.to_vec();
    let seed = c.bench_timed("evaluate_batch16/seed_path", |b| {
        b.iter(|| {
            thetas
                .iter()
                .map(|theta| {
                    let mut policy = DrmPolicy::from_flat_parameters(
                        platform.spec().decision_space(),
                        evaluator.architecture(),
                        theta,
                    );
                    let summary =
                        seedpath::run_application_seed(&platform, &app, &mut policy, 17).unwrap();
                    objective_vector(&objectives, &summary)
                })
                .collect::<Vec<_>>()
        })
    });
    let streaming = c.bench_timed("evaluate_batch16/streaming_scratch", |b| {
        b.iter(|| evaluator.evaluate_batch(&thetas).unwrap())
    });
    rows.push(row("evaluate_batch16", seed, streaming));
}

fn bench_scenario_matrix_row(c: &mut Criterion, rows: &mut Vec<SimBenchRow>) {
    let scenario = scenario::by_name("odroid-qsort-baseline").expect("registered scenario");
    let platform = scenario.platform();
    let app = scenario.application().expect("buildable workload");
    let seed = c.bench_timed("scenario_matrix_row/seed_path", |b| {
        b.iter(|| {
            let mut cells = Vec::new();
            for mut governor in soc_sim::governor::default_governors(platform.spec()) {
                let run =
                    seedpath::run_application_seed(&platform, &app, &mut governor, 0).unwrap();
                cells.push((
                    run.execution_time_s,
                    run.energy_j,
                    run.peak_temperature_c,
                    scenario.constraints.penalty(&run),
                ));
            }
            cells
        })
    });
    // Same prebuilt platform/app as the seed comparator (constructing a Platform builds its
    // decision table, which would otherwise dominate this row and hide the per-epoch win).
    let streaming = c.bench_timed("scenario_matrix_row/streaming", |b| {
        b.iter(|| {
            let mut cells = Vec::new();
            for mut governor in soc_sim::governor::default_governors(platform.spec()) {
                let run = platform
                    .run_application_with(&app, &mut governor, 0, &mut DiscardEpochs)
                    .unwrap();
                cells.push((
                    run.execution_time_s,
                    run.energy_j,
                    run.peak_temperature_c,
                    scenario.constraints.penalty_from_metrics(
                        run.execution_time_s,
                        run.average_power_w,
                        run.peak_temperature_c,
                    ),
                ));
            }
            cells
        })
    });
    rows.push(row("scenario_matrix_row", seed, streaming));
}

fn main() {
    let quick = std::env::var("PARMIS_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick");
    let mut criterion = Criterion::default().sample_size(if quick { 4 } else { 10 });

    print_header(
        "BENCH_sim",
        "streaming/table-driven simulation engine vs the seed epoch loop",
    );
    assert_allocations_stay_flat(&Platform::odroid_xu3());
    // The fast-tier noise pipeline (blocked Box–Muller over a fixed-size buffer) shares
    // the zero-per-epoch-allocation contract with the exact path.
    assert_allocations_stay_flat(&Platform::odroid_xu3().with_precision(Precision::Fast));

    let mut rows = Vec::new();
    bench_epoch_loop(&mut criterion, &mut rows);
    bench_full_application(&mut criterion, &mut rows, &Platform::odroid_xu3(), "", 1000);
    let quiet = Platform::new(soc_sim::platform::SocSpec::new(
        soc_sim::DecisionSpace::exynos5422(),
        soc_sim::perf::PerfModel::default(),
        soc_sim::power::PowerModel::default(),
        0.0,
    ));
    bench_full_application(&mut criterion, &mut rows, &quiet, "_quiet", 1000);
    bench_full_application_fast_tier(&mut criterion, &mut rows);
    bench_evaluate_batch16(&mut criterion, &mut rows);
    bench_scenario_matrix_row(&mut criterion, &mut rows);

    if criterion.is_test_mode() {
        println!("bench_sim smoke: every routine ran once; ratios not measured");
        return;
    }
    println!("name,seed_ms,streaming_ms,speedup");
    for r in &rows {
        println!(
            "{},{},{},{}x",
            r.name,
            fmt(r.seed_ms),
            fmt(r.streaming_ms),
            fmt(r.speedup)
        );
    }
    write_json("BENCH_sim", &rows);
}
