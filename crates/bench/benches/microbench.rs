//! Criterion micro-benchmarks for the computational kernels of the reproduction.
//!
//! These quantify the costs the paper discusses qualitatively: the per-decision policy
//! inference latency (Table II), the per-iteration cost of the PaRMIS machinery (GP fitting,
//! posterior-function sampling, acquisition evaluation, NSGA-II front sampling), the PHV
//! metric itself, and the simulator's epoch/application throughput that every experiment
//! rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gp::kernel::Kernel;
use gp::{GaussianProcess, RffSampler};
use moo::hypervolume::hypervolume;
use moo::nsga2::{Nsga2, Nsga2Config};
use parmis::acquisition::information_gain;
use parmis::evaluation::{ParallelEvaluator, PolicyEvaluator, SocEvaluator};
use parmis::objective::Objective;
use parmis::pareto_sampling::{ParetoFrontSampler, ParetoSamplingConfig};
use policy::drm_policy::{DrmPolicy, PolicyArchitecture};
use policy::features::policy_features;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soc_sim::apps::Benchmark;
use soc_sim::config::DrmDecision;
use soc_sim::counters::CounterSnapshot;
use soc_sim::governor::OndemandGovernor;
use soc_sim::platform::Platform;
use soc_sim::DecisionSpace;

fn busy_counters() -> CounterSnapshot {
    CounterSnapshot {
        instructions_retired: 8e7,
        cpu_cycles: 2.4e8,
        branch_mispredictions: 4e5,
        l2_cache_misses: 9e5,
        data_memory_accesses: 2.4e7,
        noncache_external_requests: 7e5,
        little_cluster_utilization_sum: 2.4,
        big_cluster_utilization_per_core: 0.8,
        total_chip_power_w: 4.2,
    }
}

/// Table II: per-decision inference latency of the four-headed MLP policy.
fn bench_policy_inference(c: &mut Criterion) {
    let space = DecisionSpace::exynos5422();
    let policy = DrmPolicy::random(&space, &PolicyArchitecture::paper_default(), 3);
    let features = policy_features(&busy_counters());
    c.bench_function("policy_decision_4_knobs", |b| {
        b.iter(|| std::hint::black_box(policy.decide_indices(std::hint::black_box(&features))))
    });
}

/// Simulator throughput: one epoch and one full application under a governor.
fn bench_simulator(c: &mut Criterion) {
    let platform = Platform::odroid_xu3();
    let app = Benchmark::Qsort.application();
    let decision = DrmDecision {
        big_cores: 2,
        little_cores: 2,
        big_freq_mhz: 1400,
        little_freq_mhz: 1000,
    };
    c.bench_function("soc_sim_single_epoch", |b| {
        b.iter(|| platform.run_epoch(&decision, &app.epochs[0]).unwrap())
    });
    c.bench_function("soc_sim_full_application_ondemand", |b| {
        b.iter(|| {
            let mut governor = OndemandGovernor::new(platform.spec().clone());
            platform.run_application(&app, &mut governor, 0).unwrap()
        })
    });
}

use bench::data::synthetic_gp_data as random_training_data;

/// GP substrate: fitting and posterior prediction at PaRMIS-realistic sizes.
fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp");
    for &n in &[50usize, 150] {
        let (xs, ys) = random_training_data(n, 20, 7);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                GaussianProcess::fit(xs.clone(), ys.clone(), Kernel::matern52(1.0, 8.0), 1e-4)
                    .unwrap()
            })
        });
        let gp =
            GaussianProcess::fit(xs.clone(), ys.clone(), Kernel::matern52(1.0, 8.0), 1e-4).unwrap();
        let query = vec![0.5; 20];
        group.bench_with_input(BenchmarkId::new("predict", n), &n, |b, _| {
            b.iter(|| gp.predict(std::hint::black_box(&query)).unwrap())
        });
    }
    group.finish();
}

/// The incremental-refit engine: appending one observation via the rank-one Cholesky
/// extension (`with_observation`) against the serial baseline of refitting the same `n + 1`
/// points from scratch. The `full_fit/n` vs `incremental/n` ratio is the speedup tracked by
/// `BENCH_gp.json`.
fn bench_gp_incremental_refit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_incremental_refit");
    for &n in &[50usize, 150] {
        let (xs, ys) = random_training_data(n + 1, 20, 7);
        let gp = GaussianProcess::fit(
            xs[..n].to_vec(),
            ys[..n].to_vec(),
            Kernel::matern52(1.0, 8.0),
            1e-4,
        )
        .unwrap();
        let (new_x, new_y) = (xs[n].clone(), ys[n]);
        group.bench_with_input(BenchmarkId::new("full_fit", n), &n, |b, _| {
            b.iter(|| {
                GaussianProcess::fit(xs.clone(), ys.clone(), Kernel::matern52(1.0, 8.0), 1e-4)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                gp.with_observation(std::hint::black_box(new_x.clone()), new_y)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// The batched-prediction engine: scoring a PaRMIS-sized 128-candidate pool with one
/// `predict_batch` blocked solve against the serial baseline of 128 per-point `predict`
/// calls (identical results, see `gp` proptests).
fn bench_predict_batch128(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_batch128");
    for &n in &[50usize, 150] {
        let (xs, ys) = random_training_data(n, 20, 7);
        let gp = GaussianProcess::fit(xs, ys, Kernel::matern52(1.0, 8.0), 1e-4).unwrap();
        let (queries, _) = random_training_data(128, 20, 31);
        group.bench_with_input(BenchmarkId::new("per_point", n), &n, |b, _| {
            b.iter(|| {
                for q in std::hint::black_box(&queries) {
                    std::hint::black_box(gp.predict(q).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| gp.predict_batch(std::hint::black_box(&queries)).unwrap())
        });
    }
    group.finish();
}

/// PaRMIS machinery: RFF posterior sampling, NSGA-II front sampling and acquisition scoring.
fn bench_parmis_kernels(c: &mut Criterion) {
    let dim = 20;
    let (xs, ys) = random_training_data(60, dim, 11);
    let (xs2, ys2) = random_training_data(60, dim, 13);
    let models = vec![
        GaussianProcess::fit(xs, ys, Kernel::matern52(1.0, 8.0), 1e-4).unwrap(),
        GaussianProcess::fit(xs2, ys2, Kernel::matern52(1.0, 8.0), 1e-4).unwrap(),
    ];

    c.bench_function("rff_posterior_sample", |b| {
        let sampler = RffSampler::new(&models[0], 150, 3).unwrap();
        b.iter(|| sampler.sample(7).unwrap())
    });

    let sampling_config = ParetoSamplingConfig {
        rff_features: 100,
        nsga_population: 24,
        nsga_generations: 10,
    };
    c.bench_function("pareto_front_sample_rff_nsga2", |b| {
        let sampler = ParetoFrontSampler::new(&models, 3.0, sampling_config.clone(), 5).unwrap();
        b.iter(|| sampler.sample(3).unwrap())
    });

    let sampler = ParetoFrontSampler::new(&models, 3.0, sampling_config, 5).unwrap();
    let samples = vec![sampler.sample(1).unwrap()];
    let theta = vec![0.3; dim];
    c.bench_function("acquisition_information_gain", |b| {
        b.iter(|| information_gain(std::hint::black_box(&theta), &models, &samples).unwrap())
    });
}

/// The batched evaluation engine: a fixed 16-candidate batch through the serial default
/// `evaluate_batch` vs. `ParallelEvaluator` at 2 and 4 workers. The `threads` parameter in
/// the benchmark id is what future PRs track for speedup regressions in `BENCH_*.json`; on a
/// ≥ 4-core machine `parallel/4` should run at least 2× faster than `serial/1`.
fn bench_batch_evaluation(c: &mut Criterion) {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
    let dim = evaluator.parameter_dim();
    let mut rng = StdRng::seed_from_u64(29);
    let thetas: Vec<Vec<f64>> = (0..16)
        .map(|_| (0..dim).map(|_| rng.gen_range(-0.8..0.8)).collect())
        .collect();

    let mut group = c.benchmark_group("policy_evaluation_batch16");
    group.bench_with_input(BenchmarkId::new("serial", 1), &1usize, |b, _| {
        b.iter(|| {
            evaluator
                .evaluate_batch(std::hint::black_box(&thetas))
                .unwrap()
        })
    });
    for &workers in &[2usize, 4] {
        let parallel = ParallelEvaluator::new(evaluator.clone(), workers);
        group.bench_with_input(BenchmarkId::new("parallel", workers), &workers, |b, _| {
            b.iter(|| {
                parallel
                    .evaluate_batch(std::hint::black_box(&thetas))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Multi-objective substrate: PHV and NSGA-II on a standard problem.
fn bench_moo(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let points_2d: Vec<Vec<f64>> = (0..200)
        .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
        .collect();
    c.bench_function("hypervolume_2d_200_points", |b| {
        b.iter(|| hypervolume(points_2d.clone(), &[1.1, 1.1]))
    });
    let points_3d: Vec<Vec<f64>> = (0..60)
        .map(|_| {
            vec![
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ]
        })
        .collect();
    c.bench_function("hypervolume_3d_60_points", |b| {
        b.iter(|| hypervolume(points_3d.clone(), &[1.1, 1.1, 1.1]))
    });
    // A 50-point mutually non-dominated 3-D front (points on a constant-sum simplex), the
    // worst case for the recursive slicer's active-set maintenance.
    let front_3d: Vec<Vec<f64>> = (0..50)
        .map(|_| {
            let x = rng.gen_range(0.0..1.0);
            let y = rng.gen_range(0.0..1.0);
            vec![x, y, 2.5 - x - y]
        })
        .collect();
    c.bench_function("hypervolume_3d_front50", |b| {
        b.iter(|| hypervolume(front_3d.clone(), &[3.0, 3.0, 3.0]))
    });

    c.bench_function("nsga2_zdt1_dim6", |b| {
        let config = Nsga2Config {
            population_size: 40,
            generations: 20,
            ..Default::default()
        };
        b.iter(|| {
            let solver = Nsga2::new(vec![0.0; 6], vec![1.0; 6], config.clone()).unwrap();
            solver.run(|x| {
                let f1 = x[0];
                let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / 5.0;
                vec![f1, g * (1.0 - (f1 / g).sqrt())]
            })
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_policy_inference, bench_simulator, bench_gp, bench_gp_incremental_refit,
        bench_predict_batch128, bench_parmis_kernels, bench_batch_evaluation, bench_moo
}
criterion_main!(benches);
