//! Corruption-matrix regression suite: every way a checkpoint artifact can rot on disk
//! — truncation, bit flips, version skew, digest/field tampering — must surface as a
//! distinct structured [`ParmisError::Checkpoint`] fault, and **never** a panic. The
//! same matrix is replayed through the durable store, which must quarantine the corrupt
//! generation (with a reason side-car) and fall back to the newest valid predecessor.

use parmis::checkpoint::SearchState;
use parmis::evaluation::PolicyEvaluator;
use parmis::framework::{Parmis, ParmisConfig};
use parmis::jobs::CheckpointStore;
use parmis::objective::Objective;
use parmis::{CheckpointFault, ParmisError, Result};
use std::path::PathBuf;

/// Cheap synthetic evaluator so a real mid-search checkpoint is fast to produce.
struct SyntheticEvaluator {
    objectives: Vec<Objective>,
}

impl SyntheticEvaluator {
    fn new() -> Self {
        SyntheticEvaluator {
            objectives: vec![Objective::ExecutionTime, Objective::Energy],
        }
    }
}

impl PolicyEvaluator for SyntheticEvaluator {
    fn parameter_dim(&self) -> usize {
        2
    }

    fn parameter_bound(&self) -> f64 {
        1.5
    }

    fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        let spread = 0.1 * theta[1].powi(2);
        Ok(vec![
            theta[0].powi(2) + spread + 1.0,
            (theta[0] - 1.0).powi(2) + spread + 1.0,
        ])
    }
}

fn tiny_config(seed: u64) -> ParmisConfig {
    ParmisConfig {
        max_iterations: 12,
        initial_samples: 4,
        num_pareto_samples: 1,
        sampling: parmis::pareto_sampling::ParetoSamplingConfig {
            rff_features: 16,
            nsga_population: 8,
            nsga_generations: 3,
        },
        acquisition: parmis::acquisition::AcquisitionOptimizerConfig {
            random_candidates: 6,
            local_candidates: 2,
            local_perturbation: 0.2,
        },
        refit_hyperparameters_every: 4,
        batch_size: 2,
        seed,
        ..ParmisConfig::default()
    }
}

/// A real checkpoint captured from a fuel-suspended search (not a hand-built fixture).
fn real_checkpoint(seed: u64) -> (SearchState, String) {
    let config = ParmisConfig {
        max_fuel: 8,
        ..tiny_config(seed)
    };
    let state = Parmis::new(config)
        .run_resumable(&SyntheticEvaluator::new())
        .expect("tiny run")
        .into_suspended()
        .expect("fuel suspends before completion");
    let json = state.to_json().expect("serialize");
    (state, json)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parmis-corruption-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts the parse attempt survived: either a structured checkpoint fault, or (for a
/// benign mutation, e.g. a whitespace flip) a state identical to the original.
fn assert_survives(original: &SearchState, mutated: &str, label: &str) -> Option<CheckpointFault> {
    let attempt = std::panic::catch_unwind(|| SearchState::from_json(mutated));
    let result = attempt.unwrap_or_else(|_| panic!("{label}: from_json panicked"));
    match result {
        Ok(state) => {
            assert_eq!(&state, original, "{label}: silent semantic change accepted");
            None
        }
        Err(e) => {
            let fault = e.checkpoint_fault();
            assert!(
                fault.is_some(),
                "{label}: checkpoint failure must carry a structured fault, got {e}"
            );
            fault
        }
    }
}

#[test]
fn truncation_at_every_depth_is_a_parse_fault() {
    let (state, json) = real_checkpoint(3);
    for percent in [0, 10, 25, 50, 75, 90, 99] {
        let cut = json.len() * percent / 100;
        let fault = assert_survives(&state, &json[..cut], &format!("truncate@{percent}%"));
        assert_eq!(
            fault,
            Some(CheckpointFault::Parse),
            "truncate@{percent}%: truncation must classify as a parse fault"
        );
    }
}

#[test]
fn bit_flips_at_every_offset_stride_never_panic_or_pass_silently() {
    let (state, json) = real_checkpoint(5);
    let bytes = json.as_bytes();
    // Flip one bit every 7 bytes — several hundred distinct corruptions across every
    // region of the document (metadata, history, hashes, digests).
    for offset in (0..bytes.len()).step_by(7) {
        for bit in [0u8, 3, 6] {
            let mut corrupt = bytes.to_vec();
            corrupt[offset] ^= 1 << bit;
            let Ok(text) = String::from_utf8(corrupt) else {
                continue; // non-UTF8 never reaches from_json (read_to_string rejects it)
            };
            assert_survives(&state, &text, &format!("flip@{offset}:{bit}"));
        }
    }
}

#[test]
fn targeted_tampering_yields_distinct_fault_classes() {
    let (state, json) = real_checkpoint(7);

    let bumped = json.replace("\"format_version\": 1", "\"format_version\": 2");
    assert_ne!(bumped, json);
    assert_eq!(
        assert_survives(&state, &bumped, "version bump"),
        Some(CheckpointFault::VersionMismatch)
    );

    let recorded = format!("\"state_digest\": {}", state.state_digest);
    let tampered = json.replace(&recorded, "\"state_digest\": 1");
    assert_ne!(tampered, json);
    assert_eq!(
        assert_survives(&state, &tampered, "state digest"),
        Some(CheckpointFault::DigestMismatch)
    );

    // Rewriting one recorded trace-hash link breaks the chain before the digest check.
    let link = state.trace_hashes[state.trace_hashes.len() / 2];
    let tampered = json.replacen(&link.to_string(), "1", 1);
    assert_ne!(tampered, json);
    assert_eq!(
        assert_survives(&state, &tampered, "trace link"),
        Some(CheckpointFault::TraceHashBreak)
    );

    // Editing an observed value without re-folding the chain is also a chain break.
    let mut edited: SearchState = state.clone();
    edited.history[0].objectives[0] += 0.25;
    let tampered = edited.to_json().expect("serialize");
    assert_eq!(
        assert_survives(&state, &tampered, "history value"),
        Some(CheckpointFault::TraceHashBreak)
    );

    // Malformed RNG state is a shape invariant.
    let mut edited = state.clone();
    edited.rng_state.pop();
    let tampered = edited.to_json().expect("serialize");
    assert_eq!(
        assert_survives(&state, &tampered, "rng shape"),
        Some(CheckpointFault::Invariant)
    );

    // Misaligned next_iteration is a shape invariant too.
    let mut edited = state.clone();
    edited.next_iteration += 1;
    let tampered = edited.to_json().expect("serialize");
    assert_eq!(
        assert_survives(&state, &tampered, "next_iteration"),
        Some(CheckpointFault::Invariant)
    );

    for garbage in ["", "{}", "null", "[1,2,3]", "{\"format_version\": 1}"] {
        assert_eq!(
            assert_survives(&state, garbage, "garbage"),
            Some(CheckpointFault::Parse),
            "garbage `{garbage}`"
        );
    }
}

/// The durable store replays the matrix at the directory level: a corrupt newest
/// generation is quarantined (side-car naming the fault) and the load falls back to the
/// newest valid predecessor; when every generation is corrupt the job reports a clean
/// "nothing survives" outcome instead of an error or a panic.
#[test]
fn store_quarantines_matrix_corruptions_and_falls_back() {
    let (state, json) = real_checkpoint(9);
    let mutations: Vec<(&str, String)> = vec![
        ("truncated", json[..json.len() / 3].to_string()),
        ("garbage", "{not json".to_string()),
        (
            "version",
            json.replace("\"format_version\": 1", "\"format_version\": 2"),
        ),
        (
            "digest",
            json.replace(
                &format!("\"state_digest\": {}", state.state_digest),
                "\"state_digest\": 1",
            ),
        ),
    ];
    for (label, mutated) in mutations {
        assert_ne!(mutated, json, "{label}: mutation must change the document");
        let dir = temp_dir(&format!("store-{label}"));
        let store = CheckpointStore::open(&dir, 4).expect("open");
        store.save("job", &state).expect("save generation 1");
        store.save("job", &state).expect("save generation 2");
        let newest = store
            .generations("job")
            .expect("list")
            .pop()
            .expect("two generations")
            .1;
        std::fs::write(&newest, &mutated).expect("corrupt newest in place");

        let outcome = store.load_latest("job").expect("load never errors on rot");
        let (seq, survivor) = outcome.state.expect("predecessor survives");
        assert_eq!(seq, 1, "{label}: fell back to the first generation");
        assert_eq!(survivor, state, "{label}: survivor is bit-identical");
        assert_eq!(outcome.quarantined.len(), 1, "{label}");
        assert_eq!(
            store.quarantined_files().expect("scan").len(),
            1,
            "{label}: corrupt generation moved aside"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Direct `resume` of a tampered state is rejected with a structured error before any
/// evaluation happens — the search engine can't be tricked into running on rot.
#[test]
fn resume_rejects_tampered_state_with_structured_error() {
    let (state, _) = real_checkpoint(11);
    let mut tampered = state;
    tampered.history[1].theta[0] += 1.0;
    let err = Parmis::new(tiny_config(11))
        .resume(tampered, &SyntheticEvaluator::new())
        .expect_err("tampered state must be rejected");
    assert!(matches!(err, ParmisError::Checkpoint { .. }), "got {err}");
    assert_eq!(
        err.checkpoint_fault(),
        Some(CheckpointFault::TraceHashBreak)
    );
}
