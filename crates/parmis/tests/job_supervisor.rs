//! Supervised-fleet equivalence suite: a [`JobSupervisor`] driving N concurrent
//! searches as fuel-bounded segments — through crashes, watchdog suspensions, injected
//! backend faults and corrupt checkpoint generations — must finish every job with a
//! final front **bit-identical** to an uninterrupted [`Parmis::run`] of the same
//! configuration, for every worker count.

use parmis::backend::{AnalyticSim, FaultInject, FaultKind};
use parmis::cancel::CancelReason;
use parmis::checkpoint::config_digest;
use parmis::evaluation::{PolicyEvaluator, RetryPolicy, SocEvaluator};
use parmis::framework::{Parmis, ParmisConfig, ParmisOutcome};
use parmis::jobs::{
    atomic_write, outcome_digest, CheckpointStore, JobEntry, JobJournal, JobPhase, JobSpec,
    JobSupervisor, SupervisorConfig, JOURNAL_FILE,
};
use parmis::objective::Objective;
use parmis::Result;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cheap synthetic evaluator (no SoC simulator) for the fleet-scale tests.
struct SyntheticEvaluator {
    objectives: Vec<Objective>,
}

impl SyntheticEvaluator {
    fn new() -> Self {
        SyntheticEvaluator {
            objectives: vec![Objective::ExecutionTime, Objective::Energy],
        }
    }
}

impl PolicyEvaluator for SyntheticEvaluator {
    fn parameter_dim(&self) -> usize {
        2
    }

    fn parameter_bound(&self) -> f64 {
        1.5
    }

    fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        let spread = 0.1 * theta[1].powi(2);
        Ok(vec![
            theta[0].powi(2) + spread + 1.0,
            (theta[0] - 1.0).powi(2) + spread + 1.0,
        ])
    }
}

fn tiny_config(seed: u64, max_iterations: usize) -> ParmisConfig {
    ParmisConfig {
        max_iterations,
        initial_samples: 4,
        num_pareto_samples: 1,
        sampling: parmis::pareto_sampling::ParetoSamplingConfig {
            rff_features: 16,
            nsga_population: 8,
            nsga_generations: 3,
        },
        acquisition: parmis::acquisition::AcquisitionOptimizerConfig {
            random_candidates: 6,
            local_candidates: 2,
            local_perturbation: 0.2,
        },
        refit_hyperparameters_every: 4,
        batch_size: 2,
        seed,
        ..ParmisConfig::default()
    }
}

fn fleet_specs(n: u64, max_iterations: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|i| JobSpec::new(format!("job-{i}"), tiny_config(3 + 2 * i, max_iterations)))
        .collect()
}

fn reference_outcome(config: &ParmisConfig) -> ParmisOutcome {
    Parmis::new(config.clone())
        .run(&SyntheticEvaluator::new())
        .expect("uninterrupted reference run")
}

fn synthetic_factory(_spec: &JobSpec) -> Result<Box<dyn PolicyEvaluator>> {
    Ok(Box::new(SyntheticEvaluator::new()))
}

/// [`SyntheticEvaluator`] with a fixed wall-clock cost per evaluation: sleeping changes
/// nothing about the trajectory, but guarantees a small `segment_wall_ms` budget is
/// exceeded by the first checkpoint boundary even in release builds.
struct SlowEvaluator {
    inner: SyntheticEvaluator,
    per_eval: std::time::Duration,
}

impl PolicyEvaluator for SlowEvaluator {
    fn parameter_dim(&self) -> usize {
        self.inner.parameter_dim()
    }

    fn parameter_bound(&self) -> f64 {
        self.inner.parameter_bound()
    }

    fn objectives(&self) -> &[Objective] {
        self.inner.objectives()
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        std::thread::sleep(self.per_eval);
        self.inner.evaluate(theta)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parmis-jobs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fleet of 4 searches, segmented by fuel and scheduled over worker pools of 1, 2 and
/// 4 slots, finishes with per-job fronts and trace chains bit-identical to the four
/// uninterrupted runs — worker count and segmentation trade wall-clock only.
#[test]
fn fleet_outcomes_bit_identical_across_worker_counts() {
    let specs = fleet_specs(4, 10);
    let references: Vec<ParmisOutcome> =
        specs.iter().map(|s| reference_outcome(&s.config)).collect();

    for workers in [1usize, 2, 4] {
        let dir = temp_dir(&format!("fleet-w{workers}"));
        let config = SupervisorConfig {
            workers,
            segment_fuel: 4,
            checkpoint_every: 2,
            ..SupervisorConfig::default()
        };
        let mut supervisor = JobSupervisor::open(&dir, config).expect("open");
        let report = supervisor
            .run(&specs, synthetic_factory)
            .expect("fleet run");
        assert!(report.all_done(), "{workers} workers: {report:?}");
        for (spec, reference) in specs.iter().zip(&references) {
            let job = report.job(&spec.id).expect("reported");
            assert!(job.segments > 1, "{}: fuel must segment the run", spec.id);
            assert_eq!(
                job.outcome_digest,
                Some(outcome_digest(reference)),
                "{workers} workers, {}: fleet digest diverged from the uninterrupted run",
                spec.id
            );
            let outcome = job.outcome.as_ref().expect("driven to completion here");
            assert_eq!(outcome.trace_hashes, reference.trace_hashes, "{}", spec.id);
            assert_eq!(
                outcome.front.objective_values(),
                reference.front.objective_values(),
                "{}",
                spec.id
            );
            assert_eq!(outcome.phv_history, reference.phv_history, "{}", spec.id);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash recovery: a journal left with `Running` entries (the crash marker) — one job
/// with a mid-search checkpoint, one killed before its first checkpoint — is repaired
/// on open and both jobs finish bit-identical to uninterrupted runs.
#[test]
fn interrupted_jobs_resume_bit_identically_after_simulated_crash() {
    let dir = temp_dir("crash");
    let specs = fleet_specs(2, 10);
    let references: Vec<ParmisOutcome> =
        specs.iter().map(|s| reference_outcome(&s.config)).collect();

    // Fabricate the exact on-disk residue of a SIGKILL mid-wave: job-0 suspended a real
    // fuel-bounded segment into the store, job-1 never checkpointed; the journal records
    // both as Running.
    {
        let store = CheckpointStore::open(&dir, 3).expect("open store");
        let segment_config = ParmisConfig {
            max_fuel: 4,
            ..specs[0].config.clone()
        };
        let state = Parmis::new(segment_config)
            .run_resumable(&SyntheticEvaluator::new())
            .expect("segment")
            .into_suspended()
            .expect("fuel suspends");
        let seq = store.save(&specs[0].id, &state).expect("persist");

        let mut journal = JobJournal::new();
        let mut interrupted = JobEntry::pending(&specs[0].id, config_digest(&specs[0].config));
        interrupted.transition(JobPhase::Running).expect("legal");
        interrupted.segments = 1;
        interrupted.checkpoint_seq = Some(seq);
        interrupted.evaluations = state.evaluations();
        interrupted.last_trace_hash = state.last_trace_hash();
        journal.insert(interrupted).expect("insert");
        let mut fresh = JobEntry::pending(&specs[1].id, config_digest(&specs[1].config));
        fresh.transition(JobPhase::Running).expect("legal");
        fresh.segments = 1;
        journal.insert(fresh).expect("insert");
        atomic_write(
            &dir.join(JOURNAL_FILE),
            journal.to_json().expect("serialize").as_bytes(),
        )
        .expect("persist journal");
    }

    let config = SupervisorConfig {
        workers: 2,
        segment_fuel: 4,
        checkpoint_every: 2,
        ..SupervisorConfig::default()
    };
    let mut supervisor = JobSupervisor::open(&dir, config).expect("recovery open");
    let recovered: Vec<&str> = supervisor
        .recovery()
        .interrupted
        .iter()
        .map(String::as_str)
        .collect();
    assert_eq!(recovered, vec!["job-0", "job-1"]);
    assert_eq!(supervisor.jobs()[0].phase, JobPhase::Suspended);
    assert_eq!(supervisor.jobs()[1].phase, JobPhase::Pending);

    let report = supervisor
        .run(&specs, synthetic_factory)
        .expect("fleet run");
    assert!(report.all_done(), "{report:?}");
    for (spec, reference) in specs.iter().zip(&references) {
        let job = report.job(&spec.id).expect("reported");
        assert_eq!(
            job.outcome_digest,
            Some(outcome_digest(reference)),
            "{}: recovery diverged from the uninterrupted run",
            spec.id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The per-segment wall-clock watchdog suspends over-budget segments at their next
/// checkpoint boundary and reschedules them; the job still completes with an
/// uninterrupted-identical front — supervision affects scheduling, never trajectories.
#[test]
fn watchdog_suspension_reschedules_without_changing_the_trajectory() {
    let spec = JobSpec::new("watched", tiny_config(21, 8));
    let reference = reference_outcome(&spec.config);

    let dir = temp_dir("watchdog");
    let config = SupervisorConfig {
        workers: 1,
        segment_fuel: 0, // unlimited fuel: only the watchdog can suspend
        checkpoint_every: 2,
        segment_wall_ms: 1, // over budget at every checkpoint boundary (evals sleep 2 ms)
        ..SupervisorConfig::default()
    };
    let mut supervisor = JobSupervisor::open(&dir, config).expect("open");
    let report = supervisor
        .run(std::slice::from_ref(&spec), |_spec| {
            Ok(Box::new(SlowEvaluator {
                inner: SyntheticEvaluator::new(),
                per_eval: std::time::Duration::from_millis(2),
            }))
        })
        .expect("run");
    let job = report.job("watched").expect("reported");
    assert_eq!(job.phase, JobPhase::Done);
    assert!(
        job.segments > 1,
        "a 1 ms budget must force at least one watchdog suspension (got {} segments)",
        job.segments
    );
    assert_eq!(job.outcome_digest, Some(outcome_digest(&reference)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Injected backend faults (structured error, contained panic, latency spike) during
/// supervised segments are absorbed by the retry policy; the resumed trajectory — and
/// the final front — stay bit-identical to a fault-free uninterrupted run, and the
/// deterministic backoff ledger records the retries.
#[test]
fn fault_injected_segments_stay_bit_identical_under_retries() {
    let config = ParmisConfig {
        max_iterations: 11,
        initial_samples: 5,
        seed: 41,
        ..tiny_config(41, 11)
    };
    let objectives = vec![Objective::ExecutionTime, Objective::Energy];
    let clean = SocEvaluator::for_benchmark(soc_sim::apps::Benchmark::Qsort, objectives.clone());
    let reference = Parmis::new(config.clone())
        .run(&clean)
        .expect("fault-free reference");

    let dir = temp_dir("faults");
    let supervisor_config = SupervisorConfig {
        workers: 1,
        segment_fuel: 4,
        checkpoint_every: 2,
        ..SupervisorConfig::default()
    };
    let mut supervisor = JobSupervisor::open(&dir, supervisor_config).expect("open");
    let stats_handles = Mutex::new(Vec::new());
    let spec = JobSpec::new("faulty", config);
    let report = supervisor
        .run(std::slice::from_ref(&spec), |_spec| {
            // Every segment gets a fresh evaluator whose backend faults early in the
            // segment: a structured error, then a latency spike, then a contained panic.
            let backend = FaultInject::new(Arc::new(AnalyticSim::new()))
                .fault_on(1, FaultKind::Error)
                .fault_on(2, FaultKind::LatencySpike { micros: 200 })
                .fault_on(3, FaultKind::Panic);
            let evaluator = SocEvaluator::for_benchmark(
                soc_sim::apps::Benchmark::Qsort,
                vec![Objective::ExecutionTime, Objective::Energy],
            )
            .with_backend(Arc::new(backend))
            .with_retry_policy(RetryPolicy::retries(1).backoff_base_micros(50));
            stats_handles
                .lock()
                .expect("handles")
                .push(evaluator.retry_stats());
            Ok(Box::new(evaluator))
        })
        .expect("run");
    let job = report.job("faulty").expect("reported");
    assert_eq!(job.phase, JobPhase::Done, "note: {:?}", job.note);
    assert!(job.segments > 1, "fuel must segment the run");
    assert_eq!(
        job.outcome_digest,
        Some(outcome_digest(&reference)),
        "injected faults must not perturb the trajectory"
    );
    let handles = stats_handles.into_inner().expect("handles");
    let retries: usize = handles.iter().map(|s| s.retries()).sum();
    let panics: usize = handles.iter().map(|s| s.contained_panics()).sum();
    let backoff: u64 = handles.iter().map(|s| s.backoff_micros()).sum();
    assert!(
        retries >= 2,
        "scheduled faults must exercise the retry path"
    );
    assert!(panics >= 1, "the panic fault must be contained, not fatal");
    assert_eq!(backoff, 50 * retries as u64, "ledger: base << 0 per retry");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt newest checkpoint generation discovered on restart is quarantined; the
/// supervisor falls back to the predecessor generation and still converges to the
/// uninterrupted digest (re-doing at most one cadence window of evaluations).
#[test]
fn corrupt_newest_generation_falls_back_and_still_converges() {
    let dir = temp_dir("rot");
    let spec = JobSpec::new("rotted", tiny_config(33, 10));
    let reference = reference_outcome(&spec.config);

    // Two real generations (4 and 8 evaluations), newest corrupted on disk, journal
    // suspended at the newest.
    {
        let store = CheckpointStore::open(&dir, 3).expect("open store");
        let segment = |fuel: usize| ParmisConfig {
            max_fuel: fuel,
            ..spec.config.clone()
        };
        let first = Parmis::new(segment(4))
            .run_resumable(&SyntheticEvaluator::new())
            .expect("segment 1")
            .into_suspended()
            .expect("suspends");
        store.save(&spec.id, &first).expect("gen 1");
        let second = Parmis::new(segment(4))
            .resume(first, &SyntheticEvaluator::new())
            .expect("segment 2")
            .into_suspended()
            .expect("suspends");
        let seq = store.save(&spec.id, &second).expect("gen 2");

        let newest = store
            .generations(&spec.id)
            .expect("list")
            .pop()
            .expect("two generations")
            .1;
        let text = std::fs::read_to_string(&newest).expect("read");
        std::fs::write(&newest, &text[..text.len() / 2]).expect("truncate newest");

        let mut journal = JobJournal::new();
        let mut entry = JobEntry::pending(&spec.id, config_digest(&spec.config));
        entry.transition(JobPhase::Running).expect("legal");
        entry.segments = 2;
        entry.checkpoint_seq = Some(seq);
        entry.evaluations = second.evaluations();
        entry.last_trace_hash = second.last_trace_hash();
        entry.transition(JobPhase::Suspended).expect("legal");
        journal.insert(entry).expect("insert");
        atomic_write(
            &dir.join(JOURNAL_FILE),
            journal.to_json().expect("serialize").as_bytes(),
        )
        .expect("persist journal");
    }

    let config = SupervisorConfig {
        workers: 1,
        segment_fuel: 4,
        checkpoint_every: 2,
        ..SupervisorConfig::default()
    };
    let mut supervisor = JobSupervisor::open(&dir, config).expect("recovery open");
    assert!(
        !supervisor.recovery().quarantined.is_empty(),
        "the corrupt generation must be quarantined during the open scan"
    );
    let entry = supervisor.jobs()[0].clone();
    assert_eq!(entry.phase, JobPhase::Suspended);
    assert_eq!(entry.checkpoint_seq, Some(1), "fell back to generation 1");
    assert_eq!(entry.evaluations, 4, "predecessor had 4 evaluations");

    let report = supervisor
        .run(std::slice::from_ref(&spec), synthetic_factory)
        .expect("run");
    let job = report.job(&spec.id).expect("reported");
    assert_eq!(job.phase, JobPhase::Done);
    assert_eq!(
        job.outcome_digest,
        Some(outcome_digest(&reference)),
        "fallback resume must still converge to the uninterrupted digest"
    );
    assert_eq!(
        supervisor.store().quarantined_files().expect("scan").len(),
        1
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain mid-run: tripping the drain source suspends the in-flight segment at
/// its next iteration boundary, parks everything else, flushes the journal and returns
/// early with only resumable phases; a later run over the same store finishes the whole
/// fleet bit-identical to uninterrupted references.
#[test]
fn requested_drain_suspends_cleanly_and_resumes_bit_identically() {
    let dir = temp_dir("drain");
    let specs = fleet_specs(3, 10);
    let references: Vec<ParmisOutcome> =
        specs.iter().map(|s| reference_outcome(&s.config)).collect();

    let config = SupervisorConfig {
        workers: 1,
        segment_fuel: 4,
        checkpoint_every: 2,
        ..SupervisorConfig::default()
    };
    let mut supervisor = JobSupervisor::open(&dir, config.clone()).expect("open");
    let drain = supervisor.drain_source();
    let segments_started = AtomicUsize::new(0);
    let report = supervisor
        .run(&specs, |_spec| {
            // With one worker the first three segments belong to the three jobs; the
            // fourth (job-0 resuming) finds the fleet draining before its first round
            // and suspends without recomputing anything.
            if segments_started.fetch_add(1, Ordering::SeqCst) + 1 == 4 {
                drain.cancel(CancelReason::User);
            }
            Ok(Box::new(SyntheticEvaluator::new()))
        })
        .expect("drained run");
    assert!(!report.all_done(), "{report:?}");
    assert!(report.any_resumable(), "{report:?}");
    for spec in &specs {
        let job = report.job(&spec.id).expect("reported");
        assert!(
            matches!(job.phase, JobPhase::Suspended | JobPhase::Pending),
            "{}: a drain must leave only resumable phases, got {:?}",
            spec.id,
            job.phase
        );
    }
    let drained = report.job("job-0").expect("reported");
    assert!(
        drained.note.as_deref().unwrap_or("").contains("[user]"),
        "the drained segment's journal note must carry the root cause, got {:?}",
        drained.note
    );

    // A fresh supervisor (fresh drain source) over the same store finishes the fleet.
    drop(supervisor);
    let mut resumed = JobSupervisor::open(&dir, config).expect("reopen");
    let report = resumed.run(&specs, synthetic_factory).expect("final run");
    assert!(report.all_done(), "{report:?}");
    for (spec, reference) in specs.iter().zip(&references) {
        assert_eq!(
            report.job(&spec.id).expect("reported").outcome_digest,
            Some(outcome_digest(reference)),
            "{}: drain + resume diverged from the uninterrupted run",
            spec.id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An expired fleet deadline drains the run early — in-flight segments suspend at the
/// next iteration boundary with the deadline recorded as the cause, nothing is killed or
/// quarantined — and a later run without the budget completes bit-identically.
#[test]
fn fleet_deadline_drains_early_and_a_later_run_completes() {
    let dir = temp_dir("fleet-deadline");
    let specs = fleet_specs(2, 10);
    let references: Vec<ParmisOutcome> =
        specs.iter().map(|s| reference_outcome(&s.config)).collect();

    let slow_factory = |_spec: &JobSpec| -> Result<Box<dyn PolicyEvaluator>> {
        Ok(Box::new(SlowEvaluator {
            inner: SyntheticEvaluator::new(),
            per_eval: std::time::Duration::from_millis(3),
        }))
    };
    let mut supervisor = JobSupervisor::open(
        &dir,
        SupervisorConfig {
            workers: 1,
            segment_fuel: 4,
            checkpoint_every: 2,
            // Two jobs x 10 evaluations x 3 ms/eval needs ~60 ms minimum: a 25 ms fleet
            // budget must expire with resumable work left over.
            fleet_deadline_ms: 25,
            ..SupervisorConfig::default()
        },
    )
    .expect("open");
    let report = supervisor.run(&specs, slow_factory).expect("drained run");
    assert!(!report.all_done(), "{report:?}");
    assert!(report.any_resumable(), "{report:?}");
    for spec in &specs {
        let job = report.job(&spec.id).expect("reported");
        assert!(
            matches!(job.phase, JobPhase::Suspended | JobPhase::Pending),
            "{}: got {:?}",
            spec.id,
            job.phase
        );
        if let Some(note) = &job.note {
            assert!(note.contains("[deadline]"), "{}: note {note:?}", spec.id);
        }
    }

    let mut resumed = JobSupervisor::open(
        &dir,
        SupervisorConfig {
            workers: 1,
            segment_fuel: 4,
            checkpoint_every: 2,
            ..SupervisorConfig::default()
        },
    )
    .expect("reopen without deadline");
    let report = resumed.run(&specs, synthetic_factory).expect("final run");
    assert!(report.all_done(), "{report:?}");
    for (spec, reference) in specs.iter().zip(&references) {
        assert_eq!(
            report.job(&spec.id).expect("reported").outcome_digest,
            Some(outcome_digest(reference)),
            "{}: deadline drain diverged from the uninterrupted run",
            spec.id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Hung-backend regression: a backend that blocks for a full second (one real-latency
/// spike on its first run) makes no heartbeat progress, so the stall monitor cancels the
/// worker with [`CancelReason::Stall`]; the segment suspends at its next iteration
/// boundary, is rescheduled within the same run, and the job completes bit-identical to
/// a clean uninterrupted run.
#[test]
fn stalled_worker_is_detected_suspended_and_completes_on_restart() {
    let config = tiny_config(67, 6);
    let objectives = vec![Objective::ExecutionTime, Objective::Energy];
    let clean = SocEvaluator::for_benchmark(soc_sim::apps::Benchmark::Qsort, objectives.clone());
    let reference = Parmis::new(config.clone())
        .run(&clean)
        .expect("clean reference");

    // One FaultInject shared across factory calls: the global run counter fires the
    // spike exactly once, on the very first backend run of the first segment.
    let hung_backend = Arc::new(
        FaultInject::new(Arc::new(AnalyticSim::new()))
            .fault_on(0, FaultKind::LatencySpike { micros: 1_000_000 })
            .with_real_latency(),
    );

    let dir = temp_dir("stall");
    let mut supervisor = JobSupervisor::open(
        &dir,
        SupervisorConfig {
            workers: 1,
            segment_fuel: 0, // unlimited fuel: only the stall monitor can interrupt
            checkpoint_every: 2,
            stall_timeout_ms: 300,
            ..SupervisorConfig::default()
        },
    )
    .expect("open");
    let spec = JobSpec::new("hung", config);
    let report = supervisor
        .run(std::slice::from_ref(&spec), |_spec| {
            Ok(Box::new(
                SocEvaluator::for_benchmark(
                    soc_sim::apps::Benchmark::Qsort,
                    vec![Objective::ExecutionTime, Objective::Energy],
                )
                .with_backend(hung_backend.clone()),
            ))
        })
        .expect("run");
    let job = report.job("hung").expect("reported");
    assert_eq!(job.phase, JobPhase::Done, "note: {:?}", job.note);
    assert!(
        job.segments >= 2,
        "the stall monitor must force at least one suspension (got {} segments)",
        job.segments
    );
    assert_eq!(
        job.outcome_digest,
        Some(outcome_digest(&reference)),
        "a stall suspension must not perturb the trajectory"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt journal is itself quarantined and rebuilt from the self-verifying
/// checkpoint files; the rebuilt fleet still completes with uninterrupted digests.
#[test]
fn corrupt_journal_is_rebuilt_from_checkpoints() {
    let dir = temp_dir("journal-rot");
    let spec = JobSpec::new("survivor", tiny_config(55, 10));
    let reference = reference_outcome(&spec.config);
    {
        let store = CheckpointStore::open(&dir, 3).expect("open store");
        let state = Parmis::new(ParmisConfig {
            max_fuel: 4,
            ..spec.config.clone()
        })
        .run_resumable(&SyntheticEvaluator::new())
        .expect("segment")
        .into_suspended()
        .expect("suspends");
        store.save(&spec.id, &state).expect("gen 1");
        std::fs::write(dir.join(JOURNAL_FILE), b"{torn mid-write").expect("corrupt journal");
    }

    let mut supervisor =
        JobSupervisor::open(&dir, SupervisorConfig::default()).expect("recovery open");
    assert!(supervisor.recovery().journal_rebuilt);
    assert_eq!(supervisor.jobs().len(), 1);
    assert_eq!(supervisor.jobs()[0].phase, JobPhase::Suspended);

    let report = supervisor
        .run(std::slice::from_ref(&spec), synthetic_factory)
        .expect("run");
    assert_eq!(
        report.job(&spec.id).expect("reported").outcome_digest,
        Some(outcome_digest(&reference))
    );
    let _ = std::fs::remove_dir_all(&dir);
}
