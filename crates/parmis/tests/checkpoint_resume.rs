//! Kill-and-resume equivalence suite: a search that is suspended by the fuel budget,
//! serialized to checkpoint JSON, deserialized and resumed — possibly across many
//! segments — must produce an outcome bit-identical to the uninterrupted run, with the
//! per-iteration trace-hash chain as the audit trail. The suite covers the synthetic
//! test problem across (seed × interrupt point), a registry scenario on the real SoC
//! evaluator, resume on top of the [`TraceReplay`] backend, cadence checkpoints, and the
//! rejection paths for incompatible or tampered states.

use parmis::acquisition::AcquisitionOptimizerConfig;
use parmis::backend::{AnalyticSim, TraceReplay};
use parmis::cancel::{CancelReason, CancelSource};
use parmis::checkpoint::SearchState;
use parmis::evaluation::{PolicyEvaluator, SocEvaluator};
use parmis::framework::{Parmis, ParmisConfig, ParmisOutcome, SearchStep, StopReason};
use parmis::objective::Objective;
use parmis::pareto_sampling::ParetoSamplingConfig;
use parmis::{ParmisError, Result};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Cheap synthetic evaluator (Schaffer-like trade-off over 3 parameters) so the full
/// suspend/resume machinery can be property-tested without the SoC simulator.
struct SyntheticEvaluator {
    objectives: Vec<Objective>,
}

impl SyntheticEvaluator {
    fn new() -> Self {
        SyntheticEvaluator {
            objectives: vec![Objective::ExecutionTime, Objective::Energy],
        }
    }
}

impl PolicyEvaluator for SyntheticEvaluator {
    fn parameter_dim(&self) -> usize {
        3
    }

    fn parameter_bound(&self) -> f64 {
        2.0
    }

    fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        let o1 = theta[0].powi(2) + 0.05 * theta[1].powi(2) + 0.05 * theta[2].powi(2) + 1.0;
        let o2 = (theta[0] - 1.0).powi(2) + 0.05 * theta[1].powi(2) + 0.05 * theta[2].powi(2) + 1.0;
        Ok(vec![o1, o2])
    }
}

fn tiny_config(seed: u64, max_iterations: usize) -> ParmisConfig {
    ParmisConfig {
        max_iterations,
        initial_samples: 5,
        num_pareto_samples: 1,
        sampling: ParetoSamplingConfig {
            rff_features: 40,
            nsga_population: 12,
            nsga_generations: 5,
        },
        acquisition: AcquisitionOptimizerConfig {
            random_candidates: 12,
            local_candidates: 4,
            local_perturbation: 0.2,
        },
        refit_hyperparameters_every: 4,
        batch_size: 2,
        seed,
        ..ParmisConfig::default()
    }
}

fn assert_outcomes_identical(a: &ParmisOutcome, b: &ParmisOutcome, label: &str) {
    assert_eq!(
        a.trace_hashes, b.trace_hashes,
        "{label}: trace hashes diverged"
    );
    assert_eq!(a.phv_history, b.phv_history, "{label}: PHV trace diverged");
    assert_eq!(
        a.reference_point, b.reference_point,
        "{label}: reference point diverged"
    );
    assert_eq!(
        a.converged_at, b.converged_at,
        "{label}: convergence diverged"
    );
    assert_eq!(
        a.history.len(),
        b.history.len(),
        "{label}: history length diverged"
    );
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(
            ra.theta, rb.theta,
            "{label}: θ diverged at {}",
            ra.iteration
        );
        assert_eq!(ra.objectives, rb.objectives, "{label}: objectives diverged");
        assert_eq!(
            ra.acquisition_value, rb.acquisition_value,
            "{label}: acquisition diverged"
        );
    }
    assert_eq!(
        a.front.objective_values(),
        b.front.objective_values(),
        "{label}: Pareto front diverged"
    );
    let tags =
        |o: &ParmisOutcome| -> Vec<Vec<f64>> { o.front.iter().map(|e| e.tag.clone()).collect() };
    assert_eq!(tags(a), tags(b), "{label}: front parameter tags diverged");
}

/// Drives a fuel-bounded search to completion, forcing every suspended state through the
/// checkpoint JSON format before resuming it. Returns the outcome and the segment count.
fn run_segmented(
    config: &ParmisConfig,
    fuel: usize,
    evaluator: &dyn PolicyEvaluator,
) -> (ParmisOutcome, usize) {
    let fueled = ParmisConfig {
        max_fuel: fuel,
        ..config.clone()
    };
    let search = Parmis::new(fueled);
    let mut segments = 1;
    let mut step = search.run_resumable(evaluator).unwrap();
    while let SearchStep::Suspended { state, .. } = step {
        // The kill: nothing survives except the serialized checkpoint.
        let json = state.to_json().unwrap();
        let restored = SearchState::from_json(&json).unwrap();
        assert_eq!(
            *state, restored,
            "checkpoint JSON round trip must be lossless"
        );
        segments += 1;
        assert!(segments < 100, "resume loop failed to make progress");
        step = search.resume(restored, evaluator).unwrap();
    }
    (step.into_completed().unwrap(), segments)
}

/// Wraps an evaluator so that the shared [`CancelSource`] trips (with
/// [`CancelReason::User`]) once `cancel_after` evaluations have been served — turning an
/// arbitrary evaluation index into the cancellation point for the next round boundary.
struct CancelAfter<E> {
    inner: E,
    served: AtomicUsize,
    cancel_after: usize,
    source: CancelSource,
}

impl<E: PolicyEvaluator> PolicyEvaluator for CancelAfter<E> {
    fn parameter_dim(&self) -> usize {
        self.inner.parameter_dim()
    }

    fn parameter_bound(&self) -> f64 {
        self.inner.parameter_bound()
    }

    fn objectives(&self) -> &[Objective] {
        self.inner.objectives()
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        if self.served.fetch_add(1, Ordering::SeqCst) + 1 >= self.cancel_after {
            self.source.cancel(CancelReason::User);
        }
        self.inner.evaluate(theta)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Core resume equivalence property: for arbitrary seeds and arbitrary interrupt
    /// points (including mid-initial-design and fuel so small the search suspends after
    /// every round), the segmented run is bit-identical to the uninterrupted one.
    #[test]
    fn segmented_run_is_bit_identical_to_uninterrupted(
        seed in 0u64..1000,
        fuel in 1usize..9,
    ) {
        let evaluator = SyntheticEvaluator::new();
        let config = tiny_config(seed, 11);
        let uninterrupted = Parmis::new(config.clone())
            .run_resumable(&evaluator)
            .unwrap()
            .into_completed()
            .unwrap();
        let (resumed, segments) = run_segmented(&config, fuel, &evaluator);
        prop_assert!(segments >= 2, "fuel {fuel} never suspended");
        assert_outcomes_identical(&uninterrupted, &resumed, &format!("fuel {fuel}"));
    }

    /// Cancellation equivalence property: cancelling at an arbitrary evaluation index
    /// suspends the search at the next iteration boundary with the cancellation reason,
    /// and resuming the serialized checkpoint (without the token) completes bit-identical
    /// to the uninterrupted run — cancellation decides when, never what.
    #[test]
    fn cancelled_run_resumes_bit_identically(
        seed in 0u64..1000,
        cancel_after in 1usize..12,
    ) {
        let config = tiny_config(seed, 11);
        let uninterrupted = Parmis::new(config.clone())
            .run_resumable(&SyntheticEvaluator::new())
            .unwrap()
            .into_completed()
            .unwrap();

        let source = CancelSource::new();
        let tripwire = CancelAfter {
            inner: SyntheticEvaluator::new(),
            served: AtomicUsize::new(0),
            cancel_after,
            source: source.clone(),
        };
        let step = Parmis::new(config.clone())
            .with_cancel_token(source.token())
            .run_resumable(&tripwire)
            .unwrap();
        let state = match step {
            SearchStep::Suspended { state, reason } => {
                prop_assert_eq!(reason, StopReason::Cancelled(CancelReason::User));
                prop_assert!(state.evaluations() >= cancel_after);
                state
            }
            SearchStep::Completed(_) => {
                // The trip point can land inside the very last round; then the search
                // finishes before any boundary observes the token. Nothing to resume.
                return;
            }
        };

        // The kill: only the checkpoint JSON survives; the resumer has no token.
        let restored = SearchState::from_json(&state.to_json().unwrap()).unwrap();
        let resumed = Parmis::new(config)
            .resume(restored, &SyntheticEvaluator::new())
            .unwrap()
            .into_completed()
            .unwrap();
        assert_outcomes_identical(
            &uninterrupted,
            &resumed,
            &format!("cancel after {cancel_after}"),
        );
    }
}

/// The same equivalence on the real SoC evaluator for a registry scenario, across more
/// than one suspend/resume cycle.
#[test]
fn registry_scenario_resumes_bit_identically() {
    let scenario = soc_sim::scenario::registry().into_iter().next().unwrap();
    let evaluator = SocEvaluator::for_scenario(&scenario, Objective::TIME_ENERGY.to_vec()).unwrap();
    let config = tiny_config(91, 9);
    let uninterrupted = Parmis::new(config.clone())
        .run_resumable(&evaluator)
        .unwrap()
        .into_completed()
        .unwrap();
    let (resumed, segments) = run_segmented(&config, 3, &evaluator);
    assert!(segments >= 2);
    assert_outcomes_identical(
        &uninterrupted,
        &resumed,
        &format!("scenario {}", scenario.name),
    );
}

/// Resume composes with the backend seam: a search riding on recorded-trace replay
/// fixtures suspends and resumes exactly like the live simulator.
#[test]
fn resume_on_trace_replay_fixtures_is_bit_identical() {
    // Record fixtures by running the search once on the recording simulator. Replay is a
    // function of (application, run seed) only, so one full pass records every trace the
    // replayed searches will request.
    let (recording, _) = AnalyticSim::recording();
    let recorder = Arc::new(recording);
    let live = SocEvaluator::for_benchmark(
        soc_sim::apps::Benchmark::Qsort,
        Objective::TIME_ENERGY.to_vec(),
    )
    .with_backend(recorder.clone());
    let config = tiny_config(23, 9);
    Parmis::new(config.clone()).run(&live).unwrap();

    let store = recorder.snapshot_traces().unwrap();
    let replayed = SocEvaluator::for_benchmark(
        soc_sim::apps::Benchmark::Qsort,
        Objective::TIME_ENERGY.to_vec(),
    )
    .with_backend(Arc::new(TraceReplay::new(store)));

    let uninterrupted = Parmis::new(config.clone())
        .run_resumable(&replayed)
        .unwrap()
        .into_completed()
        .unwrap();
    let (resumed, segments) = run_segmented(&config, 4, &replayed);
    assert!(segments >= 2);
    assert_outcomes_identical(&uninterrupted, &resumed, "trace-replay resume");
}

/// Cadence checkpoints are valid resume points: every state handed to the sink passes
/// integrity verification, evaluation counts are strictly increasing, and resuming from
/// the last one completes identically to the uninterrupted run.
#[test]
fn cadence_checkpoints_are_valid_resume_points() {
    let evaluator = SyntheticEvaluator::new();
    let config = ParmisConfig {
        checkpoint_every: 3,
        ..tiny_config(7, 11)
    };
    let search = Parmis::new(config.clone());
    let mut checkpoints: Vec<SearchState> = Vec::new();
    let uninterrupted = search
        .run_resumable_with_checkpoints(&evaluator, |state| {
            checkpoints.push(state.clone());
            Ok(())
        })
        .unwrap()
        .into_completed()
        .unwrap();
    assert!(!checkpoints.is_empty(), "cadence sink never fired");
    let mut last_seen = 0;
    for state in &checkpoints {
        state.verify_integrity().unwrap();
        assert!(state.evaluations() > last_seen, "cadence must advance");
        last_seen = state.evaluations();
        assert!(state.evaluations() < config.max_iterations);
    }

    let restored = SearchState::from_json(&checkpoints.last().unwrap().to_json().unwrap()).unwrap();
    let finished = search
        .resume(restored, &evaluator)
        .unwrap()
        .into_completed()
        .unwrap();
    assert_outcomes_identical(&uninterrupted, &finished, "resume from cadence checkpoint");

    // A sink error aborts the run instead of being swallowed.
    let err = search
        .run_resumable_with_checkpoints(&evaluator, |_| {
            Err(ParmisError::checkpoint(
                parmis::CheckpointFault::Io,
                "disk full",
            ))
        })
        .unwrap_err();
    assert!(matches!(err, ParmisError::Checkpoint { .. }), "{err}");
}

/// A suspended state is refused by incompatible resumers: a configuration whose
/// trajectory-affecting fields differ, or an evaluator with different objectives. Both
/// are structured [`ParmisError::Checkpoint`] failures, not silent divergence.
#[test]
fn resume_rejects_incompatible_config_and_evaluator() {
    let evaluator = SyntheticEvaluator::new();
    let config = tiny_config(3, 11);
    let state = Parmis::new(ParmisConfig {
        max_fuel: 6,
        ..config.clone()
    })
    .run_resumable(&evaluator)
    .unwrap()
    .into_suspended()
    .unwrap();

    // Different seed → different trajectory → refused.
    let reseeded = Parmis::new(ParmisConfig {
        seed: config.seed + 1,
        ..config.clone()
    });
    let err = reseeded.resume(state.clone(), &evaluator).unwrap_err();
    assert!(matches!(err, ParmisError::Checkpoint { .. }), "{err}");

    // Same config, evaluator optimizing different objectives → refused.
    let other = SyntheticEvaluator {
        objectives: vec![Objective::ExecutionTime, Objective::PeakTemperature],
    };
    let err = Parmis::new(config.clone())
        .resume(state.clone(), &other)
        .unwrap_err();
    assert!(matches!(err, ParmisError::Checkpoint { .. }), "{err}");

    // Scheduling knobs are resume-compatible: a different worker count or fuel budget
    // accepts the state (this is the whole point of fuel-bounded segments).
    let rescheduled = Parmis::new(ParmisConfig {
        max_fuel: 0,
        num_workers: 3,
        ..config
    });
    let outcome = rescheduled
        .resume(state, &evaluator)
        .unwrap()
        .into_completed()
        .unwrap();
    assert_eq!(outcome.history.len(), 11);
}

/// The non-resumable entry points refuse to drop a suspended state on the floor:
/// `run()` under a fuel budget reports a structured checkpoint error telling the caller
/// to use `run_resumable`.
#[test]
fn plain_run_surfaces_fuel_exhaustion_as_an_error() {
    let evaluator = SyntheticEvaluator::new();
    let config = ParmisConfig {
        max_fuel: 6,
        ..tiny_config(5, 11)
    };
    let err = Parmis::new(config).run(&evaluator).unwrap_err();
    assert!(matches!(err, ParmisError::Checkpoint { .. }), "{err}");
    assert!(err.to_string().contains("run_resumable"), "{err}");
}
