//! Integration tests for the parallel batched evaluation engine: the Pareto front and the
//! full hypervolume trace must be bit-identical for any worker count, and `evaluate_batch`
//! must always agree with element-wise `evaluate` — on the real SoC simulator, not just the
//! synthetic test problem.

use parmis::acquisition::AcquisitionOptimizerConfig;
use parmis::evaluation::{ParallelEvaluator, PolicyEvaluator, SocEvaluator};
use parmis::framework::{Parmis, ParmisConfig, ParmisOutcome};
use parmis::objective::Objective;
use parmis::pareto_sampling::ParetoSamplingConfig;
use proptest::prelude::*;
use soc_sim::apps::Benchmark;

fn tiny_config(num_workers: usize) -> ParmisConfig {
    ParmisConfig {
        max_iterations: 12,
        initial_samples: 5,
        num_pareto_samples: 1,
        sampling: ParetoSamplingConfig {
            rff_features: 40,
            nsga_population: 12,
            nsga_generations: 5,
        },
        acquisition: AcquisitionOptimizerConfig {
            random_candidates: 12,
            local_candidates: 4,
            local_perturbation: 0.2,
        },
        refit_hyperparameters_every: 10,
        batch_size: 3,
        num_workers,
        seed: 77,
        ..ParmisConfig::default()
    }
}

fn assert_outcomes_identical(a: &ParmisOutcome, b: &ParmisOutcome, label: &str) {
    assert_eq!(a.phv_history, b.phv_history, "{label}: PHV trace diverged");
    assert_eq!(
        a.reference_point, b.reference_point,
        "{label}: reference point diverged"
    );
    assert_eq!(
        a.converged_at, b.converged_at,
        "{label}: convergence diverged"
    );
    assert_eq!(
        a.history.len(),
        b.history.len(),
        "{label}: history length diverged"
    );
    for (ra, rb) in a.history.iter().zip(&b.history) {
        assert_eq!(
            ra.theta, rb.theta,
            "{label}: θ diverged at {}",
            ra.iteration
        );
        assert_eq!(ra.objectives, rb.objectives, "{label}: objectives diverged");
        assert_eq!(
            ra.acquisition_value, rb.acquisition_value,
            "{label}: acquisition diverged"
        );
    }
    assert_eq!(
        a.front.objective_values(),
        b.front.objective_values(),
        "{label}: Pareto front diverged"
    );
}

#[test]
fn soc_outcome_is_bit_identical_for_1_2_and_4_workers() {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
    let baseline = Parmis::new(tiny_config(1)).run(&evaluator).unwrap();
    for workers in [1, 2, 4] {
        let outcome = Parmis::new(tiny_config(workers))
            .run_parallel(&evaluator)
            .unwrap();
        assert_outcomes_identical(&baseline, &outcome, &format!("{workers} workers"));
    }
}

#[test]
fn explicit_parallel_evaluator_matches_plain_run() {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Sha, Objective::TIME_PPW.to_vec());
    let plain = Parmis::new(tiny_config(1)).run(&evaluator).unwrap();
    let wrapped = ParallelEvaluator::new(evaluator, 2);
    let parallel = Parmis::new(tiny_config(1)).run(&wrapped).unwrap();
    assert_outcomes_identical(&plain, &parallel, "wrapped evaluator");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The batch API must agree with element-wise evaluation for arbitrary batches of
    /// arbitrary parameter vectors, serial and parallel alike.
    #[test]
    fn evaluate_batch_agrees_with_elementwise_evaluate(
        raw in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 4), 1..7),
        workers in 1usize..5,
    ) {
        let evaluator =
            SocEvaluator::for_benchmark(Benchmark::Dijkstra, Objective::TIME_ENERGY.to_vec());
        let dim = evaluator.parameter_dim();
        // Tile the 4 generated coefficients across the full parameter dimension.
        let thetas: Vec<Vec<f64>> = raw
            .iter()
            .map(|coeffs| (0..dim).map(|i| coeffs[i % coeffs.len()]).collect())
            .collect();

        let elementwise: Vec<Vec<f64>> = thetas
            .iter()
            .map(|theta| evaluator.evaluate(theta).unwrap())
            .collect();
        prop_assert_eq!(&evaluator.evaluate_batch(&thetas).unwrap(), &elementwise);

        let parallel = ParallelEvaluator::new(evaluator.clone(), workers);
        prop_assert_eq!(&parallel.evaluate_batch(&thetas).unwrap(), &elementwise);
    }
}

/// Wall-clock speedup of the parallel engine. Requires ≥ 4 physical cores to be meaningful,
/// so it is ignored by default; `cargo test -p parmis -- --ignored` runs it on capable hosts
/// (the CI bench job and `crates/bench/benches/microbench.rs` track the same ratio).
#[test]
#[ignore = "wall-clock sensitive; needs >= 4 cores"]
fn four_workers_halve_batch_evaluation_time() {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Kmeans, Objective::TIME_ENERGY.to_vec());
    let dim = evaluator.parameter_dim();
    let thetas: Vec<Vec<f64>> = (0..32)
        .map(|i| vec![(i as f64 / 32.0) - 0.5; dim])
        .collect();
    // Warm up both paths once.
    let serial_result = evaluator.evaluate_batch(&thetas).unwrap();
    let parallel = ParallelEvaluator::new(evaluator.clone(), 4);
    assert_eq!(parallel.evaluate_batch(&thetas).unwrap(), serial_result);

    let start = std::time::Instant::now();
    let _ = evaluator.evaluate_batch(&thetas).unwrap();
    let serial_time = start.elapsed();

    let start = std::time::Instant::now();
    let _ = parallel.evaluate_batch(&thetas).unwrap();
    let parallel_time = start.elapsed();

    assert!(
        parallel_time.as_secs_f64() * 2.0 <= serial_time.as_secs_f64(),
        "expected ≥ 2× speedup with 4 workers: serial {serial_time:?}, parallel {parallel_time:?}"
    );
}
