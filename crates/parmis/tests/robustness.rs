//! Regression suite for inputs that used to panic (or poison results with NaN): every
//! case here once crashed the process or produced undefined values from user-reachable
//! entry points, and must now be a structured error or a well-defined value.

use parmis::evaluation::{PolicyEvaluator, SocEvaluator};
use parmis::framework::{Parmis, ParmisConfig, ParmisOutcome};
use parmis::objective::Objective;
use parmis::pareto_sampling::{ParetoFrontSampler, ParetoSamplingConfig};
use parmis::{ParmisError, Result};
use soc_sim::apps::Benchmark;

/// A θ of the wrong dimension used to panic inside the policy decoder
/// (`set_flat_parameters`); it is now a structured evaluation error on every public
/// entry point that accepts a parameter vector.
#[test]
fn wrong_dimension_theta_is_a_structured_error() {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
    let short = vec![0.1; evaluator.parameter_dim() - 1];

    let err = evaluator.run_summaries(&short).unwrap_err();
    assert!(matches!(err, ParmisError::Evaluation { .. }), "{err}");
    assert!(err.to_string().contains("dimension"), "{err}");

    let err = evaluator.evaluate(&short).unwrap_err();
    assert!(matches!(err, ParmisError::Evaluation { .. }), "{err}");

    let mut buffers = evaluator.sim_buffers();
    let err = evaluator.evaluate_with(&short, &mut buffers).unwrap_err();
    assert!(matches!(err, ParmisError::Evaluation { .. }), "{err}");
}

/// Constructing a Pareto-front sampler with no objective models used to be an
/// `assert!`; it is now an invalid-configuration error.
#[test]
fn empty_model_set_is_rejected_by_the_sampler() {
    let models: &[gp::GaussianProcess] = &[];
    let err = ParetoFrontSampler::new(models, 1.0, ParetoSamplingConfig::default(), 7).unwrap_err();
    assert!(matches!(err, ParmisError::InvalidConfig { .. }), "{err}");
    assert!(
        err.to_string().contains("at least one objective model"),
        "{err}"
    );
}

/// Evaluator used by the configuration-validation regressions below.
struct BadBoundEvaluator {
    bound: f64,
    objectives: Vec<Objective>,
}

impl PolicyEvaluator for BadBoundEvaluator {
    fn parameter_dim(&self) -> usize {
        2
    }

    fn parameter_bound(&self) -> f64 {
        self.bound
    }

    fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        Ok(vec![theta[0].abs() + 1.0, theta[1].abs() + 1.0])
    }
}

/// A NaN (or otherwise non-positive) parameter bound used to sail through validation
/// and blow up deep inside candidate sampling; `refit_hyperparameters_every == 0` used
/// to divide by zero in the model-refit cadence. Both are now validation errors.
#[test]
fn nan_bound_and_zero_refit_cadence_are_validation_errors() {
    for bad_bound in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
        let evaluator = BadBoundEvaluator {
            bound: bad_bound,
            objectives: vec![Objective::ExecutionTime, Objective::Energy],
        };
        let err = Parmis::new(ParmisConfig::default())
            .run(&evaluator)
            .unwrap_err();
        assert!(
            matches!(err, ParmisError::InvalidConfig { .. }),
            "bound {bad_bound}: {err}"
        );
    }

    let evaluator = BadBoundEvaluator {
        bound: 1.0,
        objectives: vec![Objective::ExecutionTime, Objective::Energy],
    };
    let config = ParmisConfig {
        refit_hyperparameters_every: 0,
        ..ParmisConfig::default()
    };
    let err = Parmis::new(config).run(&evaluator).unwrap_err();
    assert!(matches!(err, ParmisError::InvalidConfig { .. }), "{err}");
    assert!(
        err.to_string().contains("refit_hyperparameters_every"),
        "{err}"
    );
}

/// A zero-evaluation outcome used to compute its PHV reference point as a fold over an
/// empty history, yielding a NaN reference and a NaN `final_phv()`. The degenerate
/// outcome is now fully defined: empty archive, finite all-margin reference point,
/// `final_phv() == 0`.
#[test]
fn zero_iteration_outcome_has_no_nan() {
    let outcome = ParmisOutcome::empty(vec![Objective::ExecutionTime, Objective::Energy]);
    assert!(outcome.front.is_empty());
    assert!(outcome.history.is_empty());
    assert!(outcome.phv_history.is_empty());
    assert!(outcome.trace_hashes.is_empty());
    assert_eq!(outcome.final_phv(), 0.0);
    assert_eq!(outcome.reference_point.len(), 2);
    assert!(
        outcome.reference_point.iter().all(|r| r.is_finite()),
        "reference point must be finite: {:?}",
        outcome.reference_point
    );
    assert!(outcome.converged_at.is_none());
}
