//! Integration tests for the incremental-refit + batched-prediction engine.
//!
//! The contract under test: `Parmis::run` must advance its per-objective GP models with
//! rank-one Cholesky extensions (not from-scratch refits) on non-hyperopt iterations, and
//! must score acquisition candidate pools through `predict_batch` (one blocked solve per
//! model) rather than per-candidate solves. This is asserted with the `gp::stats` operation
//! counters — no wall-clock involved — plus an equivalence check that the incremental chain
//! reproduces a from-scratch fit on the run's own training data. The `#[ignore]`d companion
//! asserts the wall-clock speedups in release mode on a quiet machine.

use gp::kernel::Kernel;
use gp::GaussianProcess;
use parmis::acquisition::AcquisitionOptimizerConfig;
use parmis::evaluation::{PolicyEvaluator, SocEvaluator};
use parmis::framework::{Parmis, ParmisConfig};
use parmis::objective::Objective;
use parmis::pareto_sampling::ParetoSamplingConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use soc_sim::apps::Benchmark;

fn engine_config() -> ParmisConfig {
    ParmisConfig {
        max_iterations: 16,
        initial_samples: 5,
        num_pareto_samples: 1,
        sampling: ParetoSamplingConfig {
            rff_features: 40,
            nsga_population: 12,
            nsga_generations: 5,
        },
        acquisition: AcquisitionOptimizerConfig {
            random_candidates: 12,
            local_candidates: 4,
            local_perturbation: 0.2,
        },
        // Hyperopt only on the first model-guided round: every later round must take the
        // incremental path.
        refit_hyperparameters_every: 1000,
        batch_size: 1,
        num_workers: 1,
        seed: 123,
        ..ParmisConfig::default()
    }
}

/// The operation-count and equivalence check of the engine. Kept as a single test function
/// because the `gp::stats` counters are process-global: concurrent tests in this binary
/// would pollute each other's deltas.
#[test]
fn parmis_run_takes_the_incremental_and_batched_paths() {
    let evaluator = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
    let config = engine_config();
    gp::stats::reset();
    moo::stats::reset();
    let outcome = Parmis::new(config.clone()).run(&evaluator).unwrap();
    let stats = gp::stats::snapshot();
    let moo_stats = moo::stats::snapshot();
    assert_eq!(outcome.history.len(), 16);

    // 10 non-hyperopt rounds × 2 objectives, one new observation each: the run must have
    // performed at least 20 rank-one extensions.
    let k = 2;
    let incremental_rounds = (config.max_iterations - config.initial_samples - 1) as u64;
    assert!(
        stats.incremental_updates >= incremental_rounds * k,
        "expected >= {} rank-one extensions, saw {}",
        incremental_rounds * k,
        stats.incremental_updates
    );
    // Acquisition scoring goes through predict_batch: at least one batched solve per model
    // per model-guided round (the Pareto sampler adds more point predictions, not fewer
    // batches).
    assert!(
        stats.predict_batches >= (incremental_rounds + 1) * k,
        "expected >= {} batched predictions, saw {}",
        (incremental_rounds + 1) * k,
        stats.predict_batches
    );
    // From-scratch O(n³) fits are confined to the single hyperopt round (one final fit per
    // objective); the incremental rounds must not add one per iteration. A small slack
    // covers the degenerate-extension fallback.
    assert!(
        stats.full_fits <= k + 2,
        "expected at most {} from-scratch fits (hyperopt only), saw {}",
        k + 2,
        stats.full_fits
    );

    // The acquisition sampler must route through the flat batched engine: every
    // model-guided round evolves `nsga_generations` NSGA-II generations on the engine, and
    // each generation (plus the initial population) answers all k sampled objective
    // functions with batched feature-matrix products — never the per-point RFF path.
    let rounds = incremental_rounds + 1; // every model-guided round samples one front
    let generations = 5u64; // engine_config's nsga_generations
    assert!(
        moo_stats.nsga2_generations >= rounds * generations,
        "expected >= {} flat NSGA-II generations, saw {}",
        rounds * generations,
        moo_stats.nsga2_generations
    );
    assert!(
        moo_stats.dominance_comparisons > 0 && moo_stats.flat_sorts >= rounds * generations,
        "flat non-dominated sorting must run per generation: {moo_stats:?}"
    );
    assert!(
        stats.rff_feature_matrix_products >= rounds * k * (generations + 1),
        "expected >= {} batched RFF evaluations, saw {}",
        rounds * k * (generations + 1),
        stats.rff_feature_matrix_products
    );
    assert_eq!(
        stats.rff_point_evals, 0,
        "the search loop must never fall back to per-point RFF evaluation"
    );

    // Equivalence on the run's own data: replaying objective 0 of the history through the
    // incremental chain must match one from-scratch fit to 1e-8 on predictions.
    let thetas: Vec<Vec<f64>> = outcome.history.iter().map(|r| r.theta.clone()).collect();
    let ys: Vec<f64> = outcome.history.iter().map(|r| r.objectives[0]).collect();
    let kernel = Kernel::matern52(1.0, 2.0 * (evaluator.parameter_dim() as f64).sqrt());
    let seed_n = 6;
    let base = GaussianProcess::fit(
        thetas[..seed_n].to_vec(),
        ys[..seed_n].to_vec(),
        kernel.clone(),
        1e-4,
    )
    .unwrap();
    let incremental = base
        .with_observations(&thetas[seed_n..], &ys[seed_n..])
        .unwrap();
    let full = GaussianProcess::fit(thetas.clone(), ys, kernel, 1e-4).unwrap();
    for theta in thetas.iter().step_by(3) {
        let (mi, vi) = incremental.predict(theta).unwrap();
        let (mf, vf) = full.predict(theta).unwrap();
        assert!(
            (mi - mf).abs() < 1e-8 && (vi - vf).abs() < 1e-8,
            "incremental chain diverged from full fit: ({mi}, {vi}) vs ({mf}, {vf})"
        );
    }
}

fn random_data(n: usize, dim: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().map(|v| v.sin()).sum::<f64>() / dim as f64)
        .collect();
    (xs, ys)
}

/// Wall-clock gate for the engine: the rank-one update must beat the from-scratch refit and
/// the batched prediction must beat the per-point loop. Timing assertions are meaningless in
/// debug builds and flake under noisy neighbours, so this stays `#[ignore]`d; run it with
/// `cargo test -q -p parmis --release -- --ignored` on a quiet machine.
#[test]
#[ignore = "wall-clock sensitive; run in release mode on a quiet machine"]
fn incremental_refit_and_predict_batch_beat_the_serial_baselines() {
    let n = 220;
    let dim = 16;
    let (xs, ys) = random_data(n + 1, dim, 17);
    let kernel = Kernel::matern52(1.0, 8.0);
    let gp =
        GaussianProcess::fit(xs[..n].to_vec(), ys[..n].to_vec(), kernel.clone(), 1e-4).unwrap();
    let (new_x, new_y) = (xs[n].clone(), ys[n]);

    let reps = 8;
    let start = std::time::Instant::now();
    for _ in 0..reps {
        std::hint::black_box(gp.with_observation(new_x.clone(), new_y).unwrap());
    }
    let incremental_time = start.elapsed();

    let start = std::time::Instant::now();
    for _ in 0..reps {
        std::hint::black_box(
            GaussianProcess::fit(xs.clone(), ys.clone(), kernel.clone(), 1e-4).unwrap(),
        );
    }
    let full_time = start.elapsed();
    assert!(
        incremental_time.as_secs_f64() * 3.0 <= full_time.as_secs_f64(),
        "expected >= 3x speedup from the rank-one update at n = {n}: incremental \
         {incremental_time:?}, full refit {full_time:?}"
    );

    let mut rng = StdRng::seed_from_u64(23);
    let queries: Vec<Vec<f64>> = (0..128)
        .map(|_| (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let start = std::time::Instant::now();
    for _ in 0..reps {
        std::hint::black_box(gp.predict_batch(&queries).unwrap());
    }
    let batched_time = start.elapsed();

    let start = std::time::Instant::now();
    for _ in 0..reps {
        for q in &queries {
            std::hint::black_box(gp.predict(q).unwrap());
        }
    }
    let per_point_time = start.elapsed();
    assert!(
        batched_time.as_secs_f64() * 1.2 <= per_point_time.as_secs_f64(),
        "expected >= 1.2x speedup from batched prediction: batched {batched_time:?}, \
         per-point {per_point_time:?}"
    );
}
