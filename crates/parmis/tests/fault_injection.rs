//! Fault-injected evaluation suite: the search must survive backend faults without
//! aborting the process or perturbing the deterministic trajectory. Scheduled transient
//! faults (structured errors *and* panics) recovered by the retry policy leave the
//! outcome bit-identical to a fault-free run for any worker count; exhausted retries
//! either fail fast with a structured error or degrade to penalty vectors; worker panics
//! from evaluators without their own containment surface as the lowest-slot structured
//! error instead of tearing down the scoped thread pool.

use parmis::acquisition::AcquisitionOptimizerConfig;
use parmis::backend::{AnalyticSim, FaultInject, FaultKind};
use parmis::evaluation::{ParallelEvaluator, PolicyEvaluator, RetryPolicy, SocEvaluator};
use parmis::framework::{Parmis, ParmisConfig};
use parmis::objective::Objective;
use parmis::pareto_sampling::ParetoSamplingConfig;
use parmis::{ParmisError, Result};
use soc_sim::apps::Benchmark;
use std::sync::Arc;

fn tiny_config() -> ParmisConfig {
    ParmisConfig {
        max_iterations: 11,
        initial_samples: 5,
        num_pareto_samples: 1,
        sampling: ParetoSamplingConfig {
            rff_features: 40,
            nsga_population: 12,
            nsga_generations: 5,
        },
        acquisition: AcquisitionOptimizerConfig {
            random_candidates: 12,
            local_candidates: 4,
            local_perturbation: 0.2,
        },
        refit_hyperparameters_every: 10,
        batch_size: 2,
        seed: 41,
        ..ParmisConfig::default()
    }
}

fn evaluator_with(
    backend: Arc<dyn parmis::backend::EvalBackend>,
    retry: RetryPolicy,
) -> SocEvaluator {
    SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec())
        .with_backend(backend)
        .with_retry_policy(retry)
}

/// Transient faults — a structured error at one backend run and a contained panic at
/// another — are absorbed by a single retry each: the search completes, the process
/// stays alive, and the trajectory is bit-identical to the fault-free run for every
/// worker count. The retry ledger records exactly what happened.
#[test]
fn scheduled_error_and_panic_mid_search_are_invisible_with_retries() {
    let clean = evaluator_with(Arc::new(AnalyticSim::new()), RetryPolicy::default());
    let baseline = Parmis::new(tiny_config()).run(&clean).unwrap();

    for workers in [1usize, 2, 4] {
        let retry = RetryPolicy::retries(1).backoff_base_micros(50);
        let faulty = evaluator_with(
            Arc::new(
                FaultInject::new(Arc::new(AnalyticSim::new()))
                    .fault_on(2, FaultKind::Error)
                    .fault_on(7, FaultKind::Panic),
            ),
            retry,
        );
        let stats = faulty.retry_stats();
        let outcome = Parmis::new(tiny_config())
            .run(&ParallelEvaluator::new(faulty, workers))
            .unwrap();

        assert_eq!(
            outcome.trace_hashes, baseline.trace_hashes,
            "{workers} workers: trace hashes diverged under injected faults"
        );
        assert_eq!(outcome.phv_history, baseline.phv_history);
        assert_eq!(
            outcome.front.objective_values(),
            baseline.front.objective_values()
        );
        // One retry per scheduled fault, one of which was a contained panic; each retry
        // charged `base << 0` µs to the deterministic backoff ledger.
        assert_eq!(stats.retries(), 2, "{workers} workers");
        assert_eq!(stats.contained_panics(), 1, "{workers} workers");
        assert_eq!(stats.backoff_micros(), 100, "{workers} workers");
        assert_eq!(stats.degraded_runs(), 0, "{workers} workers");
    }
}

/// A permanently failing backend under skip-with-penalty degrades the candidate to the
/// penalty vector on every objective instead of failing the run.
#[test]
fn exhausted_retries_degrade_to_the_penalty_vector() {
    let retry = RetryPolicy::retries(2)
        .backoff_base_micros(10)
        .skip_with_penalty(1.0e6);
    let always_failing = evaluator_with(
        Arc::new(FaultInject::new(Arc::new(AnalyticSim::new())).with_random_errors(3, 1.0)),
        retry,
    );
    let stats = always_failing.retry_stats();
    let theta = vec![0.2; always_failing.parameter_dim()];
    let objectives = always_failing.evaluate(&theta).unwrap();
    assert_eq!(objectives, vec![1.0e6, 1.0e6]);
    assert_eq!(stats.retries(), 2);
    assert_eq!(stats.degraded_runs(), 1);
    // Attempt 0 charged 10 µs, attempt 1 charged 20 µs.
    assert_eq!(stats.backoff_micros(), 30);
}

/// The same permanent failure under the default fail-fast mode surfaces the structured
/// backend error after the retry budget, naming the failing backend.
#[test]
fn exhausted_retries_fail_fast_with_the_backend_error() {
    let retry = RetryPolicy::retries(1);
    let always_failing = evaluator_with(
        Arc::new(FaultInject::new(Arc::new(AnalyticSim::new())).with_random_errors(3, 1.0)),
        retry,
    );
    let stats = always_failing.retry_stats();
    let theta = vec![0.2; always_failing.parameter_dim()];
    let err = always_failing.evaluate(&theta).unwrap_err();
    match err {
        ParmisError::Backend { ref name, .. } => assert_eq!(name, "fault-inject"),
        other => panic!("expected Backend error, got {other:?}"),
    }
    assert_eq!(stats.retries(), 1);
    assert_eq!(stats.degraded_runs(), 0);
}

/// A panicking backend is contained even with **zero** retries configured: the panic
/// becomes a structured error naming the backend, and the payload text is preserved.
#[test]
fn backend_panic_is_contained_into_a_structured_error() {
    let panicking = evaluator_with(
        Arc::new(FaultInject::new(Arc::new(AnalyticSim::new())).fault_on(0, FaultKind::Panic)),
        RetryPolicy::default(),
    );
    let stats = panicking.retry_stats();
    let theta = vec![0.1; panicking.parameter_dim()];
    let err = panicking.evaluate(&theta).unwrap_err();
    assert!(matches!(err, ParmisError::Backend { .. }), "{err}");
    assert!(err.to_string().contains("panic contained"), "{err}");
    assert!(err.to_string().contains("injected panic"), "{err}");
    assert_eq!(stats.contained_panics(), 1);

    // Run 1 is past the schedule: the same evaluator recovers without intervention.
    assert!(panicking.evaluate(&theta).is_ok());
}

/// Latency spikes slow a run down without touching its results: objectives are
/// bit-identical to the clean backend and no retry machinery engages.
#[test]
fn latency_spikes_change_timing_but_not_results() {
    let clean = evaluator_with(Arc::new(AnalyticSim::new()), RetryPolicy::default());
    let delayed = evaluator_with(
        Arc::new(
            FaultInject::new(Arc::new(AnalyticSim::new()))
                .fault_on(0, FaultKind::LatencySpike { micros: 500 }),
        ),
        RetryPolicy::default(),
    );
    let stats = delayed.retry_stats();
    let theta = vec![-0.3; clean.parameter_dim()];
    assert_eq!(
        delayed.evaluate(&theta).unwrap(),
        clean.evaluate(&theta).unwrap()
    );
    assert_eq!(stats.retries(), 0);
    assert_eq!(stats.contained_panics(), 0);
}

/// Evaluator whose failures are keyed on the parameter vector itself, so specific batch
/// slots can be made to error or panic deterministically regardless of sharding.
struct SlotFaultEvaluator {
    objectives: Vec<Objective>,
}

const ERROR_MARKER: f64 = 8000.0;
const PANIC_MARKER: f64 = 9000.0;

impl PolicyEvaluator for SlotFaultEvaluator {
    fn parameter_dim(&self) -> usize {
        2
    }

    fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        if theta[0] == PANIC_MARKER {
            panic!("slot evaluator exploded (fault-injection drill)");
        }
        if theta[0] == ERROR_MARKER {
            return Err(ParmisError::Evaluation {
                reason: "slot evaluator rejected θ".into(),
            });
        }
        Ok(vec![theta[0] + theta[1], theta[0] - theta[1]])
    }
}

/// A panic inside a worker thread — from an evaluator with no containment of its own —
/// must not tear down the process: it surfaces as a structured `parallel-worker` backend
/// error for every worker count.
#[test]
fn worker_panics_become_structured_errors_for_any_worker_count() {
    let mut thetas: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 1.0]).collect();
    thetas[5][0] = PANIC_MARKER;

    for workers in [2usize, 4] {
        let parallel = ParallelEvaluator::new(
            SlotFaultEvaluator {
                objectives: vec![Objective::ExecutionTime, Objective::Energy],
            },
            workers,
        );
        let err = parallel.evaluate_batch(&thetas).unwrap_err();
        match err {
            ParmisError::Backend { ref name, .. } => assert_eq!(name, "parallel-worker"),
            other => panic!("expected Backend error, got {other:?}"),
        }
        assert!(err.to_string().contains("worker panic contained"), "{err}");
        assert!(err.to_string().contains("slot evaluator exploded"), "{err}");
    }
}

/// With both an error and a later panic in the same batch, the surfaced failure is the
/// one from the lowest failing slot — the same first-error-in-slot-order contract the
/// fault-free engine guarantees — for any worker count.
#[test]
fn first_error_in_slot_order_survives_panic_containment() {
    let mut thetas: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 1.0]).collect();
    thetas[3][0] = ERROR_MARKER;
    thetas[6][0] = PANIC_MARKER;

    for workers in [2usize, 4] {
        let parallel = ParallelEvaluator::new(
            SlotFaultEvaluator {
                objectives: vec![Objective::ExecutionTime, Objective::Energy],
            },
            workers,
        );
        let err = parallel.evaluate_batch(&thetas).unwrap_err();
        assert_eq!(
            err,
            ParmisError::Evaluation {
                reason: "slot evaluator rejected θ".into(),
            },
            "{workers} workers: slot 3's error must outrank slot 6's panic"
        );
    }
}
