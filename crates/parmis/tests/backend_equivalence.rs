//! TraceReplay equivalence suite: recorded [`AnalyticSim`] runs must replay bit-identically.
//!
//! This is the contract that makes trace fixtures usable as exact regression anchors: for
//! every scenario-registry entry, recording a run and replaying it through the
//! [`TraceReplay`] backend reproduces the same [`RunAggregates`] — and therefore the same
//! objective vectors — down to the last bit, including after a JSON round trip of the
//! fixture store. A property test extends the same guarantee across random
//! (platform × workload × seed) combinations.

use parmis::backend::{AnalyticSim, EvalBackend, EvalContext, TraceReplay};
use parmis::prelude::*;
use proptest::prelude::*;
use soc_sim::platform::Platform;

fn platform_for(index: u8) -> Platform {
    match index % 3 {
        0 => Platform::odroid_xu3(),
        1 => Platform::hexa_asym(),
        _ => Platform::wearable(),
    }
}

fn benchmark_for(index: u8) -> Benchmark {
    Benchmark::ALL[index as usize % Benchmark::ALL.len()]
}

/// Every registry scenario: record one run per entry, replay it, and compare both the raw
/// [`soc_sim::platform::RunAggregates`] and the evaluator-level objective vector bitwise.
#[test]
fn every_registry_scenario_replays_bit_identically() {
    let scenarios = soc_sim::scenario::registry();
    assert!(!scenarios.is_empty());
    for scenario in &scenarios {
        let (recording, _) = AnalyticSim::recording();
        let recorder = std::sync::Arc::new(recording);
        let live = SocEvaluator::builder()
            .scenario(scenario)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .backend(recorder.clone())
            .build()
            .unwrap();
        let theta = vec![0.25; live.parameter_dim()];
        let live_objectives = live.evaluate(&theta).unwrap();

        // Raw aggregates level: drive the backends directly through the same context.
        let platform = scenario.platform();
        let application = scenario.application().unwrap();
        let ctx = EvalContext {
            platform: &platform,
            application: &application,
            seed: 17,
            cancel: None,
        };
        let mut buffers = live.sim_buffers();
        buffers.policy_mut().set_flat_parameters(&theta);
        let recorded_aggregates = recorder.run(&ctx, &mut buffers).unwrap();

        let store = recorder.snapshot_traces().unwrap();
        let replay_backend = TraceReplay::new(store);
        let replayed_aggregates = replay_backend.run(&ctx, &mut buffers).unwrap();
        assert_eq!(
            replayed_aggregates, recorded_aggregates,
            "scenario {}: replayed aggregates must be bit-identical",
            scenario.name
        );

        // Evaluator level: the whole objective pipeline (constraint penalty included)
        // agrees when fed from the replayed aggregates.
        let replay = SocEvaluator::builder()
            .scenario(scenario)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .backend(std::sync::Arc::new(replay_backend))
            .build()
            .unwrap();
        assert_eq!(
            replay.evaluate(&theta).unwrap(),
            live_objectives,
            "scenario {}: replayed objectives must be bit-identical",
            scenario.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Record/replay round trips are exact for arbitrary (platform × workload × seed)
    /// combinations, including through the JSON fixture format.
    #[test]
    fn record_replay_round_trips_bitwise(
        platform_idx in 0u8..3,
        benchmark_idx in 0u8..12,
        run_seed in 0u64..u64::MAX,
        coeff in -0.9f64..0.9,
    ) {
        let platform = platform_for(platform_idx);
        let benchmark = benchmark_for(benchmark_idx);
        let (recording, _) = AnalyticSim::recording();
        let recorder = std::sync::Arc::new(recording);
        let live = SocEvaluator::builder()
            .platform(platform)
            .benchmark(benchmark)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .run_seed(run_seed)
            .backend(recorder.clone())
            .build()
            .unwrap();
        let theta = vec![coeff; live.parameter_dim()];
        let live_objectives = live.evaluate(&theta).unwrap();

        // The fixture survives serialization: JSON round trip, then replay.
        let store = recorder.snapshot_traces().unwrap();
        let reloaded = TraceStore::from_json(&store.to_json()).unwrap();
        prop_assert_eq!(reloaded.len(), store.len());
        let replay = SocEvaluator::builder()
            .platform(platform_for(platform_idx))
            .benchmark(benchmark)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .run_seed(run_seed)
            .backend(std::sync::Arc::new(TraceReplay::new(reloaded)))
            .build()
            .unwrap();
        prop_assert_eq!(replay.evaluate(&theta).unwrap(), live_objectives);
    }
}

/// Replay must be dramatically cheaper than simulating — the point of recording fixtures.
/// Wall-clock sensitive, so ignored by default like the other release timing gates;
/// `cargo test -p parmis --release -- --ignored` runs it on capable hosts and the
/// `backend_matrix` bench bin tracks the same ratio as a CI artifact.
#[test]
#[ignore = "wall-clock sensitive; run with --release -- --ignored"]
fn trace_replay_is_5x_cheaper_than_simulation() {
    let scenario = soc_sim::scenario::by_name("odroid-pca-thermal").unwrap();
    let (recording, _) = AnalyticSim::recording();
    let recorder = std::sync::Arc::new(recording);
    let live = SocEvaluator::builder()
        .scenario(&scenario)
        .objectives(Objective::TIME_ENERGY.to_vec())
        .backend(recorder.clone())
        .build()
        .unwrap();
    let thetas: Vec<Vec<f64>> = (0..48)
        .map(|i| vec![(i as f64 / 48.0) - 0.5; live.parameter_dim()])
        .collect();
    let expected = live.evaluate_batch(&thetas).unwrap();

    let replay = SocEvaluator::builder()
        .scenario(&scenario)
        .objectives(Objective::TIME_ENERGY.to_vec())
        .backend(std::sync::Arc::new(TraceReplay::new(
            recorder.snapshot_traces().unwrap(),
        )))
        .build()
        .unwrap();
    // Replay is a function of (application, seed) only: every row folds the same trace.
    let replayed = replay.evaluate_batch(&thetas).unwrap();
    assert_eq!(replayed.len(), expected.len());

    let sim_only = SocEvaluator::builder()
        .scenario(&scenario)
        .objectives(Objective::TIME_ENERGY.to_vec())
        .build()
        .unwrap();
    let start = std::time::Instant::now();
    let _ = sim_only.evaluate_batch(&thetas).unwrap();
    let sim_time = start.elapsed();

    let start = std::time::Instant::now();
    let _ = replay.evaluate_batch(&thetas).unwrap();
    let replay_time = start.elapsed();

    assert!(
        sim_time.as_secs_f64() >= 5.0 * replay_time.as_secs_f64(),
        "replay should be >= 5x cheaper: sim {sim_time:?} vs replay {replay_time:?}"
    );
}
