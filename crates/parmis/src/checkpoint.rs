//! Checkpoint/resume state and the trace-hash audit for the resumable search runtime.
//!
//! A long-budget PaRMIS run can be interrupted (fuel exhaustion, a crash, a CI timeout) and
//! continued later **bit-identically**: everything the trajectory depends on is captured in
//! a [`SearchState`] — the observation history, the Pareto archive, the PHV trace, the RNG
//! cursor and the round structure — while the expensive derived quantities (GP Cholesky
//! factors, acquisition scratch) are deliberately excluded and recomputed on load by
//! replaying the exact model-fitting call sequence. A resumed run therefore produces the
//! same [`ParmisOutcome`](crate::framework::ParmisOutcome) as an uninterrupted one, down to
//! the last bit.
//!
//! # Trace hashes
//!
//! Every evaluation appends one link to an FNV-1a-style **hash chain**
//! ([`record_hash`] / [`hash_chain`]): the previous link folded with the record's iteration
//! index, its candidate θ, its observed objective vector, its acquisition value and the RNG
//! cursor at the time the record was appended. The chain is recorded in the checkpoint and
//! in the final outcome, and re-verified on resume — a resumed or replayed run proves
//! bit-identity to the uninterrupted trajectory by producing the same hash sequence, in the
//! style of a deterministic scheduler's replay checks.
//!
//! # Format and versioning
//!
//! Checkpoints serialize through the vendored serde stack as a flat JSON object
//! ([`SearchState::to_json`] / [`SearchState::from_json`]). The layout is guarded by
//! [`FORMAT_VERSION`]; two digests make stale or tampered files fail loudly instead of
//! resuming into a silently divergent trajectory:
//!
//! * `config_digest` — a fold over every **trajectory-affecting** configuration field
//!   (budgets, sampling/acquisition knobs, kernel family, seed, batch size). Knobs that
//!   only affect scheduling or segmentation — `num_workers`, `max_fuel`,
//!   `checkpoint_every`, the backend selection — are excluded, so a run suspended under a
//!   small fuel budget can be resumed under a different one.
//! * `state_digest` — a fold over the state itself (front snapshot, PHV trace, RNG words,
//!   round structure, chain head), recomputed and compared on load.

use crate::framework::{IterationRecord, ParmisConfig};
use crate::objective::Objective;
use crate::{ParmisError, Result};
use fastmath::Precision;
use gp::kernel::KernelFamily;
use moo::ParetoFront;
use serde::{Deserialize, Serialize};

/// Version stamp of the checkpoint JSON layout. Bump on any incompatible change.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a 64-bit offset basis: the head of every trace-hash chain.
pub const TRACE_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// One FNV-1a-style fold step: mixes a 64-bit word into a running hash.
#[inline]
pub fn fold(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

/// Folds an `f64` by its exact bit pattern (so the hash is sensitive to the last ULP).
#[inline]
pub fn fold_f64(hash: u64, value: f64) -> u64 {
    fold(hash, value.to_bits())
}

pub(crate) fn fold_str(hash: u64, text: &str) -> u64 {
    let mut h = fold(hash, text.len() as u64);
    for b in text.bytes() {
        h = fold(h, u64::from(b));
    }
    h
}

/// The hash-chain link appended for one evaluation: the previous link folded with the
/// record's fields (candidate, objectives, acquisition value) and the RNG cursor at the
/// time the record was appended.
pub fn record_hash(previous: u64, record: &IterationRecord, rng_state: &[u64; 4]) -> u64 {
    let mut h = fold(previous, record.iteration as u64);
    h = fold(h, record.theta.len() as u64);
    for &x in &record.theta {
        h = fold_f64(h, x);
    }
    h = fold(h, record.objectives.len() as u64);
    for &x in &record.objectives {
        h = fold_f64(h, x);
    }
    match record.acquisition_value {
        Some(a) => {
            h = fold(h, 1);
            h = fold_f64(h, a);
        }
        None => h = fold(h, 0),
    }
    for &w in rng_state {
        h = fold(h, w);
    }
    h
}

/// The full per-iteration trace-hash chain of a history, given the RNG cursor.
///
/// The main RNG is consumed only while drawing the initial design, which completes
/// atomically before the first record is appended — so a single cursor value covers every
/// link of the chain.
pub fn hash_chain(history: &[IterationRecord], rng_state: &[u64; 4]) -> Vec<u64> {
    let mut hashes = Vec::with_capacity(history.len());
    let mut prev = TRACE_HASH_SEED;
    for record in history {
        prev = record_hash(prev, record, rng_state);
        hashes.push(prev);
    }
    hashes
}

/// Digest over every trajectory-affecting field of a [`ParmisConfig`].
///
/// Scheduling/segmentation knobs (`num_workers`, `max_fuel`, `checkpoint_every`,
/// `deadline_ms`, the backend selection) are excluded: they change wall-clock behavior,
/// never the trajectory.
/// The precision tier *is* trajectory-affecting, but is folded in only when it differs
/// from the default [`Precision::SeedExact`] so digests of pre-precision checkpoints stay
/// valid.
pub fn config_digest(config: &ParmisConfig) -> u64 {
    let mut h = fold(TRACE_HASH_SEED, config.max_iterations as u64);
    h = fold(h, config.initial_samples as u64);
    h = fold(h, config.num_pareto_samples as u64);
    h = fold(h, config.sampling.rff_features as u64);
    h = fold(h, config.sampling.nsga_population as u64);
    h = fold(h, config.sampling.nsga_generations as u64);
    h = fold(h, config.acquisition.random_candidates as u64);
    h = fold(h, config.acquisition.local_candidates as u64);
    h = fold_f64(h, config.acquisition.local_perturbation);
    h = fold(
        h,
        match config.kernel_family {
            KernelFamily::SquaredExponential => 0,
            KernelFamily::Matern52 => 1,
        },
    );
    h = fold(h, config.refit_hyperparameters_every as u64);
    h = fold(h, config.convergence_window as u64);
    h = fold(h, config.seed);
    h = fold(h, config.batch_size as u64);
    if config.precision != Precision::SeedExact {
        h = fold_str(h, config.precision.name());
    }
    h
}

/// A serializable snapshot of a suspended PaRMIS search, taken at an iteration boundary.
///
/// Holds everything [`Parmis::resume`](crate::framework::Parmis::resume) needs to continue
/// bit-identically; GP factors and solver scratch are recomputed on load. Serialize with
/// [`to_json`](Self::to_json), reload with [`from_json`](Self::from_json) (which verifies
/// the format version, both digests and the full trace-hash chain).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchState {
    /// Checkpoint layout version ([`FORMAT_VERSION`]).
    pub format_version: u32,
    /// Digest of the trajectory-affecting configuration fields ([`config_digest`]).
    pub config_digest: u64,
    /// The design objectives, in evaluator order.
    pub objectives: Vec<Objective>,
    /// The iteration the resumed run continues from (`== history.len()`).
    pub next_iteration: usize,
    /// The xoshiro256++ state words of the main RNG at suspension.
    pub rng_state: Vec<u64>,
    /// Consecutive front-stale iterations (early-stopping counter).
    pub stale_iterations: usize,
    /// Every evaluation performed so far, in order.
    pub history: Vec<IterationRecord>,
    /// Objective vectors of the Pareto archive at suspension (audit snapshot; the archive
    /// is rebuilt from `history` on resume and verified against this).
    pub front_objectives: Vec<Vec<f64>>,
    /// Parameter vectors (tags) of the Pareto archive, aligned with `front_objectives`.
    pub front_tags: Vec<Vec<f64>>,
    /// PHV trajectory of the history so far, against the provisional reference point of
    /// this prefix (informational; the final outcome recomputes the trajectory against the
    /// full-history reference exactly like an uninterrupted run).
    pub phv_trace: Vec<f64>,
    /// Per-iteration trace-hash chain ([`hash_chain`]), re-verified on resume.
    pub trace_hashes: Vec<u64>,
    /// Iteration index at which each completed model-guided round began. Used to replay
    /// the exact model-fitting call sequence (last hyperopt refit, then each incremental
    /// extension) so the resumed GP cache is bit-identical to the uninterrupted one.
    pub round_starts: Vec<usize>,
    /// Digest over the snapshot itself, recomputed and checked on load.
    pub state_digest: u64,
}

use crate::error::CheckpointFault;

fn checkpoint_error(fault: CheckpointFault, reason: impl Into<String>) -> ParmisError {
    ParmisError::checkpoint(fault, reason)
}

impl SearchState {
    /// Snapshots a running search (framework-internal; all digests are computed here).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn capture(
        config: &ParmisConfig,
        objectives: &[Objective],
        history: &[IterationRecord],
        front: &ParetoFront<Vec<f64>>,
        stale_iterations: usize,
        rng_state: [u64; 4],
        trace_hashes: &[u64],
        round_starts: &[usize],
        phv_trace: Vec<f64>,
    ) -> SearchState {
        let mut state = SearchState {
            format_version: FORMAT_VERSION,
            config_digest: config_digest(config),
            objectives: objectives.to_vec(),
            next_iteration: history.len(),
            rng_state: rng_state.to_vec(),
            stale_iterations,
            history: history.to_vec(),
            front_objectives: front.iter().map(|e| e.objectives.clone()).collect(),
            front_tags: front.iter().map(|e| e.tag.clone()).collect(),
            phv_trace,
            trace_hashes: trace_hashes.to_vec(),
            round_starts: round_starts.to_vec(),
            state_digest: 0,
        };
        state.state_digest = state.compute_state_digest();
        state
    }

    /// Number of evaluations captured in this state.
    pub fn evaluations(&self) -> usize {
        self.history.len()
    }

    /// The last link of the trace-hash chain (`None` for an empty state).
    pub fn last_trace_hash(&self) -> Option<u64> {
        self.trace_hashes.last().copied()
    }

    /// Serializes the state as pretty-printed JSON through the vendored serde stack.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] if a captured value cannot be represented
    /// (non-finite floats never occur in a state captured by the framework).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| {
            checkpoint_error(
                CheckpointFault::Serialize,
                format!("checkpoint serialization failed: {e}"),
            )
        })
    }

    /// Parses and fully verifies a checkpoint previously written by
    /// [`to_json`](Self::to_json): format version, state digest, trace-hash chain and
    /// internal shape invariants all must hold.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] for malformed JSON, an unknown format version,
    /// or any integrity violation (a tampered or truncated state).
    pub fn from_json(text: &str) -> Result<SearchState> {
        let state: SearchState = serde_json::from_str(text).map_err(|e| {
            checkpoint_error(
                CheckpointFault::Parse,
                format!("checkpoint parse failed: {e}"),
            )
        })?;
        state.verify_integrity()?;
        Ok(state)
    }

    /// The RNG state words as a fixed-size array.
    pub(crate) fn rng_words(&self) -> Result<[u64; 4]> {
        <[u64; 4]>::try_from(self.rng_state.as_slice()).map_err(|_| {
            checkpoint_error(
                CheckpointFault::Invariant,
                "checkpoint RNG state must have exactly 4 words",
            )
        })
    }

    fn compute_state_digest(&self) -> u64 {
        let mut h = fold(TRACE_HASH_SEED, u64::from(self.format_version));
        h = fold(h, self.config_digest);
        for o in &self.objectives {
            h = fold_str(h, &format!("{o:?}"));
        }
        h = fold(h, self.next_iteration as u64);
        for &w in &self.rng_state {
            h = fold(h, w);
        }
        h = fold(h, self.stale_iterations as u64);
        h = fold(h, self.trace_hashes.len() as u64);
        h = fold(h, self.last_trace_hash().unwrap_or(TRACE_HASH_SEED));
        for &b in &self.round_starts {
            h = fold(h, b as u64);
        }
        h = fold(h, self.front_objectives.len() as u64);
        for (objectives, tag) in self.front_objectives.iter().zip(&self.front_tags) {
            for &x in objectives {
                h = fold_f64(h, x);
            }
            for &x in tag {
                h = fold_f64(h, x);
            }
        }
        h = fold(h, self.phv_trace.len() as u64);
        for &x in &self.phv_trace {
            h = fold_f64(h, x);
        }
        h
    }

    /// Verifies the state's internal consistency without reference to a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] naming the first violated invariant.
    pub fn verify_integrity(&self) -> Result<()> {
        if self.format_version != FORMAT_VERSION {
            return Err(checkpoint_error(
                CheckpointFault::VersionMismatch,
                format!(
                    "checkpoint format version {} is not the supported version {FORMAT_VERSION}",
                    self.format_version
                ),
            ));
        }
        if self.rng_state.len() != 4 {
            return Err(checkpoint_error(
                CheckpointFault::Invariant,
                "checkpoint RNG state must have exactly 4 words",
            ));
        }
        if self.objectives.is_empty() {
            return Err(checkpoint_error(
                CheckpointFault::Invariant,
                "checkpoint has no objectives",
            ));
        }
        let n = self.history.len();
        if self.next_iteration != n {
            return Err(checkpoint_error(
                CheckpointFault::Invariant,
                format!(
                    "next_iteration {} disagrees with history length {n}",
                    self.next_iteration
                ),
            ));
        }
        if self.trace_hashes.len() != n || self.phv_trace.len() != n {
            return Err(checkpoint_error(
                CheckpointFault::Invariant,
                "trace-hash chain / PHV trace length disagrees with the history",
            ));
        }
        if self.front_objectives.len() != self.front_tags.len() {
            return Err(checkpoint_error(
                CheckpointFault::Invariant,
                "front snapshot objectives/tags are misaligned",
            ));
        }
        let k = self.objectives.len();
        for (i, record) in self.history.iter().enumerate() {
            if record.iteration != i {
                return Err(checkpoint_error(
                    CheckpointFault::Invariant,
                    format!(
                        "history record {i} carries iteration index {}",
                        record.iteration
                    ),
                ));
            }
            if record.objectives.len() != k {
                return Err(checkpoint_error(
                    CheckpointFault::Invariant,
                    format!(
                        "history record {i} has {} objectives, expected {k}",
                        record.objectives.len()
                    ),
                ));
            }
            let finite = record
                .theta
                .iter()
                .chain(&record.objectives)
                .all(|x| x.is_finite())
                && record.acquisition_value.map_or(true, f64::is_finite);
            if !finite {
                return Err(checkpoint_error(
                    CheckpointFault::Invariant,
                    format!("history record {i} contains non-finite values"),
                ));
            }
        }
        if !self.phv_trace.iter().all(|x| x.is_finite()) {
            return Err(checkpoint_error(
                CheckpointFault::Invariant,
                "PHV trace contains non-finite values",
            ));
        }
        let rng = self.rng_words()?;
        if hash_chain(&self.history, &rng) != self.trace_hashes {
            return Err(checkpoint_error(
                CheckpointFault::TraceHashBreak,
                "trace-hash chain does not match the recorded history (state was tampered \
                 with, or written by an incompatible build)",
            ));
        }
        if self.compute_state_digest() != self.state_digest {
            return Err(checkpoint_error(
                CheckpointFault::DigestMismatch,
                "state digest mismatch (checkpoint is corrupt)",
            ));
        }
        Ok(())
    }

    /// Full resume-compatibility check against a configuration and an evaluator's
    /// objectives; returns the Pareto archive rebuilt from the history (verified against
    /// the snapshot).
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] on any integrity or compatibility violation.
    pub(crate) fn verify_for(
        &self,
        config: &ParmisConfig,
        objectives: &[Objective],
    ) -> Result<ParetoFront<Vec<f64>>> {
        self.verify_integrity()?;
        if self.config_digest != config_digest(config) {
            return Err(checkpoint_error(
                CheckpointFault::Incompatible,
                "configuration digest mismatch: the resuming ParmisConfig differs from the \
                 one that wrote this checkpoint in a trajectory-affecting field",
            ));
        }
        if self.objectives != objectives {
            return Err(checkpoint_error(
                CheckpointFault::Incompatible,
                format!(
                    "checkpoint objectives {:?} do not match the evaluator's {objectives:?}",
                    self.objectives
                ),
            ));
        }
        let mut front: ParetoFront<Vec<f64>> = ParetoFront::new(objectives.len());
        for record in &self.history {
            front.insert(record.objectives.clone(), record.theta.clone());
        }
        let rebuilt_objectives: Vec<&Vec<f64>> = front.iter().map(|e| &e.objectives).collect();
        let snapshot_objectives: Vec<&Vec<f64>> = self.front_objectives.iter().collect();
        let rebuilt_tags: Vec<&Vec<f64>> = front.iter().map(|e| &e.tag).collect();
        let snapshot_tags: Vec<&Vec<f64>> = self.front_tags.iter().collect();
        if rebuilt_objectives != snapshot_objectives || rebuilt_tags != snapshot_tags {
            return Err(checkpoint_error(
                CheckpointFault::Invariant,
                "Pareto archive rebuilt from the history does not match the checkpoint's \
                 front snapshot",
            ));
        }
        Ok(front)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: usize, bias: f64) -> IterationRecord {
        IterationRecord {
            iteration: i,
            theta: vec![bias, -bias],
            objectives: vec![1.0 + bias, 2.0 - bias],
            acquisition_value: if i > 0 { Some(0.5 * bias) } else { None },
        }
    }

    fn toy_state() -> SearchState {
        let config = ParmisConfig::default();
        let history: Vec<IterationRecord> = (0..4).map(|i| record(i, i as f64 * 0.1)).collect();
        let mut front = ParetoFront::new(2);
        for r in &history {
            front.insert(r.objectives.clone(), r.theta.clone());
        }
        let rng = [1, 2, 3, 4];
        let hashes = hash_chain(&history, &rng);
        SearchState::capture(
            &config,
            &[Objective::ExecutionTime, Objective::Energy],
            &history,
            &front,
            1,
            rng,
            &hashes,
            &[2, 3],
            vec![0.0, 0.1, 0.2, 0.3],
        )
    }

    #[test]
    fn hash_chain_is_deterministic_and_sensitive() {
        let history: Vec<IterationRecord> = (0..3).map(|i| record(i, 0.2)).collect();
        let rng = [9, 8, 7, 6];
        let a = hash_chain(&history, &rng);
        let b = hash_chain(&history, &rng);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);

        // Flipping one objective bit, the RNG cursor, or the acquisition value all change
        // the chain from that link on.
        let mut tampered = history.clone();
        tampered[1].objectives[0] = f64::from_bits(tampered[1].objectives[0].to_bits() ^ 1);
        let t = hash_chain(&tampered, &rng);
        assert_eq!(t[0], a[0]);
        assert_ne!(t[1], a[1]);
        assert_ne!(t[2], a[2]);
        assert_ne!(hash_chain(&history, &[9, 8, 7, 5]), a);
        let mut acq = history.clone();
        acq[2].acquisition_value = None;
        assert_ne!(hash_chain(&acq, &rng)[2], a[2]);
    }

    #[test]
    fn config_digest_covers_trajectory_fields_only() {
        let base = ParmisConfig::default();
        let digest = config_digest(&base);
        assert_eq!(digest, config_digest(&base.clone()));

        // Trajectory-affecting changes move the digest…
        for changed in [
            ParmisConfig {
                seed: base.seed ^ 1,
                ..base.clone()
            },
            ParmisConfig {
                max_iterations: base.max_iterations + 1,
                ..base.clone()
            },
            ParmisConfig {
                batch_size: base.batch_size + 1,
                ..base.clone()
            },
            ParmisConfig {
                refit_hyperparameters_every: base.refit_hyperparameters_every + 1,
                ..base.clone()
            },
        ] {
            assert_ne!(config_digest(&changed), digest);
        }

        // The fast precision tier changes the trajectory and must move the digest, but
        // the default SeedExact tier is folded as *absence* so legacy digests stay valid.
        let fast = ParmisConfig {
            precision: Precision::Fast,
            ..base.clone()
        };
        assert_ne!(config_digest(&fast), digest);

        // …scheduling/segmentation knobs do not.
        let rescheduled = ParmisConfig {
            num_workers: 7,
            max_fuel: 3,
            checkpoint_every: 5,
            deadline_ms: Some(120_000),
            ..base
        };
        assert_eq!(config_digest(&rescheduled), digest);
    }

    #[test]
    fn state_round_trips_losslessly_through_json() {
        let state = toy_state();
        let json = state.to_json().unwrap();
        let back = SearchState::from_json(&json).unwrap();
        assert_eq!(back, state);
        assert_eq!(back.evaluations(), 4);
        assert_eq!(back.last_trace_hash(), state.trace_hashes.last().copied());
    }

    #[test]
    fn tampered_checkpoints_are_rejected() {
        let state = toy_state();
        let json = state.to_json().unwrap();

        // Alter an objective value in the serialized history.
        let tampered = json.replacen("1.1", "1.125", 1);
        assert_ne!(tampered, json);
        let err = SearchState::from_json(&tampered).unwrap_err();
        assert!(matches!(err, ParmisError::Checkpoint { .. }), "{err}");

        // An unknown format version is refused outright.
        let mut wrong_version = state.clone();
        wrong_version.format_version = FORMAT_VERSION + 1;
        assert!(wrong_version.verify_integrity().is_err());

        // A truncated hash chain is refused.
        let mut truncated = state.clone();
        truncated.trace_hashes.pop();
        assert!(truncated.verify_integrity().is_err());

        // Malformed JSON is a structured checkpoint error, not a panic.
        assert!(matches!(
            SearchState::from_json("{"),
            Err(ParmisError::Checkpoint { .. })
        ));
    }

    #[test]
    fn verify_for_checks_config_and_objectives() {
        let state = toy_state();
        let config = ParmisConfig::default();
        let objectives = [Objective::ExecutionTime, Objective::Energy];
        let front = state.verify_for(&config, &objectives).unwrap();
        assert_eq!(front.len(), state.front_objectives.len());

        let other = ParmisConfig {
            seed: 1234,
            ..config.clone()
        };
        assert!(state.verify_for(&other, &objectives).is_err());
        assert!(state
            .verify_for(
                &config,
                &[Objective::ExecutionTime, Objective::PeakTemperature]
            )
            .is_err());

        // Fuel/worker knobs are resume-compatible by design.
        let refueled = ParmisConfig {
            max_fuel: 9,
            num_workers: 3,
            ..config
        };
        assert!(state.verify_for(&refueled, &objectives).is_ok());
    }
}
