//! Deterministic scoped-thread fan-out used by the batched evaluation engine.
//!
//! The only parallelism primitive the workspace needs is an ordered, work-stealing
//! `parallel_map`: apply a function to every item of a slice across a bounded pool of
//! `std::thread` workers and return the results **in input order**, so callers observe
//! exactly the same values as a serial loop no matter how many workers ran or how the
//! scheduler interleaved them. Combined with per-item deterministic seeding this is what
//! makes the PaRMIS Pareto front bit-identical for any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every element of `items` using up to `num_workers` OS threads and returns
/// the outputs in input order.
///
/// Work is distributed dynamically (an atomic cursor), so uneven per-item cost does not
/// stall the pool. With `num_workers <= 1`, a single item, or an empty slice the call runs
/// inline on the caller's thread with zero overhead.
///
/// # Panics
///
/// Propagates a panic from `f` after the scope joins its workers.
pub fn parallel_map<T, R, F>(items: &[T], num_workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if num_workers <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let workers = num_workers.min(items.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

/// Resolves a worker-count knob: `0` means "one worker per available CPU", anything else is
/// taken literally.
pub fn resolve_workers(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    } else {
        configured
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order_for_any_worker_count() {
        let items: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = parallel_map(&items, workers, |_, &x| x * x);
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c"];
        let got = parallel_map(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u8], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_workloads_still_merge_in_order() {
        // Later items are much cheaper than early ones; a naive chunking would reorder
        // completion, but the output must stay by-index.
        let items: Vec<u64> = (0..16).collect();
        let got = parallel_map(&items, 4, |_, &x| {
            let mut acc = 0u64;
            for i in 0..(16 - x) * 2_000 {
                acc = acc.wrapping_add(i);
            }
            (x, std::hint::black_box(acc).min(1))
        });
        let order: Vec<u64> = got.iter().map(|(x, _)| *x).collect();
        assert_eq!(order, items);
    }

    #[test]
    fn resolve_workers_expands_zero_to_available_parallelism() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }
}
