//! The PaRMIS main loop (Algorithm 1 of the paper).

use crate::acquisition::{AcquisitionOptimizer, AcquisitionOptimizerConfig};
use crate::cancel::{CancelReason, CancelToken};
use crate::checkpoint::{self, SearchState};
use crate::evaluation::PolicyEvaluator;
use crate::objective::Objective;
use crate::pareto_sampling::{AcquisitionScratch, ParetoFrontSampler, ParetoSamplingConfig};
use crate::{ParmisError, Result};
use fastmath::Precision;
use gp::hyperopt::{fit_with_hyperopt, HyperoptConfig};
use gp::kernel::KernelFamily;
use gp::GaussianProcess;
use moo::hypervolume::hypervolume;
use moo::ParetoFront;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use soc_sim::scenario::BackendKind;
use std::time::{Duration, Instant};

/// Configuration of a PaRMIS run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParmisConfig {
    /// Total evaluation budget, including the initial random design. The paper runs up to 500
    /// iterations and observes convergence within roughly 300 (§V-B, §V-C).
    pub max_iterations: usize,
    /// Number of random policies evaluated before model-guided selection starts.
    pub initial_samples: usize,
    /// Number of Monte-Carlo Pareto-front samples S in Eq. 9 (the paper uses S = 1).
    pub num_pareto_samples: usize,
    /// Configuration of the RFF + NSGA-II front-sampling step.
    pub sampling: ParetoSamplingConfig,
    /// Configuration of the acquisition maximizer.
    pub acquisition: AcquisitionOptimizerConfig,
    /// Kernel family of the per-objective GP models.
    pub kernel_family: KernelFamily,
    /// Re-run the marginal-likelihood hyperparameter search every this many iterations
    /// (hyperparameters are reused in between to keep the per-iteration cost flat).
    pub refit_hyperparameters_every: usize,
    /// Stop early when no new Pareto-front point has been found for this many consecutive
    /// iterations (0 disables early stopping).
    pub convergence_window: usize,
    /// RNG seed controlling the initial design, sampling and acquisition search.
    pub seed: u64,
    /// Number of candidates `q` selected and evaluated per model-guided iteration (the
    /// batched variant of Algorithm 1, line 4/5: the top-`q` acquisition scores instead of
    /// the argmax). `1` reproduces the paper's sequential loop exactly; larger batches
    /// amortize the model-fitting cost and let [`Parmis::run_parallel`] (or a
    /// [`ParallelEvaluator`](crate::evaluation::ParallelEvaluator)) evaluate the whole batch
    /// concurrently. Every RNG stream is derived from `(seed, iteration, slot)`, so the
    /// outcome is a deterministic function of the configuration regardless of scheduling.
    pub batch_size: usize,
    /// Worker threads used by [`Parmis::run_parallel`] to evaluate each batch (`0` = one per
    /// available CPU). Because batch results are merged in slot order and evaluators are
    /// pure, the Pareto front is **bit-identical for any worker count** — this knob trades
    /// wall-clock time only.
    pub num_workers: usize,
    /// Which evaluation backend to instantiate when this configuration assembles its own
    /// evaluator (e.g. `EvaluatorBuilder::backend_kind`). The selection uses the same
    /// serializable [`BackendKind`] as [`soc_sim::scenario::Scenario::backend`], so a run
    /// configuration round-trips through scenario JSON. The default,
    /// [`BackendKind::AnalyticSim`], is the bit-identity reference; evaluators built
    /// directly keep whatever backend they were given.
    pub backend: BackendKind,
    /// Numeric precision tier of the model-side math: [`Precision::SeedExact`] (the
    /// default) reproduces the seed trajectory bit for bit, while [`Precision::Fast`]
    /// switches the RFF posterior-sample cosines inside the Pareto-front sampling step to
    /// the [`fastmath`] kernels (bounded, contract-tested error; still deterministic and
    /// seeded, but a *different* deterministic trajectory than the exact tier). Excluded
    /// from the configuration digest while `SeedExact` so legacy checkpoints stay valid.
    pub precision: Precision,
    /// Fuel budget of one run **segment**: the maximum number of evaluations performed
    /// before the resumable entry points ([`Parmis::run_resumable`], [`Parmis::resume`])
    /// suspend cleanly at an iteration boundary and return a [`SearchState`]. `0` (the
    /// default) disables fuel accounting. The initial random design always completes
    /// atomically (and counts toward the fuel), so every captured state is resumable.
    /// Fuel only segments the run — it never changes the trajectory, so it is excluded
    /// from the checkpoint's configuration digest.
    pub max_fuel: usize,
    /// Checkpoint cadence in evaluations: the `*_with_checkpoints` entry points invoke
    /// their sink with a fresh [`SearchState`] after every round that crosses this many
    /// evaluations since the last checkpoint. `0` (the default) disables cadence
    /// checkpoints. Like [`max_fuel`](Self::max_fuel), this is a scheduling knob and does
    /// not affect the trajectory or the configuration digest.
    pub checkpoint_every: usize,
    /// Wall-clock deadline of one run **segment**, in milliseconds: once this much time has
    /// elapsed, the resumable entry points suspend at the next iteration boundary with
    /// [`StopReason::Cancelled`]\([`CancelReason::Deadline`]) instead of starting another
    /// round. `None` (the default) disables the budget; `Some(0)` is rejected by
    /// validation (it could never pay for a single round — use cancellation for
    /// "stop now"). Like [`max_fuel`](Self::max_fuel), the deadline only decides *when*
    /// the segment suspends, never what is computed, so it is excluded from the
    /// checkpoint's configuration digest and resumed runs stay bit-identical.
    pub deadline_ms: Option<u64>,
}

impl Default for ParmisConfig {
    fn default() -> Self {
        ParmisConfig {
            max_iterations: 200,
            initial_samples: 10,
            num_pareto_samples: 1,
            sampling: ParetoSamplingConfig::default(),
            acquisition: AcquisitionOptimizerConfig::default(),
            kernel_family: KernelFamily::Matern52,
            refit_hyperparameters_every: 20,
            convergence_window: 0,
            seed: 0x9a92_0c1e,
            batch_size: 1,
            num_workers: 1,
            backend: BackendKind::AnalyticSim,
            precision: Precision::SeedExact,
            max_fuel: 0,
            checkpoint_every: 0,
            deadline_ms: None,
        }
    }
}

/// One evaluated policy: the search keeps the full trace for convergence analysis (Fig. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Zero-based evaluation index (initial design included).
    pub iteration: usize,
    /// Policy parameters that were evaluated.
    pub theta: Vec<f64>,
    /// Observed minimization objective vector.
    pub objectives: Vec<f64>,
    /// Acquisition value of the selected candidate (`None` during the initial design).
    pub acquisition_value: Option<f64>,
}

/// Why a run segment stopped driving the search: the terminal causes recorded in a
/// completed [`ParmisOutcome`] and the suspension causes carried by
/// [`SearchStep::Suspended`]. One table, so reports and journal notes never have to
/// stitch two vocabularies together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StopReason {
    /// The evaluation budget ([`ParmisConfig::max_iterations`]) was spent.
    BudgetExhausted,
    /// The convergence criterion fired ([`ParmisConfig::convergence_window`]).
    Converged,
    /// The segment's fuel budget ([`ParmisConfig::max_fuel`]) expired at an iteration
    /// boundary.
    FuelExhausted,
    /// The segment was cooperatively cancelled at an iteration boundary — by an explicit
    /// request, a wall-clock deadline, a stall monitor, a process signal, or an ancestor
    /// scope (see [`CancelReason`]).
    Cancelled(CancelReason),
}

impl StopReason {
    /// Stable kebab-case name, used in journal notes and reports. [`Display`](std::fmt::Display)
    /// additionally includes the [`CancelReason`] of a cancellation.
    pub fn name(&self) -> &'static str {
        match self {
            StopReason::BudgetExhausted => "budget-exhausted",
            StopReason::Converged => "converged",
            StopReason::FuelExhausted => "fuel-exhausted",
            StopReason::Cancelled(_) => "cancelled",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::Cancelled(reason) => write!(f, "cancelled [{reason}]"),
            other => f.write_str(other.name()),
        }
    }
}

/// Result of a PaRMIS run.
#[derive(Debug, Clone)]
pub struct ParmisOutcome {
    /// The design objectives, in the order used by every objective vector.
    pub objectives: Vec<Objective>,
    /// Pareto-frontier policies: objective vectors with their parameter vectors as tags.
    pub front: ParetoFront<Vec<f64>>,
    /// Every evaluation performed, in order.
    pub history: Vec<IterationRecord>,
    /// Pareto-hypervolume trajectory: PHV of the archive after each evaluation, computed
    /// against [`Self::reference_point`]. This is the curve of Fig. 2.
    pub phv_history: Vec<f64>,
    /// Reference point used for the PHV trajectory (worse than every observed point).
    pub reference_point: Vec<f64>,
    /// Iteration at which the convergence criterion fired, if early stopping was enabled.
    pub converged_at: Option<usize>,
    /// Per-iteration trace-hash chain ([`checkpoint::hash_chain`]) of the run: the audit
    /// trail that proves a resumed run followed the uninterrupted trajectory bit for bit.
    pub trace_hashes: Vec<u64>,
    /// Why the completed run stopped: [`StopReason::Converged`] when early stopping
    /// fired, [`StopReason::BudgetExhausted`] otherwise. (Suspension causes travel on
    /// [`SearchStep::Suspended`] instead — a suspended segment has no outcome yet.)
    pub stop_reason: StopReason,
}

impl ParmisOutcome {
    /// A well-defined zero-evaluation outcome: empty archive and history, an all-margin
    /// reference point (no NaNs), `final_phv() == 0`. This is the value a degenerate
    /// zero-iteration run reports instead of poisoning downstream consumers with NaN.
    pub fn empty(objectives: Vec<Objective>) -> ParmisOutcome {
        let k = objectives.len();
        ParmisOutcome {
            objectives,
            front: ParetoFront::new(k),
            history: Vec::new(),
            phv_history: Vec::new(),
            reference_point: vec![0.05; k],
            converged_at: None,
            trace_hashes: Vec::new(),
            stop_reason: StopReason::BudgetExhausted,
        }
    }

    /// Final Pareto hypervolume: the last entry of the trajectory, or `0.0` for an empty
    /// run (an empty history has an empty `phv_history` and a finite margin-only
    /// reference point, so this is the exact hypervolume of the empty archive, not a
    /// sentinel).
    pub fn final_phv(&self) -> f64 {
        self.phv_history.last().copied().unwrap_or(0.0)
    }

    /// Objective vectors of the final front converted to the natural reporting scale
    /// (maximized objectives un-negated).
    pub fn reporting_front(&self) -> Vec<Vec<f64>> {
        self.front
            .objective_values()
            .iter()
            .map(|v| crate::objective::reporting_vector(&self.objectives, v))
            .collect()
    }
}

/// Result of one resumable run segment: either the search finished, or it suspended at an
/// iteration boundary — because the fuel budget ([`ParmisConfig::max_fuel`]) expired, or
/// because a cancellation (deadline, stall, signal, explicit request) was observed.
#[derive(Debug, Clone)]
pub enum SearchStep {
    /// The search ran to completion (budget exhausted or converged).
    Completed(Box<ParmisOutcome>),
    /// The segment suspended; the state can be serialized ([`SearchState::to_json`]) and
    /// later handed to [`Parmis::resume`] to continue bit-identically, regardless of
    /// which `reason` ([`StopReason::FuelExhausted`] or [`StopReason::Cancelled`])
    /// suspended it.
    Suspended {
        /// The resumable mid-search state, captured at the iteration boundary.
        state: Box<SearchState>,
        /// Why the segment suspended.
        reason: StopReason,
    },
}

impl SearchStep {
    /// `true` if this segment suspended (fuel exhaustion or cancellation).
    pub fn is_suspended(&self) -> bool {
        matches!(self, SearchStep::Suspended { .. })
    }

    /// Why this segment stopped: the outcome's recorded reason if it completed, the
    /// suspension reason otherwise.
    pub fn stop_reason(&self) -> StopReason {
        match self {
            SearchStep::Completed(outcome) => outcome.stop_reason,
            SearchStep::Suspended { reason, .. } => *reason,
        }
    }

    /// The completed outcome, if the search finished.
    pub fn into_completed(self) -> Option<ParmisOutcome> {
        match self {
            SearchStep::Completed(outcome) => Some(*outcome),
            SearchStep::Suspended { .. } => None,
        }
    }

    /// The suspended state, if the segment suspended.
    pub fn into_suspended(self) -> Option<SearchState> {
        match self {
            SearchStep::Completed(_) => None,
            SearchStep::Suspended { state, .. } => Some(*state),
        }
    }
}

/// The PaRMIS search driver.
#[derive(Debug, Clone)]
pub struct Parmis {
    config: ParmisConfig,
    cancel: CancelToken,
}

impl Parmis {
    /// Creates a driver with the given configuration (and no cancellation wiring: the
    /// search only stops on budget, convergence, fuel, or its own deadline).
    pub fn new(config: ParmisConfig) -> Self {
        Parmis {
            config,
            cancel: CancelToken::never(),
        }
    }

    /// Wires a cancellation token into the driver: the search checks it at every
    /// iteration boundary and suspends with [`StopReason::Cancelled`] once it trips, and
    /// beats its heartbeat as rounds complete. Evaluators carry their own token wiring
    /// (e.g. [`crate::evaluation::EvaluatorBuilder::cancel_token`]) for the finer-grained
    /// mid-round checks.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &ParmisConfig {
        &self.config
    }

    /// Runs Algorithm 1 against `evaluator`.
    ///
    /// Batches are evaluated through [`PolicyEvaluator::evaluate_batch`]; hand in a
    /// [`ParallelEvaluator`](crate::evaluation::ParallelEvaluator) (or call
    /// [`run_parallel`](Self::run_parallel)) to spread each batch across worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::InvalidConfig`] for inconsistent configurations and propagates
    /// evaluation/model failures.
    pub fn run(&self, evaluator: &dyn PolicyEvaluator) -> Result<ParmisOutcome> {
        self.run_with_progress(evaluator, |_, _| {})
    }

    /// Runs Algorithm 1 with batches sharded across [`ParmisConfig::num_workers`] threads.
    ///
    /// This is `run(&ParallelEvaluator::new(evaluator, config.num_workers))` spelled as a
    /// convenience; the outcome is bit-identical to [`run`](Self::run) for any worker count.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_parallel<E: PolicyEvaluator + Sync>(&self, evaluator: &E) -> Result<ParmisOutcome> {
        let parallel =
            crate::evaluation::ParallelEvaluator::new(evaluator, self.config.num_workers);
        self.run(&parallel)
    }

    /// Runs Algorithm 1, invoking `progress` after every evaluation (used by the figure
    /// harness to print convergence traces). With `batch_size > 1` the callback fires once
    /// per batch slot, in slot order, after the whole batch has been evaluated.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_with_progress<F>(
        &self,
        evaluator: &dyn PolicyEvaluator,
        mut progress: F,
    ) -> Result<ParmisOutcome>
    where
        F: FnMut(usize, &IterationRecord),
    {
        match self.drive(evaluator, None, &mut progress, &mut |_| Ok(()))? {
            SearchStep::Completed(outcome) => Ok(*outcome),
            SearchStep::Suspended {
                reason: StopReason::Cancelled(reason),
                ..
            } => Err(ParmisError::cancelled(reason)),
            SearchStep::Suspended { .. } => Err(ParmisError::checkpoint(
                crate::error::CheckpointFault::Incompatible,
                "the fuel budget expired before the search completed; call run_resumable \
                 to obtain the suspended state",
            )),
        }
    }

    /// Runs Algorithm 1 under the fuel budget: completes, or suspends cleanly at an
    /// iteration boundary once [`ParmisConfig::max_fuel`] evaluations have been performed
    /// this segment, returning a serializable [`SearchState`].
    ///
    /// With `max_fuel == 0` this never suspends and behaves exactly like
    /// [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_resumable(&self, evaluator: &dyn PolicyEvaluator) -> Result<SearchStep> {
        self.drive(evaluator, None, &mut |_, _| {}, &mut |_| Ok(()))
    }

    /// Like [`run_resumable`](Self::run_resumable), additionally invoking `on_checkpoint`
    /// with a fresh [`SearchState`] every [`ParmisConfig::checkpoint_every`] evaluations
    /// (a durability sink: write the state to disk so a crash loses at most one cadence
    /// window). A sink error aborts the run.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run), plus whatever `on_checkpoint` returns.
    pub fn run_resumable_with_checkpoints<F>(
        &self,
        evaluator: &dyn PolicyEvaluator,
        mut on_checkpoint: F,
    ) -> Result<SearchStep>
    where
        F: FnMut(&SearchState) -> Result<()>,
    {
        self.drive(evaluator, None, &mut |_, _| {}, &mut on_checkpoint)
    }

    /// Continues a suspended search from `state`, bit-identically to the uninterrupted
    /// run: the observation history, Pareto archive, RNG cursor and convergence counters
    /// are restored, the GP cache is rebuilt by replaying the recorded model-fitting call
    /// sequence, and the per-iteration trace-hash chain is re-verified before any new
    /// evaluation happens. The segment again honors [`ParmisConfig::max_fuel`], so a long
    /// run can be carried across many suspend/resume cycles.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] if the state fails integrity verification or
    /// is incompatible with this configuration/evaluator, plus everything
    /// [`run`](Self::run) can return.
    pub fn resume(
        &self,
        state: SearchState,
        evaluator: &dyn PolicyEvaluator,
    ) -> Result<SearchStep> {
        self.drive(evaluator, Some(state), &mut |_, _| {}, &mut |_| Ok(()))
    }

    /// [`resume`](Self::resume) with a cadence checkpoint sink, mirroring
    /// [`run_resumable_with_checkpoints`](Self::run_resumable_with_checkpoints).
    ///
    /// # Errors
    ///
    /// Same as [`resume`](Self::resume), plus whatever `on_checkpoint` returns.
    pub fn resume_with_checkpoints<F>(
        &self,
        state: SearchState,
        evaluator: &dyn PolicyEvaluator,
        mut on_checkpoint: F,
    ) -> Result<SearchStep>
    where
        F: FnMut(&SearchState) -> Result<()>,
    {
        self.drive(evaluator, Some(state), &mut |_, _| {}, &mut on_checkpoint)
    }

    /// The search engine behind every entry point: fresh runs (`resume_from == None`) and
    /// resumed segments share this loop, which is what makes resume bit-identity a
    /// structural property rather than a test assertion.
    fn drive(
        &self,
        evaluator: &dyn PolicyEvaluator,
        resume_from: Option<SearchState>,
        progress: &mut dyn FnMut(usize, &IterationRecord),
        on_checkpoint: &mut dyn FnMut(&SearchState) -> Result<()>,
    ) -> Result<SearchStep> {
        self.validate(evaluator)?;
        let cfg = &self.config;
        let dim = evaluator.parameter_dim();
        let bound = evaluator.parameter_bound();
        let objectives = evaluator.objectives().to_vec();
        let k = objectives.len();

        let mut converged_at = None;
        // One fitted GP per objective, carried across iterations: on non-hyperopt rounds the
        // models are advanced incrementally (rank-one Cholesky extension + target swap)
        // instead of being refit from scratch.
        let mut model_cache: Option<Vec<GaussianProcess>> = None;
        // One acquisition scratch for the whole run: the flat NSGA-II engine, RFF weight
        // buffers and batched output column warm up on the first Pareto-front sample and
        // are reused by every later iteration instead of rebuilding solver state.
        let mut acquisition_scratch = AcquisitionScratch::default();
        // Fuel/cadence accounting is per segment: a resumed run gets a fresh budget, and
        // the wall-clock deadline (when configured) starts counting now.
        let mut segment_evaluations = 0usize;
        let mut evals_since_checkpoint = 0usize;
        let deadline = cfg
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));

        let (
            mut rng,
            mut history,
            mut front,
            mut stale_iterations,
            mut trace_hashes,
            mut round_starts,
        );
        match resume_from {
            None => {
                rng = StdRng::seed_from_u64(cfg.seed);
                history = Vec::with_capacity(cfg.max_iterations);
                front = ParetoFront::new(k);
                stale_iterations = 0usize;
                trace_hashes = Vec::with_capacity(cfg.max_iterations);
                round_starts = Vec::new();

                // --- Initial design (Algorithm 1, line 1) -----------------------------------
                // The candidate parameters are drawn from a single sequential stream
                // (independent of batch size and worker count) and then evaluated as one
                // batch. This is the only place the main RNG is consumed, so its cursor is
                // constant from here on — one stored state word set covers the whole chain.
                let initial = cfg.initial_samples.min(cfg.max_iterations).max(2);
                let initial_thetas: Vec<Vec<f64>> = (0..initial)
                    .map(|_| (0..dim).map(|_| rng.gen_range(-bound..bound)).collect())
                    .collect();
                let initial_values = evaluator.evaluate_batch(&initial_thetas)?;
                let rng_words = rng.state();
                for (i, (theta, objectives_value)) in
                    initial_thetas.into_iter().zip(initial_values).enumerate()
                {
                    self.check_objective_vector(&objectives_value, k)?;
                    front.insert(objectives_value.clone(), theta.clone());
                    let record = IterationRecord {
                        iteration: i,
                        theta,
                        objectives: objectives_value,
                        acquisition_value: None,
                    };
                    let prev = trace_hashes
                        .last()
                        .copied()
                        .unwrap_or(checkpoint::TRACE_HASH_SEED);
                    trace_hashes.push(checkpoint::record_hash(prev, &record, &rng_words));
                    progress(i, &record);
                    history.push(record);
                }
                segment_evaluations += initial;
                evals_since_checkpoint += initial;
            }
            Some(state) => {
                // Integrity + compatibility verification (format version, digests, hash
                // chain, front snapshot) happens before a single evaluation is spent.
                front = state.verify_for(cfg, &objectives)?;
                rng = StdRng::from_state(state.rng_words()?);
                stale_iterations = state.stale_iterations;
                history = state.history;
                trace_hashes = state.trace_hashes;
                round_starts = state.round_starts;
                // Rebuild the GP cache exactly as the uninterrupted run would have left it
                // by replaying the recorded model-fitting call sequence.
                model_cache = self.replay_model_cache(&history, &round_starts, k, dim, bound)?;
            }
        }

        // --- Model-guided iterations (Algorithm 1, lines 2-8), q candidates per round ------
        // Every stochastic choice below is seeded from (cfg.seed, iteration), and candidate
        // slots within a round are merged in order, so the full trajectory is a pure function
        // of the configuration — independent of batch evaluation scheduling, worker count,
        // and suspend/resume segmentation.
        let rng_words = rng.state();
        let mut iteration = history.len();
        'rounds: while iteration < cfg.max_iterations {
            // Fuel / cancellation / deadline checks at the round boundary: suspend with a
            // resumable state instead of starting a round that should not (or cannot) be
            // paid for. The checks only gate *whether* the next round starts — the state
            // captured is exactly the round-boundary state an uninterrupted run passes
            // through, so resuming from it is bit-identical.
            let suspend_reason = if let Some(reason) = self.cancel.cancelled() {
                Some(StopReason::Cancelled(reason))
            } else if deadline.is_some_and(|d| Instant::now() >= d) {
                Some(StopReason::Cancelled(CancelReason::Deadline))
            } else if cfg.max_fuel > 0 && segment_evaluations >= cfg.max_fuel {
                Some(StopReason::FuelExhausted)
            } else {
                None
            };
            if let Some(reason) = suspend_reason {
                return Ok(SearchStep::Suspended {
                    state: Box::new(self.snapshot(
                        &objectives,
                        &history,
                        &front,
                        stale_iterations,
                        &rng,
                        &trace_hashes,
                        &round_starts,
                    )),
                    reason,
                });
            }
            let q = cfg.batch_size.min(cfg.max_iterations - iteration).max(1);

            // Line 3: learn statistical models from the aggregate training data.
            let xs: Vec<Vec<f64>> = history.iter().map(|r| r.theta.clone()).collect();
            round_starts.push(iteration);
            self.fit_models(&xs, &history, k, dim, bound, iteration, &mut model_cache)?;
            let models = model_cache.as_deref().expect("fit_models fills the cache");

            // Line 4 (part 1): sample Pareto fronts of the model.
            let sampler = ParetoFrontSampler::new_with_precision(
                models,
                bound,
                cfg.sampling.clone(),
                cfg.seed ^ (iteration as u64).wrapping_mul(0x9e3779b97f4a7c15),
                cfg.precision,
            )?;
            let samples = sampler.sample_many_with(
                &mut acquisition_scratch,
                cfg.num_pareto_samples,
                cfg.seed ^ (iteration as u64) << 8,
            )?;

            // Line 4 (part 2): take the top-q information-gain candidates instead of the
            // argmax.
            let incumbents: Vec<Vec<f64>> = front.tags().into_iter().cloned().collect();
            let optimizer = AcquisitionOptimizer::new(dim, bound, cfg.acquisition.clone());
            let selected = optimizer.maximize_batch(
                models,
                &samples,
                &incumbents,
                q,
                cfg.seed ^ (iteration as u64).wrapping_mul(0xB5297A4D),
            )?;

            // Line 5: evaluate the selected policies on the platform as one batch.
            let thetas: Vec<Vec<f64>> = selected.iter().map(|(theta, _)| theta.clone()).collect();
            let values = evaluator.evaluate_batch(&thetas)?;

            // Line 6: aggregate training data slot by slot; track whether the front improved.
            let evaluated = selected.len();
            for (slot, ((theta, acq_value), objectives_value)) in
                selected.into_iter().zip(values).enumerate()
            {
                self.check_objective_vector(&objectives_value, k)?;
                let improved = front.insert(objectives_value.clone(), theta.clone());
                let record = IterationRecord {
                    iteration: iteration + slot,
                    theta,
                    objectives: objectives_value,
                    acquisition_value: Some(acq_value),
                };
                let prev = trace_hashes
                    .last()
                    .copied()
                    .unwrap_or(checkpoint::TRACE_HASH_SEED);
                trace_hashes.push(checkpoint::record_hash(prev, &record, &rng_words));
                progress(iteration + slot, &record);
                history.push(record);

                if improved {
                    stale_iterations = 0;
                } else {
                    stale_iterations += 1;
                }
                if cfg.convergence_window > 0 && stale_iterations >= cfg.convergence_window {
                    converged_at = Some(iteration + slot);
                    break 'rounds;
                }
            }
            iteration += evaluated;
            segment_evaluations += evaluated;
            evals_since_checkpoint += evaluated;
            // One heartbeat per completed round: the supervisor's stall monitor watches
            // this counter move (evaluators additionally beat per batch slot).
            self.cancel.beat();

            // Cadence checkpoint: hand a durable snapshot to the sink at the round
            // boundary (never after the final round — that segment returns an outcome).
            if cfg.checkpoint_every > 0
                && evals_since_checkpoint >= cfg.checkpoint_every
                && iteration < cfg.max_iterations
            {
                on_checkpoint(&self.snapshot(
                    &objectives,
                    &history,
                    &front,
                    stale_iterations,
                    &rng,
                    &trace_hashes,
                    &round_starts,
                ))?;
                evals_since_checkpoint = 0;
            }
        }

        Ok(SearchStep::Completed(Box::new(build_outcome(
            objectives,
            front,
            history,
            trace_hashes,
            converged_at,
        ))))
    }

    /// Captures the running search as a [`SearchState`] (round-boundary invariant: the
    /// history, archive, hash chain and round structure are all mutually consistent here).
    #[allow(clippy::too_many_arguments)]
    fn snapshot(
        &self,
        objectives: &[Objective],
        history: &[IterationRecord],
        front: &ParetoFront<Vec<f64>>,
        stale_iterations: usize,
        rng: &StdRng,
        trace_hashes: &[u64],
        round_starts: &[usize],
    ) -> SearchState {
        let k = objectives.len();
        let reference = phv_reference(history, k);
        let phv_trace = phv_trajectory(history, &reference, k);
        SearchState::capture(
            &self.config,
            objectives,
            history,
            front,
            stale_iterations,
            rng.state(),
            trace_hashes,
            round_starts,
            phv_trace,
        )
    }

    /// Rebuilds the GP model cache a resumed segment starts from, bit-identically to the
    /// cache the uninterrupted run would be carrying.
    ///
    /// The cache at iteration `n` is the result of a *sequence* of [`fit_models`] calls —
    /// a hyperopt refit at the last refit boundary followed by one incremental extension
    /// per later round. Replaying that exact call sequence (recorded in `round_starts`)
    /// reproduces the cache including its incremental Cholesky extensions; fitting from
    /// scratch on the full history would produce subtly different factors and break
    /// bit-identity. When the next round will refit anyway, the cache contents are
    /// irrelevant and the replay is skipped.
    fn replay_model_cache(
        &self,
        history: &[IterationRecord],
        round_starts: &[usize],
        k: usize,
        dim: usize,
        bound: f64,
    ) -> Result<Option<Vec<GaussianProcess>>> {
        let cfg = &self.config;
        let next_iteration = history.len();
        if round_starts.is_empty() {
            return Ok(None);
        }
        if next_iteration.saturating_sub(cfg.initial_samples) % cfg.refit_hyperparameters_every == 0
        {
            return Ok(None);
        }
        // The first recorded round always refit (the cache was empty); later boundaries
        // refit on the hyperopt cadence.
        let mut last_refit = round_starts[0];
        for &boundary in &round_starts[1..] {
            if boundary.saturating_sub(cfg.initial_samples) % cfg.refit_hyperparameters_every == 0 {
                last_refit = boundary;
            }
        }
        let mut cache = None;
        for &boundary in round_starts.iter().filter(|&&b| b >= last_refit) {
            let xs: Vec<Vec<f64>> = history[..boundary]
                .iter()
                .map(|r| r.theta.clone())
                .collect();
            self.fit_models(
                &xs,
                &history[..boundary],
                k,
                dim,
                bound,
                boundary,
                &mut cache,
            )?;
        }
        Ok(cache)
    }

    fn validate(&self, evaluator: &dyn PolicyEvaluator) -> Result<()> {
        let cfg = &self.config;
        if cfg.max_iterations < 3 {
            return Err(ParmisError::InvalidConfig {
                reason: "max_iterations must be at least 3".into(),
            });
        }
        if cfg.num_pareto_samples == 0 {
            return Err(ParmisError::InvalidConfig {
                reason: "num_pareto_samples must be positive".into(),
            });
        }
        if cfg.batch_size == 0 {
            return Err(ParmisError::InvalidConfig {
                reason: "batch_size must be positive".into(),
            });
        }
        if cfg.acquisition.random_candidates == 0 {
            return Err(ParmisError::InvalidConfig {
                reason: "the acquisition optimizer needs at least one random candidate".into(),
            });
        }
        if cfg.refit_hyperparameters_every == 0 {
            return Err(ParmisError::InvalidConfig {
                reason: "refit_hyperparameters_every must be positive (1 refits every round)"
                    .into(),
            });
        }
        if evaluator.objectives().len() < 2 {
            return Err(ParmisError::InvalidConfig {
                reason: "PaRMIS needs at least two objectives to trade off".into(),
            });
        }
        if evaluator.parameter_dim() == 0 {
            return Err(ParmisError::InvalidConfig {
                reason: "the policy parameter space must have positive dimension".into(),
            });
        }
        let bound = evaluator.parameter_bound();
        if !(bound.is_finite() && bound > 0.0) {
            return Err(ParmisError::InvalidConfig {
                reason: format!(
                    "the parameter bound must be a positive finite number, got {bound}"
                ),
            });
        }
        if cfg.deadline_ms == Some(0) {
            return Err(ParmisError::InvalidConfig {
                reason: "deadline_ms must be positive when set (a zero budget could never \
                         pay for a round; use a CancelToken to stop a search immediately)"
                    .into(),
            });
        }
        Ok(())
    }

    fn check_objective_vector(&self, v: &[f64], k: usize) -> Result<()> {
        if v.len() != k || v.iter().any(|x| !x.is_finite()) {
            return Err(ParmisError::Evaluation {
                reason: format!("evaluator returned an invalid objective vector {v:?}"),
            });
        }
        Ok(())
    }

    /// Fits one GP per objective on standardized targets, leaving the result in `cache`.
    ///
    /// Kernel hyperparameters are selected by marginal likelihood every
    /// `refit_hyperparameters_every` iterations. In between, the cached models are advanced
    /// **incrementally**: the kernel matrix grows by one rank-one Cholesky extension per new
    /// evaluation (`O(n²)` instead of the `O(n³)` from-scratch refit) and the freshly
    /// re-standardized targets are swapped in with two triangular solves
    /// ([`GaussianProcess::with_observations_and_targets`]) — the kernel matrix does not
    /// depend on the targets, so re-standardization never forces a refactorization.
    #[allow(clippy::too_many_arguments)]
    fn fit_models(
        &self,
        xs: &[Vec<f64>],
        history: &[IterationRecord],
        k: usize,
        dim: usize,
        bound: f64,
        iteration: usize,
        cache: &mut Option<Vec<GaussianProcess>>,
    ) -> Result<()> {
        let cfg = &self.config;
        let refit = cache.is_none()
            || (iteration.saturating_sub(cfg.initial_samples)) % cfg.refit_hyperparameters_every
                == 0;
        let previous = cache.take();
        let mut models = Vec::with_capacity(k);

        for j in 0..k {
            let raw: Vec<f64> = history.iter().map(|r| r.objectives[j]).collect();
            let mean = linalg::vector::mean(&raw);
            let std = linalg::vector::std_dev(&raw).max(1e-9);
            let ys: Vec<f64> = raw.iter().map(|y| (y - mean) / std).collect();

            if refit {
                let config = HyperoptConfig {
                    family: cfg.kernel_family,
                    lengthscales: lengthscale_grid(dim, bound),
                    signal_variances: vec![0.5, 1.0, 2.0],
                    noise_variances: vec![1e-4, 1e-2],
                    refinement_passes: 1,
                };
                let fitted = fit_with_hyperopt(xs.to_vec(), ys, &config)?;
                models.push(fitted.model);
            } else {
                let prev = &previous.as_ref().expect("cache present when not refitting")[j];
                let n_prev = prev.len();
                debug_assert!(n_prev <= xs.len(), "history only ever grows within a run");
                // One call extends the factor by the new evaluations AND installs the
                // re-standardized targets for every point, with a single pair of solves.
                let incremental = prev.with_observations_and_targets(&xs[n_prev..], ys.clone());
                let model = match incremental {
                    Ok(model) => model,
                    // Extremely degenerate geometry can defeat even the jittered fallback
                    // inside the incremental path; refit from scratch with the cached
                    // hyperparameters rather than abort the search.
                    Err(_) => GaussianProcess::fit(
                        xs.to_vec(),
                        ys,
                        prev.kernel().clone(),
                        prev.noise_variance(),
                    )?,
                };
                models.push(model);
            }
        }
        *cache = Some(models);
        Ok(())
    }
}

/// Lengthscale candidates scaled to the expected pairwise distance of uniform points in the
/// box `[-bound, bound]^dim`.
fn lengthscale_grid(dim: usize, bound: f64) -> Vec<f64> {
    let typical_distance = bound * (2.0 * dim as f64 / 3.0).sqrt();
    [0.25, 0.5, 1.0, 2.0]
        .iter()
        .map(|f| f * typical_distance)
        .collect()
}

/// Builds the final outcome of a completed run (PHV trajectory against the full-history
/// reference point). Fresh and resumed segments share this, so resume bit-identity extends
/// to the post-processed fields.
fn build_outcome(
    objectives: Vec<Objective>,
    front: ParetoFront<Vec<f64>>,
    history: Vec<IterationRecord>,
    trace_hashes: Vec<u64>,
    converged_at: Option<usize>,
) -> ParmisOutcome {
    let k = objectives.len();
    let reference_point = phv_reference(&history, k);
    let phv_history = phv_trajectory(&history, &reference_point, k);
    let stop_reason = if converged_at.is_some() {
        StopReason::Converged
    } else {
        StopReason::BudgetExhausted
    };
    ParmisOutcome {
        objectives,
        front,
        history,
        phv_history,
        reference_point,
        converged_at,
        trace_hashes,
        stop_reason,
    }
}

/// Reference point: component-wise worst observed value plus a 5 % margin. An empty
/// history gets the all-margin point (no `NEG_INFINITY` leaking into PHV math).
fn phv_reference(history: &[IterationRecord], k: usize) -> Vec<f64> {
    if history.is_empty() {
        return vec![0.05; k];
    }
    let mut worst = vec![f64::NEG_INFINITY; k];
    for r in history {
        for (w, v) in worst.iter_mut().zip(&r.objectives) {
            *w = w.max(*v);
        }
    }
    worst
        .into_iter()
        .map(|w| {
            if w.abs() < f64::EPSILON {
                0.05
            } else {
                w + w.abs() * 0.05
            }
        })
        .collect()
}

/// PHV of the archive formed by the first `i` evaluations, for every `i`.
fn phv_trajectory(history: &[IterationRecord], reference: &[f64], k: usize) -> Vec<f64> {
    let mut front: ParetoFront<()> = ParetoFront::new(k);
    let mut out = Vec::with_capacity(history.len());
    for r in history {
        front.insert(r.objectives.clone(), ());
        out.push(hypervolume(front.objective_values(), reference));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;

    /// A cheap synthetic evaluator over a 3-D parameter space with a known trade-off, so the
    /// full PaRMIS loop can be tested without the SoC simulator.
    struct SyntheticEvaluator {
        objectives: Vec<Objective>,
    }

    impl SyntheticEvaluator {
        fn new() -> Self {
            SyntheticEvaluator {
                objectives: vec![Objective::ExecutionTime, Objective::Energy],
            }
        }
    }

    impl PolicyEvaluator for SyntheticEvaluator {
        fn parameter_dim(&self) -> usize {
            3
        }

        fn parameter_bound(&self) -> f64 {
            2.0
        }

        fn objectives(&self) -> &[Objective] {
            &self.objectives
        }

        fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
            // Schaffer-like: o1 = (t0)^2 + small terms, o2 = (t0 - 1)^2 + small terms.
            let o1 = theta[0].powi(2) + 0.05 * theta[1].powi(2) + 0.05 * theta[2].powi(2) + 1.0;
            let o2 =
                (theta[0] - 1.0).powi(2) + 0.05 * theta[1].powi(2) + 0.05 * theta[2].powi(2) + 1.0;
            Ok(vec![o1, o2])
        }
    }

    fn quick_config(iterations: usize) -> ParmisConfig {
        ParmisConfig {
            max_iterations: iterations,
            initial_samples: 6,
            num_pareto_samples: 1,
            sampling: ParetoSamplingConfig {
                rff_features: 60,
                nsga_population: 16,
                nsga_generations: 8,
            },
            acquisition: AcquisitionOptimizerConfig {
                random_candidates: 24,
                local_candidates: 8,
                local_perturbation: 0.2,
            },
            refit_hyperparameters_every: 10,
            ..Default::default()
        }
    }

    #[test]
    fn configuration_validation() {
        let evaluator = SyntheticEvaluator::new();
        let bad = ParmisConfig {
            max_iterations: 1,
            ..quick_config(10)
        };
        assert!(matches!(
            Parmis::new(bad).run(&evaluator),
            Err(ParmisError::InvalidConfig { .. })
        ));
        let bad = ParmisConfig {
            num_pareto_samples: 0,
            ..quick_config(10)
        };
        assert!(Parmis::new(bad).run(&evaluator).is_err());

        struct OneObjective;
        impl PolicyEvaluator for OneObjective {
            fn parameter_dim(&self) -> usize {
                2
            }
            fn objectives(&self) -> &[Objective] {
                &[Objective::Energy]
            }
            fn evaluate(&self, _: &[f64]) -> Result<Vec<f64>> {
                Ok(vec![1.0])
            }
        }
        assert!(Parmis::new(quick_config(10)).run(&OneObjective).is_err());
    }

    #[test]
    fn search_improves_over_the_initial_random_design() {
        let evaluator = SyntheticEvaluator::new();
        let outcome = Parmis::new(quick_config(24)).run(&evaluator).unwrap();
        assert_eq!(outcome.history.len(), 24);
        assert!(!outcome.front.is_empty());
        // PHV is non-decreasing and improved after the initial design.
        let initial_phv = outcome.phv_history[5];
        let final_phv = outcome.final_phv();
        assert!(final_phv >= initial_phv);
        assert!(
            final_phv > initial_phv * 1.001 || final_phv > 0.0,
            "search should improve PHV ({initial_phv} -> {final_phv})"
        );
        for pair in outcome.phv_history.windows(2) {
            assert!(
                pair[1] + 1e-12 >= pair[0],
                "PHV trajectory must be monotone"
            );
        }
    }

    #[test]
    fn model_guided_iterations_record_acquisition_values() {
        let evaluator = SyntheticEvaluator::new();
        let outcome = Parmis::new(quick_config(16)).run(&evaluator).unwrap();
        for (i, r) in outcome.history.iter().enumerate() {
            assert_eq!(r.iteration, i);
            assert_eq!(r.objectives.len(), 2);
            if i < 6 {
                assert!(r.acquisition_value.is_none());
            } else {
                assert!(r.acquisition_value.is_some());
                assert!(r.acquisition_value.unwrap().is_finite());
            }
        }
    }

    #[test]
    fn front_points_are_close_to_the_true_pareto_set() {
        // True Pareto set of the synthetic problem: theta0 in [0, 1], theta1 = theta2 = 0.
        let evaluator = SyntheticEvaluator::new();
        let outcome = Parmis::new(quick_config(40)).run(&evaluator).unwrap();
        let mut near_optimal = 0;
        for entry in outcome.front.iter() {
            let t = &entry.tag;
            if t[0] > -0.4 && t[0] < 1.4 && t[1].abs() < 1.2 && t[2].abs() < 1.2 {
                near_optimal += 1;
            }
        }
        assert!(
            near_optimal as f64 / outcome.front.len() as f64 > 0.5,
            "most front policies should be near the true Pareto set ({near_optimal}/{})",
            outcome.front.len()
        );
    }

    #[test]
    fn early_stopping_fires_when_the_front_stalls() {
        let evaluator = SyntheticEvaluator::new();
        let config = ParmisConfig {
            convergence_window: 3,
            ..quick_config(60)
        };
        let outcome = Parmis::new(config).run(&evaluator).unwrap();
        if let Some(at) = outcome.converged_at {
            assert!(outcome.history.len() <= at + 1);
            assert!(outcome.history.len() < 60);
        }
    }

    #[test]
    fn runs_are_reproducible_for_identical_seeds() {
        let evaluator = SyntheticEvaluator::new();
        let a = Parmis::new(quick_config(14)).run(&evaluator).unwrap();
        let b = Parmis::new(quick_config(14)).run(&evaluator).unwrap();
        assert_eq!(a.history.len(), b.history.len());
        for (ra, rb) in a.history.iter().zip(&b.history) {
            assert_eq!(ra.theta, rb.theta);
            assert_eq!(ra.objectives, rb.objectives);
        }
        let mut config = quick_config(14);
        config.seed = 999;
        let c = Parmis::new(config).run(&evaluator).unwrap();
        assert_ne!(a.history[7].theta, c.history[7].theta);
    }

    #[test]
    fn batched_search_fills_the_budget_with_sequential_records() {
        let evaluator = SyntheticEvaluator::new();
        let config = ParmisConfig {
            batch_size: 3,
            ..quick_config(17)
        };
        let outcome = Parmis::new(config).run(&evaluator).unwrap();
        // 6 initial + rounds of 3 capped at the budget: every slot gets its own record.
        assert_eq!(outcome.history.len(), 17);
        for (i, r) in outcome.history.iter().enumerate() {
            assert_eq!(r.iteration, i);
            if i >= 6 {
                assert!(r.acquisition_value.is_some());
            }
        }
        // Within a round the selection is sorted best-first.
        for round in outcome.history[6..15].chunks(3) {
            let values: Vec<f64> = round.iter().map(|r| r.acquisition_value.unwrap()).collect();
            assert!(values[0] >= values[1] && values[1] >= values[2]);
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial_for_any_worker_count() {
        let evaluator = SyntheticEvaluator::new();
        let config = ParmisConfig {
            batch_size: 4,
            ..quick_config(18)
        };
        let serial = Parmis::new(config.clone()).run(&evaluator).unwrap();
        for workers in [1, 2, 4] {
            let parallel = Parmis::new(ParmisConfig {
                num_workers: workers,
                ..config.clone()
            })
            .run_parallel(&evaluator)
            .unwrap();
            assert_eq!(
                parallel.phv_history, serial.phv_history,
                "workers = {workers}"
            );
            assert_eq!(parallel.history.len(), serial.history.len());
            for (a, b) in parallel.history.iter().zip(&serial.history) {
                assert_eq!(a.theta, b.theta);
                assert_eq!(a.objectives, b.objectives);
                assert_eq!(a.acquisition_value, b.acquisition_value);
            }
            assert_eq!(
                parallel.front.objective_values(),
                serial.front.objective_values()
            );
        }
    }

    #[test]
    fn invalid_batch_configuration_is_rejected() {
        let evaluator = SyntheticEvaluator::new();
        let bad = ParmisConfig {
            batch_size: 0,
            ..quick_config(10)
        };
        assert!(matches!(
            Parmis::new(bad).run(&evaluator),
            Err(ParmisError::InvalidConfig { .. })
        ));
        let bad = ParmisConfig {
            acquisition: AcquisitionOptimizerConfig {
                random_candidates: 0,
                local_candidates: 0,
                local_perturbation: 0.1,
            },
            ..quick_config(10)
        };
        assert!(Parmis::new(bad).run(&evaluator).is_err());
    }

    #[test]
    fn progress_callback_sees_every_iteration() {
        let evaluator = SyntheticEvaluator::new();
        let mut seen = Vec::new();
        Parmis::new(quick_config(12))
            .run_with_progress(&evaluator, |i, r| {
                seen.push((i, r.objectives.len()));
            })
            .unwrap();
        assert_eq!(seen.len(), 12);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[11].0, 11);
    }

    #[test]
    fn reporting_front_unnegates_maximized_objectives() {
        struct PpwEvaluator {
            objectives: Vec<Objective>,
        }
        impl PolicyEvaluator for PpwEvaluator {
            fn parameter_dim(&self) -> usize {
                2
            }
            fn parameter_bound(&self) -> f64 {
                1.0
            }
            fn objectives(&self) -> &[Objective] {
                &self.objectives
            }
            fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
                Ok(vec![theta[0].abs() + 1.0, -(2.0 - theta[0].abs())])
            }
        }
        let evaluator = PpwEvaluator {
            objectives: vec![Objective::ExecutionTime, Objective::PerformancePerWatt],
        };
        let outcome = Parmis::new(quick_config(10)).run(&evaluator).unwrap();
        for v in outcome.reporting_front() {
            assert!(v[1] > 0.0, "reported PPW must be positive, got {}", v[1]);
        }
    }

    #[test]
    fn lengthscale_grid_scales_with_dimension() {
        let small = lengthscale_grid(3, 3.0);
        let large = lengthscale_grid(300, 3.0);
        assert!(large[0] > small[0] * 5.0);
        assert_eq!(small.len(), 4);
    }

    #[test]
    fn zero_deadline_is_rejected_as_invalid_config() {
        let evaluator = SyntheticEvaluator::new();
        let bad = ParmisConfig {
            deadline_ms: Some(0),
            ..quick_config(10)
        };
        assert!(matches!(
            Parmis::new(bad).run(&evaluator),
            Err(ParmisError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn completed_outcomes_record_their_stop_reason() {
        let evaluator = SyntheticEvaluator::new();
        let outcome = Parmis::new(quick_config(12)).run(&evaluator).unwrap();
        assert_eq!(outcome.stop_reason, StopReason::BudgetExhausted);

        let converging = ParmisConfig {
            convergence_window: 2,
            ..quick_config(60)
        };
        let outcome = Parmis::new(converging).run(&evaluator).unwrap();
        if outcome.converged_at.is_some() {
            assert_eq!(outcome.stop_reason, StopReason::Converged);
        }
    }

    #[test]
    fn cancelled_token_suspends_at_the_next_round_boundary() {
        use crate::cancel::{CancelReason, CancelSource};
        let evaluator = SyntheticEvaluator::new();
        let source = CancelSource::new();
        source.cancel(CancelReason::User);
        let step = Parmis::new(quick_config(20))
            .with_cancel_token(source.token())
            .run_resumable(&evaluator)
            .unwrap();
        match &step {
            SearchStep::Suspended { state, reason } => {
                assert_eq!(*reason, StopReason::Cancelled(CancelReason::User));
                // The initial design completes atomically before the first boundary check.
                assert_eq!(state.evaluations(), 6);
            }
            SearchStep::Completed(_) => panic!("a cancelled search must suspend"),
        }
    }

    #[test]
    fn cancel_and_resume_is_bit_identical_to_uninterrupted() {
        use crate::cancel::{CancelReason, CancelSource};
        let evaluator = SyntheticEvaluator::new();
        let uninterrupted = Parmis::new(quick_config(14)).run(&evaluator).unwrap();

        let source = CancelSource::new();
        source.cancel(CancelReason::Stall);
        let state = Parmis::new(quick_config(14))
            .with_cancel_token(source.token())
            .run_resumable(&evaluator)
            .unwrap()
            .into_suspended()
            .expect("cancelled search suspends");
        let resumed = Parmis::new(quick_config(14))
            .resume(state, &evaluator)
            .unwrap()
            .into_completed()
            .expect("resume with an untripped token completes");
        assert_eq!(uninterrupted.trace_hashes, resumed.trace_hashes);
        assert_eq!(uninterrupted.phv_history, resumed.phv_history);
        assert_eq!(resumed.stop_reason, StopReason::BudgetExhausted);
    }

    #[test]
    fn expired_deadline_suspends_with_a_deadline_reason() {
        let evaluator = SyntheticEvaluator::new();
        let config = ParmisConfig {
            deadline_ms: Some(1),
            ..quick_config(40)
        };
        // One millisecond cannot pay for a model-guided round on any machine, so the
        // search suspends at the first boundary after the (atomic) initial design.
        let step = Parmis::new(config).run_resumable(&evaluator).unwrap();
        match step {
            SearchStep::Suspended { reason, .. } => {
                assert_eq!(reason, StopReason::Cancelled(CancelReason::Deadline));
            }
            SearchStep::Completed(_) => panic!("an expired deadline must suspend"),
        }
    }

    #[test]
    fn stop_reason_names_and_display_are_stable() {
        assert_eq!(StopReason::BudgetExhausted.to_string(), "budget-exhausted");
        assert_eq!(StopReason::Converged.name(), "converged");
        assert_eq!(StopReason::FuelExhausted.to_string(), "fuel-exhausted");
        let cancelled = StopReason::Cancelled(CancelReason::Deadline);
        assert_eq!(cancelled.name(), "cancelled");
        assert_eq!(cancelled.to_string(), "cancelled [deadline]");
    }
}
