//! Design objectives.
//!
//! The paper evaluates three objectives — execution time, energy and performance-per-watt
//! (PPW) — and stresses that PaRMIS accepts *any* objective set because it only needs the
//! scalar value of each objective for a finished run (§V-A "Design objectives", §V-E). All
//! objectives are converted to minimization internally; PPW (which users want to maximize) is
//! negated.

use serde::{Deserialize, Serialize};
use soc_sim::platform::RunSummary;

/// A design objective extracted from a finished application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Total execution time in seconds (minimized).
    ExecutionTime,
    /// Total energy in joules (minimized).
    Energy,
    /// Performance per watt (maximized; stored negated so every objective is minimized).
    PerformancePerWatt,
    /// Average power in watts (minimized). Not used by the paper's headline results but
    /// handy for ablations and examples.
    AveragePower,
    /// Peak junction temperature in °C (minimized). Pairs with execution time for
    /// thermal-aware scenario optimization, where staying cool is itself a design goal.
    PeakTemperature,
}

impl Objective {
    /// Objective pairs used by the paper's two main experiment families.
    pub const TIME_ENERGY: [Objective; 2] = [Objective::ExecutionTime, Objective::Energy];
    /// Execution time and PPW, the "complex objective" experiment of §V-E.
    pub const TIME_PPW: [Objective; 2] = [Objective::ExecutionTime, Objective::PerformancePerWatt];
    /// Execution time and peak temperature, the thermal-aware scenario trade-off.
    pub const TIME_PEAK_TEMP: [Objective; 2] =
        [Objective::ExecutionTime, Objective::PeakTemperature];

    /// Short name used in reports and figures.
    pub fn name(&self) -> &'static str {
        match self {
            Objective::ExecutionTime => "execution_time_s",
            Objective::Energy => "energy_j",
            Objective::PerformancePerWatt => "ppw",
            Objective::AveragePower => "average_power_w",
            Objective::PeakTemperature => "peak_temperature_c",
        }
    }

    /// Extracts the minimization value of this objective from a run summary.
    pub fn value_from(&self, summary: &RunSummary) -> f64 {
        match self {
            Objective::ExecutionTime => summary.execution_time_s,
            Objective::Energy => summary.energy_j,
            Objective::PerformancePerWatt => -summary.ppw,
            Objective::AveragePower => summary.average_power_w,
            Objective::PeakTemperature => summary.peak_temperature_c,
        }
    }

    /// Converts an internal minimization value back to the natural reporting scale
    /// (i.e. undoes the negation applied to maximized objectives).
    pub fn to_reporting_value(&self, minimization_value: f64) -> f64 {
        match self {
            Objective::PerformancePerWatt => -minimization_value,
            _ => minimization_value,
        }
    }

    /// `true` if users naturally maximize this objective.
    pub fn is_maximized(&self) -> bool {
        matches!(self, Objective::PerformancePerWatt)
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Extracts the full minimization objective vector for a run.
pub fn objective_vector(objectives: &[Objective], summary: &RunSummary) -> Vec<f64> {
    objectives.iter().map(|o| o.value_from(summary)).collect()
}

/// Converts a minimization objective vector back to reporting scale, element by element.
pub fn reporting_vector(objectives: &[Objective], minimization: &[f64]) -> Vec<f64> {
    objectives
        .iter()
        .zip(minimization)
        .map(|(o, v)| o.to_reporting_value(*v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RunSummary {
        RunSummary {
            application: "qsort".into(),
            controller: "test".into(),
            execution_time_s: 2.0,
            energy_j: 5.0,
            average_power_w: 2.5,
            ppw: 0.8,
            peak_temperature_c: 61.5,
            epochs: Vec::new(),
        }
    }

    #[test]
    fn extraction_matches_summary_fields() {
        let s = summary();
        assert_eq!(Objective::ExecutionTime.value_from(&s), 2.0);
        assert_eq!(Objective::Energy.value_from(&s), 5.0);
        assert_eq!(Objective::PerformancePerWatt.value_from(&s), -0.8);
        assert_eq!(Objective::AveragePower.value_from(&s), 2.5);
        assert_eq!(Objective::PeakTemperature.value_from(&s), 61.5);
        assert!(!Objective::PeakTemperature.is_maximized());
        assert_eq!(
            objective_vector(&Objective::TIME_PEAK_TEMP, &s),
            vec![2.0, 61.5]
        );
    }

    #[test]
    fn ppw_roundtrips_through_reporting_conversion() {
        let s = summary();
        let min_value = Objective::PerformancePerWatt.value_from(&s);
        assert_eq!(
            Objective::PerformancePerWatt.to_reporting_value(min_value),
            0.8
        );
        assert!(Objective::PerformancePerWatt.is_maximized());
        assert!(!Objective::Energy.is_maximized());
    }

    #[test]
    fn vectors_follow_objective_order() {
        let s = summary();
        let v = objective_vector(&Objective::TIME_PPW, &s);
        assert_eq!(v, vec![2.0, -0.8]);
        let r = reporting_vector(&Objective::TIME_PPW, &v);
        assert_eq!(r, vec![2.0, 0.8]);
        let v = objective_vector(&Objective::TIME_ENERGY, &s);
        assert_eq!(v, vec![2.0, 5.0]);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Objective::ExecutionTime.to_string(), "execution_time_s");
        assert_eq!(Objective::PerformancePerWatt.name(), "ppw");
    }
}
