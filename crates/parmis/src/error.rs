//! Error type for the PaRMIS framework.

use std::error::Error;
use std::fmt;

/// The distinct failure modes of the checkpoint/journal layer, carried by
/// [`ParmisError::Checkpoint`] so callers (and the job supervisor's quarantine logic) can
/// react to *what* went wrong instead of parsing a message string.
///
/// Every fault is structured and recoverable: a corrupt or incompatible artifact is
/// reported, never panicked on, and the durable store uses the fault class to decide
/// between quarantining a file and falling back to an older generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointFault {
    /// A filesystem operation on a checkpoint, journal, or quarantine path failed.
    Io,
    /// The artifact is not well-formed JSON, or its JSON shape does not match the
    /// expected layout (truncation usually surfaces here).
    Parse,
    /// The artifact declares a format version this build does not support.
    VersionMismatch,
    /// A recomputed content digest disagrees with the recorded one (bit rot, torn write,
    /// or tampering).
    DigestMismatch,
    /// The per-iteration trace-hash chain does not match the recorded history.
    TraceHashBreak,
    /// An internal shape invariant is violated (misaligned lengths, non-finite values,
    /// malformed RNG state, …).
    Invariant,
    /// The artifact is internally valid but incompatible with the resuming
    /// configuration, evaluator, or job (config digest / objectives mismatch).
    Incompatible,
    /// A state could not be serialized for persistence.
    Serialize,
    /// A supervised segment exceeded its watchdog budget and was suspended at the next
    /// checkpoint boundary (the job supervisor's internal suspension signal).
    Watchdog,
}

impl CheckpointFault {
    /// Stable lower-kebab-case name of the fault class (used in displays and reports).
    pub fn name(self) -> &'static str {
        match self {
            CheckpointFault::Io => "io",
            CheckpointFault::Parse => "parse",
            CheckpointFault::VersionMismatch => "version-mismatch",
            CheckpointFault::DigestMismatch => "digest-mismatch",
            CheckpointFault::TraceHashBreak => "trace-hash-break",
            CheckpointFault::Invariant => "invariant",
            CheckpointFault::Incompatible => "incompatible",
            CheckpointFault::Serialize => "serialize",
            CheckpointFault::Watchdog => "watchdog",
        }
    }
}

impl fmt::Display for CheckpointFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned by PaRMIS operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParmisError {
    /// The framework configuration was invalid (zero iterations, empty objective set, …).
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A policy evaluation failed (e.g. the simulator rejected a decision).
    Evaluation {
        /// Human-readable description of the failure.
        reason: String,
    },
    /// Fitting or sampling a statistical model failed.
    Model(gp::GpError),
    /// Drawing a Pareto-front sample produced a degenerate front (empty, or with
    /// non-finite per-objective extrema) that would poison the acquisition scores.
    DegenerateFront {
        /// Human-readable description of the degeneracy.
        reason: String,
    },
    /// The underlying platform simulation failed.
    Simulation(soc_sim::SocError),
    /// An evaluation backend failed to carry out the policy→aggregates step.
    ///
    /// Structured variant of the backend contract ([`crate::backend::EvalBackend`]): `name`
    /// identifies which backend failed (its stable kebab-case name, e.g. `trace-replay`)
    /// and `source` carries the underlying simulator/trace error for matching or chaining.
    Backend {
        /// Stable name of the failing backend ([`crate::backend::BackendInfo::name`]).
        name: String,
        /// The underlying simulator or trace error.
        source: soc_sim::SocError,
    },
    /// A checkpoint or job-journal artifact could not be written, parsed, or verified, or
    /// a resume was attempted with a state that is incompatible with the resuming
    /// configuration/evaluator. `fault` carries the distinct failure mode
    /// ([`CheckpointFault`]); `reason` the human-readable detail.
    Checkpoint {
        /// The structured failure mode.
        fault: CheckpointFault,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The operation was cooperatively cancelled mid-flight (between two checkpoint
    /// boundaries), abandoning work that a resumed run recomputes deterministically.
    /// Cancellations that land exactly on an iteration boundary surface as a clean
    /// [`SearchStep::Suspended`](crate::framework::SearchStep) instead of this error.
    Cancelled {
        /// Why the cancellation was raised.
        reason: crate::cancel::CancelReason,
    },
}

impl ParmisError {
    /// Constructs a [`ParmisError::Checkpoint`] with the given fault class and detail.
    pub fn checkpoint(fault: CheckpointFault, reason: impl Into<String>) -> ParmisError {
        ParmisError::Checkpoint {
            fault,
            reason: reason.into(),
        }
    }

    /// The checkpoint fault class, if this is a [`ParmisError::Checkpoint`].
    pub fn checkpoint_fault(&self) -> Option<CheckpointFault> {
        match self {
            ParmisError::Checkpoint { fault, .. } => Some(*fault),
            _ => None,
        }
    }

    /// Constructs a [`ParmisError::Cancelled`] with the given reason.
    pub fn cancelled(reason: crate::cancel::CancelReason) -> ParmisError {
        ParmisError::Cancelled { reason }
    }

    /// The cancellation reason, if this is a [`ParmisError::Cancelled`].
    pub fn cancel_reason(&self) -> Option<crate::cancel::CancelReason> {
        match self {
            ParmisError::Cancelled { reason } => Some(*reason),
            _ => None,
        }
    }
}

impl fmt::Display for ParmisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParmisError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            ParmisError::Evaluation { reason } => write!(f, "policy evaluation failed: {reason}"),
            ParmisError::Model(e) => write!(f, "statistical model failure: {e}"),
            ParmisError::DegenerateFront { reason } => {
                write!(f, "degenerate Pareto-front sample: {reason}")
            }
            ParmisError::Simulation(e) => write!(f, "platform simulation failure: {e}"),
            ParmisError::Backend { name, source } => {
                write!(f, "evaluation backend `{name}` failed: {source}")
            }
            ParmisError::Checkpoint { fault, reason } => {
                write!(f, "checkpoint failure [{fault}]: {reason}")
            }
            ParmisError::Cancelled { reason } => {
                write!(f, "cancelled [{reason}] between checkpoint boundaries")
            }
        }
    }
}

impl Error for ParmisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParmisError::Model(e) => Some(e),
            ParmisError::Simulation(e) => Some(e),
            ParmisError::Backend { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<gp::GpError> for ParmisError {
    fn from(e: gp::GpError) -> Self {
        ParmisError::Model(e)
    }
}

impl From<soc_sim::SocError> for ParmisError {
    fn from(e: soc_sim::SocError) -> Self {
        ParmisError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = ParmisError::InvalidConfig {
            reason: "zero iterations".into(),
        };
        assert!(e.to_string().contains("zero iterations"));

        let e: ParmisError = gp::GpError::InvalidData {
            reason: "empty".into(),
        }
        .into();
        assert!(matches!(e, ParmisError::Model(_)));
        assert!(Error::source(&e).is_some());

        let e: ParmisError = soc_sim::SocError::EmptyApplication { name: "x".into() }.into();
        assert!(matches!(e, ParmisError::Simulation(_)));
        assert!(e.to_string().contains("platform simulation"));

        let e = ParmisError::Backend {
            name: "trace-replay".into(),
            source: soc_sim::SocError::Trace {
                reason: "no recording".into(),
            },
        };
        assert!(e.to_string().contains("`trace-replay`"));
        assert!(e.to_string().contains("no recording"));
        let source = Error::source(&e).expect("backend errors expose their source");
        assert!(source.to_string().contains("invalid run trace"));
    }

    #[test]
    fn checkpoint_faults_are_distinct_and_named() {
        let faults = [
            CheckpointFault::Io,
            CheckpointFault::Parse,
            CheckpointFault::VersionMismatch,
            CheckpointFault::DigestMismatch,
            CheckpointFault::TraceHashBreak,
            CheckpointFault::Invariant,
            CheckpointFault::Incompatible,
            CheckpointFault::Serialize,
            CheckpointFault::Watchdog,
        ];
        let mut names: Vec<&str> = faults.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), faults.len(), "fault names must be unique");

        let e = ParmisError::checkpoint(CheckpointFault::DigestMismatch, "bad digest");
        assert_eq!(e.checkpoint_fault(), Some(CheckpointFault::DigestMismatch));
        assert!(e.to_string().contains("[digest-mismatch]"));
        assert!(e.to_string().contains("bad digest"));
        let other = ParmisError::InvalidConfig { reason: "x".into() };
        assert_eq!(other.checkpoint_fault(), None);
    }

    #[test]
    fn cancelled_errors_carry_their_reason() {
        let e = ParmisError::cancelled(crate::cancel::CancelReason::Deadline);
        assert_eq!(
            e.cancel_reason(),
            Some(crate::cancel::CancelReason::Deadline)
        );
        assert_eq!(e.checkpoint_fault(), None);
        assert!(e.to_string().contains("[deadline]"));
        let other = ParmisError::InvalidConfig { reason: "x".into() };
        assert_eq!(other.cancel_reason(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParmisError>();
    }
}
