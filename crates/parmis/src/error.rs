//! Error type for the PaRMIS framework.

use std::error::Error;
use std::fmt;

/// Error returned by PaRMIS operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParmisError {
    /// The framework configuration was invalid (zero iterations, empty objective set, …).
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A policy evaluation failed (e.g. the simulator rejected a decision).
    Evaluation {
        /// Human-readable description of the failure.
        reason: String,
    },
    /// Fitting or sampling a statistical model failed.
    Model(gp::GpError),
    /// Drawing a Pareto-front sample produced a degenerate front (empty, or with
    /// non-finite per-objective extrema) that would poison the acquisition scores.
    DegenerateFront {
        /// Human-readable description of the degeneracy.
        reason: String,
    },
    /// The underlying platform simulation failed.
    Simulation(soc_sim::SocError),
    /// An evaluation backend failed to carry out the policy→aggregates step.
    ///
    /// Structured variant of the backend contract ([`crate::backend::EvalBackend`]): `name`
    /// identifies which backend failed (its stable kebab-case name, e.g. `trace-replay`)
    /// and `source` carries the underlying simulator/trace error for matching or chaining.
    Backend {
        /// Stable name of the failing backend ([`crate::backend::BackendInfo::name`]).
        name: String,
        /// The underlying simulator or trace error.
        source: soc_sim::SocError,
    },
    /// A checkpoint could not be written, parsed, or verified, or a resume was attempted
    /// with a state that is incompatible with the resuming configuration/evaluator.
    Checkpoint {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for ParmisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParmisError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            ParmisError::Evaluation { reason } => write!(f, "policy evaluation failed: {reason}"),
            ParmisError::Model(e) => write!(f, "statistical model failure: {e}"),
            ParmisError::DegenerateFront { reason } => {
                write!(f, "degenerate Pareto-front sample: {reason}")
            }
            ParmisError::Simulation(e) => write!(f, "platform simulation failure: {e}"),
            ParmisError::Backend { name, source } => {
                write!(f, "evaluation backend `{name}` failed: {source}")
            }
            ParmisError::Checkpoint { reason } => write!(f, "checkpoint failure: {reason}"),
        }
    }
}

impl Error for ParmisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParmisError::Model(e) => Some(e),
            ParmisError::Simulation(e) => Some(e),
            ParmisError::Backend { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<gp::GpError> for ParmisError {
    fn from(e: gp::GpError) -> Self {
        ParmisError::Model(e)
    }
}

impl From<soc_sim::SocError> for ParmisError {
    fn from(e: soc_sim::SocError) -> Self {
        ParmisError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = ParmisError::InvalidConfig {
            reason: "zero iterations".into(),
        };
        assert!(e.to_string().contains("zero iterations"));

        let e: ParmisError = gp::GpError::InvalidData {
            reason: "empty".into(),
        }
        .into();
        assert!(matches!(e, ParmisError::Model(_)));
        assert!(Error::source(&e).is_some());

        let e: ParmisError = soc_sim::SocError::EmptyApplication { name: "x".into() }.into();
        assert!(matches!(e, ParmisError::Simulation(_)));
        assert!(e.to_string().contains("platform simulation"));

        let e = ParmisError::Backend {
            name: "trace-replay".into(),
            source: soc_sim::SocError::Trace {
                reason: "no recording".into(),
            },
        };
        assert!(e.to_string().contains("`trace-replay`"));
        assert!(e.to_string().contains("no recording"));
        let source = Error::source(&e).expect("backend errors expose their source");
        assert!(source.to_string().contains("invalid run trace"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParmisError>();
    }
}
