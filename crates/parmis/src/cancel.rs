//! Cooperative cancellation: reason-carrying tokens, deadline budgets and signal wiring.
//!
//! Long searches need a way to be *asked* to stop that is distinct from being killed. This
//! module provides that as a hierarchy of cancellation sources:
//!
//! ```text
//! CancelSource (drain root: User | Signal | fleet Deadline)
//! └── CancelSource (per-wave child: Stall, per-job Deadline)
//!     └── CancelToken ── Parmis::drive          (checked per iteration round)
//!         ├── ParallelEvaluator                 (checked between batch slots)
//!         └── CancelEpochs sink (soc-sim)       (checked every N simulator epochs)
//! ```
//!
//! A [`CancelSource`] is the writer end: it latches the first [`CancelReason`] it is given
//! and never un-cancels. A [`CancelToken`] is the cheap, cloneable reader end handed to
//! execution layers; [`CancelToken::cancelled`] also folds in two passive triggers — a
//! wall-clock deadline ([`CancelSource::with_deadline`]) and process signals
//! ([`CancelSource::cancel_on_signals`]) — latching them into `Deadline` / `Signal` so the
//! observed reason is stable. Cancellation of an ancestor surfaces in every descendant as
//! [`CancelReason::Parent`].
//!
//! Tokens also carry a heartbeat counter ([`CancelToken::beat`]), bumped by every
//! execution layer as it makes progress and propagated up the ancestor chain; the job
//! supervisor's stall monitor watches it to raise [`CancelReason::Stall`] on a worker that
//! has stopped moving.
//!
//! **Determinism contract:** cancellation decides *when* a search suspends, never *what*
//! it computes. Every layer checks its token only at a deterministic boundary (iteration
//! round, batch slot, epoch stride) and aborts by discarding work that a resumed run
//! recomputes identically — so a cancelled-and-resumed trajectory is bit-identical to an
//! uninterrupted one.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crate::error::{CheckpointFault, ParmisError};
use crate::Result;

/// Why a cancellation was raised. Latched first-wins per source; permanent once set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CancelReason {
    /// An explicit programmatic request ([`CancelSource::cancel`],
    /// [`JobSupervisor::request_drain`](crate::jobs::JobSupervisor::request_drain)).
    User,
    /// A wall-clock deadline budget expired.
    Deadline,
    /// A supervisor-side monitor decided the worker stopped making progress.
    Stall,
    /// SIGTERM or SIGINT was delivered to the process.
    Signal,
    /// An ancestor [`CancelSource`] in the hierarchy was cancelled (for any reason).
    Parent,
}

impl CancelReason {
    /// Stable kebab-case name, used in journal notes and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CancelReason::User => "user",
            CancelReason::Deadline => "deadline",
            CancelReason::Stall => "stall",
            CancelReason::Signal => "signal",
            CancelReason::Parent => "parent",
        }
    }

    fn code(self) -> u8 {
        match self {
            CancelReason::User => 0,
            CancelReason::Deadline => 1,
            CancelReason::Stall => 2,
            CancelReason::Signal => 3,
            CancelReason::Parent => 4,
        }
    }

    fn from_code(code: u8) -> CancelReason {
        match code {
            0 => CancelReason::User,
            1 => CancelReason::Deadline,
            2 => CancelReason::Stall,
            3 => CancelReason::Signal,
            _ => CancelReason::Parent,
        }
    }
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared state behind one source and all its tokens.
#[derive(Debug)]
struct Inner {
    /// `0` = not cancelled; otherwise `CancelReason::code() + 1`, latched first-wins.
    reason: AtomicU8,
    /// Progress counter bumped by [`CancelToken::beat`] (and by descendant beats).
    heartbeats: AtomicU64,
    /// Passive trigger: latch `Deadline` once this instant passes.
    deadline: Option<Instant>,
    /// Passive trigger: latch `Signal` once the registered flag flips.
    signal: OnceLock<Arc<AtomicBool>>,
    /// Cancellation of any ancestor surfaces here as `Parent`.
    parent: Option<CancelToken>,
}

impl Inner {
    fn fresh(deadline: Option<Instant>, parent: Option<CancelToken>) -> Arc<Inner> {
        Arc::new(Inner {
            reason: AtomicU8::new(0),
            heartbeats: AtomicU64::new(0),
            deadline,
            signal: OnceLock::new(),
            parent,
        })
    }

    /// Latches `reason` if nothing is latched yet and returns whatever won.
    fn latch(&self, reason: CancelReason) -> CancelReason {
        let _ =
            self.reason
                .compare_exchange(0, reason.code() + 1, Ordering::SeqCst, Ordering::SeqCst);
        CancelReason::from_code(self.reason.load(Ordering::SeqCst) - 1)
    }

    fn cancelled(&self) -> Option<CancelReason> {
        let code = self.reason.load(Ordering::SeqCst);
        if code != 0 {
            return Some(CancelReason::from_code(code - 1));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(self.latch(CancelReason::Deadline));
            }
        }
        if let Some(flag) = self.signal.get() {
            if flag.load(Ordering::SeqCst) {
                return Some(self.latch(CancelReason::Signal));
            }
        }
        if let Some(parent) = &self.parent {
            if parent.is_cancelled() {
                return Some(self.latch(CancelReason::Parent));
            }
        }
        None
    }
}

/// The writer end of a cancellation scope: cancels, spawns children, hands out tokens.
#[derive(Debug, Clone)]
pub struct CancelSource {
    inner: Arc<Inner>,
}

impl CancelSource {
    /// A fresh, uncancelled root source with no deadline.
    pub fn new() -> CancelSource {
        CancelSource {
            inner: Inner::fresh(None, None),
        }
    }

    /// A root source whose tokens latch [`CancelReason::Deadline`] once `budget` of
    /// wall-clock time has elapsed from now.
    pub fn with_deadline(budget: Duration) -> CancelSource {
        CancelSource {
            inner: Inner::fresh(Some(Instant::now() + budget), None),
        }
    }

    /// A child source: cancelling `self` cancels the child (surfacing as
    /// [`CancelReason::Parent`]), but cancelling the child leaves `self` untouched.
    pub fn child(&self) -> CancelSource {
        CancelSource {
            inner: Inner::fresh(None, Some(self.token())),
        }
    }

    /// A child source with its own wall-clock deadline on top of the parent link.
    pub fn child_with_deadline(&self, budget: Duration) -> CancelSource {
        CancelSource {
            inner: Inner::fresh(Some(Instant::now() + budget), Some(self.token())),
        }
    }

    /// The reader end shared with execution layers. Cheap to clone (one `Arc` bump).
    pub fn token(&self) -> CancelToken {
        CancelToken {
            inner: Some(Arc::clone(&self.inner)),
        }
    }

    /// Requests cancellation with `reason`. The first reason wins; later calls (and later
    /// deadline/signal triggers) are ignored.
    pub fn cancel(&self, reason: CancelReason) {
        self.inner.latch(reason);
    }

    /// The latched/triggered reason, if this scope is cancelled. See
    /// [`CancelToken::cancelled`].
    pub fn cancelled(&self) -> Option<CancelReason> {
        self.inner.cancelled()
    }

    /// Whether this scope is cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled().is_some()
    }

    /// Heartbeats observed so far (own beats plus every descendant's).
    pub fn heartbeats(&self) -> u64 {
        self.inner.heartbeats.load(Ordering::SeqCst)
    }

    /// Arms this source to latch [`CancelReason::Signal`] when SIGTERM or SIGINT is
    /// delivered to the process. Idempotent per source; registrations are process-wide
    /// and permanent.
    ///
    /// # Errors
    ///
    /// Returns a [`ParmisError`] if the OS rejects the handler installation (reported as
    /// a [`CheckpointFault::Io`] checkpoint fault — the drain path is checkpoint
    /// machinery).
    pub fn cancel_on_signals(&self) -> Result<()> {
        let flag = self
            .inner
            .signal
            .get_or_init(|| Arc::new(AtomicBool::new(false)));
        for signal in [signal_hook::consts::SIGTERM, signal_hook::consts::SIGINT] {
            signal_hook::flag::register(signal, Arc::clone(flag)).map_err(|e| {
                ParmisError::checkpoint(
                    CheckpointFault::Io,
                    format!("registering the signal-drain handler for signal {signal} failed: {e}"),
                )
            })?;
        }
        Ok(())
    }
}

impl Default for CancelSource {
    fn default() -> CancelSource {
        CancelSource::new()
    }
}

/// The reader end of a cancellation scope, checked by execution layers at deterministic
/// boundaries. [`CancelToken::never`] is a free-standing token that never cancels.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that is never cancelled and ignores beats — the default wiring for
    /// searches run without a [`CancelSource`].
    pub fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// Whether this is the inert [`never`](Self::never) token. Execution layers use this
    /// to skip cancellation plumbing entirely when no source is attached.
    pub fn is_never(&self) -> bool {
        self.inner.is_none()
    }

    /// The cancellation reason, if this scope (or any ancestor, or a passive
    /// deadline/signal trigger) has been cancelled. The first observation latches, so
    /// repeated calls return the same reason.
    pub fn cancelled(&self) -> Option<CancelReason> {
        self.inner.as_ref().and_then(|inner| inner.cancelled())
    }

    /// Whether this scope is cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled().is_some()
    }

    /// Records one unit of forward progress on this scope and every ancestor. Execution
    /// layers call this as they complete work; the supervisor's stall monitor watches the
    /// counter move.
    pub fn beat(&self) {
        let mut cursor = self.inner.clone();
        while let Some(inner) = cursor {
            inner.heartbeats.fetch_add(1, Ordering::SeqCst);
            cursor = inner
                .parent
                .as_ref()
                .and_then(|parent| parent.inner.clone());
        }
    }

    /// Heartbeats recorded on this scope so far.
    pub fn heartbeats(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|inner| inner.heartbeats.load(Ordering::SeqCst))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reason_wins_and_latches() {
        let source = CancelSource::new();
        let token = source.token();
        assert!(!token.is_cancelled());
        source.cancel(CancelReason::Stall);
        source.cancel(CancelReason::User);
        assert_eq!(token.cancelled(), Some(CancelReason::Stall));
        assert_eq!(source.cancelled(), Some(CancelReason::Stall));
    }

    #[test]
    fn deadline_trigger_latches_deadline() {
        let source = CancelSource::with_deadline(Duration::from_millis(0));
        let token = source.token();
        assert_eq!(token.cancelled(), Some(CancelReason::Deadline));
        // An explicit cancel afterwards cannot overwrite the latched reason.
        source.cancel(CancelReason::User);
        assert_eq!(token.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn unexpired_deadline_does_not_cancel() {
        let source = CancelSource::with_deadline(Duration::from_secs(3600));
        assert!(!source.token().is_cancelled());
    }

    #[test]
    fn parent_cancellation_surfaces_as_parent_in_children() {
        let root = CancelSource::new();
        let child = root.child();
        let grandchild = child.child();
        assert!(!grandchild.is_cancelled());
        root.cancel(CancelReason::Signal);
        assert_eq!(child.cancelled(), Some(CancelReason::Parent));
        assert_eq!(grandchild.token().cancelled(), Some(CancelReason::Parent));
        // The root keeps its own reason.
        assert_eq!(root.cancelled(), Some(CancelReason::Signal));
    }

    #[test]
    fn child_cancellation_does_not_touch_the_parent() {
        let root = CancelSource::new();
        let child = root.child();
        child.cancel(CancelReason::Deadline);
        assert!(root.cancelled().is_none());
        assert_eq!(child.cancelled(), Some(CancelReason::Deadline));
    }

    #[test]
    fn beats_propagate_to_ancestors() {
        let root = CancelSource::new();
        let child = root.child();
        let token = child.token();
        token.beat();
        token.beat();
        assert_eq!(token.heartbeats(), 2);
        assert_eq!(child.heartbeats(), 2);
        assert_eq!(root.heartbeats(), 2);
        root.token().beat();
        assert_eq!(root.heartbeats(), 3);
        assert_eq!(child.heartbeats(), 2);
    }

    #[test]
    fn never_token_is_inert() {
        let token = CancelToken::never();
        token.beat();
        assert!(!token.is_cancelled());
        assert_eq!(token.heartbeats(), 0);
    }

    #[test]
    fn reason_names_are_stable() {
        for (reason, name) in [
            (CancelReason::User, "user"),
            (CancelReason::Deadline, "deadline"),
            (CancelReason::Stall, "stall"),
            (CancelReason::Signal, "signal"),
            (CancelReason::Parent, "parent"),
        ] {
            assert_eq!(reason.name(), name);
            assert_eq!(reason.to_string(), name);
            assert_eq!(CancelReason::from_code(reason.code()), reason);
        }
    }
}
