//! PaRMIS: Learning Pareto-Frontier Resource Management Policies via Information-Theoretic
//! Search.
//!
//! This crate is the paper's primary contribution. A DRM policy is a parametric function
//! Π_θ (the four-headed MLP of the `policy` crate); PaRMIS searches the parameter space
//! θ ∈ ℝ^d for the set of policies whose objective vectors form the optimal Pareto front,
//! using an output-space information-gain acquisition (Algorithm 1 of the paper):
//!
//! 1. Fit one Gaussian process per design objective on the policy evaluations collected so
//!    far ([`framework`], using the `gp` crate).
//! 2. Sample Pareto fronts of the *model*: draw one function per objective from its GP
//!    posterior with random Fourier features and solve the cheap multi-objective problem over
//!    the samples with NSGA-II ([`pareto_sampling`]).
//! 3. Score candidate policies with the closed-form truncated-Gaussian information-gain
//!    expression, Eq. 9 of the paper ([`acquisition`]), and pick the maximizer
//!    ([`acquisition::AcquisitionOptimizer`]).
//! 4. Evaluate the selected policy on the platform ([`evaluation`]), append the observation
//!    and repeat.
//!
//! The result is a set of Pareto-frontier DRM policies; at run time the system picks the one
//! matching the user's desired trade-off ([`moo::ParetoFront::select_by`]).
//!
//! # Batched, parallel evaluation
//!
//! Step 3/4 can select the **top-q** acquisition candidates per iteration instead of the
//! argmax ([`ParmisConfig::batch_size`]) and evaluate them as one batch. Batches flow through
//! [`evaluation::PolicyEvaluator::evaluate_batch`]; wrap any evaluator in a
//! [`evaluation::ParallelEvaluator`] — or call [`framework::Parmis::run_parallel`] — to shard
//! the batch across a scoped thread pool ([`ParmisConfig::num_workers`]). All random streams
//! derive from `(seed, iteration, slot)` and batch results merge in slot order, so the Pareto
//! front is bit-identical for any worker count.
//!
//! # Evaluation backends
//!
//! The policy→aggregates step lives behind the small object-safe
//! [`backend::EvalBackend`] trait. Four implementations ship: the streaming analytic
//! simulator ([`backend::AnalyticSim`], the default and bit-identity reference, with a
//! fixture-recording mode), recorded-trace replay ([`backend::TraceReplay`]), a
//! perf-counter profiling fold ([`backend::CounterProfile`]) and a deterministic
//! fault-injection decorator ([`backend::FaultInject`]). Evaluators are assembled
//! with [`evaluation::SocEvaluator::builder`].
//!
//! # Robustness: checkpoint/resume, trace hashes, fault tolerance
//!
//! Long-budget searches are **resumable and auditable**: [`ParmisConfig::max_fuel`] makes
//! [`framework::Parmis::run_resumable`] suspend cleanly at an iteration boundary with a
//! serializable [`checkpoint::SearchState`] that [`framework::Parmis::resume`] continues
//! **bit-identically** — verified by a per-iteration trace-hash chain
//! ([`checkpoint::hash_chain`]) recorded in every checkpoint and outcome. The evaluation
//! seam is fault-tolerant: backend panics are contained into structured errors, failures
//! are retried under a deterministic [`evaluation::RetryPolicy`], and exhausted retries
//! either fail fast or degrade the candidate to a penalty vector
//! ([`evaluation::DegradeMode`]). [`backend::FaultInject`] drills all of it with seeded
//! failure schedules. For whole fleets, the [`jobs`] module adds a crash-safe
//! supervisor: a durable atomic-write checkpoint store with corruption quarantine, a
//! journaled job table, and watchdog-supervised multi-search scheduling that survives
//! `SIGKILL` at any point with bit-identical final fronts.
//!
//! # Cancellation, deadlines & graceful drain
//!
//! Every execution layer is **cooperatively cancellable** through the [`cancel`] module's
//! hierarchical [`cancel::CancelSource`]/[`cancel::CancelToken`] pair: searches wired with
//! [`framework::Parmis::with_cancel_token`] suspend at the next deterministic boundary
//! with a reason-carrying [`framework::StopReason`], wall-clock budgets
//! ([`framework::ParmisConfig::deadline_ms`], the supervisor's per-job and fleet
//! deadlines) convert expiry into a suspend-at-checkpoint rather than a kill, a
//! supervisor-side monitor raises `Stall` on workers whose heartbeat stops moving, and
//! SIGTERM/SIGINT drain the whole fleet gracefully
//! ([`jobs::JobSupervisor::request_drain`]). Timing only decides *when* a trajectory
//! suspends — resumed runs stay bit-identical.
//!
//! # Quick start
//!
//! ```no_run
//! use parmis::prelude::*;
//!
//! # fn main() -> Result<(), ParmisError> {
//! let evaluator = SocEvaluator::builder()
//!     .benchmark(Benchmark::Qsort)
//!     .objectives(vec![Objective::ExecutionTime, Objective::Energy])
//!     .build()?;
//! let config = ParmisConfig { max_iterations: 60, ..ParmisConfig::default() };
//! let outcome = Parmis::new(config).run(&evaluator)?;
//! println!("{} Pareto-frontier policies", outcome.front.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod backend;
pub mod cancel;
pub mod checkpoint;
mod error;
pub mod evaluation;
pub mod framework;
pub mod jobs;
pub mod objective;
pub mod parallel;
pub mod pareto_sampling;

pub use error::{CheckpointFault, ParmisError};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, ParmisError>;

/// One-import surface for the common workflow: assemble an evaluator, pick a backend, run
/// the search.
///
/// ```
/// use parmis::prelude::*;
/// ```
///
/// Deliberately excludes the crate-level [`Result`] alias so a glob import never shadows
/// `std::result::Result`.
pub mod prelude {
    pub use crate::backend::{
        AnalyticSim, BackendInfo, CounterProfile, EvalBackend, EvalContext, FaultInject, FaultKind,
        TraceReplay,
    };
    pub use crate::cancel::{CancelReason, CancelSource, CancelToken};
    pub use crate::checkpoint::SearchState;
    pub use crate::evaluation::{
        DegradeMode, EvaluatorBuilder, GlobalEvaluator, ParallelEvaluator, PolicyEvaluator,
        RetryPolicy, RetryStats, SimBuffers, SocEvaluator,
    };
    pub use crate::framework::{
        IterationRecord, Parmis, ParmisConfig, ParmisOutcome, SearchStep, StopReason,
    };
    pub use crate::jobs::{
        CheckpointStore, FleetReport, JobPhase, JobReport, JobSpec, JobSupervisor, SupervisorConfig,
    };
    pub use crate::objective::Objective;
    pub use crate::CheckpointFault;
    pub use crate::ParmisError;
    pub use fastmath::Precision;
    pub use soc_sim::apps::Benchmark;
    pub use soc_sim::scenario::{BackendKind, Scenario};
    pub use soc_sim::trace::{RunTrace, TraceStore};
}
