//! Pareto-front sampling from the GP posteriors (paper §IV-B, step 1).
//!
//! To evaluate the information-gain acquisition, PaRMIS needs samples of the optimal Pareto
//! front under the current statistical models. Each sample is produced by drawing one
//! function per objective from its GP posterior (via random Fourier features) and solving the
//! resulting *cheap* multi-objective optimization problem over the policy-parameter box with
//! NSGA-II. Only the per-objective extrema of the sampled front are needed by the
//! closed-form entropy expression, but the full front is kept for diagnostics and tests.
//!
//! # Batched engine
//!
//! The NSGA-II solve runs on the flat-buffer [`moo::nsga2::Nsga2Engine`]: each generation's
//! offspring block is answered by `k` calls to
//! [`PosteriorSample::eval_batch_into`](gp::PosteriorSample::eval_batch_into) — one fused
//! feature-matrix product per objective function over the whole population — instead of
//! `population × k` per-point feature recomputations. An [`AcquisitionScratch`] carries the
//! engine, the RFF weight-draw buffers and the per-objective output column across
//! [`sample`](ParetoFrontSampler::sample) calls (the framework keeps one alive across
//! iterations), so a warm sampler evolves each generation with zero heap allocation. The
//! sampled fronts are **bit-identical** to the original per-point loop for every seed; the
//! `acq_equivalence` suite in the bench crate pins this against the preserved seed path.

use crate::{ParmisError, Result};
use fastmath::Precision;
use gp::{GaussianProcess, PosteriorSample, RffSampler, WeightScratch};
use moo::nsga2::{Nsga2, Nsga2Config, Nsga2Engine};

/// Configuration of the front-sampling step.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoSamplingConfig {
    /// Number of random Fourier features per posterior function sample.
    pub rff_features: usize,
    /// NSGA-II population size for the cheap multi-objective solve.
    pub nsga_population: usize,
    /// NSGA-II generation count.
    pub nsga_generations: usize,
}

impl Default for ParetoSamplingConfig {
    fn default() -> Self {
        ParetoSamplingConfig {
            rff_features: 150,
            nsga_population: 40,
            nsga_generations: 25,
        }
    }
}

/// One sampled Pareto front of the model.
#[derive(Debug, Clone)]
pub struct ParetoFrontSample {
    /// Objective vectors of the sampled front (minimization).
    pub front: Vec<Vec<f64>>,
    /// Per-objective minimum over the sampled front: the truncation point `y*_s` of Eq. 6-8
    /// (adapted to minimization; see [`crate::acquisition`]).
    pub per_objective_best: Vec<f64>,
}

impl ParetoFrontSample {
    /// Builds a sample from its front, computing the per-objective extrema.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::DegenerateFront`] if the front is empty or any per-objective
    /// best is non-finite — either would leak `f64::INFINITY` (or `NaN`) into the
    /// closed-form information gain and silently corrupt every acquisition score.
    pub fn from_front(front: Vec<Vec<f64>>) -> Result<Self> {
        if front.is_empty() {
            return Err(ParmisError::DegenerateFront {
                reason: "sampled front has no points".into(),
            });
        }
        let k = front[0].len();
        let mut per_objective_best = vec![f64::INFINITY; k];
        for point in &front {
            for (best, v) in per_objective_best.iter_mut().zip(point) {
                *best = best.min(*v);
            }
        }
        if per_objective_best.iter().any(|b| !b.is_finite()) {
            return Err(ParmisError::DegenerateFront {
                reason: format!("non-finite per-objective extrema {per_objective_best:?}"),
            });
        }
        Ok(ParetoFrontSample {
            front,
            per_objective_best,
        })
    }
}

/// Reusable solver state for [`ParetoFrontSampler::sample_with`].
///
/// Owns the flat NSGA-II engine, the RFF weight-draw buffers and the per-objective batched
/// output column. Keeping one scratch alive across samples — and across framework
/// iterations — means the per-generation hot path never touches the allocator once warm.
#[derive(Debug, Default)]
pub struct AcquisitionScratch {
    /// Flat-buffer NSGA-II evolution engine.
    engine: Nsga2Engine,
    /// Weight-draw buffers shared by every objective's posterior-sample draw.
    weights: WeightScratch,
    /// One objective function's values over a whole population.
    objective_column: Vec<f64>,
    /// Pareto member indices of the final population.
    pareto: Vec<usize>,
}

/// Draws Pareto-front samples from a set of per-objective GP models.
#[derive(Debug)]
pub struct ParetoFrontSampler {
    samplers: Vec<RffSampler>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    config: ParetoSamplingConfig,
}

impl ParetoFrontSampler {
    /// Builds a sampler for the given per-objective models over the box
    /// `[-parameter_bound, parameter_bound]^d`.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::InvalidConfig`](crate::ParmisError::InvalidConfig) for an
    /// empty model set and propagates RFF construction failures.
    pub fn new(
        models: &[GaussianProcess],
        parameter_bound: f64,
        config: ParetoSamplingConfig,
        seed: u64,
    ) -> Result<Self> {
        Self::new_with_precision(models, parameter_bound, config, seed, Precision::SeedExact)
    }

    /// [`new`](Self::new) with an explicit evaluation [`Precision`] tier.
    ///
    /// The posterior draws (frequencies, phases, weights) are tier-independent, so the
    /// sampled functions are the *same* functions under either tier; only the cosine
    /// feature evaluation inside NSGA-II switches to the fast kernels, within the error
    /// contract documented in [`fastmath`].
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn new_with_precision(
        models: &[GaussianProcess],
        parameter_bound: f64,
        config: ParetoSamplingConfig,
        seed: u64,
        precision: Precision,
    ) -> Result<Self> {
        if models.is_empty() {
            return Err(crate::ParmisError::InvalidConfig {
                reason: "Pareto-front sampling needs at least one objective model".into(),
            });
        }
        let dim = models[0].dim();
        let samplers = models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                RffSampler::new(m, config.rff_features, seed.wrapping_add(i as u64 * 0x9e37))
                    .map(|s| s.with_precision(precision))
            })
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Ok(ParetoFrontSampler {
            samplers,
            lower: vec![-parameter_bound; dim],
            upper: vec![parameter_bound; dim],
            config,
        })
    }

    /// Number of objectives.
    pub fn num_objectives(&self) -> usize {
        self.samplers.len()
    }

    /// Draws one Pareto-front sample (deterministic in `sample_seed`).
    ///
    /// # Errors
    ///
    /// Propagates posterior-sampling failures and rejects degenerate fronts
    /// ([`ParmisError::DegenerateFront`]).
    pub fn sample(&self, sample_seed: u64) -> Result<ParetoFrontSample> {
        self.sample_with(&mut AcquisitionScratch::default(), sample_seed)
    }

    /// [`sample`](Self::sample) against a caller-owned [`AcquisitionScratch`].
    ///
    /// Bit-identical to `sample` for the same seed; reusing the scratch across samples and
    /// iterations keeps the NSGA-II generations and the RFF weight draws allocation-free.
    ///
    /// # Errors
    ///
    /// Same as [`sample`](Self::sample).
    pub fn sample_with(
        &self,
        scratch: &mut AcquisitionScratch,
        sample_seed: u64,
    ) -> Result<ParetoFrontSample> {
        let AcquisitionScratch {
            engine,
            weights,
            objective_column,
            pareto,
        } = scratch;
        let functions: Vec<PosteriorSample> = self
            .samplers
            .iter()
            .enumerate()
            .map(|(i, s)| s.sample_with(sample_seed.wrapping_add(i as u64 * 7919), weights))
            .collect::<std::result::Result<Vec<_>, _>>()?;

        let nsga_config = Nsga2Config {
            population_size: self.config.nsga_population.max(4) & !1,
            generations: self.config.nsga_generations.max(1),
            seed: sample_seed ^ 0xD1CE,
            ..Default::default()
        };
        let solver = Nsga2::new(self.lower.clone(), self.upper.clone(), nsga_config)
            .expect("bounds and configuration are valid by construction");

        // One batched feature-matrix product per objective function per generation: the k
        // functions share the engine's flat decision block and the scratch output column.
        let k = self.num_objectives();
        engine.solve(&solver, k, |points, out| {
            for (j, f) in functions.iter().enumerate() {
                objective_column.clear();
                objective_column.resize(points.count(), 0.0);
                f.eval_batch_into(points.as_slice(), objective_column);
                for (p, v) in objective_column.iter().enumerate() {
                    out[p * k + j] = *v;
                }
            }
        });

        engine.pareto_indices_into(pareto);
        let objectives = engine.objectives();
        let front: Vec<Vec<f64>> = pareto
            .iter()
            .map(|&i| objectives[i * k..(i + 1) * k].to_vec())
            .collect();
        ParetoFrontSample::from_front(front)
    }

    /// Draws `count` independent Pareto-front samples.
    ///
    /// # Errors
    ///
    /// Propagates posterior-sampling failures.
    pub fn sample_many(&self, count: usize, base_seed: u64) -> Result<Vec<ParetoFrontSample>> {
        self.sample_many_with(&mut AcquisitionScratch::default(), count, base_seed)
    }

    /// [`sample_many`](Self::sample_many) against a caller-owned scratch.
    ///
    /// # Errors
    ///
    /// Same as [`sample_many`](Self::sample_many).
    pub fn sample_many_with(
        &self,
        scratch: &mut AcquisitionScratch,
        count: usize,
        base_seed: u64,
    ) -> Result<Vec<ParetoFrontSample>> {
        (0..count)
            .map(|s| self.sample_with(scratch, base_seed.wrapping_add(s as u64 * 104729)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp::kernel::Kernel;

    /// Builds two tiny GP models over a 2-D parameter space with opposing trends, so the
    /// model's Pareto front is a genuine trade-off.
    fn toy_models() -> Vec<GaussianProcess> {
        let xs: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let t = i as f64 / 11.0 * 6.0 - 3.0;
                vec![t, -t * 0.5]
            })
            .collect();
        let y1: Vec<f64> = xs.iter().map(|x| x[0] + 0.1 * x[1]).collect();
        let y2: Vec<f64> = xs.iter().map(|x| -x[0] + 0.2 * x[1]).collect();
        vec![
            GaussianProcess::fit(xs.clone(), y1, Kernel::rbf(1.0, 2.0), 1e-4).unwrap(),
            GaussianProcess::fit(xs, y2, Kernel::rbf(1.0, 2.0), 1e-4).unwrap(),
        ]
    }

    fn small_config() -> ParetoSamplingConfig {
        ParetoSamplingConfig {
            rff_features: 80,
            nsga_population: 20,
            nsga_generations: 10,
        }
    }

    #[test]
    fn sampler_produces_nonempty_fronts_with_consistent_dimensions() {
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 1).unwrap();
        assert_eq!(sampler.num_objectives(), 2);
        let sample = sampler.sample(0).unwrap();
        assert!(!sample.front.is_empty());
        assert_eq!(sample.per_objective_best.len(), 2);
        for p in &sample.front {
            assert_eq!(p.len(), 2);
            for (v, best) in p.iter().zip(&sample.per_objective_best) {
                assert!(v >= best);
            }
        }
    }

    #[test]
    fn sampled_front_is_non_dominated() {
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 2).unwrap();
        let sample = sampler.sample(5).unwrap();
        for (i, a) in sample.front.iter().enumerate() {
            for (j, b) in sample.front.iter().enumerate() {
                if i != j {
                    assert!(!moo::dominates(a, b));
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 3).unwrap();
        let a = sampler.sample(7).unwrap();
        let b = sampler.sample(7).unwrap();
        assert_eq!(a.front, b.front);
        let c = sampler.sample(8).unwrap();
        assert_ne!(a.per_objective_best, c.per_objective_best);
    }

    #[test]
    fn sample_many_returns_requested_count() {
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 4).unwrap();
        let samples = sampler.sample_many(3, 11).unwrap();
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn reused_scratch_reproduces_fresh_scratch_samples() {
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 6).unwrap();
        let mut scratch = AcquisitionScratch::default();
        // Warm the scratch on a different seed first, then compare against fresh-scratch
        // draws: the engine and weight buffers must not leak state between samples.
        let _ = sampler.sample_with(&mut scratch, 3).unwrap();
        for seed in [0, 9, 17] {
            let warm = sampler.sample_with(&mut scratch, seed).unwrap();
            let fresh = sampler.sample(seed).unwrap();
            assert_eq!(warm.front, fresh.front);
            assert_eq!(warm.per_objective_best, fresh.per_objective_best);
        }
    }

    #[test]
    fn from_front_rejects_degenerate_fronts() {
        // An empty front used to leak f64::INFINITY into `per_objective_best` (and from
        // there into every information-gain score); it must be a structured error.
        let err = ParetoFrontSample::from_front(vec![]).unwrap_err();
        assert!(matches!(err, ParmisError::DegenerateFront { .. }));
        assert!(err.to_string().contains("degenerate"));

        let err = ParetoFrontSample::from_front(vec![vec![f64::NAN, 1.0]]).unwrap_err();
        assert!(matches!(err, ParmisError::DegenerateFront { .. }));

        let ok = ParetoFrontSample::from_front(vec![vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        assert_eq!(ok.per_objective_best, vec![1.0, 1.0]);
    }

    #[test]
    fn trade_off_models_give_conflicting_extrema() {
        // Since objective 1 increases with x0 and objective 2 decreases with x0, the sampled
        // front should span a range in both objectives rather than collapse to a point.
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 5).unwrap();
        let sample = sampler.sample(1).unwrap();
        if sample.front.len() >= 2 {
            let spread0: f64 = sample
                .front
                .iter()
                .map(|p| p[0])
                .fold(f64::NEG_INFINITY, f64::max)
                - sample.per_objective_best[0];
            assert!(
                spread0 > 0.1,
                "front should span objective 0, spread {spread0}"
            );
        }
    }
}
