//! Pareto-front sampling from the GP posteriors (paper §IV-B, step 1).
//!
//! To evaluate the information-gain acquisition, PaRMIS needs samples of the optimal Pareto
//! front under the current statistical models. Each sample is produced by drawing one
//! function per objective from its GP posterior (via random Fourier features) and solving the
//! resulting *cheap* multi-objective optimization problem over the policy-parameter box with
//! NSGA-II. Only the per-objective extrema of the sampled front are needed by the
//! closed-form entropy expression, but the full front is kept for diagnostics and tests.

use crate::Result;
use gp::{GaussianProcess, PosteriorSample, RffSampler};
use moo::nsga2::{Nsga2, Nsga2Config};

/// Configuration of the front-sampling step.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoSamplingConfig {
    /// Number of random Fourier features per posterior function sample.
    pub rff_features: usize,
    /// NSGA-II population size for the cheap multi-objective solve.
    pub nsga_population: usize,
    /// NSGA-II generation count.
    pub nsga_generations: usize,
}

impl Default for ParetoSamplingConfig {
    fn default() -> Self {
        ParetoSamplingConfig {
            rff_features: 150,
            nsga_population: 40,
            nsga_generations: 25,
        }
    }
}

/// One sampled Pareto front of the model.
#[derive(Debug, Clone)]
pub struct ParetoFrontSample {
    /// Objective vectors of the sampled front (minimization).
    pub front: Vec<Vec<f64>>,
    /// Per-objective minimum over the sampled front: the truncation point `y*_s` of Eq. 6-8
    /// (adapted to minimization; see [`crate::acquisition`]).
    pub per_objective_best: Vec<f64>,
}

/// Draws Pareto-front samples from a set of per-objective GP models.
#[derive(Debug)]
pub struct ParetoFrontSampler {
    samplers: Vec<RffSampler>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    config: ParetoSamplingConfig,
}

impl ParetoFrontSampler {
    /// Builds a sampler for the given per-objective models over the box
    /// `[-parameter_bound, parameter_bound]^d`.
    ///
    /// # Errors
    ///
    /// Propagates RFF construction failures.
    pub fn new(
        models: &[GaussianProcess],
        parameter_bound: f64,
        config: ParetoSamplingConfig,
        seed: u64,
    ) -> Result<Self> {
        assert!(
            !models.is_empty(),
            "at least one objective model is required"
        );
        let dim = models[0].dim();
        let samplers = models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                RffSampler::new(m, config.rff_features, seed.wrapping_add(i as u64 * 0x9e37))
            })
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Ok(ParetoFrontSampler {
            samplers,
            lower: vec![-parameter_bound; dim],
            upper: vec![parameter_bound; dim],
            config,
        })
    }

    /// Number of objectives.
    pub fn num_objectives(&self) -> usize {
        self.samplers.len()
    }

    /// Draws one Pareto-front sample (deterministic in `sample_seed`).
    ///
    /// # Errors
    ///
    /// Propagates posterior-sampling failures.
    pub fn sample(&self, sample_seed: u64) -> Result<ParetoFrontSample> {
        let functions: Vec<PosteriorSample> = self
            .samplers
            .iter()
            .enumerate()
            .map(|(i, s)| s.sample(sample_seed.wrapping_add(i as u64 * 7919)))
            .collect::<std::result::Result<Vec<_>, _>>()?;

        let nsga_config = Nsga2Config {
            population_size: self.config.nsga_population.max(4) & !1,
            generations: self.config.nsga_generations.max(1),
            seed: sample_seed ^ 0xD1CE,
            ..Default::default()
        };
        let solver = Nsga2::new(self.lower.clone(), self.upper.clone(), nsga_config)
            .expect("bounds and configuration are valid by construction");
        let population = solver.run(|theta| functions.iter().map(|f| f.eval(theta)).collect());
        let front = population.pareto_front();

        let k = self.num_objectives();
        let mut per_objective_best = vec![f64::INFINITY; k];
        for point in &front {
            for (best, v) in per_objective_best.iter_mut().zip(point) {
                *best = best.min(*v);
            }
        }
        Ok(ParetoFrontSample {
            front,
            per_objective_best,
        })
    }

    /// Draws `count` independent Pareto-front samples.
    ///
    /// # Errors
    ///
    /// Propagates posterior-sampling failures.
    pub fn sample_many(&self, count: usize, base_seed: u64) -> Result<Vec<ParetoFrontSample>> {
        (0..count)
            .map(|s| self.sample(base_seed.wrapping_add(s as u64 * 104729)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp::kernel::Kernel;

    /// Builds two tiny GP models over a 2-D parameter space with opposing trends, so the
    /// model's Pareto front is a genuine trade-off.
    fn toy_models() -> Vec<GaussianProcess> {
        let xs: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                let t = i as f64 / 11.0 * 6.0 - 3.0;
                vec![t, -t * 0.5]
            })
            .collect();
        let y1: Vec<f64> = xs.iter().map(|x| x[0] + 0.1 * x[1]).collect();
        let y2: Vec<f64> = xs.iter().map(|x| -x[0] + 0.2 * x[1]).collect();
        vec![
            GaussianProcess::fit(xs.clone(), y1, Kernel::rbf(1.0, 2.0), 1e-4).unwrap(),
            GaussianProcess::fit(xs, y2, Kernel::rbf(1.0, 2.0), 1e-4).unwrap(),
        ]
    }

    fn small_config() -> ParetoSamplingConfig {
        ParetoSamplingConfig {
            rff_features: 80,
            nsga_population: 20,
            nsga_generations: 10,
        }
    }

    #[test]
    fn sampler_produces_nonempty_fronts_with_consistent_dimensions() {
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 1).unwrap();
        assert_eq!(sampler.num_objectives(), 2);
        let sample = sampler.sample(0).unwrap();
        assert!(!sample.front.is_empty());
        assert_eq!(sample.per_objective_best.len(), 2);
        for p in &sample.front {
            assert_eq!(p.len(), 2);
            for (v, best) in p.iter().zip(&sample.per_objective_best) {
                assert!(v >= best);
            }
        }
    }

    #[test]
    fn sampled_front_is_non_dominated() {
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 2).unwrap();
        let sample = sampler.sample(5).unwrap();
        for (i, a) in sample.front.iter().enumerate() {
            for (j, b) in sample.front.iter().enumerate() {
                if i != j {
                    assert!(!moo::dominates(a, b));
                }
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 3).unwrap();
        let a = sampler.sample(7).unwrap();
        let b = sampler.sample(7).unwrap();
        assert_eq!(a.front, b.front);
        let c = sampler.sample(8).unwrap();
        assert_ne!(a.per_objective_best, c.per_objective_best);
    }

    #[test]
    fn sample_many_returns_requested_count() {
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 4).unwrap();
        let samples = sampler.sample_many(3, 11).unwrap();
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn trade_off_models_give_conflicting_extrema() {
        // Since objective 1 increases with x0 and objective 2 decreases with x0, the sampled
        // front should span a range in both objectives rather than collapse to a point.
        let models = toy_models();
        let sampler = ParetoFrontSampler::new(&models, 3.0, small_config(), 5).unwrap();
        let sample = sampler.sample(1).unwrap();
        if sample.front.len() >= 2 {
            let spread0: f64 = sample
                .front
                .iter()
                .map(|p| p[0])
                .fold(f64::NEG_INFINITY, f64::max)
                - sample.per_objective_best[0];
            assert!(
                spread0 > 0.1,
                "front should span objective 0, spread {spread0}"
            );
        }
    }
}
