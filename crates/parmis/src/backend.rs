//! Evaluation backends: the policy→aggregates contract behind [`SocEvaluator`].
//!
//! [`crate::evaluation::SocEvaluator`] owns *what* to evaluate (platform, applications,
//! objectives, constraints); an [`EvalBackend`] owns *how* a configured policy becomes
//! [`RunAggregates`]. The trait is small and object-safe so evaluators hold backends as
//! `Arc<dyn EvalBackend>` and new execution substrates (a hardware board, a remote fleet)
//! plug in without touching the search loop. Four implementations ship:
//!
//! * [`AnalyticSim`] — the streaming `DecisionTable`/`EpochSink` simulator, verbatim. This
//!   is the default and the bit-identity reference: its aggregates are exactly what the
//!   pre-backend evaluator produced, and all determinism gates (`(seed, iteration, slot)`
//!   streams, scenario goldens) are pinned against it. Its `record` mode additionally
//!   captures the epoch stream of every run into a shared [`TraceStore`].
//! * [`TraceReplay`] — replays recorded epoch-stream fixtures ([`soc_sim::trace`]) by
//!   re-folding them with [`soc_sim::trace::RunTrace::aggregates`]: no simulation, exactly
//!   reproducible, bit-identical to the run that recorded the trace.
//! * [`CounterProfile`] — runs the synthetic perf-counter stream through the
//!   collector/stats split ([`soc_sim::counters::CounterCollector`] /
//!   [`soc_sim::counters::CounterStats`]), deriving every aggregate from the counters
//!   alone. This is the seam a hardware-in-the-loop backend would feed from a real PMU.
//! * [`FaultInject`] — a decorator that layers a **seeded, deterministic failure
//!   schedule** (error-on-nth-run, panic, latency spike) over any inner backend, for
//!   robustness drills: retry policies, worker panic containment and graceful degradation
//!   are all exercised against it in the fault-injection suite.
//!
//! Determinism contract: a backend's result may depend only on the [`EvalContext`] and the
//! policy parameters in the [`SimBuffers`] — never on call order or hidden mutable state —
//! because the batched search relies on evaluations being pure to keep the Pareto front
//! bit-identical for any worker count.

use crate::cancel::CancelToken;
use crate::evaluation::SimBuffers;
use crate::{ParmisError, Result};
use soc_sim::counters::{CounterCollector, CounterStats};
use soc_sim::platform::{
    CancelEpochs, CollectEpochs, DiscardEpochs, EpochSink, Platform, RunAggregates,
};
use soc_sim::scenario::BackendKind;
use soc_sim::trace::{RunTrace, TraceStore};
use soc_sim::workload::Application;
use soc_sim::SocError;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Static description of an evaluation backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendInfo {
    /// Which serializable backend selection this implementation answers to.
    pub kind: BackendKind,
    /// One-line human description of the execution substrate.
    pub description: &'static str,
    /// `true` when two runs with the same context and policy are bit-identical.
    pub deterministic: bool,
}

impl BackendInfo {
    /// The backend's stable kebab-case name (shared with [`BackendKind::name`]).
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

/// Everything a backend needs to carry out one policy run, borrowed from the evaluator.
#[derive(Debug, Clone, Copy)]
pub struct EvalContext<'a> {
    /// The platform the run targets.
    pub platform: &'a Platform,
    /// The application to run.
    pub application: &'a Application,
    /// Measurement-noise seed of the run.
    pub seed: u64,
    /// Cooperative-cancellation token polled by streaming backends every
    /// [`CANCEL_EPOCH_STRIDE`] simulated epochs (`None` = never cancelled, zero
    /// overhead). A tripped token aborts the run with [`ParmisError::Cancelled`],
    /// discarding the partial aggregates — cancellation can never truncate results.
    pub cancel: Option<&'a CancelToken>,
}

/// How many simulated epochs a streaming backend runs between two cancellation polls of
/// [`EvalContext::cancel`]. Small enough to notice a drain within a fraction of one
/// application run, large enough to keep the per-epoch cost negligible.
pub const CANCEL_EPOCH_STRIDE: usize = 64;

/// The policy→aggregates step: turns the policy currently decoded in `buffers` into the
/// [`RunAggregates`] of one application run.
///
/// Object-safe by design — evaluators store `Arc<dyn EvalBackend>`. The policy lives inside
/// the mutable [`SimBuffers`] scratch (not behind a shared reference) because driving the
/// simulator requires `&mut` access for the MLP's ping-pong inference scratch.
pub trait EvalBackend: std::fmt::Debug + Send + Sync {
    /// Static metadata about this backend.
    fn describe(&self) -> BackendInfo;

    /// Runs `ctx.application` on `ctx.platform` under the policy decoded in `buffers` and
    /// returns the folded aggregates.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Backend`] naming this backend when the run cannot be carried
    /// out (invalid decision, missing trace, …).
    fn run(&self, ctx: &EvalContext<'_>, buffers: &mut SimBuffers) -> Result<RunAggregates>;
}

/// Wraps a simulator/trace failure in the structured [`ParmisError::Backend`] variant.
fn backend_error(kind: BackendKind, source: SocError) -> ParmisError {
    ParmisError::Backend {
        name: kind.name().to_string(),
        source,
    }
}

/// Hottest junction temperature of the platform's initial thermal state — the value the
/// streaming runner seeds its peak-temperature fold with before the first epoch.
fn initial_temperature_c(platform: &Platform) -> f64 {
    platform.spec().thermal_model().initial_state().hottest_c()
}

/// Drives one streaming application run through `sink`, honoring [`EvalContext::cancel`]:
/// with a token present the sink is wrapped in a [`CancelEpochs`] decorator that polls the
/// token every [`CANCEL_EPOCH_STRIDE`] epochs (and beats its heartbeat, so the stall
/// monitor sees in-run progress); without one the plain runner is invoked with zero
/// overhead. Both paths fold bit-identical aggregates — the wrapper never touches epochs.
fn run_streaming<S: EpochSink>(
    ctx: &EvalContext<'_>,
    buffers: &mut SimBuffers,
    mut sink: S,
) -> std::result::Result<RunAggregates, SocError> {
    match ctx.cancel {
        None => ctx.platform.run_application_with(
            ctx.application,
            buffers.policy_mut(),
            ctx.seed,
            &mut sink,
        ),
        Some(token) => {
            let mut wrapped = CancelEpochs::new(sink, CANCEL_EPOCH_STRIDE, move || {
                token.beat();
                match token.cancelled() {
                    Some(reason) => Err(SocError::Cancelled {
                        reason: reason.name().to_string(),
                    }),
                    None => Ok(()),
                }
            });
            ctx.platform.run_application_with(
                ctx.application,
                buffers.policy_mut(),
                ctx.seed,
                &mut wrapped,
            )
        }
    }
}

/// Maps a streaming-run failure to the structured error contract: a cancellation probe
/// abort becomes [`ParmisError::Cancelled`] (re-reading the token for the latched reason);
/// everything else is a [`ParmisError::Backend`] naming `kind`.
fn streaming_error(kind: BackendKind, ctx: &EvalContext<'_>, source: SocError) -> ParmisError {
    if let SocError::Cancelled { .. } = source {
        if let Some(reason) = ctx.cancel.and_then(|token| token.cancelled()) {
            return ParmisError::cancelled(reason);
        }
    }
    backend_error(kind, source)
}

/// The streaming analytic simulator (the default backend), with an optional record mode.
///
/// Without a recorder this is **exactly** the pre-backend evaluation path: one
/// [`Platform::run_application_with`] call with a [`DiscardEpochs`] sink — zero per-epoch
/// allocation, bit-identical aggregates. With a recorder attached
/// ([`recording`](Self::recording)), every run additionally captures its epoch stream into
/// the shared [`TraceStore`] as a [`RunTrace`] keyed by `(application, seed)`; the
/// aggregates returned are unchanged (the sink never affects the fold).
#[derive(Debug, Clone, Default)]
pub struct AnalyticSim {
    recorder: Option<Arc<Mutex<TraceStore>>>,
}

impl AnalyticSim {
    /// The plain streaming simulator, recording nothing.
    pub fn new() -> Self {
        AnalyticSim::default()
    }

    /// A recording simulator and the shared store its runs are captured into.
    ///
    /// Keep the returned handle: after evaluations, lock it (or call
    /// [`snapshot_traces`](Self::snapshot_traces) on the backend) to obtain the fixtures,
    /// e.g. to serialize with [`TraceStore::to_json`] and later replay via [`TraceReplay`].
    pub fn recording() -> (Self, Arc<Mutex<TraceStore>>) {
        let store = Arc::new(Mutex::new(TraceStore::new()));
        (
            AnalyticSim {
                recorder: Some(store.clone()),
            },
            store,
        )
    }

    /// `true` when a recorder is attached.
    pub fn is_recording(&self) -> bool {
        self.recorder.is_some()
    }

    /// A clone of the recorded traces so far (`None` when not recording).
    pub fn snapshot_traces(&self) -> Option<TraceStore> {
        self.recorder
            .as_ref()
            .map(|store| store.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }
}

impl EvalBackend for AnalyticSim {
    fn describe(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::AnalyticSim,
            description: "streaming DecisionTable/EpochSink analytic simulator",
            deterministic: true,
        }
    }

    fn run(&self, ctx: &EvalContext<'_>, buffers: &mut SimBuffers) -> Result<RunAggregates> {
        match &self.recorder {
            None => run_streaming(ctx, buffers, DiscardEpochs)
                .map_err(|e| streaming_error(BackendKind::AnalyticSim, ctx, e)),
            Some(store) => {
                let mut collector = CollectEpochs::with_capacity(ctx.application.epoch_count());
                let aggregates = run_streaming(ctx, buffers, &mut collector)
                    .map_err(|e| streaming_error(BackendKind::AnalyticSim, ctx, e))?;
                store
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(RunTrace {
                        application: ctx.application.name.to_string(),
                        seed: ctx.seed,
                        initial_temperature_c: initial_temperature_c(ctx.platform),
                        epochs: collector.into_epochs(),
                    });
                Ok(aggregates)
            }
        }
    }
}

/// Replays recorded epoch-stream fixtures instead of simulating.
///
/// Runs are looked up by `(application name, seed)` in the wrapped [`TraceStore`] and
/// re-folded with [`RunTrace::aggregates`] — bit-identical to the [`AnalyticSim`] run that
/// recorded them, at a fraction of the cost (no per-epoch model math, no controller
/// inference). The replayed aggregates are a function of the recorded stream only: the
/// policy parameters in the buffers are deliberately ignored, which is what makes traces
/// exact, policy-independent fixtures for golden-driven scenario ingestion.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    store: Arc<TraceStore>,
}

impl TraceReplay {
    /// A replay backend over `store`.
    pub fn new(store: TraceStore) -> Self {
        TraceReplay {
            store: Arc::new(store),
        }
    }

    /// A replay backend over an already-shared store.
    pub fn from_shared(store: Arc<TraceStore>) -> Self {
        TraceReplay { store }
    }

    /// A replay backend over fixtures parsed from JSON ([`TraceStore::from_json`]).
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Backend`] for malformed fixture JSON.
    pub fn from_json(text: &str) -> Result<Self> {
        TraceStore::from_json(text)
            .map(TraceReplay::new)
            .map_err(|e| backend_error(BackendKind::TraceReplay, e))
    }

    /// The fixtures this backend replays.
    pub fn store(&self) -> &TraceStore {
        &self.store
    }
}

impl EvalBackend for TraceReplay {
    fn describe(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::TraceReplay,
            description: "recorded epoch-stream fixture replay",
            deterministic: true,
        }
    }

    fn run(&self, ctx: &EvalContext<'_>, _buffers: &mut SimBuffers) -> Result<RunAggregates> {
        match self.store.lookup(&ctx.application.name, ctx.seed) {
            Some(trace) => Ok(trace.aggregates()),
            None => Err(backend_error(
                BackendKind::TraceReplay,
                SocError::Trace {
                    reason: format!(
                        "no recorded trace for application `{}` with seed {} ({} trace(s) loaded)",
                        ctx.application.name,
                        ctx.seed,
                        self.store.len()
                    ),
                },
            )),
        }
    }
}

/// Folds the synthetic perf-counter stream into aggregates via the collector/stats split.
///
/// The run still executes on the analytic platform (it is the counter *source*), but the
/// fold sees only what a profiling stack measures: the Table I counters, per-epoch wall
/// time and the thermal sensor ([`CounterCollector`]). [`CounterStats`] then derives every
/// aggregate from those channels — notably energy as `Σ power-counter · time`, which
/// excludes the simulator-internal DVFS switch-energy penalty. Deterministic, but a
/// measurement-style view rather than a bit-copy of [`AnalyticSim`]; swapping the synthetic
/// stream for a real PMU feed is the intended hardware-in-the-loop path.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterProfile;

impl CounterProfile {
    /// The counter-profiling backend.
    pub fn new() -> Self {
        CounterProfile
    }
}

impl EvalBackend for CounterProfile {
    fn describe(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::CounterProfile,
            description: "perf-counter stream folded via the collector/stats split",
            deterministic: true,
        }
    }

    fn run(&self, ctx: &EvalContext<'_>, buffers: &mut SimBuffers) -> Result<RunAggregates> {
        let mut collector = CounterCollector::with_capacity(ctx.application.epoch_count());
        run_streaming(ctx, buffers, &mut collector)
            .map_err(|e| streaming_error(BackendKind::CounterProfile, ctx, e))?;
        Ok(CounterStats::aggregate(
            collector.samples(),
            initial_temperature_c(ctx.platform),
        ))
    }
}

/// One entry of a [`FaultInject`] failure schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The run fails with a structured [`ParmisError::Backend`] carrying
    /// [`SocError::Fault`]; the inner backend is never invoked.
    Error,
    /// The run panics inside the backend — this is the drill for worker panic containment
    /// (the parallel evaluator must convert it into a structured error, not abort).
    Panic,
    /// The run stalls for the given number of microseconds, then delegates normally. A
    /// latency fault must never change results, only (virtual or real) wall-clock time.
    /// By default the stall is **charged to a deterministic virtual-clock ledger**
    /// ([`FaultInject::charged_latency_micros`]) instead of sleeping, so latency drills
    /// do not slow the test suite down; [`FaultInject::with_real_latency`] opts into
    /// actually sleeping for stall-detector drills that need elapsed time.
    LatencySpike {
        /// Stall duration in microseconds.
        micros: u64,
    },
}

/// Deterministic fault-injection decorator over any [`EvalBackend`].
///
/// Faults fire on a **global run counter** (the nth `run` call on this instance,
/// evaluator-wide, zero-based): explicitly via [`fault_on`](Self::fault_on), or randomly
/// via [`with_random_errors`](Self::with_random_errors), whose per-run decision is a pure
/// splitmix64 hash of `(seed, run index)` — reproducible across processes, independent of
/// thread interleaving in *which* runs fail. Because a retried run draws a fresh counter
/// value, scheduled faults model **transient** failures: a retry policy with at least one
/// attempt left recovers from them, which is exactly what the retry-equivalence tests
/// exploit.
///
/// The decorator reports `deterministic: false`: with parallel evaluation the assignment
/// of counter values to (application, θ) pairs depends on call order, so two runs of the
/// same context may fail differently. Every other backend invariant is preserved by
/// delegation.
#[derive(Debug)]
pub struct FaultInject {
    inner: Arc<dyn EvalBackend>,
    schedule: Vec<(usize, FaultKind)>,
    seed: u64,
    error_rate: f64,
    runs: AtomicUsize,
    /// Virtual-clock ledger of latency-spike stalls (mirrors the retry policy's backoff
    /// ledger): total microseconds charged instead of slept.
    charged_latency_micros: AtomicU64,
    /// When `true`, latency spikes actually sleep (stall-detector drills only).
    real_latency: bool,
}

impl FaultInject {
    /// A decorator over `inner` with an empty (benign) schedule.
    pub fn new(inner: Arc<dyn EvalBackend>) -> Self {
        FaultInject {
            inner,
            schedule: Vec::new(),
            seed: 0,
            error_rate: 0.0,
            runs: AtomicUsize::new(0),
            charged_latency_micros: AtomicU64::new(0),
            real_latency: false,
        }
    }

    /// Schedules `kind` to fire on the `run`-th call (zero-based, counted across the whole
    /// instance). Entries stack; the first matching entry wins.
    #[must_use]
    pub fn fault_on(mut self, run: usize, kind: FaultKind) -> Self {
        self.schedule.push((run, kind));
        self
    }

    /// Additionally fails each unscheduled run with probability `rate`, decided by a pure
    /// hash of `(seed, run index)` — the same seed reproduces the same failure set.
    #[must_use]
    pub fn with_random_errors(mut self, seed: u64, rate: f64) -> Self {
        self.seed = seed;
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Makes latency spikes actually block the worker thread instead of charging the
    /// virtual-clock ledger. Only stall-detection drills (which measure real elapsed
    /// time) should want this; everything else gets the same determinism for free from
    /// the ledger.
    #[must_use]
    pub fn with_real_latency(mut self) -> Self {
        self.real_latency = true;
        self
    }

    /// Number of `run` calls made so far (injected faults included).
    pub fn runs(&self) -> usize {
        self.runs.load(Ordering::SeqCst)
    }

    /// Total latency-spike microseconds charged to the virtual-clock ledger so far
    /// (always 0 with [`with_real_latency`](Self::with_real_latency)).
    pub fn charged_latency_micros(&self) -> u64 {
        self.charged_latency_micros.load(Ordering::SeqCst)
    }

    /// Uniform `[0, 1)` draw for run `n`: splitmix64 finalizer over `seed ^ f(n)`.
    fn uniform(&self, n: usize) -> f64 {
        let mut z = self.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl EvalBackend for FaultInject {
    fn describe(&self) -> BackendInfo {
        BackendInfo {
            kind: BackendKind::FaultInject,
            description: "deterministic fault-injection decorator (robustness drills)",
            deterministic: false,
        }
    }

    fn run(&self, ctx: &EvalContext<'_>, buffers: &mut SimBuffers) -> Result<RunAggregates> {
        let n = self.runs.fetch_add(1, Ordering::SeqCst);
        let fault = self
            .schedule
            .iter()
            .find(|(at, _)| *at == n)
            .map(|&(_, kind)| kind)
            .or_else(|| {
                (self.error_rate > 0.0 && self.uniform(n) < self.error_rate)
                    .then_some(FaultKind::Error)
            });
        match fault {
            Some(FaultKind::Error) => Err(backend_error(
                BackendKind::FaultInject,
                SocError::Fault {
                    reason: format!("injected failure at run {n}"),
                },
            )),
            Some(FaultKind::Panic) => panic!("injected panic at run {n} (fault-injection drill)"),
            Some(FaultKind::LatencySpike { micros }) => {
                if self.real_latency {
                    std::thread::sleep(std::time::Duration::from_micros(micros));
                } else {
                    self.charged_latency_micros
                        .fetch_add(micros, Ordering::SeqCst);
                }
                self.inner.run(ctx, buffers)
            }
            None => self.inner.run(ctx, buffers),
        }
    }
}

/// Instantiates the stock backend for a serializable [`BackendKind`] selection.
///
/// [`BackendKind::TraceReplay`] starts from an **empty** fixture store — every run errors
/// until fixtures are supplied — because the selection enum cannot carry the traces
/// themselves. Load fixtures explicitly ([`TraceReplay::from_json`] /
/// [`TraceReplay::new`]) and hand the backend to
/// [`EvaluatorBuilder::backend`](crate::evaluation::EvaluatorBuilder::backend) instead.
/// Similarly, [`BackendKind::FaultInject`] resolves to a **benign** decorator (empty
/// schedule over [`AnalyticSim`]); configure a real schedule via [`FaultInject`]'s builder
/// methods.
pub fn default_backend_for(kind: BackendKind) -> Arc<dyn EvalBackend> {
    match kind {
        BackendKind::AnalyticSim => Arc::new(AnalyticSim::new()),
        BackendKind::TraceReplay => Arc::new(TraceReplay::new(TraceStore::new())),
        BackendKind::CounterProfile => Arc::new(CounterProfile::new()),
        BackendKind::FaultInject => Arc::new(FaultInject::new(Arc::new(AnalyticSim::new()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{PolicyEvaluator, SocEvaluator};
    use crate::objective::Objective;
    use soc_sim::apps::Benchmark;

    fn context_fixture() -> (Platform, Application) {
        (Platform::odroid_xu3(), Benchmark::Qsort.application())
    }

    #[test]
    fn describe_reports_the_matching_kind() {
        assert_eq!(AnalyticSim::new().describe().kind, BackendKind::AnalyticSim);
        assert_eq!(AnalyticSim::new().describe().name(), "analytic-sim");
        assert!(AnalyticSim::new().describe().deterministic);
        assert_eq!(
            TraceReplay::new(TraceStore::new()).describe().kind,
            BackendKind::TraceReplay
        );
        assert_eq!(
            CounterProfile::new().describe().kind,
            BackendKind::CounterProfile
        );
        for kind in BackendKind::ALL {
            assert_eq!(default_backend_for(kind).describe().kind, kind);
        }
    }

    #[test]
    fn fault_inject_schedule_fires_on_the_counter_and_latency_preserves_results() {
        let (platform, application) = context_fixture();
        let evaluator =
            SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
        let mut buffers = evaluator.sim_buffers();
        buffers
            .policy_mut()
            .set_flat_parameters(&vec![0.2; evaluator.parameter_dim()]);
        let ctx = EvalContext {
            platform: &platform,
            application: &application,
            seed: 17,
            cancel: None,
        };
        let baseline = AnalyticSim::new().run(&ctx, &mut buffers).unwrap();

        let faulty = FaultInject::new(Arc::new(AnalyticSim::new()))
            .fault_on(1, FaultKind::Error)
            .fault_on(2, FaultKind::LatencySpike { micros: 50 });
        assert_eq!(faulty.describe().kind, BackendKind::FaultInject);
        assert!(!faulty.describe().deterministic);

        // Run 0 is clean, run 1 errors structurally, run 2 stalls (charged to the
        // virtual-clock ledger, not slept) but returns the same aggregates bit for bit.
        assert_eq!(faulty.run(&ctx, &mut buffers).unwrap(), baseline);
        let err = faulty.run(&ctx, &mut buffers).unwrap_err();
        match err {
            ParmisError::Backend {
                ref name,
                ref source,
            } => {
                assert_eq!(name, "fault-inject");
                assert!(matches!(source, SocError::Fault { .. }));
            }
            other => panic!("expected Backend error, got {other:?}"),
        }
        assert_eq!(faulty.charged_latency_micros(), 0);
        assert_eq!(faulty.run(&ctx, &mut buffers).unwrap(), baseline);
        assert_eq!(faulty.runs(), 3);
        assert_eq!(faulty.charged_latency_micros(), 50);

        // Opting into real latency leaves the ledger untouched and actually blocks.
        let sleeper = FaultInject::new(Arc::new(AnalyticSim::new()))
            .fault_on(0, FaultKind::LatencySpike { micros: 2_000 })
            .with_real_latency();
        let started = std::time::Instant::now();
        assert_eq!(sleeper.run(&ctx, &mut buffers).unwrap(), baseline);
        assert!(started.elapsed() >= std::time::Duration::from_micros(2_000));
        assert_eq!(sleeper.charged_latency_micros(), 0);

        // The seeded random schedule is a pure function of (seed, run index): two
        // instances with the same seed fail the same runs.
        let mut failures = |seed: u64| -> Vec<bool> {
            let b = FaultInject::new(Arc::new(AnalyticSim::new())).with_random_errors(seed, 0.4);
            (0..20)
                .map(|_| b.run(&ctx, &mut buffers).is_err())
                .collect()
        };
        let a = failures(7);
        assert_eq!(a, failures(7));
        assert_ne!(a, failures(8));
        assert!(a.iter().any(|&f| f) && !a.iter().all(|&f| f));
    }

    #[test]
    fn streaming_backends_abort_with_a_cancelled_error_and_ignore_untripped_tokens() {
        use crate::cancel::{CancelReason, CancelSource};
        let (platform, application) = context_fixture();
        let evaluator =
            SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
        let mut buffers = evaluator.sim_buffers();
        buffers
            .policy_mut()
            .set_flat_parameters(&vec![0.2; evaluator.parameter_dim()]);
        let plain = EvalContext {
            platform: &platform,
            application: &application,
            seed: 17,
            cancel: None,
        };
        let baseline = AnalyticSim::new().run(&plain, &mut buffers).unwrap();

        // An untripped token changes nothing: same aggregates bit for bit, and the probe
        // beats the heartbeat so the stall monitor sees in-run progress.
        let source = CancelSource::new();
        let token = source.token();
        let watched = EvalContext {
            cancel: Some(&token),
            ..plain
        };
        assert_eq!(
            AnalyticSim::new().run(&watched, &mut buffers).unwrap(),
            baseline
        );
        assert!(token.heartbeats() > 0);
        assert_eq!(
            CounterProfile::new().run(&watched, &mut buffers).unwrap(),
            CounterProfile::new().run(&plain, &mut buffers).unwrap()
        );

        // A tripped token aborts the run with the structured cancellation error.
        source.cancel(CancelReason::User);
        let err = AnalyticSim::new().run(&watched, &mut buffers).unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::User));
        let err = CounterProfile::new()
            .run(&watched, &mut buffers)
            .unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::User));
    }

    #[test]
    fn record_mode_captures_the_stream_without_changing_aggregates() {
        let (platform, application) = context_fixture();
        let evaluator =
            SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
        let mut buffers = evaluator.sim_buffers();
        let theta = vec![0.3; evaluator.parameter_dim()];
        buffers.policy_mut().set_flat_parameters(&theta);
        let ctx = EvalContext {
            platform: &platform,
            application: &application,
            seed: 17,
            cancel: None,
        };

        let plain = AnalyticSim::new();
        assert!(!plain.is_recording());
        assert!(plain.snapshot_traces().is_none());
        let baseline = plain.run(&ctx, &mut buffers).unwrap();

        let (recording, store) = AnalyticSim::recording();
        assert!(recording.is_recording());
        let recorded = recording.run(&ctx, &mut buffers).unwrap();
        assert_eq!(recorded, baseline, "recording must not perturb the fold");

        let traces = recording.snapshot_traces().unwrap();
        assert_eq!(traces.len(), 1);
        let trace = traces.lookup("qsort", 17).unwrap();
        assert_eq!(trace.epochs.len(), baseline.epochs);
        assert_eq!(trace.aggregates(), baseline);
        assert_eq!(store.lock().unwrap().len(), 1);
    }

    #[test]
    fn trace_replay_reproduces_recordings_and_errors_on_misses() {
        let (platform, application) = context_fixture();
        let evaluator =
            SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
        let mut buffers = evaluator.sim_buffers();
        buffers
            .policy_mut()
            .set_flat_parameters(&vec![-0.2; evaluator.parameter_dim()]);
        let ctx = EvalContext {
            platform: &platform,
            application: &application,
            seed: 5,
            cancel: None,
        };
        let (recording, _) = AnalyticSim::recording();
        let live = recording.run(&ctx, &mut buffers).unwrap();

        let replay = TraceReplay::new(recording.snapshot_traces().unwrap());
        assert_eq!(replay.store().len(), 1);
        assert_eq!(replay.run(&ctx, &mut buffers).unwrap(), live);

        // JSON round trip through the fixture format replays identically.
        let reloaded = TraceReplay::from_json(&replay.store().to_json()).unwrap();
        assert_eq!(reloaded.run(&ctx, &mut buffers).unwrap(), live);
        assert!(TraceReplay::from_json("{").is_err());

        // A context with no recording is a structured Backend error naming the backend.
        let miss = EvalContext { seed: 6, ..ctx };
        let err = replay.run(&miss, &mut buffers).unwrap_err();
        match err {
            ParmisError::Backend { ref name, .. } => assert_eq!(name, "trace-replay"),
            other => panic!("expected Backend error, got {other:?}"),
        }
        assert!(err.to_string().contains("no recorded trace"));
    }

    #[test]
    fn counter_profile_is_deterministic_and_counter_derived() {
        let (platform, application) = context_fixture();
        let evaluator =
            SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
        let mut buffers = evaluator.sim_buffers();
        let theta = vec![0.1; evaluator.parameter_dim()];
        buffers.policy_mut().set_flat_parameters(&theta);
        let ctx = EvalContext {
            platform: &platform,
            application: &application,
            seed: 9,
            cancel: None,
        };
        let profile = CounterProfile::new();
        let a = profile.run(&ctx, &mut buffers).unwrap();
        let b = profile.run(&ctx, &mut buffers).unwrap();
        assert_eq!(a, b, "profiling the same run twice must be bit-identical");

        // The counter fold sees the same time/instructions stream as the simulator; on the
        // odroid preset (zero switch energy) the energy fold agrees too.
        let sim = AnalyticSim::new().run(&ctx, &mut buffers).unwrap();
        assert_eq!(a.epochs, sim.epochs);
        assert_eq!(a.execution_time_s, sim.execution_time_s);
        assert_eq!(a.instructions, sim.instructions);
        assert_eq!(a.peak_temperature_c, sim.peak_temperature_c);
        assert!((a.energy_j - sim.energy_j).abs() / sim.energy_j < 1e-12);

        // On a platform with non-zero DVFS switch energy the measurement-style energy view
        // may legitimately differ, but stays within a few percent of the simulator's.
        let hexa = Platform::hexa_asym();
        let hexa_eval = SocEvaluator::new(
            hexa.clone(),
            evaluator.architecture().clone(),
            vec![Benchmark::Fft.application()],
            Objective::TIME_ENERGY.to_vec(),
        );
        let mut hexa_buffers = hexa_eval.sim_buffers();
        hexa_buffers
            .policy_mut()
            .set_flat_parameters(&vec![0.1; hexa_eval.parameter_dim()]);
        let app = Benchmark::Fft.application();
        let hexa_ctx = EvalContext {
            platform: &hexa,
            application: &app,
            seed: 9,
            cancel: None,
        };
        let prof = CounterProfile::new()
            .run(&hexa_ctx, &mut hexa_buffers)
            .unwrap();
        let sim = AnalyticSim::new()
            .run(&hexa_ctx, &mut hexa_buffers)
            .unwrap();
        assert!(prof.energy_j <= sim.energy_j, "switch energy is excluded");
        assert!((prof.energy_j - sim.energy_j).abs() / sim.energy_j < 0.05);
    }
}
