//! Crash-safe supervision for fleets of PaRMIS searches.
//!
//! Long multi-objective policy searches are exactly the workloads that die to node
//! preemption, OOM kills and power loss. This module makes that boring: a
//! [`JobSupervisor`] owns a checkpoint directory and drives N concurrent
//! [`Parmis`](crate::framework::Parmis) searches as fuel-bounded segments to
//! completion, surviving a `SIGKILL` at **any** point — including mid-checkpoint-write
//! — with zero corrupt-state panics and final Pareto fronts bit-identical to
//! uninterrupted runs.
//!
//! Three layers:
//!
//! * [`store`] — the durable checkpoint store. Every artifact is persisted with
//!   [`store::atomic_write`] (temp file → `fsync` → `rename` → directory `fsync`), so a
//!   crash leaves the previous generation or the new one, never a torn file. Loads are
//!   digest-verified end to end; corrupt or truncated generations are moved to a
//!   `quarantine/` side-directory (with `.reason.txt` side-cars) and the load falls
//!   back to the newest valid predecessor. Superseded generations are rotated out.
//! * [`journal`] — the journaled job table. Each job walks a validated state machine
//!   (`Pending → Running → Suspended/Done/Failed/Quarantined`) recorded in a
//!   digest-verified `journal.json` written through the same atomic path.
//! * [`supervisor`] — scheduling and recovery. Runnable jobs are picked
//!   deterministically (round-robin in submission order) into waves of at most
//!   `workers` segments, executed on the workspace's ordered
//!   [`parallel_map`](crate::parallel::parallel_map) pool, and journaled in slot
//!   order. A per-segment watchdog (fuel plus wall-clock budget) **suspends and
//!   reschedules** an over-budget segment at its next checkpoint boundary rather than
//!   killing it; faulted segments are retried under a bounded restart policy with a
//!   deterministic backoff ledger (mirroring
//!   [`RetryPolicy`](crate::evaluation::RetryPolicy)) before the job is marked
//!   `Failed`. On startup, [`JobSupervisor::open`] scans the directory, verifies every
//!   journal entry and checkpoint digest, and resumes every interrupted job
//!   bit-identically — the per-iteration trace-hash chain is re-audited before any new
//!   evaluation happens.
//!
//! Because segmentation, scheduling and supervision never change a search trajectory,
//! the fleet's outcomes are a deterministic function of the job configurations alone:
//! the same fronts for any worker count and any crash/restart history, receipted by
//! [`outcome_digest`].
//!
//! ```no_run
//! use parmis::prelude::*;
//!
//! # fn main() -> Result<(), ParmisError> {
//! let specs: Vec<JobSpec> = (0..4)
//!     .map(|i| {
//!         let config = ParmisConfig { seed: 7 + i, max_iterations: 60, ..ParmisConfig::default() };
//!         JobSpec::new(format!("search-{i}"), config)
//!     })
//!     .collect();
//! let supervisor_config = SupervisorConfig { workers: 2, segment_fuel: 20, ..SupervisorConfig::default() };
//! let mut supervisor = JobSupervisor::open("checkpoints/fleet", supervisor_config)?;
//! let report = supervisor.run(&specs, |_spec| {
//!     let evaluator = SocEvaluator::builder()
//!         .benchmark(Benchmark::Qsort)
//!         .objectives(vec![Objective::ExecutionTime, Objective::Energy])
//!         .build()?;
//!     Ok(Box::new(evaluator) as Box<dyn PolicyEvaluator>)
//! })?;
//! assert!(report.all_done());
//! # Ok(())
//! # }
//! ```

pub mod journal;
pub mod store;
pub mod supervisor;

pub use journal::{can_transition, JobEntry, JobJournal, JobPhase, JOURNAL_FILE};
pub use store::{
    atomic_write, validate_job_id, CheckpointStore, CrashPlan, CrashStage, LoadOutcome,
    QuarantineEvent,
};
pub use supervisor::{
    outcome_digest, FleetReport, JobReport, JobSpec, JobSupervisor, RecoveryReport,
    SupervisorConfig,
};

#[cfg(test)]
pub(crate) mod testutil {
    //! Cheap synthetic search fixtures shared by the jobs unit tests.

    use crate::acquisition::AcquisitionOptimizerConfig;
    use crate::checkpoint::SearchState;
    use crate::evaluation::PolicyEvaluator;
    use crate::framework::{Parmis, ParmisConfig};
    use crate::objective::Objective;
    use crate::pareto_sampling::ParetoSamplingConfig;
    use crate::Result;

    /// Quadratic two-objective toy problem (no SoC simulator involved).
    pub struct TinyEvaluator {
        objectives: Vec<Objective>,
    }

    impl TinyEvaluator {
        pub fn new() -> TinyEvaluator {
            TinyEvaluator {
                objectives: vec![Objective::ExecutionTime, Objective::Energy],
            }
        }
    }

    impl PolicyEvaluator for TinyEvaluator {
        fn parameter_dim(&self) -> usize {
            2
        }

        fn parameter_bound(&self) -> f64 {
            1.5
        }

        fn objectives(&self) -> &[Objective] {
            &self.objectives
        }

        fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
            let spread = 0.1 * theta[1].powi(2);
            Ok(vec![
                theta[0].powi(2) + spread + 1.0,
                (theta[0] - 1.0).powi(2) + spread + 1.0,
            ])
        }
    }

    /// A deliberately tiny configuration so segment/resume machinery tests stay fast.
    pub fn tiny_config(seed: u64, max_iterations: usize) -> ParmisConfig {
        ParmisConfig {
            max_iterations,
            initial_samples: 4,
            num_pareto_samples: 1,
            sampling: ParetoSamplingConfig {
                rff_features: 16,
                nsga_population: 8,
                nsga_generations: 3,
            },
            acquisition: AcquisitionOptimizerConfig {
                random_candidates: 6,
                local_candidates: 2,
                local_perturbation: 0.2,
            },
            refit_hyperparameters_every: 4,
            batch_size: 2,
            seed,
            ..ParmisConfig::default()
        }
    }

    /// A real mid-search [`SearchState`] captured from a fuel-suspended tiny run.
    pub fn tiny_state(seed: u64) -> SearchState {
        let config = ParmisConfig {
            max_fuel: 6,
            ..tiny_config(seed, 12)
        };
        Parmis::new(config)
            .run_resumable(&TinyEvaluator::new())
            .expect("tiny run")
            .into_suspended()
            .expect("fuel suspends before completion")
    }
}
