//! The crash-safe job supervisor: drives a fleet of PaRMIS searches as fuel-bounded
//! segments through a worker pool, journaling every phase transition and surviving a
//! `SIGKILL` at any point — including mid-checkpoint-write.
//!
//! Scheduling is deterministic: runnable jobs are picked round-robin in submission
//! order, each wave holds at most `workers` jobs, and the wave's results are applied to
//! the journal in slot order (the [`crate::parallel::parallel_map`] discipline). Since
//! every job's trajectory is a deterministic function of its own configuration —
//! segmentation never changes a trajectory — the final fronts are bit-identical to
//! uninterrupted runs for any worker count and any crash/restart history.
//!
//! On top of the crash story sits the *graceful* stop story, built on
//! [`crate::cancel`]: the supervisor owns a drain [`CancelSource`] (tripped by
//! [`request_drain`](JobSupervisor::request_drain), by `SIGTERM`/`SIGINT` when
//! [`SupervisorConfig::drain_on_signals`] is set, or by the fleet-wide deadline budget),
//! every segment runs under a per-job child of it (carrying the per-job deadline), and a
//! stall monitor watches each child's heartbeat counter to cancel workers that stopped
//! making progress. All of these suspend jobs at their next checkpoint boundary — never
//! kill them — so timing decides *when* a fleet pauses, never *what* it computes.

use super::journal::{JobEntry, JobJournal, JobPhase, JOURNAL_FILE};
use super::store::{validate_job_id, CheckpointStore, CrashPlan};
use crate::cancel::{CancelReason, CancelSource};
use crate::checkpoint::{config_digest, fold, fold_f64, fold_str, TRACE_HASH_SEED};
use crate::error::CheckpointFault;
use crate::evaluation::PolicyEvaluator;
use crate::framework::{Parmis, ParmisConfig, ParmisOutcome, SearchStep, StopReason};
use crate::parallel::{parallel_map, resolve_workers};
use crate::{ParmisError, Result};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One search job: an id (stable across restarts; names the checkpoint files) and the
/// full search configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job id; see [`validate_job_id`] for the accepted alphabet.
    pub id: String,
    /// The search configuration. `max_fuel` / `checkpoint_every` are overridden per
    /// segment by [`SupervisorConfig`]; everything trajectory-affecting is digested and
    /// pinned on first submission.
    pub config: ParmisConfig,
}

impl JobSpec {
    /// Convenience constructor.
    pub fn new(id: impl Into<String>, config: ParmisConfig) -> JobSpec {
        JobSpec {
            id: id.into(),
            config,
        }
    }
}

/// Scheduling and robustness knobs of a [`JobSupervisor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Concurrent segment slots (`0` = one per available CPU). Like every other worker
    /// knob in the workspace this trades wall-clock only — outcomes are bit-identical
    /// for any value.
    pub workers: usize,
    /// Fuel budget (evaluations) of one segment; `0` runs each job to completion in a
    /// single segment.
    pub segment_fuel: usize,
    /// Cadence checkpoint interval inside a segment, in evaluations; `0` keeps each
    /// job's own [`ParmisConfig::checkpoint_every`].
    pub checkpoint_every: usize,
    /// Wall-clock watchdog budget per segment, in milliseconds; `0` disables. A segment
    /// over budget is **suspended at its next checkpoint boundary** — never killed — so
    /// supervision affects scheduling, not trajectories.
    pub segment_wall_ms: u64,
    /// Restart attempts after a faulted segment before the job is marked `Failed`.
    pub max_restarts: usize,
    /// Base of the deterministic restart backoff ledger (`base << attempt` µs charged
    /// per retry, mirroring [`crate::evaluation::RetryPolicy`]; accounting only, never
    /// slept).
    pub backoff_base_micros: u64,
    /// Checkpoint generations kept per job (older ones are garbage-collected).
    pub keep_checkpoints: usize,
    /// Per-job wall-clock budget across all of a job's segments within one
    /// [`run`](JobSupervisor::run), in milliseconds; `0` disables. A job over budget is
    /// suspended at its next checkpoint boundary and not rescheduled this run — it stays
    /// resumable for a later run with a fresh budget.
    pub job_deadline_ms: u64,
    /// Fleet-wide wall-clock budget of one [`run`](JobSupervisor::run), in milliseconds;
    /// `0` disables. Expiry drains the whole fleet: in-flight segments suspend at their
    /// next checkpoint boundary, no further waves start.
    pub fleet_deadline_ms: u64,
    /// Stall detection window, in milliseconds; `0` disables. A monitor thread samples
    /// every in-flight segment's heartbeat counter ([`crate::cancel::CancelToken::beat`])
    /// and cancels a worker with [`CancelReason::Stall`] once it has made no observable
    /// progress for this long. A stall that suspends without new evaluations charges the
    /// bounded restart budget (like a faulted segment); one that still progressed is a
    /// clean suspension.
    pub stall_timeout_ms: u64,
    /// Arms the drain source to trip on `SIGTERM`/`SIGINT`
    /// ([`crate::cancel::CancelSource::cancel_on_signals`]) when the supervisor opens,
    /// turning a polite kill into a graceful drain: suspend everything at the next
    /// checkpoint boundary, flush the journal, return. (`SIGKILL` still works — it just
    /// costs a cadence window of re-evaluation instead of nothing.)
    pub drain_on_signals: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 1,
            segment_fuel: 0,
            checkpoint_every: 0,
            segment_wall_ms: 0,
            max_restarts: 2,
            backoff_base_micros: 100,
            keep_checkpoints: 3,
            job_deadline_ms: 0,
            fleet_deadline_ms: 0,
            stall_timeout_ms: 0,
            drain_on_signals: false,
        }
    }
}

/// What the startup recovery scan found and repaired.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Jobs found `Running` in the journal — the marker of a crash mid-segment — and
    /// demoted to `Suspended`/`Pending` (or `Quarantined` if their state was lost).
    pub interrupted: Vec<String>,
    /// Artifacts quarantined during the scan (corrupt checkpoint generations and/or the
    /// journal itself).
    pub quarantined: Vec<String>,
    /// Whether the journal was corrupt and rebuilt from the on-disk checkpoints.
    pub journal_rebuilt: bool,
}

/// Final state of one job after [`JobSupervisor::run`].
#[derive(Debug)]
pub struct JobReport {
    /// Job id.
    pub id: String,
    /// Final phase of the run: terminal (`Done`, `Failed`, `Quarantined`), or a
    /// resumable `Suspended`/`Pending` when the run was drained or a deadline budget
    /// parked the job.
    pub phase: JobPhase,
    /// Segments started across all processes that worked on this job.
    pub segments: usize,
    /// Restart attempts consumed since the last successful segment.
    pub attempts: usize,
    /// Cumulative restart backoff charged, in microseconds.
    pub backoff_micros: u64,
    /// Evaluations performed.
    pub evaluations: usize,
    /// Digest of the final fronts + trace chain ([`outcome_digest`]), if `Done`.
    pub outcome_digest: Option<u64>,
    /// Last failure/suspension note, if any.
    pub note: Option<String>,
    /// The full outcome, present when **this** process drove the job to completion
    /// (a job already `Done` in the journal reports its digest only).
    pub outcome: Option<ParmisOutcome>,
}

/// Result of driving a fleet: one [`JobReport`] per spec, in spec order.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-job reports.
    pub jobs: Vec<JobReport>,
}

impl FleetReport {
    /// Whether every job completed (`Done`).
    pub fn all_done(&self) -> bool {
        self.jobs.iter().all(|j| j.phase == JobPhase::Done)
    }

    /// Whether any job was left in a resumable (non-terminal) phase — the signature of
    /// a drained or deadline-parked run.
    pub fn any_resumable(&self) -> bool {
        self.jobs.iter().any(|j| !j.phase.is_terminal())
    }

    /// The report for `id`, if present.
    pub fn job(&self, id: &str) -> Option<&JobReport> {
        self.jobs.iter().find(|j| j.id == id)
    }
}

/// Order-sensitive digest of a finished search: the trace-hash chain, the Pareto front
/// (objectives + parameter tags), the PHV reference point and the final hypervolume.
///
/// Two runs of the same configuration — uninterrupted, segmented, or resumed across
/// process crashes — must produce the same digest; this is the receipt the soak harness
/// compares across kills.
pub fn outcome_digest(outcome: &ParmisOutcome) -> u64 {
    let mut h = fold(TRACE_HASH_SEED, outcome.history.len() as u64);
    for objective in &outcome.objectives {
        h = fold_str(h, &format!("{objective:?}"));
    }
    for &link in &outcome.trace_hashes {
        h = fold(h, link);
    }
    h = fold(h, outcome.front.len() as u64);
    for entry in outcome.front.iter() {
        for &v in &entry.objectives {
            h = fold_f64(h, v);
        }
        for &v in &entry.tag {
            h = fold_f64(h, v);
        }
    }
    for &v in &outcome.reference_point {
        h = fold_f64(h, v);
    }
    fold_f64(h, outcome.final_phv())
}

/// Why a segment suspended instead of completing.
#[derive(Debug, Clone, Copy)]
enum SuspendCause {
    /// The segment's fuel budget ran out (the normal segmentation rhythm).
    Fuel,
    /// The wall-clock watchdog suspended the segment at a checkpoint boundary.
    Watchdog,
    /// Cooperative cancellation (drain, deadline, stall, signal) suspended it.
    Cancel(CancelReason),
}

/// What one segment execution produced (worker-side; applied to the journal in slot
/// order by the supervisor thread).
enum SegmentResult {
    /// The search ran to completion.
    Completed(Box<ParmisOutcome>),
    /// Suspended. `saved` is the newest durable checkpoint this segment produced as
    /// `(seq, evaluations, last_trace_hash)`; `None` means the segment was cancelled
    /// before its first checkpoint (the job falls back to whatever the journal already
    /// records — its previous checkpoint, or `Pending` if it never had one).
    Suspended {
        saved: Option<(u64, usize, Option<u64>)>,
        cause: SuspendCause,
    },
    /// The segment faulted; subject to the bounded-restart policy.
    Faulted(ParmisError),
    /// No valid checkpoint generation survives to resume from.
    StoreBroken { quarantined: Vec<String> },
}

/// Background watcher for one wave: samples every slot scope's heartbeat counter
/// ([`CancelSource::heartbeats`], bumped by the search layers as they make progress) and
/// cancels any scope with [`CancelReason::Stall`] once it has not moved for the
/// configured window. Heartbeats tick at least once per iteration round, so the window
/// must comfortably exceed one round's wall time; a scope whose segment already returned
/// is cancelled harmlessly (nobody is listening).
struct StallMonitor {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl StallMonitor {
    /// Starts the watcher over `scopes`; `None` when stall detection is disabled.
    fn spawn(scopes: &[CancelSource], stall_timeout_ms: u64) -> Option<StallMonitor> {
        if stall_timeout_ms == 0 || scopes.is_empty() {
            return None;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let watch: Vec<CancelSource> = scopes.to_vec();
        let timeout = Duration::from_millis(stall_timeout_ms);
        let tick = Duration::from_millis((stall_timeout_ms / 4).clamp(5, 50));
        let handle = std::thread::spawn(move || {
            let mut seen: Vec<(u64, Instant)> = watch
                .iter()
                .map(|scope| (scope.heartbeats(), Instant::now()))
                .collect();
            while !stop_flag.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                for (scope, (beats, since)) in watch.iter().zip(seen.iter_mut()) {
                    let current = scope.heartbeats();
                    if current != *beats {
                        *beats = current;
                        *since = Instant::now();
                    } else if since.elapsed() >= timeout && !scope.is_cancelled() {
                        scope.cancel(CancelReason::Stall);
                    }
                }
            }
        });
        Some(StallMonitor { stop, handle })
    }

    /// Stops the watcher and joins its thread.
    fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.handle.join();
    }
}

/// A supervised, crash-safe runtime for fleets of PaRMIS searches.
///
/// See the [module docs](crate::jobs) for the architecture; the short version:
/// [`open`](Self::open) recovers whatever a previous process left behind,
/// [`run`](Self::run) drives every submitted job to a terminal phase, and any
/// `SIGKILL` in between costs at most one cadence window of re-evaluation — never
/// correctness.
#[derive(Debug)]
pub struct JobSupervisor {
    store: CheckpointStore,
    journal: JobJournal,
    config: SupervisorConfig,
    recovery: RecoveryReport,
    rr_cursor: usize,
    /// Root of the cancellation hierarchy: tripping it (drain request, signal, fleet
    /// deadline) suspends every in-flight segment at its next checkpoint boundary.
    drain: CancelSource,
}

impl JobSupervisor {
    /// Opens a supervisor over `dir`, running the recovery scan: stray temp files are
    /// swept, the journal is loaded (digest-verified; a corrupt journal is quarantined
    /// and rebuilt from the checkpoint files), every interrupted job is demoted to a
    /// resumable phase, and every `Suspended` job's newest checkpoint is re-verified —
    /// falling back to the newest valid predecessor if the newest generation is corrupt.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Io`] for filesystem
    /// failures (corruption is repaired, not reported as an error).
    pub fn open(dir: impl AsRef<Path>, config: SupervisorConfig) -> Result<JobSupervisor> {
        Self::open_inner(dir.as_ref(), config, None)
    }

    /// [`open`](Self::open) with an armed [`CrashPlan`] drill (test/soak harness only):
    /// the process aborts during the N-th durable write issued through the store.
    ///
    /// # Errors
    ///
    /// Same as [`open`](Self::open).
    pub fn open_with_crash_plan(
        dir: impl AsRef<Path>,
        config: SupervisorConfig,
        plan: CrashPlan,
    ) -> Result<JobSupervisor> {
        Self::open_inner(dir.as_ref(), config, Some(plan))
    }

    fn open_inner(
        dir: &Path,
        config: SupervisorConfig,
        crash: Option<CrashPlan>,
    ) -> Result<JobSupervisor> {
        // Degenerate-budget guard: a fleet budget below one segment's watchdog floor
        // could never pay for a single suspension cycle — every run would drain before
        // its first checkpoint and the fleet would make no progress, ever.
        if config.fleet_deadline_ms > 0 && config.fleet_deadline_ms < config.segment_wall_ms {
            return Err(ParmisError::InvalidConfig {
                reason: format!(
                    "fleet_deadline_ms ({}) is below the segment watchdog floor \
                     segment_wall_ms ({}); such a fleet budget can never pay for one \
                     segment's suspension cycle",
                    config.fleet_deadline_ms, config.segment_wall_ms
                ),
            });
        }
        if config.job_deadline_ms > 0 && config.job_deadline_ms < config.segment_wall_ms {
            return Err(ParmisError::InvalidConfig {
                reason: format!(
                    "job_deadline_ms ({}) is below the segment watchdog floor \
                     segment_wall_ms ({}); such a job budget can never pay for one \
                     segment's suspension cycle",
                    config.job_deadline_ms, config.segment_wall_ms
                ),
            });
        }
        let mut store = CheckpointStore::open(dir, config.keep_checkpoints)?;
        if let Some(plan) = crash {
            store = store.with_crash_plan(plan);
        }
        let mut recovery = RecoveryReport::default();
        let journal_path = store.root().join(JOURNAL_FILE);
        let journal = if journal_path.exists() {
            let text = std::fs::read_to_string(&journal_path).map_err(|e| {
                ParmisError::checkpoint(
                    CheckpointFault::Io,
                    format!("read journal `{}`: {e}", journal_path.display()),
                )
            })?;
            match JobJournal::from_json(&text) {
                Ok(journal) => journal,
                Err(e) => {
                    // The journal itself is corrupt: quarantine it and rebuild the job
                    // table from the checkpoint files (the checkpoints are self-
                    // verifying, so nothing the journal knew is actually lost).
                    store.quarantine(&journal_path, &e.to_string())?;
                    recovery.quarantined.push(JOURNAL_FILE.to_string());
                    recovery.journal_rebuilt = true;
                    Self::rebuild_journal(&store, &config, &mut recovery)?
                }
            }
        } else {
            JobJournal::new()
        };

        let drain = CancelSource::new();
        if config.drain_on_signals {
            drain.cancel_on_signals()?;
        }
        let mut supervisor = JobSupervisor {
            store,
            journal,
            config,
            recovery,
            rr_cursor: 0,
            drain,
        };
        supervisor.reconcile()?;
        supervisor.persist_journal()?;
        Ok(supervisor)
    }

    /// Rebuilds a job table from the on-disk checkpoints alone: every job with a valid
    /// generation becomes `Suspended`; a job whose every generation is corrupt restarts
    /// from scratch with one restart attempt charged.
    fn rebuild_journal(
        store: &CheckpointStore,
        config: &SupervisorConfig,
        recovery: &mut RecoveryReport,
    ) -> Result<JobJournal> {
        let mut journal = JobJournal::new();
        for job in store.jobs_on_disk()? {
            let load = store.load_latest(&job)?;
            recovery
                .quarantined
                .extend(load.quarantined.iter().map(|q| q.file.clone()));
            let mut entry = match &load.state {
                Some((_, state)) => JobEntry::pending(&job, state.config_digest),
                None => JobEntry::pending(&job, 0),
            };
            entry.transition(JobPhase::Running)?;
            match load.state {
                Some((seq, state)) => {
                    entry.checkpoint_seq = Some(seq);
                    entry.evaluations = state.evaluations();
                    entry.last_trace_hash = state.last_trace_hash();
                    entry.note = Some("rebuilt from checkpoint after journal loss".to_string());
                    entry.transition(JobPhase::Suspended)?;
                }
                None => {
                    charge_checkpoint_loss(
                        &mut entry,
                        config,
                        "journal lost and no valid checkpoint generation survives; \
                         restarting from scratch",
                    )?;
                }
            }
            journal.insert(entry)?;
        }
        Ok(journal)
    }

    /// Demotes every `Running` entry (crash marker) to a resumable phase and
    /// re-verifies the persistent state behind every `Suspended` entry.
    fn reconcile(&mut self) -> Result<()> {
        let ids: Vec<String> = self
            .journal
            .entries()
            .iter()
            .map(|e| e.id.clone())
            .collect();
        for id in ids {
            let phase = self.journal.get(&id).map(|e| e.phase);
            match phase {
                Some(JobPhase::Running) => {
                    self.recovery.interrupted.push(id.clone());
                    let load = self.store.load_latest(&id)?;
                    self.note_quarantines(&load.quarantined);
                    let entry = self.journal.get_mut(&id).expect("entry exists");
                    match load.state {
                        Some((seq, state)) => {
                            entry.checkpoint_seq = Some(seq);
                            entry.evaluations = state.evaluations();
                            entry.last_trace_hash = state.last_trace_hash();
                            entry.note = Some("interrupted mid-segment; recovered".to_string());
                            entry.transition(JobPhase::Suspended)?;
                        }
                        None if entry.checkpoint_seq.is_none() && entry.evaluations == 0 => {
                            // Crashed during its very first segment, before any
                            // checkpoint: restart from scratch.
                            entry.note = Some("interrupted before first checkpoint".to_string());
                            entry.transition(JobPhase::Pending)?;
                        }
                        None => {
                            charge_checkpoint_loss(
                                entry,
                                &self.config,
                                "interrupted and no valid checkpoint generation survives; \
                                 restarting from scratch",
                            )?;
                        }
                    }
                }
                Some(JobPhase::Suspended) => {
                    let load = self.store.load_latest(&id)?;
                    self.note_quarantines(&load.quarantined);
                    let entry = self.journal.get_mut(&id).expect("entry exists");
                    match load.state {
                        Some((seq, state)) => {
                            if entry.checkpoint_seq != Some(seq) {
                                entry.note = Some(format!(
                                    "newest generation corrupt; fell back to generation {seq}"
                                ));
                            }
                            entry.checkpoint_seq = Some(seq);
                            entry.evaluations = state.evaluations();
                            entry.last_trace_hash = state.last_trace_hash();
                        }
                        None => {
                            charge_checkpoint_loss(
                                entry,
                                &self.config,
                                "every checkpoint generation was corrupt; restarting from scratch",
                            )?;
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn note_quarantines(&mut self, events: &[super::store::QuarantineEvent]) {
        self.recovery
            .quarantined
            .extend(events.iter().map(|q| q.file.clone()));
    }

    /// The recovery scan's findings from [`open`](Self::open).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The journaled job table (submission order).
    pub fn jobs(&self) -> &[JobEntry] {
        self.journal.entries()
    }

    /// The underlying durable store.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Requests a graceful drain: every in-flight segment suspends at its next
    /// checkpoint boundary, [`run`](Self::run) finishes the current wave, flushes the
    /// journal and returns with the drained jobs left `Suspended`/`Pending` — resumable
    /// by a later `run` with the same specs. Idempotent; callable from any thread
    /// holding a [`drain_source`](Self::drain_source) clone while `run` executes.
    pub fn request_drain(&self) {
        self.drain.cancel(CancelReason::User);
    }

    /// A clone of the drain root, for embedders that need to trigger
    /// [`request_drain`](Self::request_drain) from another thread (the supervisor itself
    /// is exclusively borrowed while [`run`](Self::run) executes).
    pub fn drain_source(&self) -> CancelSource {
        self.drain.clone()
    }

    /// Registers `spec`, journaling a `Pending` entry if the job is new.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Invariant`] for an
    /// invalid id, or [`CheckpointFault::Incompatible`] if the job already exists with
    /// a different trajectory-affecting configuration.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<()> {
        validate_job_id(&spec.id)?;
        let digest = config_digest(&spec.config);
        if let Some(entry) = self.journal.get(&spec.id) {
            if entry.config_digest == 0 {
                // Rebuilt after total state loss: adopt the resubmitted configuration.
                self.journal
                    .get_mut(&spec.id)
                    .expect("entry exists")
                    .config_digest = digest;
                return Ok(());
            }
            if entry.config_digest != digest {
                return Err(ParmisError::checkpoint(
                    CheckpointFault::Incompatible,
                    format!(
                        "job `{}` was journaled with config digest {:#018x}, resubmitted with {:#018x}",
                        spec.id, entry.config_digest, digest
                    ),
                ));
            }
            return Ok(());
        }
        self.journal.insert(JobEntry::pending(&spec.id, digest))?;
        Ok(())
    }

    /// Drives every spec to a terminal phase (`Done` / `Failed` / `Quarantined`),
    /// scheduling runnable jobs round-robin in waves of at most
    /// [`SupervisorConfig::workers`] segments. `factory` builds each segment's
    /// evaluator (called in the worker, so evaluators need not be `Send`).
    ///
    /// Safe to call again after a crash with the same specs: jobs already `Done` are
    /// not re-run, interrupted jobs resume from their newest valid checkpoint.
    ///
    /// A drain ([`request_drain`](Self::request_drain), an armed signal, or the fleet
    /// deadline budget) makes `run` return **early but cleanly**: in-flight segments
    /// suspend at their next checkpoint boundary, the journal is flushed, and the
    /// report may contain non-terminal phases (`Suspended` / `Pending`) — all of them
    /// resumable by a later `run` with the same specs. Per-job deadline budgets
    /// likewise park only the over-budget job, leaving the rest of the fleet running.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] for journal/store persistence failures.
    /// Per-job search failures never fail the fleet — they are journaled as `Failed` /
    /// `Quarantined` and reported.
    pub fn run<F>(&mut self, specs: &[JobSpec], factory: F) -> Result<FleetReport>
    where
        F: Fn(&JobSpec) -> Result<Box<dyn PolicyEvaluator>> + Sync,
    {
        for spec in specs {
            self.submit(spec)?;
        }
        self.persist_journal()?;
        let workers = resolve_workers(self.config.workers);
        let mut outcomes: HashMap<String, ParmisOutcome> = HashMap::new();

        // The run-scoped cancellation scope: a child of the drain root carrying this
        // run's fleet deadline. Every segment runs under a per-job child of it.
        let run_scope = if self.config.fleet_deadline_ms > 0 {
            self.drain
                .child_with_deadline(Duration::from_millis(self.config.fleet_deadline_ms))
        } else {
            self.drain.child()
        };
        let job_deadline = (self.config.job_deadline_ms > 0)
            .then(|| Duration::from_millis(self.config.job_deadline_ms));
        let mut job_started: HashMap<String, Instant> = HashMap::new();

        loop {
            if run_scope.is_cancelled() {
                break;
            }
            let mut wave = self.pick_wave(specs, workers);
            // A job over its per-run deadline budget is parked (left Suspended /
            // Pending, never killed) instead of being rescheduled this run.
            if let Some(budget) = job_deadline {
                wave.retain(|&(idx, _)| {
                    job_started
                        .get(&specs[idx].id)
                        .map_or(true, |started| started.elapsed() < budget)
                });
            }
            if wave.is_empty() {
                break;
            }
            // Journal the wave as Running *before* any work happens, so a crash inside
            // the wave is visible to the next process as interrupted segments.
            for &(idx, _) in &wave {
                let entry = self
                    .journal
                    .get_mut(&specs[idx].id)
                    .expect("submitted above");
                entry.transition(JobPhase::Running)?;
                entry.segments += 1;
            }
            self.persist_journal()?;

            // Per-slot cancellation scopes: children of the run scope, each carrying
            // its job's remaining deadline budget. Built on the supervisor thread so
            // the stall monitor can watch their heartbeats by slot.
            let slot_scopes: Vec<CancelSource> =
                wave.iter()
                    .map(|&(idx, _)| {
                        let started = *job_started
                            .entry(specs[idx].id.clone())
                            .or_insert_with(Instant::now);
                        match job_deadline {
                            Some(budget) => run_scope
                                .child_with_deadline(budget.saturating_sub(started.elapsed())),
                            None => run_scope.child(),
                        }
                    })
                    .collect();
            let monitor = StallMonitor::spawn(&slot_scopes, self.config.stall_timeout_ms);

            let results = parallel_map(&wave, workers, |slot, &(idx, fresh)| {
                self.run_segment(&specs[idx], fresh, &slot_scopes[slot], &factory)
            });
            if let Some(monitor) = monitor {
                monitor.stop();
            }

            for (&(idx, _), result) in wave.iter().zip(results) {
                let id = specs[idx].id.clone();
                // A segment cancelled through an ancestor scope reports `Parent`;
                // resolve it to the root cause (drain/signal beats fleet deadline) so
                // journal notes name what actually stopped the fleet.
                let result = match result {
                    SegmentResult::Suspended {
                        saved,
                        cause: SuspendCause::Cancel(CancelReason::Parent),
                    } => SegmentResult::Suspended {
                        saved,
                        cause: SuspendCause::Cancel(
                            self.drain
                                .cancelled()
                                .or_else(|| run_scope.cancelled())
                                .unwrap_or(CancelReason::Parent),
                        ),
                    },
                    other => other,
                };
                if let Some(outcome) = self.apply_segment_result(&id, result)? {
                    outcomes.insert(id, outcome);
                }
            }
            self.persist_journal()?;
        }

        let jobs = specs
            .iter()
            .map(|spec| {
                let entry = self.journal.get(&spec.id).expect("submitted above");
                JobReport {
                    id: entry.id.clone(),
                    phase: entry.phase,
                    segments: entry.segments,
                    attempts: entry.attempts,
                    backoff_micros: entry.backoff_micros,
                    evaluations: entry.evaluations,
                    outcome_digest: entry.outcome_digest,
                    note: entry.note.clone(),
                    outcome: outcomes.remove(&entry.id),
                }
            })
            .collect();
        Ok(FleetReport { jobs })
    }

    /// Picks the next wave: up to `workers` runnable jobs, round-robin in spec order
    /// starting at the cursor left by the previous wave.
    fn pick_wave(&mut self, specs: &[JobSpec], workers: usize) -> Vec<(usize, bool)> {
        let n = specs.len();
        let mut wave = Vec::new();
        if n == 0 {
            return wave;
        }
        for offset in 0..n {
            let idx = (self.rr_cursor + offset) % n;
            let Some(entry) = self.journal.get(&specs[idx].id) else {
                continue;
            };
            if entry.phase.is_runnable() {
                wave.push((idx, entry.phase == JobPhase::Pending));
                if wave.len() == workers {
                    self.rr_cursor = (idx + 1) % n;
                    return wave;
                }
            }
        }
        self.rr_cursor = 0;
        wave
    }

    /// Executes one segment of `spec` (worker-side, `&self` only) under `scope`'s
    /// cancellation token.
    fn run_segment<F>(
        &self,
        spec: &JobSpec,
        fresh: bool,
        scope: &CancelSource,
        factory: &F,
    ) -> SegmentResult
    where
        F: Fn(&JobSpec) -> Result<Box<dyn PolicyEvaluator>> + Sync,
    {
        let evaluator = match factory(spec) {
            Ok(evaluator) => evaluator,
            Err(e) => return SegmentResult::Faulted(e),
        };
        let mut config = spec.config.clone();
        config.max_fuel = self.config.segment_fuel;
        if self.config.checkpoint_every > 0 {
            config.checkpoint_every = self.config.checkpoint_every;
        }
        if self.config.segment_wall_ms > 0 && config.checkpoint_every == 0 {
            // The watchdog fires at checkpoint boundaries; give it boundaries.
            config.checkpoint_every = config.batch_size.max(1);
        }
        let search = Parmis::new(config).with_cancel_token(scope.token());
        let started = Instant::now();
        let wall_ms = self.config.segment_wall_ms;
        let mut last_saved: Option<(u64, usize, Option<u64>)> = None;
        let sink = |state: &crate::checkpoint::SearchState| -> Result<()> {
            let seq = self.store.save(&spec.id, state)?;
            last_saved = Some((seq, state.evaluations(), state.last_trace_hash()));
            if wall_ms > 0 && started.elapsed().as_millis() as u64 >= wall_ms {
                // Suspend-and-reschedule, never kill: the state just saved is a clean
                // suspension point; the Watchdog fault only unwinds the segment.
                return Err(ParmisError::checkpoint(
                    CheckpointFault::Watchdog,
                    format!("segment exceeded its {wall_ms} ms wall budget"),
                ));
            }
            Ok(())
        };

        let step = if fresh {
            search.run_resumable_with_checkpoints(&*evaluator, sink)
        } else {
            match self.store.load_latest(&spec.id) {
                Err(e) => return SegmentResult::Faulted(e),
                Ok(load) => match load.state {
                    None => {
                        return SegmentResult::StoreBroken {
                            quarantined: load.quarantined.into_iter().map(|q| q.file).collect(),
                        }
                    }
                    Some((_, state)) => search.resume_with_checkpoints(state, &*evaluator, sink),
                },
            }
        };

        match step {
            Ok(SearchStep::Completed(outcome)) => SegmentResult::Completed(outcome),
            Ok(SearchStep::Suspended { state, reason }) => {
                match self.store.save(&spec.id, &state) {
                    Ok(seq) => SegmentResult::Suspended {
                        saved: Some((seq, state.evaluations(), state.last_trace_hash())),
                        cause: match reason {
                            StopReason::Cancelled(r) => SuspendCause::Cancel(r),
                            _ => SuspendCause::Fuel,
                        },
                    },
                    Err(e) => SegmentResult::Faulted(e),
                }
            }
            Err(e) if e.checkpoint_fault() == Some(CheckpointFault::Watchdog) => {
                let (seq, evaluations, last_trace_hash) =
                    last_saved.expect("the watchdog only fires after a successful save");
                SegmentResult::Suspended {
                    saved: Some((seq, evaluations, last_trace_hash)),
                    cause: SuspendCause::Watchdog,
                }
            }
            // A cancellation raised below the round boundary (inside the evaluator or
            // the streaming engine) unwinds like the watchdog: the job suspends at the
            // last durable checkpoint, losing at most one cadence window of work that a
            // resumed run recomputes bit-identically.
            Err(e) => match e.cancel_reason() {
                Some(reason) => SegmentResult::Suspended {
                    saved: last_saved,
                    cause: SuspendCause::Cancel(reason),
                },
                None => SegmentResult::Faulted(e),
            },
        }
    }

    /// Applies one segment result to the journal (supervisor thread, slot order).
    /// Returns the outcome when the segment completed its job.
    fn apply_segment_result(
        &mut self,
        id: &str,
        result: SegmentResult,
    ) -> Result<Option<ParmisOutcome>> {
        let max_restarts = self.config.max_restarts;
        let backoff_base = self.config.backoff_base_micros;
        let entry = self.journal.get_mut(id).expect("journaled before the wave");
        match result {
            SegmentResult::Completed(outcome) => {
                entry.evaluations = outcome.history.len();
                entry.last_trace_hash = outcome.trace_hashes.last().copied();
                entry.outcome_digest = Some(outcome_digest(&outcome));
                entry.note = None;
                entry.transition(JobPhase::Done)?;
                Ok(Some(*outcome))
            }
            SegmentResult::Suspended { saved, cause } => {
                let progressed = match saved {
                    Some((_, evaluations, _)) => evaluations > entry.evaluations,
                    None => false,
                };
                if let Some((seq, evaluations, last_trace_hash)) = saved {
                    entry.checkpoint_seq = Some(seq);
                    entry.evaluations = evaluations;
                    entry.last_trace_hash = last_trace_hash;
                }
                // A stall that suspended without any forward progress is a hung worker,
                // not a scheduling pause: it consumes the bounded restart budget exactly
                // like a faulted segment, so a backend that hangs forever converges to
                // `Failed` instead of being rescheduled indefinitely.
                let charged_stall =
                    matches!(cause, SuspendCause::Cancel(CancelReason::Stall)) && !progressed;
                if charged_stall {
                    entry.attempts += 1;
                    let shift = (entry.attempts - 1).min(20) as u32;
                    entry.backoff_micros += backoff_base << shift;
                } else {
                    entry.attempts = 0;
                }
                entry.note = match cause {
                    SuspendCause::Fuel => None,
                    SuspendCause::Watchdog => Some("suspended by the segment watchdog".to_string()),
                    SuspendCause::Cancel(reason) => {
                        Some(format!("suspended by cancellation [{reason}]"))
                    }
                };
                if charged_stall && entry.attempts > max_restarts {
                    entry.transition(JobPhase::Failed)?;
                } else if entry.checkpoint_seq.is_some() {
                    entry.transition(JobPhase::Suspended)?;
                } else {
                    // Cancelled before the very first checkpoint: nothing durable exists
                    // yet, so the job simply returns to the queue (`Running → Pending`
                    // is the journal's restart edge) and starts from scratch later —
                    // bit-identical, since trajectories are pure functions of config.
                    entry.transition(JobPhase::Pending)?;
                }
                Ok(None)
            }
            SegmentResult::Faulted(e) => {
                entry.attempts += 1;
                let shift = (entry.attempts - 1).min(20) as u32;
                entry.backoff_micros += backoff_base << shift;
                entry.note = Some(e.to_string());
                if entry.attempts > max_restarts {
                    entry.transition(JobPhase::Failed)?;
                } else if entry.checkpoint_seq.is_some() {
                    entry.transition(JobPhase::Suspended)?;
                } else {
                    entry.transition(JobPhase::Pending)?;
                }
                Ok(None)
            }
            SegmentResult::StoreBroken { quarantined } => {
                let note = format!(
                    "no valid checkpoint generation survives ({} quarantined); \
                     restarting from scratch",
                    quarantined.len()
                );
                charge_checkpoint_loss(entry, &self.config, &note)?;
                self.recovery.quarantined.extend(quarantined);
                Ok(None)
            }
        }
    }

    fn persist_journal(&self) -> Result<()> {
        let json = self.journal.to_json()?;
        self.store.write_durable(JOURNAL_FILE, json.as_bytes())
    }
}

/// Handles total persistent-state loss for one job: since trajectories are
/// deterministic, a from-scratch restart still converges bit-identically, so the loss
/// costs one bounded restart attempt (charged to the backoff ledger) and a demotion to
/// `Pending`. Only *recurring* loss beyond the restart budget — storage that keeps
/// eating checkpoints — quarantines the job.
fn charge_checkpoint_loss(
    entry: &mut JobEntry,
    config: &SupervisorConfig,
    note: &str,
) -> Result<()> {
    entry.checkpoint_seq = None;
    entry.evaluations = 0;
    entry.last_trace_hash = None;
    entry.attempts += 1;
    let shift = (entry.attempts - 1).min(20) as u32;
    entry.backoff_micros += config.backoff_base_micros << shift;
    entry.note = Some(note.to_string());
    if entry.attempts > config.max_restarts {
        entry.transition(JobPhase::Quarantined)
    } else {
        entry.transition(JobPhase::Pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::testutil::tiny_config;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "parmis-supervisor-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn failing_factory_exhausts_restarts_and_charges_the_backoff_ledger() {
        let dir = temp_dir("backoff");
        let config = SupervisorConfig {
            max_restarts: 2,
            backoff_base_micros: 50,
            ..SupervisorConfig::default()
        };
        let mut supervisor = JobSupervisor::open(&dir, config).unwrap();
        let specs = vec![JobSpec::new("doomed", tiny_config(1, 8))];
        let report = supervisor
            .run(&specs, |_spec| {
                Err(ParmisError::Evaluation {
                    reason: "board unreachable".into(),
                })
            })
            .unwrap();
        let job = report.job("doomed").expect("reported");
        assert_eq!(job.phase, JobPhase::Failed);
        assert_eq!(job.attempts, 3, "initial try + 2 restarts");
        assert_eq!(job.segments, 3);
        // RetryPolicy-style ledger: 50<<0 + 50<<1 + 50<<2 µs, charged, never slept.
        assert_eq!(job.backoff_micros, 50 + 100 + 200);
        assert!(job.note.as_deref().unwrap().contains("board unreachable"));
        assert!(!report.all_done());
        // The terminal phase is durable: a reopened supervisor refuses to reschedule.
        drop(supervisor);
        let mut reopened = JobSupervisor::open(&dir, SupervisorConfig::default()).unwrap();
        assert_eq!(reopened.jobs()[0].phase, JobPhase::Failed);
        let report = reopened
            .run(&specs, |_spec| {
                panic!("Failed jobs must not be rescheduled");
            })
            .unwrap();
        assert_eq!(report.job("doomed").unwrap().segments, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budgets_below_the_segment_watchdog_floor_are_rejected() {
        let dir = temp_dir("degenerate-budget");
        let err = JobSupervisor::open(
            &dir,
            SupervisorConfig {
                segment_wall_ms: 5_000,
                fleet_deadline_ms: 100,
                ..SupervisorConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ParmisError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("fleet_deadline_ms"), "{err}");

        let err = JobSupervisor::open(
            &dir,
            SupervisorConfig {
                segment_wall_ms: 5_000,
                job_deadline_ms: 100,
                ..SupervisorConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ParmisError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("job_deadline_ms"), "{err}");

        // Disabled budgets (0) and budgets at/above the floor are accepted.
        JobSupervisor::open(
            &dir,
            SupervisorConfig {
                segment_wall_ms: 5_000,
                fleet_deadline_ms: 5_000,
                job_deadline_ms: 0,
                ..SupervisorConfig::default()
            },
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_pre_tripped_drain_leaves_the_fleet_untouched_and_resumable() {
        let dir = temp_dir("pre-drain");
        let mut supervisor = JobSupervisor::open(&dir, SupervisorConfig::default()).unwrap();
        supervisor.request_drain();
        let specs = vec![JobSpec::new("parked", tiny_config(1, 8))];
        let report = supervisor
            .run(&specs, |_spec| {
                panic!("a drained supervisor must not start segments");
            })
            .unwrap();
        let job = report.job("parked").expect("reported");
        assert_eq!(job.phase, JobPhase::Pending);
        assert_eq!(job.segments, 0);
        assert!(report.any_resumable());
        assert!(!report.all_done());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resubmission_with_a_different_config_is_rejected() {
        let dir = temp_dir("resubmit");
        let mut supervisor = JobSupervisor::open(&dir, SupervisorConfig::default()).unwrap();
        supervisor
            .submit(&JobSpec::new("job", tiny_config(1, 8)))
            .unwrap();
        let err = supervisor
            .submit(&JobSpec::new("job", tiny_config(2, 8)))
            .unwrap_err();
        assert_eq!(
            err.checkpoint_fault(),
            Some(CheckpointFault::Incompatible),
            "got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wave_selection_is_round_robin_and_bounded_by_workers() {
        let dir = temp_dir("waves");
        let mut supervisor = JobSupervisor::open(&dir, SupervisorConfig::default()).unwrap();
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::new(format!("job-{i}"), tiny_config(i as u64, 8)))
            .collect();
        for spec in &specs {
            supervisor.submit(spec).unwrap();
        }
        assert_eq!(
            supervisor.pick_wave(&specs, 3),
            vec![(0, true), (1, true), (2, true)]
        );
        // The cursor advanced: the next wave starts where the last one stopped.
        assert_eq!(
            supervisor.pick_wave(&specs, 3),
            vec![(3, true), (0, true), (1, true)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
