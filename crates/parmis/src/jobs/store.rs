//! Durable checkpoint store: atomic persistence, digest-verified loads, corruption
//! quarantine, and bounded generation rotation.
//!
//! Every artifact the job layer persists — search checkpoints and the job journal —
//! goes through [`atomic_write`]: write to a same-directory temp file, `fsync` the file,
//! `rename` over the target, then `fsync` the directory. A crash at any point leaves
//! either the previous generation or the new one on disk, never a torn file.
//!
//! Checkpoints are stored one file per generation (`<job>.g<seq>.ckpt.json`), so a
//! corrupt newest generation never costs the job its history: [`CheckpointStore::load_latest`]
//! walks generations newest-first, moves every file that fails
//! [`SearchState::from_json`] verification into the `quarantine/` subdirectory (with a
//! `.reason.txt` side-car naming the [`CheckpointFault`]) and falls back to the newest
//! valid predecessor. Superseded generations beyond the configured keep-depth are
//! garbage-collected after each successful save.

use crate::checkpoint::SearchState;
use crate::error::CheckpointFault;
use crate::{ParmisError, Result};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Name of the quarantine subdirectory inside a store root.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Suffix of checkpoint files inside a store root.
pub const CHECKPOINT_SUFFIX: &str = ".ckpt.json";

fn io_err(context: impl std::fmt::Display, path: &Path, e: &std::io::Error) -> ParmisError {
    ParmisError::checkpoint(
        CheckpointFault::Io,
        format!("{context} `{}`: {e}", path.display()),
    )
}

/// Where in the atomic-write protocol a [`CrashPlan`] drill aborts the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStage {
    /// Abort after the temp file is written and synced but before the rename: the target
    /// still holds the previous generation and a stray `.tmp` file is left behind
    /// (a torn, mid-checkpoint-write crash).
    BeforeRename,
    /// Abort after the rename commits: the new generation is durable but whatever
    /// bookkeeping was supposed to follow never happens.
    AfterRename,
}

/// Crash drill for recovery tests: abort the process (via [`std::process::abort`]) during
/// the N-th durable write issued through this store, at the chosen protocol stage.
///
/// This is how the soak harness kills a supervisor at a deterministic-but-arbitrary
/// point, including mid-checkpoint-write; production stores carry no plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// 1-based index of the durable write to crash in.
    pub on_write: u64,
    /// Protocol stage at which to abort.
    pub stage: CrashStage,
}

/// Writes `bytes` to `path` atomically and durably: temp file in the same directory,
/// `fsync`, `rename`, directory `fsync`. A crash at any point leaves either the old
/// file or the new one, never a torn mix.
///
/// # Errors
///
/// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Io`] if any filesystem
/// step fails.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    atomic_write_staged(path, bytes, None)
}

fn atomic_write_staged(path: &Path, bytes: &[u8], crash: Option<CrashStage>) -> Result<()> {
    let dir = path
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let file_name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        ParmisError::checkpoint(
            CheckpointFault::Io,
            format!("atomic write target has no file name: `{}`", path.display()),
        )
    })?;
    let tmp = dir.join(format!("{file_name}.tmp"));
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("create temp file", &tmp, &e))?;
        f.write_all(bytes)
            .map_err(|e| io_err("write temp file", &tmp, &e))?;
        f.sync_all()
            .map_err(|e| io_err("sync temp file", &tmp, &e))?;
    }
    if crash == Some(CrashStage::BeforeRename) {
        std::process::abort();
    }
    fs::rename(&tmp, path).map_err(|e| io_err("commit rename to", path, &e))?;
    // Make the rename itself durable: sync the containing directory.
    if let Ok(d) = fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    if crash == Some(CrashStage::AfterRename) {
        std::process::abort();
    }
    Ok(())
}

/// One generation that failed verification during a load and was quarantined.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEvent {
    /// File name (inside the store root) that was moved to quarantine.
    pub file: String,
    /// The verification fault that condemned it.
    pub fault: CheckpointFault,
    /// Human-readable detail recorded in the `.reason.txt` side-car.
    pub reason: String,
}

/// Result of [`CheckpointStore::load_latest`]: the newest generation that passed full
/// verification (if any survived) plus the quarantine events produced on the way there.
#[derive(Debug)]
pub struct LoadOutcome {
    /// `(sequence, state)` of the newest valid generation, or `None` if every
    /// generation of the job was corrupt (all are now quarantined).
    pub state: Option<(u64, SearchState)>,
    /// Generations quarantined during this load, newest first.
    pub quarantined: Vec<QuarantineEvent>,
}

/// A directory of durable, digest-verified search checkpoints.
///
/// Layout (all writes atomic):
///
/// ```text
/// <root>/
///   journal.json                   # job table (owned by the supervisor)
///   <job>.g<seq>.ckpt.json         # checkpoint generations, seq strictly increasing
///   quarantine/
///     <file>                       # corrupt artifacts, moved aside verbatim
///     <file>.reason.txt            # fault class + detail
/// ```
#[derive(Debug)]
pub struct CheckpointStore {
    root: PathBuf,
    keep: usize,
    crash: Option<CrashPlan>,
    writes: AtomicU64,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store rooted at `root`, keeping at most `keep`
    /// generations per job (`keep` is clamped to ≥ 1). Stray `.tmp` files from an
    /// interrupted atomic write are swept on open — they were never committed and carry
    /// no information the protocol relies on.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Io`] if the directory
    /// tree cannot be created or scanned.
    pub fn open(root: impl Into<PathBuf>, keep: usize) -> Result<CheckpointStore> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("create store root", &root, &e))?;
        let quarantine = root.join(QUARANTINE_DIR);
        fs::create_dir_all(&quarantine)
            .map_err(|e| io_err("create quarantine dir", &quarantine, &e))?;
        let store = CheckpointStore {
            root,
            keep: keep.max(1),
            crash: None,
            writes: AtomicU64::new(0),
        };
        store.sweep_temps()?;
        Ok(store)
    }

    /// Arms a [`CrashPlan`] drill on this store (test/soak harness only).
    pub fn with_crash_plan(mut self, plan: CrashPlan) -> CheckpointStore {
        self.crash = Some(plan);
        self
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The quarantine subdirectory.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join(QUARANTINE_DIR)
    }

    /// Number of durable writes issued through this store so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    /// Writes `bytes` to `<root>/<file>` through the atomic protocol, honoring an armed
    /// crash drill. Used for both checkpoints and the job journal so a drill can hit
    /// either artifact class.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Io`] on any
    /// filesystem failure.
    pub fn write_durable(&self, file: &str, bytes: &[u8]) -> Result<()> {
        let n = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        let crash = self
            .crash
            .filter(|plan| plan.on_write == n)
            .map(|plan| plan.stage);
        atomic_write_staged(&self.root.join(file), bytes, crash)
    }

    /// Persists `state` as the next generation of `job` and garbage-collects
    /// generations beyond the keep-depth. Returns the new sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`]: [`CheckpointFault::Serialize`] if the state
    /// cannot be serialized, [`CheckpointFault::Io`] on filesystem failure,
    /// [`CheckpointFault::Invariant`] for an invalid job id.
    pub fn save(&self, job: &str, state: &SearchState) -> Result<u64> {
        validate_job_id(job)?;
        let json = state.to_json()?;
        let seq = self
            .generations(job)?
            .last()
            .map(|&(seq, _)| seq + 1)
            .unwrap_or(1);
        self.write_durable(&checkpoint_file(job, seq), json.as_bytes())?;
        self.gc(job)?;
        Ok(seq)
    }

    /// All on-disk generations of `job`, sorted by ascending sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Io`] if the root
    /// cannot be scanned.
    pub fn generations(&self, job: &str) -> Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in self.read_root()? {
            if let Some((owner, seq)) = parse_checkpoint_file(&entry) {
                if owner == job {
                    out.push((seq, self.root.join(&entry)));
                }
            }
        }
        out.sort_unstable_by_key(|&(seq, _)| seq);
        Ok(out)
    }

    /// Job ids that have at least one on-disk generation (sorted; used to rebuild a lost
    /// journal from the checkpoint files alone).
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Io`] if the root
    /// cannot be scanned.
    pub fn jobs_on_disk(&self) -> Result<Vec<String>> {
        let mut jobs: Vec<String> = self
            .read_root()?
            .into_iter()
            .filter_map(|name| parse_checkpoint_file(&name).map(|(job, _)| job))
            .collect();
        jobs.sort_unstable();
        jobs.dedup();
        Ok(jobs)
    }

    /// Loads the newest generation of `job` that passes full verification (format
    /// version, both digests, trace-hash chain). Every newer generation that fails is
    /// moved to quarantine with a reason side-car; the walk continues to the newest
    /// valid predecessor.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Io`] only for
    /// filesystem failures — corruption is never an error here, it is a quarantine
    /// event recorded in the returned [`LoadOutcome`].
    pub fn load_latest(&self, job: &str) -> Result<LoadOutcome> {
        let mut generations = self.generations(job)?;
        generations.reverse();
        let mut quarantined = Vec::new();
        for (seq, path) in generations {
            let parsed = fs::read_to_string(&path)
                .map_err(|e| io_err("read checkpoint", &path, &e))
                .and_then(|text| SearchState::from_json(&text));
            match parsed {
                Ok(state) => {
                    return Ok(LoadOutcome {
                        state: Some((seq, state)),
                        quarantined,
                    })
                }
                Err(e) => {
                    let fault = e.checkpoint_fault().unwrap_or(CheckpointFault::Invariant);
                    let reason = e.to_string();
                    self.quarantine(&path, &reason)?;
                    quarantined.push(QuarantineEvent {
                        file: file_name_of(&path),
                        fault,
                        reason,
                    });
                }
            }
        }
        Ok(LoadOutcome {
            state: None,
            quarantined,
        })
    }

    /// Moves the artifact at `path` (inside the store root) into `quarantine/` and
    /// writes a `.reason.txt` side-car describing why.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Io`] if the move
    /// fails.
    pub fn quarantine(&self, path: &Path, reason: &str) -> Result<()> {
        let name = file_name_of(path);
        let dest = self.quarantine_dir().join(&name);
        fs::rename(path, &dest).map_err(|e| io_err("quarantine", path, &e))?;
        let sidecar = self.quarantine_dir().join(format!("{name}.reason.txt"));
        // Best-effort side-car: losing the reason must not fail the recovery path.
        let _ = fs::write(&sidecar, reason.as_bytes());
        Ok(())
    }

    /// Names of quarantined artifacts (side-cars excluded), sorted.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Io`] if the
    /// quarantine directory cannot be scanned.
    pub fn quarantined_files(&self) -> Result<Vec<String>> {
        let dir = self.quarantine_dir();
        let mut out = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("scan quarantine", &dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("scan quarantine", &dir, &e))?;
            if let Some(name) = entry.file_name().to_str() {
                if !name.ends_with(".reason.txt") {
                    out.push(name.to_string());
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn gc(&self, job: &str) -> Result<()> {
        let generations = self.generations(job)?;
        if generations.len() <= self.keep {
            return Ok(());
        }
        let excess = generations.len() - self.keep;
        for (_, path) in &generations[..excess] {
            fs::remove_file(path).map_err(|e| io_err("gc checkpoint", path, &e))?;
        }
        Ok(())
    }

    fn sweep_temps(&self) -> Result<()> {
        for name in self.read_root()? {
            if name.ends_with(".tmp") {
                let path = self.root.join(&name);
                fs::remove_file(&path).map_err(|e| io_err("sweep temp file", &path, &e))?;
            }
        }
        Ok(())
    }

    fn read_root(&self) -> Result<Vec<String>> {
        let entries =
            fs::read_dir(&self.root).map_err(|e| io_err("scan store root", &self.root, &e))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err("scan store root", &self.root, &e))?;
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }
}

/// Validates a job id for use in checkpoint file names: non-empty, ASCII alphanumeric
/// plus `-` and `_`.
///
/// # Errors
///
/// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Invariant`] otherwise.
pub fn validate_job_id(job: &str) -> Result<()> {
    let ok = !job.is_empty()
        && job.len() <= 64
        && job
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
    if ok {
        Ok(())
    } else {
        Err(ParmisError::checkpoint(
            CheckpointFault::Invariant,
            format!("invalid job id `{job}`: use 1-64 ASCII alphanumeric/`-`/`_` characters"),
        ))
    }
}

fn checkpoint_file(job: &str, seq: u64) -> String {
    format!("{job}.g{seq:08}{CHECKPOINT_SUFFIX}")
}

fn parse_checkpoint_file(name: &str) -> Option<(String, u64)> {
    let stem = name.strip_suffix(CHECKPOINT_SUFFIX)?;
    let (job, seq) = stem.rsplit_once(".g")?;
    let seq: u64 = seq.parse().ok()?;
    if job.is_empty() {
        return None;
    }
    Some((job.to_string(), seq))
}

fn file_name_of(path: &Path) -> String {
    path.file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "parmis-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_file_names_round_trip() {
        let name = checkpoint_file("fleet-3_a", 42);
        assert_eq!(name, "fleet-3_a.g00000042.ckpt.json");
        assert_eq!(
            parse_checkpoint_file(&name),
            Some(("fleet-3_a".to_string(), 42))
        );
        assert_eq!(parse_checkpoint_file("journal.json"), None);
        assert_eq!(parse_checkpoint_file(".g01.ckpt.json"), None);
        assert_eq!(parse_checkpoint_file("a.gX.ckpt.json"), None);
    }

    #[test]
    fn job_id_validation() {
        assert!(validate_job_id("job-1_B").is_ok());
        for bad in ["", "a/b", "a.b", "a b", &"x".repeat(65)] {
            let err = validate_job_id(bad).unwrap_err();
            assert_eq!(err.checkpoint_fault(), Some(CheckpointFault::Invariant));
        }
    }

    #[test]
    fn atomic_write_replaces_and_sweeps() {
        let dir = temp_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let target = dir.join("data.json");
        atomic_write(&target, b"one").unwrap();
        atomic_write(&target, b"two").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"two");
        // A stray temp file (torn write) is swept on store open.
        fs::write(dir.join("data.json.tmp"), b"torn").unwrap();
        let store = CheckpointStore::open(&dir, 2).unwrap();
        assert!(!dir.join("data.json.tmp").exists());
        assert_eq!(store.writes(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_newest_generations() {
        let dir = temp_dir("gc");
        let store = CheckpointStore::open(&dir, 2).unwrap();
        let state = crate::jobs::testutil::tiny_state(7);
        for _ in 0..4 {
            store.save("job", &state).unwrap();
        }
        let generations = store.generations("job").unwrap();
        let seqs: Vec<u64> = generations.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![3, 4]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_quarantines_corrupt_and_falls_back() {
        let dir = temp_dir("fallback");
        let store = CheckpointStore::open(&dir, 4).unwrap();
        let state = crate::jobs::testutil::tiny_state(11);
        store.save("job", &state).unwrap();
        let seq2 = store.save("job", &state).unwrap();
        // Corrupt the newest generation in place (truncation).
        let newest = store.generations("job").unwrap().pop().unwrap().1;
        let text = fs::read_to_string(&newest).unwrap();
        fs::write(&newest, &text[..text.len() / 2]).unwrap();
        let outcome = store.load_latest("job").unwrap();
        let (seq, loaded) = outcome.state.expect("older generation survives");
        assert_eq!(seq, seq2 - 1);
        assert_eq!(loaded, state);
        assert_eq!(outcome.quarantined.len(), 1);
        assert_eq!(outcome.quarantined[0].fault, CheckpointFault::Parse);
        let quarantined = store.quarantined_files().unwrap();
        assert_eq!(quarantined.len(), 1);
        assert!(quarantined[0].contains(".g"));
        // The reason side-car names the fault.
        let sidecar = store
            .quarantine_dir()
            .join(format!("{}.reason.txt", quarantined[0]));
        let reason = fs::read_to_string(sidecar).unwrap();
        assert!(reason.contains("[parse]"), "side-car was: {reason}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_latest_with_no_survivor_reports_none() {
        let dir = temp_dir("nosurvivor");
        let store = CheckpointStore::open(&dir, 4).unwrap();
        let state = crate::jobs::testutil::tiny_state(3);
        store.save("job", &state).unwrap();
        for (_, path) in store.generations("job").unwrap() {
            fs::write(path, b"{not json").unwrap();
        }
        let outcome = store.load_latest("job").unwrap();
        assert!(outcome.state.is_none());
        assert_eq!(outcome.quarantined.len(), 1);
        assert!(store.generations("job").unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
