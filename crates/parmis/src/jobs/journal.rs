//! The journaled job table: every supervised search is one [`JobEntry`] in a
//! digest-verified document persisted through the store's atomic writer.
//!
//! The journal is the supervisor's single source of truth across crashes. Every phase
//! transition is validated against the job state machine before it is recorded:
//!
//! ```text
//! Pending ──► Running ──► Done
//!    ▲           │ ▲────► Failed
//!    │           │ │────► Quarantined
//!    │           ▼ │
//!    └─────── Suspended
//! ```
//!
//! (`Running → Pending` and `Suspended → Pending` are the restart edges: a segment that
//! faults before any checkpoint exists — or a job whose every checkpoint generation was
//! quarantined as corrupt — restarts from scratch, charging the bounded restart budget.
//! Because trajectories are deterministic, a from-scratch restart still converges to
//! the bit-identical outcome. On recovery, jobs found `Running` — the marker of a crash
//! mid-segment — are demoted to `Suspended` or `Pending` depending on whether a valid
//! checkpoint survives; `Quarantined` is reserved for persistent-state loss that
//! recurs beyond the restart budget.)

use crate::checkpoint::{fold, fold_str, TRACE_HASH_SEED};
use crate::error::CheckpointFault;
use crate::{ParmisError, Result};
use serde::{Deserialize, Serialize};

/// Journal document layout version.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// File name of the journal inside a store root.
pub const JOURNAL_FILE: &str = "journal.json";

/// Lifecycle phase of a supervised job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Submitted, no checkpoint on disk yet.
    Pending,
    /// A segment is (or was, if the process crashed) executing.
    Running,
    /// Suspended at a checkpoint boundary; resumable.
    Suspended,
    /// Completed; `outcome_digest` records the final fronts and trace chain.
    Done,
    /// Restart budget exhausted; terminal.
    Failed,
    /// Persistent state unrecoverable (every generation corrupt); terminal.
    Quarantined,
}

impl JobPhase {
    /// Stable lower-case name (used in displays, reports and file artifacts).
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Pending => "pending",
            JobPhase::Running => "running",
            JobPhase::Suspended => "suspended",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Quarantined => "quarantined",
        }
    }

    /// Whether the phase is terminal (the scheduler never picks the job again).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobPhase::Done | JobPhase::Failed | JobPhase::Quarantined
        )
    }

    /// Whether the scheduler may start a segment for a job in this phase.
    pub fn is_runnable(self) -> bool {
        matches!(self, JobPhase::Pending | JobPhase::Suspended)
    }

    fn ordinal(self) -> u64 {
        match self {
            JobPhase::Pending => 0,
            JobPhase::Running => 1,
            JobPhase::Suspended => 2,
            JobPhase::Done => 3,
            JobPhase::Failed => 4,
            JobPhase::Quarantined => 5,
        }
    }
}

impl std::fmt::Display for JobPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether `from → to` is a legal job state-machine edge.
pub fn can_transition(from: JobPhase, to: JobPhase) -> bool {
    use JobPhase::*;
    matches!(
        (from, to),
        (Pending, Running)
            | (Suspended, Running)
            | (Running, Suspended)
            | (Running, Pending)
            | (Running, Done)
            | (Running, Failed)
            | (Running, Quarantined)
            | (Suspended, Pending)
            | (Suspended, Quarantined)
            | (Pending, Quarantined)
    )
}

/// One supervised job in the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEntry {
    /// Job id (checkpoint file prefix; see [`super::store::validate_job_id`]).
    pub id: String,
    /// Current lifecycle phase.
    pub phase: JobPhase,
    /// Digest of the job's trajectory-affecting configuration
    /// ([`crate::checkpoint::config_digest`]); resubmission with a different
    /// configuration is rejected.
    pub config_digest: u64,
    /// Segments started so far (including crashed ones).
    pub segments: usize,
    /// Evaluations captured in the newest checkpoint (final count once `Done`).
    pub evaluations: usize,
    /// Restart attempts consumed since the last successful segment.
    pub attempts: usize,
    /// Cumulative restart backoff charged to this job, in microseconds. Deterministic
    /// accounting (`base << attempt` per retry, like
    /// [`crate::evaluation::RetryPolicy`]), never slept.
    pub backoff_micros: u64,
    /// Sequence number of the newest durable checkpoint, if any.
    pub checkpoint_seq: Option<u64>,
    /// Last link of the trace-hash chain at the newest checkpoint (or at completion).
    pub last_trace_hash: Option<u64>,
    /// Digest of the final outcome (fronts + trace chain), set when `Done`. Two
    /// processes that finish the same job must record the same digest — this is the
    /// cross-crash bit-identity receipt.
    pub outcome_digest: Option<u64>,
    /// Last failure/suspension/quarantine detail, for operators.
    pub note: Option<String>,
}

impl JobEntry {
    /// A fresh `Pending` entry for `id` with the given configuration digest.
    pub fn pending(id: impl Into<String>, config_digest: u64) -> JobEntry {
        JobEntry {
            id: id.into(),
            phase: JobPhase::Pending,
            config_digest,
            segments: 0,
            evaluations: 0,
            attempts: 0,
            backoff_micros: 0,
            checkpoint_seq: None,
            last_trace_hash: None,
            outcome_digest: None,
            note: None,
        }
    }

    /// Validated phase transition.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Invariant`] for an
    /// illegal edge.
    pub fn transition(&mut self, to: JobPhase) -> Result<()> {
        if !can_transition(self.phase, to) {
            return Err(ParmisError::checkpoint(
                CheckpointFault::Invariant,
                format!(
                    "illegal job transition {} -> {} for `{}`",
                    self.phase, to, self.id
                ),
            ));
        }
        self.phase = to;
        Ok(())
    }

    fn fold_into(&self, mut h: u64) -> u64 {
        h = fold_str(h, &self.id);
        h = fold(h, self.phase.ordinal());
        h = fold(h, self.config_digest);
        h = fold(h, self.segments as u64);
        h = fold(h, self.evaluations as u64);
        h = fold(h, self.attempts as u64);
        h = fold(h, self.backoff_micros);
        h = fold(h, self.checkpoint_seq.map(|s| s + 1).unwrap_or(0));
        h = fold(h, self.last_trace_hash.unwrap_or(0));
        h = fold(h, self.outcome_digest.unwrap_or(0));
        if let Some(note) = &self.note {
            h = fold_str(h, note);
        }
        h
    }

    fn verify(&self) -> Result<()> {
        let invariant = |reason: String| {
            Err(ParmisError::checkpoint(
                CheckpointFault::Invariant,
                format!("journal entry `{}`: {reason}", self.id),
            ))
        };
        super::store::validate_job_id(&self.id)?;
        if self.phase == JobPhase::Done && self.outcome_digest.is_none() {
            return invariant("Done without an outcome digest".into());
        }
        if self.phase == JobPhase::Suspended && self.checkpoint_seq.is_none() {
            return invariant("Suspended without a checkpoint".into());
        }
        if self.phase == JobPhase::Quarantined && self.note.is_none() {
            return invariant("Quarantined without a reason note".into());
        }
        Ok(())
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct JournalDoc {
    format_version: u32,
    entries: Vec<JobEntry>,
    digest: u64,
}

/// The in-memory job table, (de)serialized as a digest-verified document.
#[derive(Debug, Default)]
pub struct JobJournal {
    entries: Vec<JobEntry>,
}

impl JobJournal {
    /// An empty journal.
    pub fn new() -> JobJournal {
        JobJournal::default()
    }

    /// All entries, in submission order.
    pub fn entries(&self) -> &[JobEntry] {
        &self.entries
    }

    /// The entry for `id`, if present.
    pub fn get(&self, id: &str) -> Option<&JobEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Mutable access to the entry for `id`, if present.
    pub fn get_mut(&mut self, id: &str) -> Option<&mut JobEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Appends a new entry.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Invariant`] if the
    /// id collides with an existing entry or the entry violates its own invariants.
    pub fn insert(&mut self, entry: JobEntry) -> Result<()> {
        entry.verify()?;
        if self.get(&entry.id).is_some() {
            return Err(ParmisError::checkpoint(
                CheckpointFault::Invariant,
                format!("duplicate journal entry `{}`", entry.id),
            ));
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Serializes the journal as pretty-printed JSON with an embedded content digest.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with [`CheckpointFault::Serialize`] if
    /// serialization fails.
    pub fn to_json(&self) -> Result<String> {
        let doc = JournalDoc {
            format_version: JOURNAL_FORMAT_VERSION,
            entries: self.entries.clone(),
            digest: digest_entries(&self.entries),
        };
        serde_json::to_string_pretty(&doc).map_err(|e| {
            ParmisError::checkpoint(
                CheckpointFault::Serialize,
                format!("journal serialization failed: {e}"),
            )
        })
    }

    /// Parses and fully verifies a journal document: format version, content digest,
    /// per-entry invariants, id uniqueness.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Checkpoint`] with the distinct fault class of whichever
    /// verification failed ([`CheckpointFault::Parse`] / [`VersionMismatch`] /
    /// [`DigestMismatch`] / [`Invariant`]).
    ///
    /// [`VersionMismatch`]: CheckpointFault::VersionMismatch
    /// [`DigestMismatch`]: CheckpointFault::DigestMismatch
    /// [`Invariant`]: CheckpointFault::Invariant
    pub fn from_json(text: &str) -> Result<JobJournal> {
        let doc: JournalDoc = serde_json::from_str(text).map_err(|e| {
            ParmisError::checkpoint(CheckpointFault::Parse, format!("journal parse failed: {e}"))
        })?;
        if doc.format_version != JOURNAL_FORMAT_VERSION {
            return Err(ParmisError::checkpoint(
                CheckpointFault::VersionMismatch,
                format!(
                    "journal format version {} is not supported (expected {})",
                    doc.format_version, JOURNAL_FORMAT_VERSION
                ),
            ));
        }
        let recomputed = digest_entries(&doc.entries);
        if recomputed != doc.digest {
            return Err(ParmisError::checkpoint(
                CheckpointFault::DigestMismatch,
                format!(
                    "journal digest mismatch: recorded {:#018x}, recomputed {:#018x}",
                    doc.digest, recomputed
                ),
            ));
        }
        let mut journal = JobJournal::new();
        for entry in doc.entries {
            journal.insert(entry)?;
        }
        Ok(journal)
    }
}

fn digest_entries(entries: &[JobEntry]) -> u64 {
    let mut h = fold(TRACE_HASH_SEED, u64::from(JOURNAL_FORMAT_VERSION));
    h = fold(h, entries.len() as u64);
    for entry in entries {
        h = entry.fold_into(h);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> JobJournal {
        let mut journal = JobJournal::new();
        let mut a = JobEntry::pending("alpha", 11);
        a.transition(JobPhase::Running).unwrap();
        a.segments = 1;
        a.transition(JobPhase::Suspended).unwrap();
        a.checkpoint_seq = Some(1);
        a.evaluations = 9;
        a.last_trace_hash = Some(0xdead_beef);
        journal.insert(a).unwrap();
        journal.insert(JobEntry::pending("beta", 22)).unwrap();
        journal
    }

    #[test]
    fn state_machine_edges() {
        use JobPhase::*;
        assert!(can_transition(Pending, Running));
        assert!(can_transition(Running, Suspended));
        assert!(can_transition(Running, Pending));
        assert!(can_transition(Suspended, Running));
        assert!(can_transition(Running, Done));
        assert!(
            can_transition(Suspended, Pending),
            "checkpoint-loss restart"
        );
        assert!(!can_transition(Done, Running));
        assert!(!can_transition(Failed, Running));
        assert!(!can_transition(Pending, Done));
        assert!(!can_transition(Quarantined, Running));
        let mut done = JobEntry::pending("x", 0);
        done.transition(JobPhase::Running).unwrap();
        done.outcome_digest = Some(1);
        done.transition(JobPhase::Done).unwrap();
        let err = done.transition(JobPhase::Running).unwrap_err();
        assert_eq!(err.checkpoint_fault(), Some(CheckpointFault::Invariant));
    }

    #[test]
    fn journal_round_trips_with_digest() {
        let journal = sample_journal();
        let json = journal.to_json().unwrap();
        let reloaded = JobJournal::from_json(&json).unwrap();
        assert_eq!(reloaded.entries(), journal.entries());
    }

    #[test]
    fn journal_rejects_tampering_with_distinct_faults() {
        let journal = sample_journal();
        let json = journal.to_json().unwrap();

        let err = JobJournal::from_json(&json[..json.len() / 2]).unwrap_err();
        assert_eq!(err.checkpoint_fault(), Some(CheckpointFault::Parse));

        let bumped = json.replace("\"format_version\": 1", "\"format_version\": 9");
        let err = JobJournal::from_json(&bumped).unwrap_err();
        assert_eq!(
            err.checkpoint_fault(),
            Some(CheckpointFault::VersionMismatch)
        );

        let tampered = json.replace("\"evaluations\": 9", "\"evaluations\": 10");
        assert_ne!(tampered, json);
        let err = JobJournal::from_json(&tampered).unwrap_err();
        assert_eq!(
            err.checkpoint_fault(),
            Some(CheckpointFault::DigestMismatch)
        );
    }

    #[test]
    fn journal_rejects_invalid_entries() {
        let mut journal = JobJournal::new();
        journal.insert(JobEntry::pending("dup", 1)).unwrap();
        let err = journal.insert(JobEntry::pending("dup", 1)).unwrap_err();
        assert_eq!(err.checkpoint_fault(), Some(CheckpointFault::Invariant));

        let mut bad = JobEntry::pending("needs-ckpt", 1);
        bad.phase = JobPhase::Suspended;
        let err = journal.insert(bad).unwrap_err();
        assert_eq!(err.checkpoint_fault(), Some(CheckpointFault::Invariant));
        assert!(err.to_string().contains("Suspended without a checkpoint"));
    }
}
