//! Policy evaluation: turning a parameter vector θ into an objective vector by running the
//! corresponding DRM policy on the platform (Algorithm 1, line 5).
//!
//! The policy→aggregates step itself is delegated to an [`EvalBackend`]
//! ([`crate::backend`]): [`SocEvaluator`] decodes θ, asks its backend for the
//! [`RunAggregates`] of each application run, and folds objectives/constraints on top. The
//! default backend is the streaming analytic simulator and is bit-identical to the
//! pre-backend evaluation path.

use crate::backend::{AnalyticSim, EvalBackend, EvalContext};
use crate::cancel::CancelToken;
use crate::objective::{objective_vector, Objective};
use crate::{ParmisError, Result};
use fastmath::Precision;
use policy::drm_policy::{DrmPolicy, PolicyArchitecture};
use soc_sim::apps::Benchmark;
use soc_sim::platform::{DrmController, Platform, RunAggregates, RunSummary};
use soc_sim::scenario::{BackendKind, Scenario, ScenarioConstraints};
use soc_sim::workload::Application;
use soc_sim::{DecisionSpace, SocError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default measurement-noise seed for evaluation runs.
const DEFAULT_RUN_SEED: u64 = 17;

/// Anything that can evaluate a candidate policy parameter vector θ and return the
/// corresponding minimization objective vector.
///
/// PaRMIS itself only needs this trait; the two provided implementations evaluate policies on
/// the SoC simulator for a single application ([`SocEvaluator`]) or for a whole application
/// set ([`GlobalEvaluator`], used by the paper's "global Pareto-frontier policies" experiment,
/// §V-D).
pub trait PolicyEvaluator {
    /// Dimensionality `d` of the policy parameter space.
    fn parameter_dim(&self) -> usize;

    /// Lower/upper bound applied to every parameter (the search box is `[-bound, bound]^d`).
    fn parameter_bound(&self) -> f64 {
        DrmPolicy::PARAMETER_BOUND
    }

    /// The design objectives being traded off, in output order.
    fn objectives(&self) -> &[Objective];

    /// Evaluates θ and returns the minimization objective vector (one entry per objective).
    ///
    /// Implementations must be **pure**: the result may depend only on `theta` (and the
    /// evaluator's own configuration, e.g. a fixed measurement seed), never on call order or
    /// hidden mutable state. The batched search relies on this to keep the Pareto front
    /// bit-identical for any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError`] if the evaluation cannot be carried out.
    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>>;

    /// Evaluates a batch of candidates, returning one objective vector per candidate in the
    /// same order.
    ///
    /// The default implementation is the serial element-wise loop, so `evaluate_batch`
    /// always agrees with [`evaluate`](Self::evaluate); [`ParallelEvaluator`] overrides it
    /// to shard the batch across a scoped thread pool while preserving slot order.
    ///
    /// # Errors
    ///
    /// Returns the first error produced by any element of the batch (in slot order).
    fn evaluate_batch(&self, thetas: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        thetas.iter().map(|theta| self.evaluate(theta)).collect()
    }
}

impl<E: PolicyEvaluator + ?Sized> PolicyEvaluator for &E {
    fn parameter_dim(&self) -> usize {
        (**self).parameter_dim()
    }

    fn parameter_bound(&self) -> f64 {
        (**self).parameter_bound()
    }

    fn objectives(&self) -> &[Objective] {
        (**self).objectives()
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        (**self).evaluate(theta)
    }

    fn evaluate_batch(&self, thetas: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        (**self).evaluate_batch(thetas)
    }
}

/// Adapter that parallelizes [`PolicyEvaluator::evaluate_batch`] across a scoped
/// `std::thread` pool.
///
/// The batch is split into one contiguous chunk per worker and each chunk goes through the
/// inner evaluator's **own** `evaluate_batch` — so per-batch optimizations (e.g.
/// [`SocEvaluator`]'s reusable [`SimBuffers`] scratch) apply per worker instead of being
/// bypassed by per-slot dispatch. Results are merged back **in slot order** and every
/// evaluation is a pure function of its θ, so the output is bit-identical to the serial
/// default for any worker count. A worker count of `0` means "one worker per available
/// CPU".
///
/// ```no_run
/// use parmis::evaluation::{ParallelEvaluator, PolicyEvaluator, SocEvaluator};
/// use parmis::objective::Objective;
/// use soc_sim::apps::Benchmark;
///
/// # fn main() -> Result<(), parmis::ParmisError> {
/// let serial = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
/// let parallel = ParallelEvaluator::new(serial, 4);
/// let thetas = vec![vec![0.1; parallel.parameter_dim()]; 8];
/// let objectives = parallel.evaluate_batch(&thetas)?;
/// assert_eq!(objectives.len(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelEvaluator<E> {
    inner: E,
    num_workers: usize,
    cancel: CancelToken,
}

impl<E: PolicyEvaluator + Sync> ParallelEvaluator<E> {
    /// Wraps `inner`, sharding batches across `num_workers` threads (`0` = all CPUs).
    pub fn new(inner: E, num_workers: usize) -> Self {
        ParallelEvaluator {
            inner,
            num_workers: crate::parallel::resolve_workers(num_workers),
            cancel: CancelToken::never(),
        }
    }

    /// Attaches a cancellation token checked at the batch-dispatch boundary: before each
    /// worker's chunk starts, a tripped token aborts the whole batch with
    /// [`ParmisError::Cancelled`] instead of evaluating it. Each completed chunk also
    /// [beats](CancelToken::beat) the token so the supervisor's stall monitor sees
    /// batch-level progress. Chunking and result order are unaffected — a cancelled batch
    /// is simply recomputed identically on resume.
    #[must_use]
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// The effective worker count after resolving the "all CPUs" sentinel.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Access to the wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Unwraps the adapter.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: PolicyEvaluator + Sync> PolicyEvaluator for ParallelEvaluator<E> {
    fn parameter_dim(&self) -> usize {
        self.inner.parameter_dim()
    }

    fn parameter_bound(&self) -> f64 {
        self.inner.parameter_bound()
    }

    fn objectives(&self) -> &[Objective] {
        self.inner.objectives()
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        self.inner.evaluate(theta)
    }

    fn evaluate_batch(&self, thetas: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        if let Some(reason) = self.cancel.cancelled() {
            return Err(ParmisError::cancelled(reason));
        }
        if self.num_workers <= 1 || thetas.len() <= 1 {
            let results = self.inner.evaluate_batch(thetas);
            if results.is_ok() {
                self.cancel.beat();
            }
            return results;
        }
        let workers = self.num_workers.min(thetas.len());
        let chunk_len = thetas.len().div_ceil(workers);
        let chunks: Vec<&[Vec<f64>]> = thetas.chunks(chunk_len).collect();
        let mut results = Vec::with_capacity(thetas.len());
        for chunk in crate::parallel::parallel_map(&chunks, workers, |_, c| {
            // Cooperative cancellation at the chunk-dispatch boundary: a chunk whose
            // token is already tripped is never evaluated. The abort discards the whole
            // batch (the first chunk's error wins below), so a resumed run recomputes it
            // bit-identically — cancellation never changes what is computed.
            if let Some(reason) = self.cancel.cancelled() {
                return Err(ParmisError::cancelled(reason));
            }
            // Panic containment at the worker boundary: a panicking inner evaluator (one
            // without its own containment) becomes a structured error for its chunk
            // instead of tearing down the process at the scope join. Because the inner
            // serial loop stops at its first failing slot — panic or error alike — the
            // contained error still corresponds to the chunk's lowest failing slot.
            let chunk_results = catch_unwind(AssertUnwindSafe(|| self.inner.evaluate_batch(c)))
                .unwrap_or_else(|payload| {
                    Err(ParmisError::Backend {
                        name: "parallel-worker".to_string(),
                        source: SocError::Fault {
                            reason: format!(
                                "worker panic contained: {}",
                                panic_reason(payload.as_ref())
                            ),
                        },
                    })
                });
            if chunk_results.is_ok() {
                self.cancel.beat();
            }
            chunk_results
        }) {
            // Propagate the first error in slot order, exactly like the serial loop:
            // chunks are contiguous and merged in slot order, and within a chunk the inner
            // evaluator's serial collect stops at its first failure — so for any worker
            // count the surfaced error is the one from the lowest failing slot.
            results.extend(chunk?);
        }
        Ok(results)
    }
}

/// What happens to a candidate θ whose evaluation still fails after every retry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradeMode {
    /// Propagate the error and abort the batch (the default, and the pre-retry behavior).
    FailFast,
    /// Degrade gracefully: the θ reports `penalty` on **every** objective instead of
    /// failing the run. Pick a penalty clearly worse than any reachable objective value so
    /// the search routes around the faulty region without the archive ever admitting it.
    SkipWithPenalty {
        /// Objective value reported for every objective of a degraded θ.
        penalty: f64,
    },
}

/// Bounded-retry policy for the evaluation seam, with deterministic backoff accounting.
///
/// Each failed backend run (structured error *or* contained panic) is retried up to
/// [`max_retries`](Self::max_retries) times; attempt `i` charges `backoff_base_micros <<
/// i` to the shared [`RetryStats`] ledger **without sleeping** — the backoff schedule is
/// an accounting quantity (reproducible in tests and reports, summable across workers),
/// not a wall-clock delay, so retry behavior never depends on timing. When every attempt
/// is exhausted, [`degrade`](Self::degrade) decides between fail-fast and
/// skip-with-penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (`0` = single attempt, the default).
    pub max_retries: usize,
    /// Base of the exponential backoff ledger: attempt `i` charges `base << i` µs.
    pub backoff_base_micros: u64,
    /// What to do once retries are exhausted.
    pub degrade: DegradeMode,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base_micros: 100,
            degrade: DegradeMode::FailFast,
        }
    }
}

impl RetryPolicy {
    /// A fail-fast policy with `max_retries` retries.
    pub fn retries(max_retries: usize) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::default()
        }
    }

    /// Switches exhaustion behavior to skip-with-penalty.
    #[must_use]
    pub fn skip_with_penalty(mut self, penalty: f64) -> Self {
        self.degrade = DegradeMode::SkipWithPenalty { penalty };
        self
    }

    /// Overrides the backoff ledger base.
    #[must_use]
    pub fn backoff_base_micros(mut self, micros: u64) -> Self {
        self.backoff_base_micros = micros;
        self
    }
}

/// Shared fault-handling ledger of an evaluator (clones of the evaluator share one).
///
/// All counters are atomics: workers update them concurrently, totals are exact.
#[derive(Debug, Default)]
pub struct RetryStats {
    retries: AtomicUsize,
    degraded_runs: AtomicUsize,
    contained_panics: AtomicUsize,
    backoff_micros: AtomicU64,
}

impl RetryStats {
    /// Total retry attempts performed.
    pub fn retries(&self) -> usize {
        self.retries.load(Ordering::SeqCst)
    }

    /// Runs that exhausted their retries and degraded to the penalty vector.
    pub fn degraded_runs(&self) -> usize {
        self.degraded_runs.load(Ordering::SeqCst)
    }

    /// Backend panics caught and converted into structured errors.
    pub fn contained_panics(&self) -> usize {
        self.contained_panics.load(Ordering::SeqCst)
    }

    /// Total simulated backoff charged by the deterministic accounting, in microseconds.
    pub fn backoff_micros(&self) -> u64 {
        self.backoff_micros.load(Ordering::SeqCst)
    }
}

/// Renders a panic payload into a human-readable reason (the common `&str`/`String`
/// payloads verbatim, anything else opaque).
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Evaluates policies by running them on the simulated platform for one benchmark.
#[derive(Debug, Clone)]
pub struct SocEvaluator {
    platform: Platform,
    space: DecisionSpace,
    architecture: PolicyArchitecture,
    applications: Vec<Application>,
    objectives: Vec<Objective>,
    constraints: Option<ScenarioConstraints>,
    run_seed: u64,
    backend: Arc<dyn EvalBackend>,
    retry: RetryPolicy,
    retry_stats: Arc<RetryStats>,
    cancel: CancelToken,
}

impl SocEvaluator {
    /// Starts a fluent [`EvaluatorBuilder`] — the preferred way to assemble an evaluator.
    ///
    /// ```
    /// use parmis::prelude::*;
    ///
    /// # fn main() -> Result<(), ParmisError> {
    /// let evaluator = SocEvaluator::builder()
    ///     .benchmark(Benchmark::Qsort)
    ///     .objectives(Objective::TIME_ENERGY.to_vec())
    ///     .build()?;
    /// assert_eq!(evaluator.backend().describe().name(), "analytic-sim");
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder() -> EvaluatorBuilder {
        EvaluatorBuilder::new()
    }

    /// Creates an evaluator for one benchmark on the default Odroid-XU3-like platform with
    /// the paper's default policy architecture.
    ///
    /// Deprecation note: prefer [`SocEvaluator::builder`] with
    /// [`benchmark`](EvaluatorBuilder::benchmark); this constructor is kept as a thin
    /// wrapper for source compatibility.
    pub fn for_benchmark(benchmark: Benchmark, objectives: Vec<Objective>) -> Self {
        SocEvaluator::builder()
            .benchmark(benchmark)
            .objectives(objectives)
            .build()
            .expect("a benchmark evaluator always has an application")
    }

    /// Creates an evaluator for a [`Scenario`]: the scenario's platform preset, its
    /// generated workload, its [`ScenarioConstraints`] applied as an objective penalty
    /// (see [`with_constraints`](Self::with_constraints)), and its pinned
    /// [`Scenario::backend`] selection when present.
    ///
    /// Deprecation note: prefer [`SocEvaluator::builder`] with
    /// [`scenario`](EvaluatorBuilder::scenario); this constructor is kept as a thin
    /// wrapper for source compatibility.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Evaluation`] if the scenario's workload fails to build (e.g.
    /// an unknown benchmark name in a scenario loaded from JSON).
    pub fn for_scenario(scenario: &Scenario, objectives: Vec<Objective>) -> Result<Self> {
        SocEvaluator::builder()
            .scenario(scenario)
            .objectives(objectives)
            .build()
    }

    /// Applies scenario constraints: every objective value gets the constraints'
    /// weighted relative-violation [`penalty`](ScenarioConstraints::penalty) added, so the
    /// search is steered towards configurations that satisfy the scenario without changing
    /// the objective set. A penalty of zero (all limits met) leaves values untouched.
    pub fn with_constraints(mut self, constraints: ScenarioConstraints) -> Self {
        self.constraints = Some(constraints);
        self
    }

    /// Creates an evaluator from explicit components. `applications` may contain one
    /// application (application-specific policies) or many (global policies; objectives are
    /// averaged across applications).
    pub fn new(
        platform: Platform,
        architecture: PolicyArchitecture,
        applications: Vec<Application>,
        objectives: Vec<Objective>,
    ) -> Self {
        let space = platform.spec().decision_space().clone();
        SocEvaluator {
            platform,
            space,
            architecture,
            applications,
            objectives,
            constraints: None,
            run_seed: DEFAULT_RUN_SEED,
            backend: Arc::new(AnalyticSim::new()),
            retry: RetryPolicy::default(),
            retry_stats: Arc::new(RetryStats::default()),
            cancel: CancelToken::never(),
        }
    }

    /// Attaches a cancellation token threaded into every backend run's [`EvalContext`]:
    /// streaming backends probe it every [`crate::backend::CANCEL_EPOCH_STRIDE`] simulator
    /// epochs (beating the heartbeat, aborting with [`ParmisError::Cancelled`] when
    /// tripped). A cancelled run's partial work is discarded and recomputed identically on
    /// resume — the token never changes what an evaluation produces.
    #[must_use]
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Overrides the measurement-noise seed used for every evaluation run.
    pub fn with_run_seed(mut self, seed: u64) -> Self {
        self.run_seed = seed;
        self
    }

    /// Swaps the evaluation backend that carries out the policy→aggregates step.
    pub fn with_backend(mut self, backend: Arc<dyn EvalBackend>) -> Self {
        self.backend = backend;
        self
    }

    /// The evaluation backend in use.
    pub fn backend(&self) -> &dyn EvalBackend {
        &*self.backend
    }

    /// Sets the fault-handling policy applied around every backend run (retries with
    /// deterministic backoff accounting, then fail-fast or skip-with-penalty).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The fault-handling policy in use.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The shared fault-handling ledger (clones of this evaluator update the same one, so
    /// parallel workers aggregate into a single set of totals).
    pub fn retry_stats(&self) -> Arc<RetryStats> {
        self.retry_stats.clone()
    }

    /// The policy architecture used to decode θ.
    pub fn architecture(&self) -> &PolicyArchitecture {
        &self.architecture
    }

    /// The decision space of the underlying platform.
    pub fn decision_space(&self) -> &DecisionSpace {
        &self.space
    }

    /// The applications this evaluator runs.
    pub fn applications(&self) -> &[Application] {
        &self.applications
    }

    /// Materializes the DRM policy corresponding to a parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `theta.len()` does not match [`parameter_dim`](PolicyEvaluator::parameter_dim).
    pub fn policy_for(&self, theta: &[f64]) -> DrmPolicy {
        DrmPolicy::from_flat_parameters(&self.space, &self.architecture, theta)
    }

    /// Runs the policy for θ on every application and returns the per-application summaries.
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Evaluation`] for a θ of the wrong dimension and propagates
    /// simulator failures.
    pub fn run_summaries(&self, theta: &[f64]) -> Result<Vec<RunSummary>> {
        if theta.len() != self.parameter_dim() {
            return Err(ParmisError::Evaluation {
                reason: format!(
                    "theta has dimension {} but the policy needs {}",
                    theta.len(),
                    self.parameter_dim()
                ),
            });
        }
        let mut policy = self.policy_for(theta);
        self.applications
            .iter()
            .map(|app| {
                self.platform
                    .run_application(app, &mut policy, self.run_seed)
                    .map_err(ParmisError::from)
            })
            .collect()
    }

    /// Allocates the reusable scratch for [`evaluate_with`](Self::evaluate_with): the
    /// decoded policy (architecture, heads and decision space are shared across every θ of
    /// a batch) and a summary shell whose identity strings are refcounted.
    pub fn sim_buffers(&self) -> SimBuffers {
        let policy = DrmPolicy::zeros(&self.space, &self.architecture);
        let controller = policy.shared_name();
        SimBuffers {
            summary: RunSummary {
                application: controller.clone(),
                controller,
                execution_time_s: 0.0,
                energy_j: 0.0,
                average_power_w: 0.0,
                ppw: 0.0,
                peak_temperature_c: 0.0,
                epochs: Vec::new(),
            },
            policy,
        }
    }

    /// [`evaluate`](PolicyEvaluator::evaluate) through a reusable [`SimBuffers`] scratch:
    /// the policy is re-parameterized in place and every application run is delegated to
    /// the configured [`EvalBackend`], so no per-epoch trace and no fresh policy structure
    /// are allocated per θ. With the default [`AnalyticSim`] backend this is the platform's
    /// streaming runner with a discard sink — bit-identical to the materializing path.
    ///
    /// Fault handling: every backend run goes through the evaluator's [`RetryPolicy`] —
    /// a panicking backend is contained (`catch_unwind`) and converted into a structured
    /// [`ParmisError::Backend`] carrying [`SocError::Fault`], failures are retried with
    /// deterministic backoff accounting, and on exhaustion the policy either fails fast
    /// or degrades the whole θ to the configured penalty vector
    /// ([`DegradeMode::SkipWithPenalty`]).
    ///
    /// # Errors
    ///
    /// Returns [`ParmisError::Evaluation`] for a θ of the wrong dimension or an evaluator
    /// without applications, and propagates backend failures
    /// ([`ParmisError::Backend`]).
    pub fn evaluate_with(&self, theta: &[f64], buffers: &mut SimBuffers) -> Result<Vec<f64>> {
        if theta.len() != self.parameter_dim() {
            return Err(ParmisError::Evaluation {
                reason: format!(
                    "theta has dimension {} but the policy needs {}",
                    theta.len(),
                    self.parameter_dim()
                ),
            });
        }
        if self.applications.is_empty() {
            return Err(ParmisError::Evaluation {
                reason: "evaluator has no applications".into(),
            });
        }
        buffers.policy.set_flat_parameters(theta);
        let k = self.objectives.len();
        let mut acc = vec![0.0; k];
        let mut penalty_sum = 0.0;
        for app in &self.applications {
            let ctx = EvalContext {
                platform: &self.platform,
                application: app,
                seed: self.run_seed,
                cancel: if self.cancel.is_never() {
                    None
                } else {
                    Some(&self.cancel)
                },
            };
            let aggregates = match self.run_backend_with_retries(&ctx, buffers)? {
                BackendRun::Completed(aggregates) => aggregates,
                // Retries exhausted under SkipWithPenalty: the whole θ degrades to the
                // penalty vector (clearly dominated, so the archive never admits it).
                BackendRun::Degraded { penalty } => return Ok(vec![penalty; k]),
            };
            buffers.fill_summary(app, &aggregates);
            let v = objective_vector(&self.objectives, &buffers.summary);
            for (a, x) in acc.iter_mut().zip(v) {
                *a += x;
            }
            if let Some(constraints) = &self.constraints {
                penalty_sum += constraints.penalty(&buffers.summary);
            }
        }
        for a in acc.iter_mut() {
            *a /= self.applications.len() as f64;
        }
        // Scenario constraints enter as an additive penalty on every objective (zero when
        // every limit is met), averaged across applications like the objectives themselves.
        if self.constraints.is_some() {
            let penalty = penalty_sum / self.applications.len() as f64;
            if penalty > 0.0 {
                for a in acc.iter_mut() {
                    *a += penalty;
                }
            }
        }
        Ok(acc)
    }

    /// One backend run under the evaluator's [`RetryPolicy`]: panics contained into
    /// structured errors, failures retried with deterministic backoff accounting, and on
    /// exhaustion either the last error (fail-fast) or a degradation marker
    /// (skip-with-penalty).
    fn run_backend_with_retries(
        &self,
        ctx: &EvalContext<'_>,
        buffers: &mut SimBuffers,
    ) -> Result<BackendRun> {
        let mut attempt = 0usize;
        loop {
            let outcome = catch_unwind(AssertUnwindSafe(|| self.backend.run(ctx, buffers)));
            let error = match outcome {
                Ok(Ok(aggregates)) => return Ok(BackendRun::Completed(aggregates)),
                Ok(Err(error)) => error,
                Err(payload) => {
                    self.retry_stats
                        .contained_panics
                        .fetch_add(1, Ordering::SeqCst);
                    ParmisError::Backend {
                        name: self.backend.describe().name().to_string(),
                        source: SocError::Fault {
                            reason: format!(
                                "backend panic contained: {}",
                                panic_reason(payload.as_ref())
                            ),
                        },
                    }
                }
            };
            // Cancellation is a request to stop, not a fault: it is never retried and
            // never degraded to a penalty vector — it propagates immediately so the
            // search suspends at its checkpoint boundary.
            if error.cancel_reason().is_some() {
                return Err(error);
            }
            if attempt < self.retry.max_retries {
                // Deterministic backoff *accounting*: attempt i charges base << i to the
                // ledger. Nothing sleeps — retry behavior never depends on wall clock.
                self.retry_stats
                    .backoff_micros
                    .fetch_add(self.retry.backoff_base_micros << attempt, Ordering::SeqCst);
                self.retry_stats.retries.fetch_add(1, Ordering::SeqCst);
                attempt += 1;
                continue;
            }
            return match self.retry.degrade {
                DegradeMode::FailFast => Err(error),
                DegradeMode::SkipWithPenalty { penalty } => {
                    self.retry_stats
                        .degraded_runs
                        .fetch_add(1, Ordering::SeqCst);
                    Ok(BackendRun::Degraded { penalty })
                }
            };
        }
    }
}

/// Result of one fault-handled backend run.
enum BackendRun {
    /// The backend produced aggregates (possibly after retries).
    Completed(RunAggregates),
    /// Retries were exhausted under [`DegradeMode::SkipWithPenalty`].
    Degraded {
        /// The configured penalty objective value.
        penalty: f64,
    },
}

/// Fluent assembly of a [`SocEvaluator`], replacing the constructor sprawl
/// (`for_benchmark` / `for_scenario` / `new` / `with_*` chains) with one composable
/// surface.
///
/// Defaults: Odroid-XU3-like platform, the paper's default policy architecture, run seed
/// 17, the [`AnalyticSim`] backend, no constraints. Sources compose — e.g.
/// [`scenario`](Self::scenario) sets platform/workload/constraints (and the scenario's
/// pinned backend, if any) while [`backend`](Self::backend) still overrides the backend:
///
/// ```
/// use parmis::prelude::*;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), ParmisError> {
/// let scenario = soc_sim::scenario::by_name("odroid-pca-thermal").unwrap();
/// let evaluator = SocEvaluator::builder()
///     .scenario(&scenario)
///     .objectives(Objective::TIME_ENERGY.to_vec())
///     .backend(Arc::new(CounterProfile::new()))
///     .run_seed(42)
///     .build()?;
/// assert_eq!(evaluator.backend().describe().name(), "counter-profile");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EvaluatorBuilder {
    platform: Option<Platform>,
    architecture: PolicyArchitecture,
    applications: Vec<Application>,
    objectives: Vec<Objective>,
    constraints: Option<ScenarioConstraints>,
    run_seed: u64,
    backend: Option<Arc<dyn EvalBackend>>,
    backend_kind: Option<BackendKind>,
    precision: Option<Precision>,
    retry: RetryPolicy,
    cancel: CancelToken,
    deferred: Option<ParmisError>,
}

impl Default for EvaluatorBuilder {
    fn default() -> Self {
        EvaluatorBuilder::new()
    }
}

impl EvaluatorBuilder {
    /// An empty builder with the documented defaults.
    pub fn new() -> Self {
        EvaluatorBuilder {
            platform: None,
            architecture: PolicyArchitecture::paper_default(),
            applications: Vec::new(),
            objectives: Vec::new(),
            constraints: None,
            run_seed: DEFAULT_RUN_SEED,
            backend: None,
            backend_kind: None,
            precision: None,
            retry: RetryPolicy::default(),
            cancel: CancelToken::never(),
            deferred: None,
        }
    }

    /// Adds one benchmark's application to the evaluation set.
    pub fn benchmark(mut self, benchmark: Benchmark) -> Self {
        self.applications.push(benchmark.application());
        self
    }

    /// Adds every listed benchmark's application (global-policy evaluations average
    /// objectives across them).
    pub fn benchmarks(mut self, benchmarks: &[Benchmark]) -> Self {
        self.applications
            .extend(benchmarks.iter().map(|b| b.application()));
        self
    }

    /// Adds an explicit application to the evaluation set.
    pub fn application(mut self, application: Application) -> Self {
        self.applications.push(application);
        self
    }

    /// Configures the builder from a [`Scenario`]: its platform preset, generated
    /// workload, [`ScenarioConstraints`], and — when the scenario pins one — its
    /// [`Scenario::backend`] selection. A workload build failure is deferred and surfaces
    /// from [`build`](Self::build).
    pub fn scenario(mut self, scenario: &Scenario) -> Self {
        match scenario.application() {
            Ok(application) => {
                self.platform = Some(scenario.platform());
                self.applications.push(application);
                self.constraints = Some(scenario.constraints);
                if let Some(kind) = scenario.backend {
                    self.backend_kind = Some(kind);
                }
                if let Some(precision) = scenario.precision {
                    self.precision = Some(precision);
                }
            }
            Err(e) => {
                self.deferred.get_or_insert(ParmisError::Evaluation {
                    reason: format!("scenario {}: {e}", scenario.name),
                });
            }
        }
        self
    }

    /// Overrides the target platform (default: [`Platform::odroid_xu3`]).
    pub fn platform(mut self, platform: Platform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// Overrides the policy architecture used to decode θ.
    pub fn architecture(mut self, architecture: PolicyArchitecture) -> Self {
        self.architecture = architecture;
        self
    }

    /// Sets the design objectives being traded off (replaces any previous set).
    pub fn objectives(mut self, objectives: Vec<Objective>) -> Self {
        self.objectives = objectives;
        self
    }

    /// Applies scenario constraints as an additive objective penalty
    /// ([`SocEvaluator::with_constraints`]).
    pub fn constraints(mut self, constraints: ScenarioConstraints) -> Self {
        self.constraints = Some(constraints);
        self
    }

    /// Overrides the measurement-noise seed used for every run.
    pub fn run_seed(mut self, seed: u64) -> Self {
        self.run_seed = seed;
        self
    }

    /// Sets the evaluation backend instance. Takes precedence over
    /// [`backend_kind`](Self::backend_kind) and any scenario-pinned selection — this is how
    /// a [`crate::backend::TraceReplay`] loaded with fixtures is supplied.
    pub fn backend(mut self, backend: Arc<dyn EvalBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Selects a stock backend by serializable kind
    /// ([`crate::backend::default_backend_for`]).
    pub fn backend_kind(mut self, kind: BackendKind) -> Self {
        self.backend_kind = Some(kind);
        self
    }

    /// Sets the numeric precision tier the platform simulates under. Like
    /// [`backend_kind`](Self::backend_kind), the last call wins — including a
    /// scenario-pinned tier picked up by [`scenario`](Self::scenario). When never set,
    /// the platform keeps its own tier (seed-exact unless the platform was built with
    /// [`Platform::with_precision`]).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Sets the fault-handling policy applied around every backend run
    /// ([`SocEvaluator::with_retry_policy`]).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a cancellation token to the evaluator
    /// ([`SocEvaluator::with_cancel_token`]). Share the same [`CancelSource`]'s tokens
    /// with [`crate::framework::Parmis::with_cancel_token`] so a single cancel request
    /// stops both the round loop and any in-flight simulator run.
    ///
    /// [`CancelSource`]: crate::cancel::CancelSource
    pub fn cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Builds the evaluator.
    ///
    /// # Errors
    ///
    /// Returns a deferred [`ParmisError::Evaluation`] if a scenario workload failed to
    /// build, or [`ParmisError::InvalidConfig`] when no application source was configured.
    pub fn build(self) -> Result<SocEvaluator> {
        if let Some(deferred) = self.deferred {
            return Err(deferred);
        }
        if self.applications.is_empty() {
            return Err(ParmisError::InvalidConfig {
                reason: "evaluator builder has no applications \
                         (use .benchmark(..), .scenario(..) or .application(..))"
                    .into(),
            });
        }
        let backend = match (self.backend, self.backend_kind) {
            (Some(backend), _) => backend,
            (None, Some(kind)) => crate::backend::default_backend_for(kind),
            (None, None) => Arc::new(AnalyticSim::new()),
        };
        let mut platform = self.platform.unwrap_or_else(Platform::odroid_xu3);
        if let Some(precision) = self.precision {
            platform = platform.with_precision(precision);
        }
        let mut evaluator = SocEvaluator::new(
            platform,
            self.architecture,
            self.applications,
            self.objectives,
        )
        .with_run_seed(self.run_seed)
        .with_backend(backend)
        .with_retry_policy(self.retry)
        .with_cancel_token(self.cancel);
        evaluator.constraints = self.constraints;
        Ok(evaluator)
    }
}

/// Reusable per-worker scratch for batched policy evaluation: the decoded [`DrmPolicy`]
/// (re-parameterized in place per θ via `set_flat_parameters`, so the MLP head structure
/// and the cloned decision space are allocated once per batch instead of once per θ) and a
/// [`RunSummary`] shell (always with an empty epoch trace) that the streaming aggregates
/// are written into for objective extraction and constraint scoring.
#[derive(Debug, Clone)]
pub struct SimBuffers {
    policy: DrmPolicy,
    summary: RunSummary,
}

impl SimBuffers {
    /// The decoded policy for the most recent θ — what a backend drives the platform with.
    pub fn policy(&self) -> &DrmPolicy {
        &self.policy
    }

    /// Mutable access to the decoded policy (backends need `&mut` to run the controller's
    /// ping-pong inference scratch).
    pub fn policy_mut(&mut self) -> &mut DrmPolicy {
        &mut self.policy
    }

    /// Projects streaming [`RunAggregates`] into the summary shell (identity fields are
    /// refcount bumps; the epoch trace stays empty).
    fn fill_summary(&mut self, app: &Application, aggregates: &RunAggregates) {
        self.summary.application = app.name.clone();
        self.summary.execution_time_s = aggregates.execution_time_s;
        self.summary.energy_j = aggregates.energy_j;
        self.summary.average_power_w = aggregates.average_power_w;
        self.summary.ppw = aggregates.ppw;
        self.summary.peak_temperature_c = aggregates.peak_temperature_c;
    }
}

impl PolicyEvaluator for SocEvaluator {
    fn parameter_dim(&self) -> usize {
        DrmPolicy::parameter_count_for(&self.space, &self.architecture)
    }

    fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        self.evaluate_with(theta, &mut self.sim_buffers())
    }

    fn evaluate_batch(&self, thetas: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        // One scratch for the whole batch: the decoded policy structure and summary shell
        // are reused across every θ (the seed default re-decoded both per θ).
        let mut buffers = self.sim_buffers();
        thetas
            .iter()
            .map(|theta| self.evaluate_with(theta, &mut buffers))
            .collect()
    }
}

/// Evaluator over the full 12-application suite, producing "global" Pareto-frontier policies
/// (paper §V-D). This is a thin convenience wrapper over [`SocEvaluator`] with all
/// applications loaded.
#[derive(Debug, Clone)]
pub struct GlobalEvaluator {
    inner: SocEvaluator,
}

impl GlobalEvaluator {
    /// Creates a global evaluator over all 12 benchmarks.
    pub fn all_benchmarks(objectives: Vec<Objective>) -> Self {
        GlobalEvaluator {
            inner: SocEvaluator::new(
                Platform::odroid_xu3(),
                PolicyArchitecture::paper_default(),
                Benchmark::all_applications(),
                objectives,
            ),
        }
    }

    /// Creates a global evaluator over an explicit benchmark subset.
    pub fn for_benchmarks(benchmarks: &[Benchmark], objectives: Vec<Objective>) -> Self {
        GlobalEvaluator {
            inner: SocEvaluator::new(
                Platform::odroid_xu3(),
                PolicyArchitecture::paper_default(),
                benchmarks.iter().map(|b| b.application()).collect(),
                objectives,
            ),
        }
    }

    /// Swaps the evaluation backend of the wrapped evaluator; per-benchmark scoring via
    /// [`evaluate_on`](Self::evaluate_on) uses the same backend.
    pub fn with_backend(mut self, backend: Arc<dyn EvalBackend>) -> Self {
        self.inner = self.inner.with_backend(backend);
        self
    }

    /// Sets the fault-handling policy of the wrapped evaluator
    /// ([`SocEvaluator::with_retry_policy`]); per-benchmark scoring uses the same policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.inner = self.inner.with_retry_policy(retry);
        self
    }

    /// Access to the wrapped [`SocEvaluator`] (e.g. to materialize policies).
    pub fn as_soc_evaluator(&self) -> &SocEvaluator {
        &self.inner
    }

    /// Evaluates θ on a *single* benchmark, which is how the paper scores a global policy on
    /// each application when comparing against application-specific policies (Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn evaluate_on(&self, theta: &[f64], benchmark: Benchmark) -> Result<Vec<f64>> {
        let single = SocEvaluator::new(
            Platform::odroid_xu3(),
            self.inner.architecture.clone(),
            vec![benchmark.application()],
            self.inner.objectives.clone(),
        )
        .with_run_seed(self.inner.run_seed)
        .with_backend(self.inner.backend.clone())
        .with_retry_policy(self.inner.retry);
        single.evaluate(theta)
    }
}

impl PolicyEvaluator for GlobalEvaluator {
    fn parameter_dim(&self) -> usize {
        self.inner.parameter_dim()
    }

    fn objectives(&self) -> &[Objective] {
        self.inner.objectives()
    }

    fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
        self.inner.evaluate(theta)
    }

    fn evaluate_batch(&self, thetas: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        self.inner.evaluate_batch(thetas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_dim_matches_policy_count() {
        let eval = SocEvaluator::for_benchmark(Benchmark::Fft, Objective::TIME_ENERGY.to_vec());
        let space = DecisionSpace::exynos5422();
        assert_eq!(
            eval.parameter_dim(),
            DrmPolicy::parameter_count_for(&space, &PolicyArchitecture::paper_default())
        );
        assert_eq!(eval.parameter_bound(), DrmPolicy::PARAMETER_BOUND);
        assert_eq!(eval.objectives().len(), 2);
        assert_eq!(eval.applications().len(), 1);
    }

    #[test]
    fn evaluation_rejects_wrong_dimension() {
        let eval = SocEvaluator::for_benchmark(Benchmark::Fft, Objective::TIME_ENERGY.to_vec());
        assert!(matches!(
            eval.evaluate(&[0.0; 3]),
            Err(ParmisError::Evaluation { .. })
        ));
    }

    #[test]
    fn evaluation_returns_finite_minimization_objectives() {
        let eval = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_PPW.to_vec());
        let theta = vec![0.2; eval.parameter_dim()];
        let v = eval.evaluate(&theta).unwrap();
        assert_eq!(v.len(), 2);
        assert!(v[0] > 0.0, "execution time must be positive");
        assert!(v[1] < 0.0, "negated PPW must be negative");
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn evaluations_are_deterministic_for_fixed_theta() {
        let eval = SocEvaluator::for_benchmark(Benchmark::Sha, Objective::TIME_ENERGY.to_vec());
        let theta = vec![-0.4; eval.parameter_dim()];
        assert_eq!(
            eval.evaluate(&theta).unwrap(),
            eval.evaluate(&theta).unwrap()
        );
        // A different run seed changes the (noisy) measurement slightly.
        let noisy = eval.clone().with_run_seed(99);
        let a = eval.evaluate(&theta).unwrap();
        let b = noisy.evaluate(&theta).unwrap();
        assert_ne!(a, b);
        assert!((a[0] - b[0]).abs() / a[0] < 0.1);
    }

    #[test]
    fn scenario_evaluator_applies_the_constraint_penalty_additively() {
        let scenario = soc_sim::scenario::by_name("odroid-pca-thermal").unwrap();
        let constrained =
            SocEvaluator::for_scenario(&scenario, Objective::TIME_ENERGY.to_vec()).unwrap();
        // The same platform/workload without constraints is the baseline.
        let free = SocEvaluator::new(
            scenario.platform(),
            PolicyArchitecture::paper_default(),
            vec![scenario.application().unwrap()],
            Objective::TIME_ENERGY.to_vec(),
        );
        // An all-out policy bias is the most likely to violate an 80 C limit; either way the
        // penalized values must be >= the raw ones with an identical offset on both axes.
        let theta = vec![0.5; constrained.parameter_dim()];
        let hot = constrained.evaluate(&theta).unwrap();
        let raw = free.evaluate(&theta).unwrap();
        let d0 = hot[0] - raw[0];
        let d1 = hot[1] - raw[1];
        assert!(d0 >= 0.0 && d1 >= 0.0);
        assert!(
            (d0 - d1).abs() < 1e-9,
            "penalty must shift every objective equally"
        );

        // An unsatisfiable-scenario build error surfaces as an evaluation error.
        let mut broken = scenario.clone();
        broken.workload.benchmarks[0] = "nope".into();
        assert!(matches!(
            SocEvaluator::for_scenario(&broken, Objective::TIME_ENERGY.to_vec()),
            Err(ParmisError::Evaluation { .. })
        ));
    }

    #[test]
    fn different_thetas_produce_different_objectives() {
        let eval = SocEvaluator::for_benchmark(Benchmark::Kmeans, Objective::TIME_ENERGY.to_vec());
        let space = DecisionSpace::exynos5422();
        let arch = PolicyArchitecture::paper_default();
        let a_theta = DrmPolicy::random(&space, &arch, 1).to_flat_parameters();
        let b_theta = DrmPolicy::random(&space, &arch, 2).to_flat_parameters();
        let a = eval.evaluate(&a_theta).unwrap();
        let b = eval.evaluate(&b_theta).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn global_evaluator_averages_across_benchmarks() {
        let objectives = Objective::TIME_ENERGY.to_vec();
        let global =
            GlobalEvaluator::for_benchmarks(&[Benchmark::Sha, Benchmark::Dijkstra], objectives);
        let dim = global.parameter_dim();
        let theta = vec![0.1; dim];
        let avg = global.evaluate(&theta).unwrap();
        let on_sha = global.evaluate_on(&theta, Benchmark::Sha).unwrap();
        let on_dijkstra = global.evaluate_on(&theta, Benchmark::Dijkstra).unwrap();
        for i in 0..2 {
            let expected = (on_sha[i] + on_dijkstra[i]) / 2.0;
            assert!(
                (avg[i] - expected).abs() / expected.abs() < 1e-9,
                "global objective {i} should be the mean of the per-app objectives"
            );
        }
        assert_eq!(global.as_soc_evaluator().applications().len(), 2);
    }

    #[test]
    fn default_batch_agrees_with_elementwise_evaluate() {
        let eval = SocEvaluator::for_benchmark(Benchmark::Fft, Objective::TIME_ENERGY.to_vec());
        let dim = eval.parameter_dim();
        let thetas: Vec<Vec<f64>> = (0..5).map(|i| vec![-0.5 + 0.2 * i as f64; dim]).collect();
        let batch = eval.evaluate_batch(&thetas).unwrap();
        for (theta, row) in thetas.iter().zip(&batch) {
            assert_eq!(row, &eval.evaluate(theta).unwrap());
        }
    }

    #[test]
    fn cancellation_bypasses_retries_and_penalty_degradation() {
        use crate::cancel::{CancelReason, CancelSource};
        // A tripped token must abort immediately: no retries charged to the ledger, no
        // degradation to the penalty vector — even under the most forgiving policy.
        let source = CancelSource::new();
        source.cancel(CancelReason::Deadline);
        let eval = SocEvaluator::builder()
            .benchmark(Benchmark::Qsort)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .retry_policy(RetryPolicy::retries(3).skip_with_penalty(1e9))
            .cancel_token(source.token())
            .build()
            .unwrap();
        let theta = vec![0.1; eval.parameter_dim()];
        let err = eval.evaluate(&theta).unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::Deadline));
        let stats = eval.retry_stats();
        assert_eq!(stats.retries(), 0);
        assert_eq!(stats.degraded_runs(), 0);
        assert_eq!(stats.backoff_micros(), 0);
    }

    #[test]
    fn parallel_evaluator_checks_its_token_at_the_batch_boundary() {
        use crate::cancel::{CancelReason, CancelSource};
        let serial = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
        let dim = serial.parameter_dim();
        let thetas: Vec<Vec<f64>> = (0..4).map(|i| vec![0.05 * i as f64; dim]).collect();
        let baseline = serial.evaluate_batch(&thetas).unwrap();

        // An untripped token leaves results bit-identical and records batch progress.
        let source = CancelSource::new();
        let watched = ParallelEvaluator::new(&serial, 2).with_cancel_token(source.token());
        assert_eq!(watched.evaluate_batch(&thetas).unwrap(), baseline);
        assert!(source.heartbeats() > 0);

        // A tripped token aborts the batch before any evaluation starts.
        source.cancel(CancelReason::User);
        let err = watched.evaluate_batch(&thetas).unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::User));
        // Same boundary check on the serial fast path.
        let solo = ParallelEvaluator::new(&serial, 1).with_cancel_token(source.token());
        let err = solo.evaluate_batch(&thetas).unwrap_err();
        assert_eq!(err.cancel_reason(), Some(CancelReason::User));
    }

    #[test]
    fn reused_sim_buffers_leave_no_state_between_thetas() {
        // The scratch path must be a pure function of θ: interleaving very different
        // candidates through ONE SimBuffers gives the same answers as fresh evaluations,
        // and the evaluation matches the materializing run_summaries path.
        let eval = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_ENERGY.to_vec());
        let dim = eval.parameter_dim();
        let thetas = [vec![0.9; dim], vec![-0.9; dim], vec![0.9; dim]];
        let mut buffers = eval.sim_buffers();
        let through_scratch: Vec<Vec<f64>> = thetas
            .iter()
            .map(|t| eval.evaluate_with(t, &mut buffers).unwrap())
            .collect();
        assert_eq!(
            through_scratch[0], through_scratch[2],
            "identical θ must give identical objectives regardless of what ran in between"
        );
        for (theta, got) in thetas.iter().zip(&through_scratch) {
            assert_eq!(got, &eval.evaluate(theta).unwrap());
            let summary = &eval.run_summaries(theta).unwrap()[0];
            assert_eq!(got[0], summary.execution_time_s);
            assert_eq!(got[1], summary.energy_j);
        }
    }

    #[test]
    fn scenario_constrained_scratch_path_matches_the_summary_path() {
        let scenario = soc_sim::scenario::by_name("odroid-pca-thermal").unwrap();
        let eval = SocEvaluator::for_scenario(&scenario, Objective::TIME_ENERGY.to_vec()).unwrap();
        let theta = vec![0.5; eval.parameter_dim()];
        let mut buffers = eval.sim_buffers();
        let streamed = eval.evaluate_with(&theta, &mut buffers).unwrap();
        let summary = &eval.run_summaries(&theta).unwrap()[0];
        let penalty = scenario.constraints.penalty(summary);
        assert_eq!(streamed[0], summary.execution_time_s + penalty);
        assert_eq!(streamed[1], summary.energy_j + penalty);
    }

    #[test]
    fn parallel_evaluator_is_bitwise_identical_to_serial() {
        let serial = SocEvaluator::for_benchmark(Benchmark::Qsort, Objective::TIME_PPW.to_vec());
        let dim = serial.parameter_dim();
        let thetas: Vec<Vec<f64>> = (0..9).map(|i| vec![0.3 - 0.07 * i as f64; dim]).collect();
        let expected = serial.evaluate_batch(&thetas).unwrap();
        for workers in [1, 2, 4] {
            let parallel = ParallelEvaluator::new(serial.clone(), workers);
            assert_eq!(parallel.num_workers(), workers);
            assert_eq!(
                parallel.evaluate_batch(&thetas).unwrap(),
                expected,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn parallel_evaluator_delegates_scalar_interface() {
        let serial = SocEvaluator::for_benchmark(Benchmark::Sha, Objective::TIME_ENERGY.to_vec());
        let parallel = ParallelEvaluator::new(serial.clone(), 2);
        assert_eq!(parallel.parameter_dim(), serial.parameter_dim());
        assert_eq!(parallel.parameter_bound(), serial.parameter_bound());
        assert_eq!(parallel.objectives(), serial.objectives());
        let theta = vec![0.1; serial.parameter_dim()];
        assert_eq!(
            parallel.evaluate(&theta).unwrap(),
            serial.evaluate(&theta).unwrap()
        );
        assert_eq!(parallel.inner().applications().len(), 1);
        assert_eq!(parallel.into_inner().applications().len(), 1);
    }

    #[test]
    fn batch_errors_surface_from_any_slot() {
        let eval = SocEvaluator::for_benchmark(Benchmark::Aes, Objective::TIME_ENERGY.to_vec());
        let dim = eval.parameter_dim();
        let thetas = vec![vec![0.0; dim], vec![0.0; 3]];
        assert!(matches!(
            eval.evaluate_batch(&thetas),
            Err(ParmisError::Evaluation { .. })
        ));
        let parallel = ParallelEvaluator::new(eval, 2);
        assert!(parallel.evaluate_batch(&thetas).is_err());
    }

    #[test]
    fn builder_matches_the_deprecated_constructors_bitwise() {
        let theta_dim =
            SocEvaluator::for_benchmark(Benchmark::Fft, Objective::TIME_ENERGY.to_vec())
                .parameter_dim();
        let theta = vec![0.25; theta_dim];

        let wrapped = SocEvaluator::for_benchmark(Benchmark::Fft, Objective::TIME_ENERGY.to_vec());
        let built = SocEvaluator::builder()
            .benchmark(Benchmark::Fft)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .build()
            .unwrap();
        assert_eq!(
            wrapped.evaluate(&theta).unwrap(),
            built.evaluate(&theta).unwrap()
        );

        let scenario = soc_sim::scenario::by_name("odroid-pca-thermal").unwrap();
        let wrapped =
            SocEvaluator::for_scenario(&scenario, Objective::TIME_ENERGY.to_vec()).unwrap();
        let built = SocEvaluator::builder()
            .scenario(&scenario)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .build()
            .unwrap();
        let theta = vec![0.5; wrapped.parameter_dim()];
        assert_eq!(
            wrapped.evaluate(&theta).unwrap(),
            built.evaluate(&theta).unwrap()
        );

        // Explicit components + seed override match the method-chain spelling too.
        let chained = SocEvaluator::new(
            Platform::hexa_asym(),
            PolicyArchitecture::paper_default(),
            vec![Benchmark::Sha.application()],
            Objective::TIME_PPW.to_vec(),
        )
        .with_run_seed(23);
        let built = SocEvaluator::builder()
            .platform(Platform::hexa_asym())
            .architecture(PolicyArchitecture::paper_default())
            .application(Benchmark::Sha.application())
            .objectives(Objective::TIME_PPW.to_vec())
            .run_seed(23)
            .build()
            .unwrap();
        let theta = vec![-0.3; chained.parameter_dim()];
        assert_eq!(
            chained.evaluate(&theta).unwrap(),
            built.evaluate(&theta).unwrap()
        );
    }

    #[test]
    fn builder_resolves_backend_sources_with_explicit_instance_winning() {
        use crate::backend::{CounterProfile, TraceReplay};

        // Kind selection instantiates the stock backend.
        let by_kind = SocEvaluator::builder()
            .benchmark(Benchmark::Qsort)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .backend_kind(BackendKind::CounterProfile)
            .build()
            .unwrap();
        assert_eq!(
            by_kind.backend().describe().kind,
            BackendKind::CounterProfile
        );
        let theta = vec![0.2; by_kind.parameter_dim()];
        assert!(by_kind.evaluate(&theta).is_ok());

        // A scenario-pinned selection flows into the evaluator…
        let mut scenario = soc_sim::scenario::by_name("odroid-pca-thermal").unwrap();
        scenario.backend = Some(BackendKind::CounterProfile);
        let pinned = SocEvaluator::builder()
            .scenario(&scenario)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .build()
            .unwrap();
        assert_eq!(
            pinned.backend().describe().kind,
            BackendKind::CounterProfile
        );

        // …but an explicit backend instance takes precedence over both.
        let explicit = SocEvaluator::builder()
            .scenario(&scenario)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .backend(std::sync::Arc::new(TraceReplay::new(
                soc_sim::trace::TraceStore::new(),
            )))
            .build()
            .unwrap();
        assert_eq!(explicit.backend().describe().kind, BackendKind::TraceReplay);

        // GlobalEvaluator forwards backend swaps to per-benchmark scoring.
        let global =
            GlobalEvaluator::for_benchmarks(&[Benchmark::Sha], Objective::TIME_ENERGY.to_vec())
                .with_backend(std::sync::Arc::new(CounterProfile::new()));
        let theta = vec![0.1; global.parameter_dim()];
        assert_eq!(
            global.evaluate(&theta).unwrap(),
            global.evaluate_on(&theta, Benchmark::Sha).unwrap()
        );
    }

    #[test]
    fn builder_surfaces_configuration_errors() {
        // No application source at all.
        let err = SocEvaluator::builder()
            .objectives(Objective::TIME_ENERGY.to_vec())
            .build()
            .unwrap_err();
        assert!(matches!(err, ParmisError::InvalidConfig { .. }));

        // A broken scenario defers its build error to build().
        let mut broken = soc_sim::scenario::by_name("odroid-pca-thermal").unwrap();
        broken.workload.benchmarks[0] = "nope".into();
        let err = SocEvaluator::builder()
            .scenario(&broken)
            .objectives(Objective::TIME_ENERGY.to_vec())
            .build()
            .unwrap_err();
        match err {
            ParmisError::Evaluation { reason } => assert!(reason.contains("nope")),
            other => panic!("expected deferred Evaluation error, got {other:?}"),
        }
    }

    /// Mock evaluator whose failures are distinguishable per slot: θ = `[-(slot)]` fails
    /// with a reason naming that slot, anything else succeeds.
    #[derive(Debug, Clone)]
    struct SlotTaggedEvaluator {
        objectives: Vec<Objective>,
    }

    impl SlotTaggedEvaluator {
        fn new() -> Self {
            SlotTaggedEvaluator {
                objectives: vec![Objective::ExecutionTime],
            }
        }
    }

    impl PolicyEvaluator for SlotTaggedEvaluator {
        fn parameter_dim(&self) -> usize {
            1
        }

        fn objectives(&self) -> &[Objective] {
            &self.objectives
        }

        fn evaluate(&self, theta: &[f64]) -> Result<Vec<f64>> {
            if theta[0] < 0.0 {
                Err(ParmisError::Evaluation {
                    reason: format!("slot {} failed", -theta[0]),
                })
            } else {
                Ok(vec![theta[0]])
            }
        }
    }

    #[test]
    fn parallel_batch_error_is_the_lowest_slot_error_for_any_worker_count() {
        // Regression test for the chunked merge's error contract: with failures planted in
        // slots 5 and 11 of a 16-slot batch, every sharding must surface slot 5's error —
        // identical to what the serial loop reports — never slot 11's, and never a
        // worker-scheduling-dependent winner.
        let eval = SlotTaggedEvaluator::new();
        let mut thetas: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64]).collect();
        thetas[5] = vec![-5.0];
        thetas[11] = vec![-11.0];

        let serial_err = eval.evaluate_batch(&thetas).unwrap_err();
        assert_eq!(
            serial_err,
            ParmisError::Evaluation {
                reason: "slot 5 failed".into()
            }
        );

        for workers in [1, 2, 3, 4, 8, 16] {
            let parallel = ParallelEvaluator::new(eval.clone(), workers);
            let err = parallel.evaluate_batch(&thetas).unwrap_err();
            assert_eq!(err, serial_err, "workers = {workers}");
        }

        // With no failures the sharded batch still matches the serial one exactly.
        let clean: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64]).collect();
        let expected = eval.evaluate_batch(&clean).unwrap();
        for workers in [2, 5] {
            let parallel = ParallelEvaluator::new(eval.clone(), workers);
            assert_eq!(parallel.evaluate_batch(&clean).unwrap(), expected);
        }
    }

    #[test]
    fn run_summaries_expose_per_application_details() {
        let eval = SocEvaluator::for_benchmark(Benchmark::Aes, Objective::TIME_ENERGY.to_vec());
        let theta = vec![0.0; eval.parameter_dim()];
        let summaries = eval.run_summaries(&theta).unwrap();
        assert_eq!(summaries.len(), 1);
        assert_eq!(&*summaries[0].application, "aes");
    }
}
