//! The information-gain acquisition function (paper §IV-B, Eq. 1–9) and its maximizer.
//!
//! The utility of evaluating a candidate policy θ is the expected reduction in entropy of the
//! posterior over the optimal Pareto front. Following the paper's derivation, the expectation
//! over Pareto-front samples O*_s admits a closed form built from truncated Gaussians:
//!
//! ```text
//! α(θ) ≈ 1/S Σ_s Σ_j [ γ_s^j(θ) φ(γ_s^j(θ)) / (2 Φ(γ_s^j(θ))) − ln Φ(γ_s^j(θ)) ]      (Eq. 9)
//! ```
//!
//! The paper states Eq. 6–9 in the maximization convention of MESMO, where each objective
//! component is upper-bounded by the sampled front and `γ = (y*_s − μ)/σ`. This crate
//! minimizes every objective, which is the mirror image: each component is *lower*-bounded by
//! the per-objective minimum of the sampled front and `γ = (μ(θ) − y*_s)/σ(θ)`. The two forms
//! are identical under negation of the objectives, so the resulting α(θ) is exactly the
//! paper's utility.

use crate::pareto_sampling::ParetoFrontSample;
use crate::Result;
use gp::GaussianProcess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard normal probability density function.
fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function (Abramowitz–Stegun style erf identity).
fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, max error ~1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Evaluates the information-gain acquisition α(θ) of Eq. 9 for a candidate θ.
///
/// `models` holds one GP per objective (fitted on minimization values) and `samples` the
/// Pareto-front samples drawn by [`crate::pareto_sampling`]. Larger values mean evaluating θ
/// is expected to reveal more about the optimal Pareto front.
///
/// # Errors
///
/// Propagates GP prediction failures (dimension mismatches).
pub fn information_gain(
    theta: &[f64],
    models: &[GaussianProcess],
    samples: &[ParetoFrontSample],
) -> Result<f64> {
    // Cache the per-objective predictions; they do not depend on the sample.
    let predictions: Vec<(f64, f64)> = models
        .iter()
        .map(|m| m.predict_std(theta))
        .collect::<std::result::Result<Vec<_>, _>>()?;
    Ok(information_gain_from_predictions(&predictions, samples))
}

/// Evaluates Eq. 9 from pre-computed per-objective posterior `(mean, std)` pairs.
///
/// This is the scoring core shared by [`information_gain`] (one candidate, per-point
/// predictions) and the batched optimizer path, which obtains the predictions for the whole
/// candidate pool from [`GaussianProcess::predict_batch`] with one blocked solve per model.
fn information_gain_from_predictions(
    predictions: &[(f64, f64)],
    samples: &[ParetoFrontSample],
) -> f64 {
    assert!(
        !predictions.is_empty(),
        "at least one objective model is required"
    );
    assert!(
        !samples.is_empty(),
        "at least one Pareto-front sample is required"
    );
    let mut total = 0.0;
    for sample in samples {
        for (j, (mean, std)) in predictions.iter().enumerate() {
            let best = sample.per_objective_best[j];
            let sigma = std.max(1e-9);
            // Minimization mirror of the paper's γ: how far the posterior mean sits above the
            // sampled front's best value, in posterior standard deviations.
            let gamma = (mean - best) / sigma;
            let cdf = normal_cdf(gamma).max(1e-12);
            let pdf = normal_pdf(gamma);
            total += gamma * pdf / (2.0 * cdf) - cdf.ln();
        }
    }
    total / samples.len() as f64
}

/// Configuration of the acquisition maximizer.
#[derive(Debug, Clone, PartialEq)]
pub struct AcquisitionOptimizerConfig {
    /// Number of uniformly random candidate vectors scored per iteration.
    pub random_candidates: usize,
    /// Number of perturbed copies of the incumbent non-dominated θs scored per iteration.
    pub local_candidates: usize,
    /// Standard deviation of the local perturbations, as a fraction of the parameter bound.
    pub local_perturbation: f64,
}

impl Default for AcquisitionOptimizerConfig {
    fn default() -> Self {
        AcquisitionOptimizerConfig {
            random_candidates: 96,
            local_candidates: 32,
            local_perturbation: 0.15,
        }
    }
}

/// Maximizes the acquisition over the policy-parameter box by scoring a mixture of uniform
/// random candidates and local perturbations of promising incumbents (the θs whose
/// evaluations are currently non-dominated).
///
/// The paper does not prescribe a specific acquisition optimizer; random multi-start search
/// with local refinement is the standard budget-friendly choice for a few hundred dimensions
/// and keeps the per-iteration cost predictable.
#[derive(Debug, Clone)]
pub struct AcquisitionOptimizer {
    bound: f64,
    dim: usize,
    config: AcquisitionOptimizerConfig,
}

impl AcquisitionOptimizer {
    /// Creates an optimizer over `[-bound, bound]^dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `bound <= 0`.
    pub fn new(dim: usize, bound: f64, config: AcquisitionOptimizerConfig) -> Self {
        assert!(dim > 0, "parameter dimension must be positive");
        assert!(bound > 0.0, "parameter bound must be positive");
        AcquisitionOptimizer { bound, dim, config }
    }

    /// Finds the candidate θ with the highest acquisition value.
    ///
    /// `incumbents` are parameter vectors worth exploring around (typically the θs on the
    /// current empirical Pareto front). Returns the best candidate and its acquisition value.
    ///
    /// # Errors
    ///
    /// Propagates GP prediction failures.
    pub fn maximize(
        &self,
        models: &[GaussianProcess],
        samples: &[ParetoFrontSample],
        incumbents: &[Vec<f64>],
        seed: u64,
    ) -> Result<(Vec<f64>, f64)> {
        let mut top = self.maximize_batch(models, samples, incumbents, 1, seed)?;
        Ok(top.pop().expect("at least one candidate was scored"))
    }

    /// Finds the `q` highest-scoring distinct candidates, best first — the selection rule of
    /// the batched search, which evaluates several policies per iteration instead of just
    /// the argmax.
    ///
    /// The scored candidate pool is identical to [`maximize`](Self::maximize) for the same
    /// seed (it does not depend on `q`), and ties are broken by generation order, so the
    /// whole selection is deterministic. At most the pool size is returned when `q` exceeds
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates GP prediction failures.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn maximize_batch(
        &self,
        models: &[GaussianProcess],
        samples: &[ParetoFrontSample],
        incumbents: &[Vec<f64>],
        q: usize,
        seed: u64,
    ) -> Result<Vec<(Vec<f64>, f64)>> {
        assert!(q > 0, "batch size must be positive");
        let mut rng = StdRng::seed_from_u64(seed);

        // Generate the whole candidate pool up front. The RNG consumption order is identical
        // to scoring-as-we-go (scoring draws nothing from the stream), so the pool — and with
        // it the selection — stays a deterministic function of (incumbents, seed) alone.
        let mut pool: Vec<Vec<f64>> =
            Vec::with_capacity(self.config.random_candidates + self.config.local_candidates);
        for _ in 0..self.config.random_candidates {
            pool.push(
                (0..self.dim)
                    .map(|_| rng.gen_range(-self.bound..self.bound))
                    .collect(),
            );
        }
        if !incumbents.is_empty() {
            let sigma = self.config.local_perturbation * self.bound;
            for i in 0..self.config.local_candidates {
                let base = &incumbents[i % incumbents.len()];
                pool.push(
                    base.iter()
                        .map(|v| {
                            let noise: f64 = rng.gen_range(-1.0..1.0) * sigma;
                            (v + noise).clamp(-self.bound, self.bound)
                        })
                        .collect(),
                );
            }
        }

        // Score the pool with one batched posterior solve per objective model (the blocked
        // O(n²·pool) path) instead of ~pool-size per-candidate triangular solves. The
        // per-candidate (mean, std) pairs — and therefore every acquisition value — are
        // bit-identical to the per-point `predict_std` path.
        let per_model: Vec<Vec<(f64, f64)>> = models
            .iter()
            .map(|m| m.predict_batch(&pool))
            .collect::<std::result::Result<Vec<_>, _>>()?;

        let mut predictions: Vec<(f64, f64)> = Vec::with_capacity(models.len());
        let mut scored: Vec<(Vec<f64>, f64)> = Vec::with_capacity(pool.len());
        for (c, theta) in pool.into_iter().enumerate() {
            predictions.clear();
            predictions.extend(per_model.iter().map(|p| {
                let (mean, variance) = p[c];
                (mean, variance.sqrt())
            }));
            let value = information_gain_from_predictions(&predictions, samples);
            scored.push((theta, value));
        }

        // Stable sort: equal scores keep generation order, so the result is a deterministic
        // function of (models, samples, incumbents, seed) alone.
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(q);
        Ok(scored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp::kernel::Kernel;

    #[test]
    fn normal_functions_match_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!((normal_pdf(0.0) - 0.398942).abs() < 1e-5);
        assert!(normal_pdf(5.0) < 2e-6);
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842700).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842700).abs() < 1e-5);
    }

    fn one_d_models() -> Vec<GaussianProcess> {
        // Two objectives over a 1-D θ with an obvious trade-off: o1 = θ, o2 = 1 - θ.
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let y1: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let y2: Vec<f64> = xs.iter().map(|x| 1.0 - x[0]).collect();
        vec![
            GaussianProcess::fit(xs.clone(), y1, Kernel::rbf(1.0, 0.4), 1e-5).unwrap(),
            GaussianProcess::fit(xs, y2, Kernel::rbf(1.0, 0.4), 1e-5).unwrap(),
        ]
    }

    fn fake_sample(best: Vec<f64>) -> ParetoFrontSample {
        ParetoFrontSample {
            front: vec![best.clone()],
            per_objective_best: best,
        }
    }

    #[test]
    fn acquisition_is_nonnegative_and_finite() {
        let models = one_d_models();
        let samples = vec![fake_sample(vec![0.0, 0.0]), fake_sample(vec![0.1, 0.05])];
        for theta in [[0.0], [0.5], [1.0]] {
            let a = information_gain(&theta, &models, &samples).unwrap();
            assert!(a.is_finite());
            assert!(
                a >= -1e-9,
                "acquisition should be (numerically) non-negative, got {a}"
            );
        }
    }

    #[test]
    fn acquisition_prefers_uncertain_regions_over_known_ones() {
        // Far outside the data the posterior is uncertain; the information gain there should
        // exceed the gain at a densely sampled training location.
        let models = one_d_models();
        let samples = vec![fake_sample(vec![0.2, 0.2])];
        let at_data = information_gain(&[0.5], &models, &samples).unwrap();
        let far_away = information_gain(&[3.0], &models, &samples).unwrap();
        assert!(
            far_away > at_data,
            "uncertain point {far_away} should beat well-known point {at_data}"
        );
    }

    #[test]
    fn acquisition_rewards_candidates_likely_to_improve_the_sampled_front() {
        // A candidate whose posterior mean is at or below the sampled front's best value may
        // push the Pareto front outwards, so its expected information gain is higher than a
        // candidate that the sampled front already dominates by a wide margin.
        let models = one_d_models();
        let near_front = information_gain(&[0.5], &models, &[fake_sample(vec![0.5, 0.5])]).unwrap();
        let hopeless = information_gain(&[0.5], &models, &[fake_sample(vec![-2.0, -2.0])]).unwrap();
        assert!(
            near_front > hopeless,
            "candidate near the sampled front ({near_front}) should score above a hopeless one ({hopeless})"
        );
    }

    #[test]
    fn optimizer_returns_candidate_within_bounds() {
        let models = one_d_models();
        let samples = vec![fake_sample(vec![0.0, 0.0])];
        let optimizer = AcquisitionOptimizer::new(1, 3.0, AcquisitionOptimizerConfig::default());
        let (theta, value) = optimizer
            .maximize(&models, &samples, &[vec![0.5]], 42)
            .unwrap();
        assert_eq!(theta.len(), 1);
        assert!(theta[0] >= -3.0 && theta[0] <= 3.0);
        assert!(value.is_finite());
    }

    #[test]
    fn optimizer_beats_the_average_random_candidate() {
        let models = one_d_models();
        let samples = vec![fake_sample(vec![0.1, 0.1])];
        let optimizer = AcquisitionOptimizer::new(1, 3.0, AcquisitionOptimizerConfig::default());
        let (_, best_value) = optimizer.maximize(&models, &samples, &[], 7).unwrap();
        // Compare against the mean acquisition of a few fixed points.
        let mut mean = 0.0;
        for theta in [[-2.0], [-1.0], [0.0], [1.0], [2.0]] {
            mean += information_gain(&theta, &models, &samples).unwrap();
        }
        mean /= 5.0;
        assert!(best_value >= mean);
    }

    #[test]
    fn optimizer_is_deterministic_per_seed() {
        let models = one_d_models();
        let samples = vec![fake_sample(vec![0.0, 0.0])];
        let optimizer = AcquisitionOptimizer::new(1, 3.0, AcquisitionOptimizerConfig::default());
        let a = optimizer
            .maximize(&models, &samples, &[vec![0.2]], 5)
            .unwrap();
        let b = optimizer
            .maximize(&models, &samples, &[vec![0.2]], 5)
            .unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    #[should_panic]
    fn optimizer_rejects_zero_dimension() {
        AcquisitionOptimizer::new(0, 3.0, AcquisitionOptimizerConfig::default());
    }

    #[test]
    fn batch_selection_returns_distinct_top_candidates_in_score_order() {
        let models = one_d_models();
        let samples = vec![fake_sample(vec![0.1, 0.1])];
        let optimizer = AcquisitionOptimizer::new(1, 3.0, AcquisitionOptimizerConfig::default());
        let batch = optimizer
            .maximize_batch(&models, &samples, &[vec![0.4]], 4, 21)
            .unwrap();
        assert_eq!(batch.len(), 4);
        for pair in batch.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "batch must be sorted best-first");
        }
        for (theta, value) in &batch {
            assert_eq!(theta.len(), 1);
            assert!(theta[0].abs() <= 3.0);
            assert!(value.is_finite());
        }
    }

    #[test]
    fn batch_head_matches_argmax_for_any_q() {
        let models = one_d_models();
        let samples = vec![fake_sample(vec![0.0, 0.0])];
        let optimizer = AcquisitionOptimizer::new(1, 3.0, AcquisitionOptimizerConfig::default());
        let single = optimizer
            .maximize(&models, &samples, &[vec![0.2]], 9)
            .unwrap();
        for q in [1, 3, 8] {
            let batch = optimizer
                .maximize_batch(&models, &samples, &[vec![0.2]], q, 9)
                .unwrap();
            assert_eq!(batch[0], single, "q = {q} must not change the argmax");
        }
    }

    #[test]
    fn batched_scores_are_bit_identical_to_per_point_information_gain() {
        let models = one_d_models();
        let samples = vec![fake_sample(vec![0.1, 0.1]), fake_sample(vec![0.0, 0.2])];
        let optimizer = AcquisitionOptimizer::new(1, 3.0, AcquisitionOptimizerConfig::default());
        let batch = optimizer
            .maximize_batch(&models, &samples, &[vec![0.3]], 6, 11)
            .unwrap();
        for (theta, value) in &batch {
            let per_point = information_gain(theta, &models, &samples).unwrap();
            assert_eq!(
                *value, per_point,
                "batched score diverged from the per-point path at θ = {theta:?}"
            );
        }
    }

    #[test]
    fn oversized_q_is_capped_at_the_candidate_pool() {
        let models = one_d_models();
        let samples = vec![fake_sample(vec![0.0, 0.0])];
        let config = AcquisitionOptimizerConfig {
            random_candidates: 5,
            local_candidates: 0,
            local_perturbation: 0.1,
        };
        let optimizer = AcquisitionOptimizer::new(1, 3.0, config);
        let batch = optimizer
            .maximize_batch(&models, &samples, &[], 50, 2)
            .unwrap();
        assert_eq!(batch.len(), 5);
    }
}
