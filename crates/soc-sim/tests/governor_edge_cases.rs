//! Governor edge cases: exactly-threshold utilization, single-core clusters and degenerate
//! (min == max) frequency tables. These are the corners the scenario registry's smaller
//! platform presets (one-core wearable "Big" cluster, short OPP tables) started exercising.

use soc_sim::cluster::{build_opps, ClusterKind, ClusterParams};
use soc_sim::config::{DecisionSpace, DrmDecision};
use soc_sim::counters::CounterSnapshot;
use soc_sim::governor::{
    default_governors, InteractiveGovernor, OndemandGovernor, PerformanceGovernor,
    PowersaveGovernor,
};
use soc_sim::perf::PerfModel;
use soc_sim::platform::{DrmController, Platform, SocSpec};
use soc_sim::power::PowerModel;
use soc_sim::workload::{ApplicationBuilder, PhaseSpec};

fn busy(big_util: f64, little_util_sum: f64) -> CounterSnapshot {
    CounterSnapshot {
        big_cluster_utilization_per_core: big_util,
        little_cluster_utilization_sum: little_util_sum,
        ..CounterSnapshot::zeroed()
    }
}

fn phase() -> PhaseSpec {
    PhaseSpec {
        name: "edge".into(),
        instructions: 30e6,
        parallel_fraction: 0.4,
        memory_refs_per_instr: 0.2,
        l2_miss_rate: 0.03,
        branch_fraction: 0.1,
        branch_miss_rate: 0.04,
        ilp_scale: 0.8,
    }
}

/// A cluster with a single operating point (min == max frequency table).
fn single_opp_cluster(kind: ClusterKind, cores: u8, mhz: u32) -> ClusterParams {
    ClusterParams {
        kind,
        core_count: cores,
        opps: build_opps(mhz, mhz, 100, 0.9, 1.1),
        peak_ipc: 1.0,
        capacitance_nf: 0.2,
        leakage_w_per_v2: 0.05,
        miss_stall_overhead_cycles: 8.0,
        branch_miss_penalty_cycles: 10.0,
    }
}

#[test]
fn exactly_threshold_utilization_holds_the_current_frequency() {
    // ondemand: up threshold is strict (> 0.80), down threshold is strict (< 0.30) —
    // matching the kernel, a load sitting exactly on either threshold changes nothing.
    let spec = SocSpec::exynos5422();
    let previous = DrmDecision {
        big_cores: 4,
        little_cores: 4,
        big_freq_mhz: 1000,
        little_freq_mhz: 800,
    };
    let mut ondemand = OndemandGovernor::new(spec.clone());
    // big load = per-core-util x cores (0.20 x 4 = 0.80 exactly); little load = the raw sum.
    let at_up = ondemand.decide(&busy(0.20, 0.80), &previous);
    assert_eq!(
        at_up.big_freq_mhz, 1000,
        "exactly 0.80 must not jump to max"
    );
    assert_eq!(at_up.little_freq_mhz, 800);
    let at_down = ondemand.decide(&busy(0.075, 0.30), &previous);
    assert_eq!(
        at_down.big_freq_mhz, 1000,
        "exactly 0.30 must not step down"
    );
    assert_eq!(at_down.little_freq_mhz, 800);

    // interactive: same discipline at its 0.85 / 0.40 thresholds.
    let mut interactive = InteractiveGovernor::new(spec);
    let at_hi = interactive.decide(&busy(0.2125, 0.85), &previous);
    assert_eq!(at_hi.big_freq_mhz, 1000, "exactly 0.85 must not ramp");
    let at_lo = interactive.decide(&busy(0.10, 0.40), &previous);
    assert_eq!(at_lo.big_freq_mhz, 1000, "exactly 0.40 must not decay");
}

#[test]
fn single_core_clusters_run_every_governor_without_panicking() {
    let space = DecisionSpace::new(
        single_opp_cluster(ClusterKind::Big, 1, 1000),
        ClusterParams {
            opps: build_opps(200, 600, 100, 0.7, 0.9),
            ..single_opp_cluster(ClusterKind::Little, 1, 600)
        },
        1,
    );
    let spec = SocSpec::new(space, PerfModel::default(), PowerModel::default(), 0.0);
    let platform = Platform::new(spec.clone());
    let app = ApplicationBuilder::new("single-core")
        .phase(phase(), 6)
        .cycles(2)
        .build()
        .unwrap();
    for mut governor in default_governors(&spec) {
        let run = platform
            .run_application(&app, &mut governor, 0)
            .unwrap_or_else(|e| panic!("{} panicked/failed on 1+1 cores: {e}", governor.name()));
        assert!(run.execution_time_s > 0.0);
        for epoch in &run.epochs {
            spec.decision_space().validate(&epoch.decision).unwrap();
        }
    }
}

#[test]
fn min_equals_max_frequency_tables_saturate_instead_of_panicking() {
    let big = single_opp_cluster(ClusterKind::Big, 2, 1500);
    // Regression for build_opps: a degenerate range used to divide by zero into NaN volts.
    assert_eq!(big.opps.len(), 1);
    assert!(big.opps[0].voltage_v.is_finite());
    assert_eq!(big.min_frequency_mhz(), big.max_frequency_mhz());

    let little = single_opp_cluster(ClusterKind::Little, 2, 400);
    let space = DecisionSpace::new(big, little, 1);
    assert_eq!(space.knob_cardinalities().big_freq_options, 1);
    let spec = SocSpec::new(space, PerfModel::default(), PowerModel::default(), 0.0);
    let previous = spec.decision_space().initial_decision();
    assert_eq!(previous.big_freq_mhz, 1500);

    // ondemand's down-step and interactive's up-ramp both hit the table edge immediately.
    let mut ondemand = OndemandGovernor::new(spec.clone());
    let idle = ondemand.decide(&busy(0.0, 0.0), &previous);
    assert_eq!(idle.big_freq_mhz, 1500);
    assert_eq!(idle.little_freq_mhz, 400);
    let hot = ondemand.decide(&busy(1.0, 2.0), &previous);
    assert_eq!(hot.big_freq_mhz, 1500);

    let mut interactive = InteractiveGovernor::new(spec.clone());
    let ramp = interactive.decide(&busy(1.0, 2.0), &previous);
    assert_eq!(
        ramp.big_freq_mhz, 1500,
        "opp_at_level must clamp at the top"
    );
    let decay = interactive.decide(&busy(0.0, 0.0), &previous);
    assert_eq!(
        decay.big_freq_mhz, 1500,
        "saturating_sub must clamp at the bottom"
    );

    // The pinned-extreme governors agree on the only available frequency.
    let mut perf = PerformanceGovernor::new(spec.clone());
    let mut save = PowersaveGovernor::new(spec.clone());
    let p = perf.decide(&CounterSnapshot::zeroed(), &previous);
    let s = save.decide(&CounterSnapshot::zeroed(), &previous);
    assert_eq!(p.big_freq_mhz, s.big_freq_mhz);

    // And a full run completes.
    let platform = Platform::new(spec);
    let app = ApplicationBuilder::new("pinned")
        .phase(phase(), 5)
        .build()
        .unwrap();
    let run = platform.run_application(&app, &mut ondemand, 1).unwrap();
    assert_eq!(run.epochs.len(), 5);
}

#[test]
fn wearable_preset_governors_respect_its_tiny_decision_space() {
    // The wearable preset has a single-core Big cluster and short OPP tables — the concrete
    // platform that motivated these edge cases.
    let platform = Platform::wearable();
    let spec = platform.spec().clone();
    let app = ApplicationBuilder::new("wearable-burst")
        .phase(phase(), 8)
        .cycles(2)
        .build()
        .unwrap();
    for mut governor in default_governors(&spec) {
        let run = platform.run_application(&app, &mut governor, 3).unwrap();
        for epoch in &run.epochs {
            spec.decision_space().validate(&epoch.decision).unwrap();
            assert!(epoch.decision.big_cores <= 1);
            assert!(epoch.decision.little_cores <= 2);
        }
        assert!(run.peak_temperature_c >= 25.0);
    }
}
