//! Equivalence suite for the streaming, table-driven simulation engine.
//!
//! The engine rewrite (PR 4) must be invisible in the numbers: for any platform, workload,
//! controller and measurement seed, the streaming runner's aggregates are bit-identical to
//! the materializing `run_application`, the sink observes exactly the epochs the summary
//! materializes, and every `DecisionTable` entry matches freshly-derived model values.
//! A deterministic regression test additionally pins the per-epoch energy ordering
//! semantics (energy = final time × final power, plus the un-noised switch penalty).

use proptest::prelude::*;
use soc_sim::config::DrmDecision;
use soc_sim::counters::CounterSnapshot;
use soc_sim::engine::DecisionTable;
use soc_sim::platform::{CollectEpochs, DiscardEpochs, DrmController, Platform};
use soc_sim::power::PowerModel;
use soc_sim::workload::{ApplicationBuilder, PhaseSpec};

/// Deterministic SplitMix64 index stream: drives the walk controller through the knob grid,
/// exercising throttle capping, switch penalties and every frequency level.
struct WalkController {
    state: u64,
}

impl WalkController {
    fn new(seed: u64) -> Self {
        WalkController {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn draw(&mut self, bound: usize) -> usize {
        self.state = self
            .state
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (self.state >> 33) as usize % bound.max(1)
    }
}

/// Controller that emits valid decisions for a specific platform by clamping knob indices
/// drawn from the walk (`decision_from_knob_indices` clamps out-of-range indices).
struct SpaceWalk {
    walk: WalkController,
    space: soc_sim::DecisionSpace,
}

impl SpaceWalk {
    fn new(platform: &Platform, seed: u64) -> Self {
        SpaceWalk {
            walk: WalkController::new(seed),
            space: platform.spec().decision_space().clone(),
        }
    }
}

impl DrmController for SpaceWalk {
    fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
        let indices = [
            self.walk.draw(64),
            self.walk.draw(64),
            self.walk.draw(64),
            self.walk.draw(64),
        ];
        self.space.decision_from_knob_indices(indices)
    }

    fn name(&self) -> &str {
        "space-walk"
    }
}

fn platform_for(index: u8) -> Platform {
    match index % 3 {
        0 => Platform::odroid_xu3(),
        1 => Platform::hexa_asym(),
        _ => Platform::wearable(),
    }
}

fn phase_strategy() -> impl Strategy<Value = PhaseSpec> {
    (
        1.0e6f64..5.0e8,
        0.0f64..1.0,
        0.01f64..0.6,
        0.0f64..0.2,
        0.0f64..0.3,
        0.0f64..0.3,
        0.3f64..1.0,
    )
        .prop_map(
            |(instructions, parallel, mem, miss, branch, branch_miss, ilp)| PhaseSpec {
                name: "prop".into(),
                instructions,
                parallel_fraction: parallel,
                memory_refs_per_instr: mem,
                l2_miss_rate: miss,
                branch_fraction: branch,
                branch_miss_rate: branch_miss,
                ilp_scale: ilp,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random platforms, workloads, controllers and measurement seeds, the streaming
    /// aggregates are bit-identical to the materializing summary, and the collecting sink
    /// observes exactly the epochs the summary materializes.
    #[test]
    fn streaming_aggregates_match_the_materializing_runner(
        platform_idx in 0u8..3,
        phase in phase_strategy(),
        epochs in 1usize..40,
        jitter in 0.0f64..0.3,
        controller_seed in 0u64..u64::MAX,
        run_seed in 0u64..u64::MAX,
    ) {
        let platform = platform_for(platform_idx);
        let app = ApplicationBuilder::new("prop-app")
            .phase(phase, epochs)
            .jitter(jitter)
            .seed(controller_seed ^ 0xABCD)
            .build()
            .unwrap();

        let summary = platform
            .run_application(&app, &mut SpaceWalk::new(&platform, controller_seed), run_seed)
            .unwrap();

        let mut discard = DiscardEpochs;
        let aggregates = platform
            .run_application_with(
                &app,
                &mut SpaceWalk::new(&platform, controller_seed),
                run_seed,
                &mut discard,
            )
            .unwrap();

        prop_assert_eq!(aggregates.epochs, summary.epochs.len());
        prop_assert_eq!(aggregates.execution_time_s, summary.execution_time_s);
        prop_assert_eq!(aggregates.energy_j, summary.energy_j);
        prop_assert_eq!(aggregates.average_power_w, summary.average_power_w);
        prop_assert_eq!(aggregates.ppw, summary.ppw);
        prop_assert_eq!(aggregates.peak_temperature_c, summary.peak_temperature_c);
        prop_assert_eq!(aggregates.instructions, app.total_instructions());

        // Rail energies fold per-epoch values the summary path also carries.
        let big_rail: f64 = summary.epochs.iter().map(|e| e.big_power_w * e.time_s).sum();
        prop_assert_eq!(aggregates.big_rail_energy_j, big_rail);

        // The collecting sink sees exactly the summary's epoch trace.
        let mut collector = CollectEpochs::with_capacity(app.epoch_count());
        platform
            .run_application_with(
                &app,
                &mut SpaceWalk::new(&platform, controller_seed),
                run_seed,
                &mut collector,
            )
            .unwrap();
        prop_assert_eq!(collector.epochs(), &summary.epochs[..]);
    }

    /// `run_epoch` through the table matches values freshly derived from the perf/power
    /// models for arbitrary phases and in-space decisions.
    #[test]
    fn table_epoch_matches_freshly_derived_models(
        platform_idx in 0u8..3,
        phase in phase_strategy(),
        knobs in (0usize..64, 0usize..64, 0usize..64, 0usize..64),
    ) {
        let platform = platform_for(platform_idx);
        let spec = platform.spec();
        let d = spec
            .decision_space()
            .decision_from_knob_indices([knobs.0, knobs.1, knobs.2, knobs.3]);
        let result = platform.run_epoch(&d, &phase).unwrap();

        let big = spec.big_cluster();
        let little = spec.little_cluster();
        let perf = spec.perf_model().run_epoch(big, little, &d, &phase);
        let power = spec.power_model().epoch_power(big, little, &d, &phase, &perf);
        prop_assert_eq!(result.time_s, perf.time_s);
        prop_assert_eq!(result.power_w, power.total_w());
        prop_assert_eq!(result.big_power_w, power.big_w);
        prop_assert_eq!(result.little_power_w, power.little_w);
        prop_assert_eq!(result.energy_j, power.total_w() * perf.time_s);
        let counters = CounterSnapshot::from_epoch(big, little, &d, &phase, &perf, &power);
        prop_assert_eq!(result.counters, counters);
    }
}

/// Every `DecisionTable` entry of every platform preset matches freshly-derived model
/// values — exhaustively over the whole decision space (4 940 + 3 600 + 216 entries).
#[test]
fn decision_tables_match_the_models_exhaustively() {
    for platform in [
        Platform::odroid_xu3(),
        Platform::hexa_asym(),
        Platform::wearable(),
    ] {
        let spec = platform.spec();
        let space = spec.decision_space();
        let thermal = spec.thermal_model();
        let table = platform.decision_table();
        let model = PowerModel::default();
        assert_eq!(table.len(), space.len());
        // The platform's table must agree with one rebuilt from scratch.
        assert_eq!(*table, DecisionTable::new(space, thermal));
        for (i, d) in space.iter().enumerate() {
            let entry = table.entry(i);
            assert_eq!(entry.decision, d);
            for u in [0.0, 0.5, 1.0] {
                assert_eq!(
                    entry.big_power_w(u),
                    model.cluster_power(space.big_cluster(), d.big_freq_mhz, d.big_cores, u)
                );
                assert_eq!(
                    entry.little_power_w(u),
                    model.cluster_power(
                        space.little_cluster(),
                        d.little_freq_mhz,
                        d.little_cores,
                        u
                    )
                );
            }
            assert_eq!(
                table.entry(entry.throttled_index).decision,
                thermal.cap_decision(true, &d, space.big_cluster(), space.little_cluster())
            );
        }
    }
}

/// Pins the epoch energy ordering semantics (the seed recomputed `energy = time · power`
/// three times; the streaming engine computes it once, at the end of the adjustment chain):
///
/// 1. leakage and measurement noise scale the **power** factor,
/// 2. switch latency and measurement noise stretch the **time** factor,
/// 3. `energy_j` is exactly `time_s · power_w` over the final factors,
/// 4. the switch **energy** penalty is added afterwards, outside the noise model.
#[test]
fn epoch_energy_is_final_time_times_final_power_plus_switch_energy() {
    // hexa_asym has non-zero switch energy AND measurement noise, so every term is live.
    let platform = Platform::hexa_asym();
    let spec = platform.spec();
    assert!(spec.transition_model().freq_switch_energy_mj > 0.0);
    assert!(spec.measurement_noise() > 0.0);

    let phase = PhaseSpec {
        name: "p".into(),
        instructions: 60e6,
        parallel_fraction: 0.5,
        memory_refs_per_instr: 0.25,
        l2_miss_rate: 0.04,
        branch_fraction: 0.1,
        branch_miss_rate: 0.05,
        ilp_scale: 0.85,
    };
    let app = ApplicationBuilder::new("energy-ordering")
        .phase(phase, 30)
        .jitter(0.1)
        .build()
        .unwrap();
    let summary = platform
        .run_application(&app, &mut SpaceWalk::new(&platform, 99), 5)
        .unwrap();

    let mut previous = spec.decision_space().initial_decision();
    let mut any_switch_energy = false;
    for (i, epoch) in summary.epochs.iter().enumerate() {
        let switch_j = spec
            .transition_model()
            .switch_energy_j(&previous, &epoch.decision);
        any_switch_energy |= switch_j > 0.0;
        assert_eq!(
            epoch.energy_j,
            epoch.time_s * epoch.power_w + switch_j,
            "epoch {i}: energy must be final time × final power plus the switch penalty"
        );
        assert_eq!(
            epoch.counters.total_chip_power_w, epoch.power_w,
            "epoch {i}: the power counter must carry the final (noised) power"
        );
        previous = epoch.decision;
    }
    assert!(
        any_switch_energy,
        "the walk must change configurations so the switch-energy term is exercised"
    );
    // Totals remain the plain sums of the per-epoch values.
    let time: f64 = summary.epochs.iter().map(|e| e.time_s).sum();
    let energy: f64 = summary.epochs.iter().map(|e| e.energy_j).sum();
    assert_eq!(summary.execution_time_s, time);
    assert_eq!(summary.energy_j, energy);
}

/// Out-of-space requests from a controller surface the same validation error through the
/// table-driven path as the seed's per-epoch `validate`.
#[test]
fn invalid_controller_decisions_still_error() {
    struct Rogue;
    impl DrmController for Rogue {
        fn decide(&mut self, _: &CounterSnapshot, _: &DrmDecision) -> DrmDecision {
            DrmDecision {
                big_cores: 9,
                little_cores: 1,
                big_freq_mhz: 1000,
                little_freq_mhz: 1000,
            }
        }
    }
    let platform = Platform::odroid_xu3();
    let app = ApplicationBuilder::new("rogue")
        .phase(
            PhaseSpec {
                name: "p".into(),
                instructions: 1e6,
                parallel_fraction: 0.5,
                memory_refs_per_instr: 0.1,
                l2_miss_rate: 0.01,
                branch_fraction: 0.1,
                branch_miss_rate: 0.05,
                ilp_scale: 0.9,
            },
            2,
        )
        .build()
        .unwrap();
    let err = platform
        .run_application_with(&app, &mut Rogue, 0, &mut DiscardEpochs)
        .unwrap_err();
    assert!(err.to_string().contains("big cores"), "got: {err}");
}
